#!/usr/bin/env bash
# Coverage floors for the packages the staged compile-memory model
# lives in: new engine/mem paths cannot land untested. Floors sit a few
# points below the measured coverage at the time they were set, so they
# trip on real regressions, not on refactoring noise.
set -euo pipefail
cd "$(dirname "$0")/.."

declare -A floors=(
  ["./internal/engine"]=78
  ["./internal/mem"]=82
)

fail=0
for pkg in "${!floors[@]}"; do
  out=$(go test -cover "$pkg" | tail -n 1)
  # `|| true`: a missing coverage line must reach the diagnostic below,
  # not silently kill the script through set -e.
  pct=$(echo "$out" | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*' || true)
  if [ -z "$pct" ]; then
    echo "coverage: could not parse output for $pkg: $out" >&2
    fail=1
    continue
  fi
  floor=${floors[$pkg]}
  if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
    echo "coverage: $pkg at ${pct}% — below the ${floor}% floor" >&2
    fail=1
  else
    echo "coverage: $pkg at ${pct}% (floor ${floor}%)"
  fi
done
exit $fail
