#!/usr/bin/env bash
# Coverage floors for the packages the simulation's correctness hangs
# on: the staged compile-memory model (engine/mem), the deterministic
# event core (vtime), the cluster router with its health/breaker
# control loop, and the replication/claims machinery (scenario).
# Floors sit a few points below the measured coverage at the time they
# were set (engine 83.3, mem 93.2, scenario 86.9, vtime 95.0, fault
# 100.0, cluster 94.5 — the last measured after the breaker and health
# planes landed), so they trip on real regressions, not on refactoring
# noise.
set -euo pipefail
cd "$(dirname "$0")/.."

declare -A floors=(
  ["./internal/cluster"]=90
  ["./internal/engine"]=79
  ["./internal/fault"]=85
  ["./internal/mem"]=82
  ["./internal/scenario"]=80
  ["./internal/vtime"]=90
)

fail=0
for pkg in "${!floors[@]}"; do
  out=$(go test -cover "$pkg" | tail -n 1)
  # `|| true`: a missing coverage line must reach the diagnostic below,
  # not silently kill the script through set -e.
  pct=$(echo "$out" | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*' || true)
  if [ -z "$pct" ]; then
    echo "coverage: could not parse output for $pkg: $out" >&2
    fail=1
    continue
  fi
  floor=${floors[$pkg]}
  if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
    echo "coverage: $pkg at ${pct}% — below the ${floor}% floor" >&2
    fail=1
  else
    echo "coverage: $pkg at ${pct}% (floor ${floor}%)"
  fi
done
exit $fail
