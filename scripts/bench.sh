#!/usr/bin/env bash
# bench.sh — run the figure benchmarks and emit BENCH_PR3.json with
# ns/op, allocs/op, and sim-events/sec per benchmark, plus the speedup
# against the recorded pre-rewrite (PR 2) scheduler baselines.
#
# Usage:
#   scripts/bench.sh                 # default benchmark set, 1 iteration
#   BENCH=ClientSweep scripts/bench.sh
#   COUNT=3 scripts/bench.sh         # average over 3 runs
#   OUT=/tmp/bench.json scripts/bench.sh
#
# The seed baselines below were measured at commit 37c27ab (PR 2, the
# goroutine-per-task scheduler) on the same host and load as the PR 3
# "after" numbers recorded in BENCH_PR3.json; re-measure both on your
# hardware before comparing absolute values.

set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-Figure2ThrottleTrace|Figure3Throughput30|ClientSweep}"
COUNT="${COUNT:-1}"
BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_PR3.json}"

raw=$(go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -count "$COUNT" -benchmem . | tee /dev/stderr)

awk -v out="$OUT" '
BEGIN {
    # Pre-rewrite (PR 2, commit 37c27ab) baselines, ns/op.
    seed["BenchmarkFigure3Throughput30"] = 936059000
    seed["BenchmarkClientSweep"] = 1972694201
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix if present
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")          ns[name]     += $(i-1) + 0
        if ($i == "allocs/op")      allocs[name] += $(i-1) + 0
        if ($i == "sim-events/sec") evs[name]    += $(i-1) + 0
    }
    runs[name]++
}
END {
    printf "{\n  \"benchmarks\": [\n" > out
    n = 0
    for (name in runs) order[++n] = name
    # Stable output order: sort names.
    for (i = 1; i <= n; i++)
        for (j = i + 1; j <= n; j++)
            if (order[j] < order[i]) { t = order[i]; order[i] = order[j]; order[j] = t }
    for (i = 1; i <= n; i++) {
        name = order[i]
        r = runs[name]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %.0f, \"allocs_per_op\": %.0f, \"sim_events_per_sec\": %.0f", \
            name, ns[name]/r, allocs[name]/r, evs[name]/r >> out
        if (name in seed)
            printf ", \"seed_ns_per_op\": %.0f, \"speedup_vs_seed\": %.2f", \
                seed[name], seed[name]/(ns[name]/r) >> out
        printf "}%s\n", (i < n ? "," : "") >> out
    }
    printf "  ]\n}\n" >> out
}
' <<<"$raw"

echo "wrote $OUT" >&2
