#!/usr/bin/env bash
# bench.sh — run the figure benchmarks and emit a JSON record (default
# BENCH_PR9.json) with ns/op, allocs/op, and sim-events/sec per
# benchmark, plus the speedup against the recorded pre-rewrite (PR 2)
# scheduler baselines.
#
# Usage:
#   scripts/bench.sh                 # default benchmark set, 1 iteration
#   scripts/bench.sh -check          # also gate against the newest
#                                    #   committed BENCH_*.json (the
#                                    #   ratchet): fail if
#                                    #   sim_events_per_sec drops >15%
#                                    #   or allocs_per_op rises >15%
#   BENCH=ClientSweep scripts/bench.sh
#   COUNT=3 scripts/bench.sh         # average over 3 runs
#   OUT=/tmp/bench.json scripts/bench.sh
#   BASELINE=BENCH_PR3.json scripts/bench.sh -check
#   GATE_ONLY=1 scripts/bench.sh -check  # skip the benchmark run and
#                                    #   gate an existing $OUT against
#                                    #   $BASELINE (smoke tests use this)
#
# The seed baselines below were measured at commit 37c27ab (PR 2, the
# goroutine-per-task scheduler) on the same host and load as the PR 3
# "after" numbers recorded in BENCH_PR3.json; re-measure both on your
# hardware before comparing absolute values. The -check gate compares
# only benchmarks present in both records; allocs/op is host-independent,
# while sim-events/sec carries host variance — the 15% tolerance absorbs
# normal noise but not an algorithmic regression.

set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
if [ "${1:-}" = "-check" ]; then
    CHECK=1
fi

BENCH="${BENCH:-Figure3Throughput30|Figure5Collapse40|ClientSweep|RetryStorm|Cluster}"
# Microsecond-scale benchmarks are clock jitter at -benchtime 1x (one
# 40us iteration swings +-40%), so they run in their own tier with
# enough iterations to average the jitter out and make the 15% gate
# meaningful. 100x (~4 ms total) proved warmup-dominated — it reads
# ~25% low against a long run on the same host — so the tier runs 2000
# iterations (~80 ms), where repeated runs agree within ~1%.
MICRO="${MICRO:-Figure2ThrottleTrace}"
MICROTIME="${MICROTIME:-2000x}"
VTBENCH="${VTBENCH:-TimerWheel}"
COUNT="${COUNT:-1}"
BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_PR9.json}"

# The perf gate is a ratchet: unless BASELINE is set explicitly, compare
# against the newest committed BENCH_*.json other than $OUT itself, so
# each PR's recorded numbers become the floor the next PR must hold.
if [ -z "${BASELINE:-}" ]; then
    BASELINE=$(ls BENCH_*.json 2>/dev/null | grep -Fxv "$(basename "$OUT")" | sort -V | tail -n 1 || true)
fi

if [ "${GATE_ONLY:-0}" = 1 ]; then
    if [ "$CHECK" != 1 ] || [ ! -f "$OUT" ]; then
        echo "bench.sh: GATE_ONLY=1 needs -check and an existing OUT ('$OUT')" >&2
        exit 1
    fi
else

raw=$(go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -count "$COUNT" -benchmem . | tee /dev/stderr)
if [ -n "$MICRO" ]; then
    raw+=$'\n'
    raw+=$(go test -run '^$' -bench "$MICRO" -benchtime "$MICROTIME" -count "$COUNT" -benchmem . | tee /dev/stderr)
fi
if [ -n "$VTBENCH" ]; then
    raw+=$'\n'
    raw+=$(go test -run '^$' -bench "$VTBENCH" -benchtime "$BENCHTIME" -count "$COUNT" -benchmem ./internal/vtime | tee /dev/stderr)
fi

awk -v out="$OUT" '
BEGIN {
    # Pre-rewrite (PR 2, commit 37c27ab) baselines, ns/op.
    seed["BenchmarkFigure3Throughput30"] = 936059000
    seed["BenchmarkClientSweep"] = 1972694201
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix if present
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")          ns[name]     += $(i-1) + 0
        if ($i == "allocs/op")      allocs[name] += $(i-1) + 0
        if ($i == "sim-events/sec") evs[name]    += $(i-1) + 0
    }
    runs[name]++
}
END {
    printf "{\n  \"benchmarks\": [\n" > out
    n = 0
    for (name in runs) order[++n] = name
    # Stable output order: sort names.
    for (i = 1; i <= n; i++)
        for (j = i + 1; j <= n; j++)
            if (order[j] < order[i]) { t = order[i]; order[i] = order[j]; order[j] = t }
    for (i = 1; i <= n; i++) {
        name = order[i]
        r = runs[name]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %.0f, \"allocs_per_op\": %.0f, \"sim_events_per_sec\": %.0f", \
            name, ns[name]/r, allocs[name]/r, evs[name]/r >> out
        if (name in seed)
            printf ", \"seed_ns_per_op\": %.0f, \"speedup_vs_seed\": %.2f", \
                seed[name], seed[name]/(ns[name]/r) >> out
        printf "}%s\n", (i < n ? "," : "") >> out
    }
    printf "  ]\n}\n" >> out
}
' <<<"$raw"

echo "wrote $OUT" >&2

fi # GATE_ONLY

if [ "$CHECK" = 1 ]; then
    if [ -z "$BASELINE" ] || [ ! -f "$BASELINE" ]; then
        echo "bench.sh -check: no baseline BENCH_*.json found (BASELINE='$BASELINE')" >&2
        exit 1
    fi
    # Each benchmark record is one line of our own JSON; extract
    # name/allocs/events pairs and compare the intersection.
    extract() {
        sed -n 's/.*"name": "\([^"]*\)", "ns_per_op": [0-9]*, "allocs_per_op": \([0-9]*\), "sim_events_per_sec": \([0-9]*\).*/\1 \2 \3/p' "$1"
    }
    extract "$BASELINE" | sort >/tmp/bench_base.$$
    extract "$OUT" | sort >/tmp/bench_new.$$
    # A baseline that parses to zero records (corrupt, renamed fields,
    # wrong file) must fail the gate, not silently skip every
    # comparison and report success.
    if [ ! -s /tmp/bench_base.$$ ]; then
        rm -f /tmp/bench_base.$$ /tmp/bench_new.$$
        echo "bench.sh -check: baseline $BASELINE parsed to zero benchmark records" >&2
        exit 1
    fi
    fail=0
    compared=0
    while read -r name ballocs bevents; do
        line=$(grep "^$name " /tmp/bench_new.$$ || true)
        [ -z "$line" ] && continue
        compared=$((compared + 1))
        read -r _ nallocs nevents <<<"$line"
        # allocs/op must not rise more than 15% over the baseline.
        if [ "$ballocs" -gt 0 ] && [ $((nallocs * 100)) -gt $((ballocs * 115)) ]; then
            echo "PERF REGRESSION: $name allocs/op $nallocs > ${ballocs}*1.15" >&2
            fail=1
        fi
        # sim-events/sec must not drop more than 15% under the baseline.
        if [ "$bevents" -gt 0 ] && [ $((nevents * 100)) -lt $((bevents * 85)) ]; then
            echo "PERF REGRESSION: $name sim_events_per_sec $nevents < ${bevents}*0.85" >&2
            fail=1
        fi
        echo "perf-gate: $name allocs/op $nallocs (base $ballocs), sim-events/sec $nevents (base $bevents)" >&2
    done </tmp/bench_base.$$
    rm -f /tmp/bench_base.$$ /tmp/bench_new.$$
    # Likewise, a baseline/new pair with no benchmarks in common means
    # nothing was gated — that is a configuration error, not a pass.
    if [ "$compared" = 0 ]; then
        echo "bench.sh -check: no benchmarks in common between $BASELINE and $OUT" >&2
        exit 1
    fi
    if [ "$fail" = 1 ]; then
        echo "bench.sh -check: performance regression against $BASELINE" >&2
        exit 1
    fi
    echo "bench.sh -check: no regression against $BASELINE ($compared benchmarks compared)" >&2
fi
