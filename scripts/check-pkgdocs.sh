#!/usr/bin/env bash
# check-pkgdocs fails when any package in the module lacks a package-level
# doc comment (a comment block ending on the line directly above the
# package clause in at least one non-test file). CI runs it so every
# internal/* package, command, and example stays documented in the style
# of compilegate.go's package doc.
set -u
fail=0
for dir in $(go list -f '{{.Dir}}' ./...); do
  ok=0
  for f in "$dir"/*.go; do
    case "$f" in
    *_test.go) continue ;;
    esac
    [ -e "$f" ] || continue
    if awk '/^package [A-Za-z_]/ && prev ~ /^(\/\/|\*\/)/ { found = 1 }
            { prev = $0 }
            END { exit found ? 0 : 1 }' "$f"; then
      ok=1
      break
    fi
  done
  if [ "$ok" -eq 0 ]; then
    echo "missing package doc comment: $dir" >&2
    fail=1
  fi
done
exit $fail
