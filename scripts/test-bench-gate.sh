#!/usr/bin/env bash
# test-bench-gate.sh — unit-style smoke checks for bench.sh's ratchet
# gate, run in GATE_ONLY mode so no benchmark executes. Exercises the
# failure modes the gate must catch loudly instead of skipping:
#   1. a clean comparison passes,
#   2. a genuine regression fails,
#   3. a corrupt/zero-record baseline fails (the silent-skip bug),
#   4. a baseline with no benchmarks in common fails,
#   5. a missing baseline fails.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

record() {
    # record <file> <name> <allocs> <events>
    cat >"$1" <<EOF
{
  "benchmarks": [
    {"name": "$2", "ns_per_op": 1000, "allocs_per_op": $3, "sim_events_per_sec": $4}
  ]
}
EOF
}

run_gate() {
    GATE_ONLY=1 OUT="$1" BASELINE="$2" scripts/bench.sh -check
}

fails=0
expect() {
    # expect <pass|fail> <label> <out> <baseline>
    local want=$1 label=$2 out=$3 base=$4 got
    if run_gate "$out" "$base" >"$tmp/log" 2>&1; then got=pass; else got=fail; fi
    if [ "$got" != "$want" ]; then
        echo "FAIL: $label: gate ${got}ed, expected $want" >&2
        sed 's/^/    /' "$tmp/log" >&2
        fails=1
    else
        echo "ok: $label ($want)" >&2
    fi
}

record "$tmp/base.json" BenchmarkX 100 50000
record "$tmp/clean.json" BenchmarkX 105 49000
record "$tmp/regressed.json" BenchmarkX 200 50000
record "$tmp/slow.json" BenchmarkX 100 10000
record "$tmp/other.json" BenchmarkY 100 50000
echo '{"benchmarks": []}' >"$tmp/empty.json"
echo 'not json at all' >"$tmp/corrupt.json"

expect pass "clean comparison" "$tmp/clean.json" "$tmp/base.json"
expect fail "allocs regression" "$tmp/regressed.json" "$tmp/base.json"
expect fail "throughput regression" "$tmp/slow.json" "$tmp/base.json"
expect fail "zero-record baseline" "$tmp/clean.json" "$tmp/empty.json"
expect fail "corrupt baseline" "$tmp/clean.json" "$tmp/corrupt.json"
expect fail "disjoint benchmark sets" "$tmp/other.json" "$tmp/base.json"
expect fail "missing baseline" "$tmp/clean.json" "$tmp/nonexistent.json"

if [ "$fails" = 1 ]; then
    echo "test-bench-gate.sh: FAILURES" >&2
    exit 1
fi
echo "test-bench-gate.sh: all gate checks passed" >&2
