package compilegate

import (
	"testing"
	"time"
)

// TestPublicAPIGovernedCompilation drives the README's library example:
// a governed compilation through the public facade.
func TestPublicAPIGovernedCompilation(t *testing.T) {
	sched := NewScheduler()
	budget := NewBudget(1 * GiB)
	gov, err := NewGovernor(DefaultGovernorOptions(4, budget.Total()), budget.NewTracker("compile"))
	if err != nil {
		t.Fatal(err)
	}
	done := false
	sched.Go("q", func(task *Task) {
		c := gov.Begin(task, "q")
		defer c.Finish()
		for c.Used() < 100*MiB {
			if err := c.Alloc(10 * MiB); err != nil {
				t.Errorf("Alloc: %v", err)
				return
			}
			task.Sleep(time.Second)
		}
		done = true
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("compilation did not complete")
	}
	if gov.Finished() != 1 {
		t.Fatalf("finished = %d", gov.Finished())
	}
}

// TestPublicAPIBrokerRoundTrip wires a broker over two components and
// verifies shrink notifications arrive under pressure.
func TestPublicAPIBrokerRoundTrip(t *testing.T) {
	budget := NewBudget(1000)
	brk := NewBroker(DefaultBrokerConfig(), budget)
	hog := budget.NewTracker("hog")
	hog.MustReserve(950) // above the broker's headroom line => pressure
	var last Notification
	brk.Register("hog", 1, 0, hog.Used, func(n Notification) { last = n })
	brk.Register("other", 1, 0, func() int64 { return 0 }, nil)
	for i := 1; i <= 5; i++ {
		brk.Tick(time.Duration(i) * time.Second)
	}
	if last.Decision != Shrink {
		t.Fatalf("decision = %v, want Shrink", last.Decision)
	}
}

// TestPublicAPIServerEndToEnd runs one query through a full Server built
// via the facade.
func TestPublicAPIServerEndToEnd(t *testing.T) {
	sched := NewScheduler()
	srv, err := NewServer(DefaultServerConfig(), NewSalesCatalog(0.01), sched)
	if err != nil {
		t.Fatal(err)
	}
	sched.Go("client", func(task *Task) {
		err := srv.Submit(task, "SELECT COUNT(*) FROM dim_store JOIN dim_city ON dim_store.city_id = dim_city.city_id GROUP BY dim_city.region_id")
		if err != nil {
			t.Errorf("Submit: %v", err)
		}
		srv.Close()
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.Recorder().Completed() != 1 {
		t.Fatal("no completion recorded")
	}
}

// TestPublicAPIScenarioRegistry exercises the scenario surface: the
// registry lists the paper experiments, names resolve, and a parallel
// sweep of registered scenarios runs through the facade.
func TestPublicAPIScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	if len(names) < 10 {
		t.Fatalf("registry lists %d scenarios", len(names))
	}
	for _, want := range []string{"figure2", "figure3", "figure4", "figure5",
		"monitors-1", "broker-only", "oltp-mix", "best-effort", "adhoc-dss", "quickstart"} {
		if _, ok := ScenarioByName(want); !ok {
			t.Errorf("scenario %s not registered", want)
		}
	}
	if len(Scenarios()) != len(names) {
		t.Fatal("Scenarios and ScenarioNames disagree")
	}
	if ListScenarios() == "" {
		t.Fatal("empty scenario listing")
	}
	if s := SalesScenario(30); s.Clients != 30 || !s.Throttled {
		t.Fatalf("SalesScenario = %+v", s)
	}
	if o := DefaultBenchmarkOptions(30); o.Clients != 30 || !o.Throttled {
		t.Fatalf("DefaultBenchmarkOptions = %+v", o)
	}

	if testing.Short() {
		t.Skip("sweep execution in -short")
	}
	s, _ := ScenarioByName("quickstart")
	res := RunSweep([]Scenario{s, s.WithSeed(2)}, 0)
	for _, sr := range res {
		if sr.Err != nil {
			t.Fatal(sr.Err)
		}
		if sr.Result.Completed == 0 {
			t.Fatalf("%s completed nothing", sr.Scenario.Name)
		}
	}
	serial, err := RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Report != res[0].Result.Report {
		t.Fatal("sweep result diverges from serial RunScenario")
	}
}

// TestPublicAPIBenchmarkRun exercises RunBenchmark + CompareRuns on a tiny
// configuration.
func TestPublicAPIBenchmarkRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	o := DefaultBenchmarkOptions(4)
	o.Horizon = 20 * time.Minute
	o.Warmup = 2 * time.Minute
	th, err := RunBenchmark(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Throttled = false
	ba, err := RunBenchmark(o)
	if err != nil {
		t.Fatal(err)
	}
	if th.Completed == 0 || ba.Completed == 0 {
		t.Fatal("empty runs")
	}
	if _, summary := CompareRuns(th, ba); summary == "" {
		t.Fatal("empty comparison")
	}
	from, to := DefaultMeasurementWindow()
	if from != 3*time.Hour || to != 8*time.Hour {
		t.Fatal("measurement window drifted from the paper's")
	}
}
