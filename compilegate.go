// Package compilegate is a reproduction of "Managing Query Compilation
// Memory Consumption to Improve DBMS Throughput" (Baryshnikov et al.,
// CIDR 2007): a Memory Broker that arbitrates memory among DBMS
// subcomponents, and a chain of memory monitors (gateways) that throttles
// concurrent query compilations under memory pressure.
//
// The package exposes three layers:
//
//   - The governance primitives (Broker, GatewayChain, Governor) — usable
//     on their own to throttle any memory-hungry admission problem.
//   - A complete simulated DBMS (Server) — parser, Cascades-style
//     optimizer, buffer pool, plan cache, execution engine with memory
//     grants — running on a deterministic virtual clock.
//   - The benchmark harness (RunBenchmark) that reproduces the paper's
//     SALES experiments (Figures 2-5), driven by a declarative scenario
//     registry (Scenarios, RunScenario) and a parallel sweep runner
//     (RunSweep) that executes independent experiments on real cores.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package compilegate

import (
	"time"

	"compilegate/internal/broker"
	"compilegate/internal/catalog"
	"compilegate/internal/cluster"
	"compilegate/internal/core"
	"compilegate/internal/engine"
	"compilegate/internal/gateway"
	"compilegate/internal/harness"
	"compilegate/internal/mem"
	"compilegate/internal/scenario"
	"compilegate/internal/vtime"
	"compilegate/internal/workload"
)

// Re-exported governance types: these are the paper's contribution and
// the heart of the public API.
type (
	// Broker is the Memory Broker (§3): it samples component usage,
	// detects trends, and issues grow/stable/shrink notifications with
	// per-component targets when memory pressure is predicted.
	Broker = broker.Broker
	// BrokerConfig tunes trend detection and pressure thresholds.
	BrokerConfig = broker.Config
	// Notification is a broker verdict delivered to one component.
	Notification = broker.Notification
	// Decision is a broker verdict kind (Grow / Stable / Shrink).
	Decision = broker.Decision

	// GatewayChain is the ladder of memory monitors (§4, Figure 1).
	GatewayChain = gateway.Chain
	// GatewayConfig configures the monitor ladder.
	GatewayConfig = gateway.Config
	// GatewayLevel configures one monitor.
	GatewayLevel = gateway.LevelConfig
	// ErrGatewayTimeout is the throttle-induced timeout error.
	ErrGatewayTimeout = gateway.ErrTimeout

	// Governor binds the broker and the gateways into the compilation
	// throttling policy; compilations allocate through it.
	Governor = core.Governor
	// GovernorOptions selects throttling features (§4.1 extensions
	// included).
	GovernorOptions = core.Options
	// Compilation is one query compilation's session with the Governor.
	Compilation = core.Compilation

	// Budget is the simulated machine memory budget.
	Budget = mem.Budget
	// Tracker accounts one component's memory against a Budget.
	Tracker = mem.Tracker

	// Scheduler is the deterministic virtual-time scheduler that hosts
	// simulations: a single-goroutine event loop dispatching explicit
	// continuations.
	Scheduler = vtime.Scheduler
	// Task is a cooperative thread of execution under a Scheduler.
	Task = vtime.Task
	// Step is a continuation — a task resume point the event loop
	// dispatches; see Scheduler.GoStep for stackless tasks.
	Step = vtime.Step
	// StepFunc adapts a plain function to a Step.
	StepFunc = vtime.StepFunc

	// Server is the fully assembled simulated DBMS.
	Server = engine.Server
	// ServerConfig assembles a Server.
	ServerConfig = engine.Config
	// CompileStages is the staged compile-memory model: the bind /
	// costing / codegen footprint a compilation wires beyond its
	// exploration memo, ramped through the gateway ladder over the
	// compilation's lifetime.
	CompileStages = engine.CompileStages

	// Catalog describes a database schema.
	Catalog = catalog.Catalog

	// BenchmarkOptions selects a paper experiment configuration.
	BenchmarkOptions = harness.Options
	// BenchmarkResult carries one run's measurements.
	BenchmarkResult = harness.Result
	// NodeResult is one cluster node's share of a multi-node run
	// (BenchmarkResult.NodeResults, nil for single-server runs).
	NodeResult = harness.NodeResult

	// RouterPolicy selects how a cluster run routes statements to its
	// nodes (round-robin, least-loaded, fingerprint affinity).
	RouterPolicy = cluster.Policy
	// ClusterRouter is the deterministic statement router fronting the
	// nodes of a multi-node run.
	ClusterRouter = cluster.Router
	// RouterConfig assembles a ClusterRouter: policy plus the optional
	// health-exclusion, circuit-breaker, and failover mechanisms.
	RouterConfig = cluster.Config
	// RouterHealthConfig turns on health-aware node exclusion in the
	// cluster router (Scenario.Health / BenchmarkOptions.Health).
	RouterHealthConfig = cluster.HealthConfig
	// RouterBreakerConfig arms per-node circuit breakers in the cluster
	// router (Scenario.Breaker / BenchmarkOptions.Breaker).
	RouterBreakerConfig = cluster.BreakerConfig
	// BreakerState is a circuit breaker's position: closed, open, or
	// half-open.
	BreakerState = cluster.BreakerState
	// BreakerTransition is one entry of a node breaker's state-change
	// trail (NodeResult.BreakerTransitions).
	BreakerTransition = cluster.BreakerTransition

	// Scenario declaratively describes one experiment: workload spec,
	// catalog scale, client population, measurement window, and
	// server-config deltas.
	Scenario = scenario.Scenario
	// Registry is a named scenario collection; the package keeps a
	// default instance holding every paper experiment.
	Registry = scenario.Registry
	// SweepResult is one scenario's outcome within a RunSweep.
	SweepResult = scenario.SweepResult

	// WorkloadSpec names a workload ("sales", "tpch", "oltp", "mix").
	WorkloadSpec = workload.Spec

	// PressureModel is the memory-pressure (thrash) model: commit limit,
	// paging threshold, and the slowdown a thrashing machine pays.
	PressureModel = mem.PressureModel

	// Calibration describes a pressure-knob sweep grid; its Run method
	// executes every throttled/baseline cell concurrently.
	Calibration = scenario.Calibration
	// CalibrationReport holds a finished sweep with fidelity scoring
	// against the paper's Figures 3-5.
	CalibrationReport = scenario.CalibrationReport
	// PressureKnobs is one knob set of a calibration grid.
	PressureKnobs = scenario.PressureKnobs
	// CalibrationPoint is one grid cell (a throttled/baseline pair).
	CalibrationPoint = scenario.CalibrationPoint
	// FidelityTarget is a paper separation to calibrate toward.
	FidelityTarget = scenario.FidelityTarget
	// SearchReport is a finished successive-halving calibration search
	// (Calibration.Search): the grid's best fidelity at a fraction of
	// its simulation budget.
	SearchReport = scenario.SearchReport
	// SearchRung is one rung of the halving schedule.
	SearchRung = scenario.SearchRung

	// Replication is a multi-seed run of one scenario; every paper claim
	// is asserted over a replication, not a single draw.
	Replication = scenario.Replication
	// ReplicationReport holds a finished replication in seed order.
	ReplicationReport = scenario.ReplicationReport
	// SeedRun is one seed's outcome within a replication.
	SeedRun = scenario.SeedRun
	// Metric extracts one number from a seed's outcome.
	Metric = scenario.Metric
	// ClaimBand states a paper claim as a band over a replicated metric:
	// it holds when the bootstrap CI lies inside [Lo, Hi].
	ClaimBand = scenario.ClaimBand
	// StatSummary condenses per-seed samples: point statistics plus a
	// bootstrap percentile confidence interval for the mean.
	StatSummary = scenario.Summary
	// StatInterval is a closed confidence interval.
	StatInterval = scenario.Interval
)

// Byte-size helpers re-exported for configuration literals.
const (
	KiB = mem.KiB
	MiB = mem.MiB
	GiB = mem.GiB
)

// ErrOutOfMemory is the simulated machine's allocation failure.
var ErrOutOfMemory = mem.ErrOutOfMemory

// Error kinds recorded per failed query — the keys of
// BenchmarkResult.ErrorsByKind.
const (
	ErrKindOOM            = engine.ErrKindOOM
	ErrKindGatewayTimeout = engine.ErrKindGatewayTimeout
	ErrKindGrantTimeout   = engine.ErrKindGrantTimeout
	ErrKindOther          = engine.ErrKindOther
)

// NewScheduler creates a virtual-time scheduler.
func NewScheduler() *Scheduler { return vtime.NewScheduler() }

// NewBudget creates a simulated memory budget of total bytes.
func NewBudget(total int64) *Budget { return mem.NewBudget(total) }

// NewBroker creates a Memory Broker over budget.
func NewBroker(cfg BrokerConfig, budget *Budget) *Broker { return broker.New(cfg, budget) }

// DefaultBrokerConfig returns the calibrated broker tuning.
func DefaultBrokerConfig() BrokerConfig { return broker.DefaultConfig() }

// NewGatewayChain builds a monitor ladder.
func NewGatewayChain(cfg GatewayConfig) (*GatewayChain, error) { return gateway.NewChain(cfg) }

// DefaultGatewayConfig returns the paper's three-monitor ladder for a
// machine with the given CPU count and contested memory size.
func DefaultGatewayConfig(cpus int, contestedBytes int64) GatewayConfig {
	return gateway.DefaultConfig(cpus, contestedBytes)
}

// NewGovernor creates a compilation governor charging tracker.
func NewGovernor(opts GovernorOptions, tracker *Tracker) (*Governor, error) {
	return core.NewGovernor(opts, tracker)
}

// DefaultGovernorOptions enables the full §4 + §4.1 feature set.
func DefaultGovernorOptions(cpus int, totalMem int64) GovernorOptions {
	return core.DefaultOptions(cpus, totalMem)
}

// NewServer assembles a simulated DBMS over cat inside sched.
func NewServer(cfg ServerConfig, cat *Catalog, sched *Scheduler) (*Server, error) {
	return engine.New(cfg, cat, sched)
}

// DefaultServerConfig reproduces the paper's testbed with throttling on.
func DefaultServerConfig() ServerConfig { return engine.DefaultConfig() }

// DefaultCompileStages returns the calibrated staged compile-memory
// model (an order-of-magnitude lifetime ramp over the exploration
// memo; see DESIGN.md, "Staged compile-memory model").
func DefaultCompileStages() CompileStages { return engine.DefaultCompileStages() }

// NewSalesCatalog builds the SALES data-mart schema at the given scale
// (1.0 = the paper's 524 GB mart with a >400M-row fact table).
func NewSalesCatalog(scale float64) *Catalog {
	return catalog.NewSales(catalog.SalesConfig{Scale: scale, ExtentBytes: 8 * MiB})
}

// RunBenchmark executes one paper experiment configuration end to end in
// virtual time and returns its measurements.
func RunBenchmark(o BenchmarkOptions) (*BenchmarkResult, error) { return harness.Run(o) }

// DefaultBenchmarkOptions returns the SALES configuration at the given
// client count (the paper uses 30, 35 and 40) with throttling enabled.
// It resolves through the scenario layer; prefer SalesScenario for new
// code.
func DefaultBenchmarkOptions(clients int) BenchmarkOptions {
	return scenario.Sales(clients).Options()
}

// SalesScenario returns the canonical §5 SALES experiment at the given
// client count; derive variants with its With* methods.
func SalesScenario(clients int) Scenario { return scenario.Sales(clients) }

// CompareRuns renders the throttled-vs-baseline comparison of Figures 3-5
// and returns the throughput improvement ratio.
func CompareRuns(throttled, baseline *BenchmarkResult) (float64, string) {
	return harness.Compare(throttled, baseline)
}

// DefaultPressureModel returns the calibrated thrash model (selected by
// cmd/calibrate; see EXPERIMENTS.md).
func DefaultPressureModel() PressureModel { return mem.DefaultPressureModel() }

// DefaultCalibration returns the pressure sweep grid cmd/calibrate runs:
// the shipped calibration plus its neighborhood.
func DefaultCalibration() Calibration { return scenario.DefaultCalibration() }

// PaperTargets returns the Figures 3-5 throughput separations the
// calibration scores against.
func PaperTargets() []FidelityTarget { return scenario.PaperTargets() }

// ReplicationSeeds returns the canonical replication seed list {1..n}.
func ReplicationSeeds(n int) []int64 { return scenario.Seeds(n) }

// Summarize condenses per-seed samples with a bootstrap confidence
// interval at the given coverage (0 defaults to 0.95). The resampler is
// deterministic: identical samples always carry identical intervals.
func Summarize(xs []float64, confidence float64) StatSummary {
	return scenario.Summarize(xs, confidence)
}

// NewRegistry creates an empty scenario registry (the paper experiments
// live in the default registry; see Scenarios).
func NewRegistry() *Registry { return scenario.NewRegistry() }

// Scenarios returns every registered paper experiment, sorted by name.
func Scenarios() []Scenario { return scenario.All() }

// ScenarioByName resolves a registered experiment ("figure3",
// "oltp-mix", ...).
func ScenarioByName(name string) (Scenario, bool) { return scenario.Get(name) }

// ScenarioNames lists the registered experiment names.
func ScenarioNames() []string { return scenario.Names() }

// ListScenarios renders the registry as a table for -list flags.
func ListScenarios() string { return scenario.List() }

// ParseWorkload validates a workload name from a flag or config file.
func ParseWorkload(s string) (WorkloadSpec, error) { return workload.ParseSpec(s) }

// RunScenario executes one scenario to completion in virtual time.
func RunScenario(s Scenario) (*BenchmarkResult, error) { return s.Run() }

// RunSweep executes independent scenarios concurrently on a bounded
// worker pool (workers <= 0 uses GOMAXPROCS). Every run owns a private
// scheduler, so results are identical to running each scenario serially.
func RunSweep(scenarios []Scenario, workers int) []SweepResult {
	return scenario.RunSweep(scenarios, workers)
}

// Sanity re-exports so the constants are reachable without the internal
// import path.
const (
	Grow   = broker.Grow
	Stable = broker.Stable
	Shrink = broker.Shrink
)

// The cluster routing policies (Scenario.Router / BenchmarkOptions.Router).
const (
	RouteRoundRobin  = cluster.RoundRobin
	RouteLeastLoaded = cluster.LeastLoaded
	RouteAffinity    = cluster.Affinity
)

// The circuit-breaker states a cluster node's breaker moves through.
const (
	BreakerClosed   = cluster.BreakerClosed
	BreakerOpen     = cluster.BreakerOpen
	BreakerHalfOpen = cluster.BreakerHalfOpen
)

// Version of the reproduction.
const Version = "1.0.0"

// DefaultMeasurementWindow returns the paper's figure window
// (10800 s - 28800 s).
func DefaultMeasurementWindow() (from, to time.Duration) {
	return 3 * time.Hour, 8 * time.Hour
}
