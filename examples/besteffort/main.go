// besteffort demonstrates §4.1's second extension: when the broker
// predicts memory exhaustion before a compilation can finish, the
// optimizer returns the best complete plan found so far instead of
// failing with out-of-memory. It first shows a single compilation being
// cut short, then sweeps the registry's best-effort ablation pair — the
// same starved server with the extension on and off — concurrently.
//
// Run with: go run ./examples/besteffort
package main

import (
	"fmt"
	"time"

	"compilegate"

	"compilegate/internal/broker"
	"compilegate/internal/optimizer"
	"compilegate/internal/plan"
	"compilegate/internal/stats"
)

func main() {
	budget := compilegate.NewBudget(2 * compilegate.GiB)
	gov, err := compilegate.NewGovernor(
		compilegate.DefaultGovernorOptions(8, budget.Total()),
		budget.NewTracker("compile"))
	if err != nil {
		panic(err)
	}

	cat := compilegate.NewSalesCatalog(0.01)
	opt := optimizer.New(stats.NewEstimator(cat), optimizer.DefaultConfig())

	// A 16-join snowflake query.
	q := &plan.Query{Tables: []plan.TableTerm{{Name: "sales_fact"}}}
	dims := []string{"dim_product", "dim_store", "dim_customer", "dim_date",
		"dim_promotion", "dim_employee", "dim_channel"}
	for _, d := range dims {
		q.Tables = append(q.Tables, plan.TableTerm{Name: d})
		q.Joins = append(q.Joins, plan.JoinEdge{A: "sales_fact", B: d})
	}
	for _, e := range [][2]string{
		{"dim_product", "dim_subcategory"}, {"dim_subcategory", "dim_category"},
		{"dim_store", "dim_city"}, {"dim_city", "dim_region"},
		{"dim_date", "dim_month"}, {"dim_month", "dim_quarter"},
		{"dim_customer", "dim_segment"}, {"dim_promotion", "dim_promo_type"},
		{"dim_product", "dim_brand"},
	} {
		q.Tables = append(q.Tables, plan.TableTerm{Name: e[1]})
		q.Joins = append(q.Joins, plan.JoinEdge{A: e[0], B: e[1]})
	}

	sched := compilegate.NewScheduler()
	sched.Go("compile", func(t *compilegate.Task) {
		// Full optimization first.
		c := gov.Begin(t, "full")
		full, err := opt.Optimize(q, optimizer.Hooks{Charge: c.Alloc,
			BestEffort: c.ShouldYieldBestEffort})
		if err != nil {
			panic(err)
		}
		c.Finish()

		// Now simulate a broker exhaustion notice arriving mid-compile.
		c2 := gov.Begin(t, "cut")
		gov.OnBrokerNotice(broker.Notification{
			Decision: broker.Shrink, Pressure: true, Exhaustion: true,
		})
		cut, err := opt.Optimize(q, optimizer.Hooks{Charge: c2.Alloc,
			BestEffort: c2.ShouldYieldBestEffort})
		if err != nil {
			panic(err)
		}
		c2.Finish()

		fmt.Printf("full optimization: %6d alternatives, %4d MiB, cost %.4g\n",
			full.ExprsExplored, full.CompileBytes/compilegate.MiB, full.Cost())
		fmt.Printf("best-effort cut:   %6d alternatives, %4d MiB, cost %.4g (best-effort=%v)\n",
			cut.ExprsExplored, cut.CompileBytes/compilegate.MiB, cut.Cost(), cut.BestEffort)
		fmt.Printf("plan quality retained: %.1f%% of cost headroom (lower cost is better)\n",
			100*full.Cost()/cut.Cost())
	})
	if err := sched.Run(); err != nil {
		panic(err)
	}

	// The system-level view: the registry's ablation pair on a starved
	// 2 GiB machine, swept concurrently with a compressed window.
	var pair []compilegate.Scenario
	for _, name := range []string{"best-effort", "best-effort-off"} {
		s, ok := compilegate.ScenarioByName(name)
		if !ok {
			panic(name + " scenario not registered")
		}
		pair = append(pair, s.WithWindow(45*time.Minute, 10*time.Minute))
	}
	fmt.Println("\nsweeping the best-effort ablation pair (45 min window, 2 GiB machine)...")
	for _, sr := range compilegate.RunSweep(pair, 2) {
		if sr.Err != nil {
			panic(sr.Err)
		}
		fmt.Printf("%-16s completed=%4d oom=%d best-effort-plans=%d\n",
			sr.Scenario.Name, sr.Result.Completed,
			sr.Result.ErrorsByKind[compilegate.ErrKindOOM], sr.Result.BestEffortPlans)
	}
}
