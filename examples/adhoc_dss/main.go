// adhoc_dss runs a short SALES-style ad-hoc decision-support scenario —
// the workload from the paper's §5 — against the full simulated engine
// and prints the throughput series and component report, comparing
// throttled and unthrottled runs.
//
// Run with: go run ./examples/adhoc_dss
package main

import (
	"fmt"
	"time"

	"compilegate"
)

func main() {
	run := func(throttled bool) *compilegate.BenchmarkResult {
		o := compilegate.DefaultBenchmarkOptions(30)
		o.Horizon = 90 * time.Minute // shortened demo window
		o.Warmup = 15 * time.Minute
		o.Throttled = throttled
		res, err := compilegate.RunBenchmark(o)
		if err != nil {
			panic(err)
		}
		return res
	}

	fmt.Println("running throttled configuration (30 clients, SALES)...")
	th := run(true)
	fmt.Println("running unthrottled baseline...")
	ba := run(false)

	fmt.Println("\ncompletions per 10-minute slice:")
	fmt.Println("  time      throttled  baseline")
	for i := range th.Series {
		b := int64(0)
		if i < len(ba.Series) {
			b = ba.Series[i].V
		}
		fmt.Printf("  %7v  %9d  %8d\n", th.Series[i].T, th.Series[i].V, b)
	}
	_, summary := compilegate.CompareRuns(th, ba)
	fmt.Println("\n" + summary)
	fmt.Printf("throttled: compile-mem mean %d MiB (max %d MiB), pool hit-rate %.0f%%, errors %v\n",
		th.CompileMemMean/compilegate.MiB, th.CompileMemMax/compilegate.MiB,
		th.BufferPoolHitRate*100, th.ErrorsByKind)
	fmt.Printf("baseline : pool hit-rate %.0f%%, errors %v\n",
		ba.BufferPoolHitRate*100, ba.ErrorsByKind)
}
