// adhoc_dss runs a short SALES-style ad-hoc decision-support scenario —
// the workload from the paper's §5 — against the full simulated engine
// and prints the throughput series and component report, comparing
// throttled and unthrottled runs. The experiment resolves from the
// scenario registry and both runs execute concurrently on real cores.
//
// Run with: go run ./examples/adhoc_dss
package main

import (
	"fmt"

	"compilegate"
)

func main() {
	s, ok := compilegate.ScenarioByName("adhoc-dss")
	if !ok {
		panic("adhoc-dss scenario not registered")
	}

	fmt.Printf("running %s and its unthrottled baseline concurrently (%d clients, SALES)...\n",
		s.Name, s.Clients)
	pair := compilegate.RunSweep([]compilegate.Scenario{s, s.Baseline()}, 2)
	for _, sr := range pair {
		if sr.Err != nil {
			panic(sr.Err)
		}
	}
	th, ba := pair[0].Result, pair[1].Result

	fmt.Println("\ncompletions per 10-minute slice:")
	fmt.Println("  time      throttled  baseline")
	for i := range th.Series {
		b := int64(0)
		if i < len(ba.Series) {
			b = ba.Series[i].V
		}
		fmt.Printf("  %7v  %9d  %8d\n", th.Series[i].T, th.Series[i].V, b)
	}
	_, summary := compilegate.CompareRuns(th, ba)
	fmt.Println("\n" + summary)
	fmt.Printf("throttled: compile-mem mean %d MiB (max %d MiB), pool hit-rate %.0f%%, errors %v\n",
		th.CompileMemMean/compilegate.MiB, th.CompileMemMax/compilegate.MiB,
		th.BufferPoolHitRate*100, th.ErrorsByKind)
	fmt.Printf("baseline : pool hit-rate %.0f%%, errors %v\n",
		ba.BufferPoolHitRate*100, ba.ErrorsByKind)
}
