// Quickstart: govern three concurrent "compilations" with the paper's
// memory monitors and watch the broker and gateways at work, then run
// the registry's smoke scenario through the full simulated engine.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"compilegate"
)

func main() {
	sched := compilegate.NewScheduler()
	budget := compilegate.NewBudget(1 * compilegate.GiB)

	// Three-monitor ladder for a 4-CPU machine contending over 1 GiB.
	opts := compilegate.DefaultGovernorOptions(4, budget.Total())
	gov, err := compilegate.NewGovernor(opts, budget.NewTracker("compile"))
	if err != nil {
		panic(err)
	}

	// A broker arbitrating compile memory against a second consumer.
	brk := compilegate.NewBroker(compilegate.DefaultBrokerConfig(), budget)
	gov.AttachBroker(brk, 1.0, 0)
	other := budget.NewTracker("cache")
	brk.Register("cache", 1.0, 0, other.Used, nil)
	other.MustReserve(600 * compilegate.MiB) // preexisting pressure

	// Three compilations racing: each allocates in 16 MiB steps up to its
	// peak, then frees everything. The big one crosses the "big" gate and
	// serializes.
	peaks := []int64{120 * compilegate.MiB, 180 * compilegate.MiB, 400 * compilegate.MiB}
	for i, peak := range peaks {
		i, peak := i, peak
		sched.Go(fmt.Sprintf("q%d", i+1), func(t *compilegate.Task) {
			t.Sleep(time.Duration(i) * time.Second)
			c := gov.Begin(t, fmt.Sprintf("q%d", i+1))
			for c.Used() < peak {
				if err := c.Alloc(16 * compilegate.MiB); err != nil {
					fmt.Printf("[%8v] q%d aborted: %v\n", t.Now(), i+1, err)
					return
				}
				t.Sleep(2 * time.Second) // optimization work
				brk.Tick(t.Now())
			}
			fmt.Printf("[%8v] q%d compiled with %d MiB (waited %v at gates)\n",
				t.Now(), i+1, c.Peak()/compilegate.MiB, c.GateWait())
			c.Finish()
		})
	}
	if err := sched.Run(); err != nil {
		panic(err)
	}

	fmt.Println()
	fmt.Print(gov.Report())
	fmt.Print(brk.Report())

	// The same governance running inside the complete simulated DBMS:
	// resolve the smoke scenario from the registry and run it end to end.
	s, ok := compilegate.ScenarioByName("quickstart")
	if !ok {
		panic("quickstart scenario not registered")
	}
	res, err := compilegate.RunScenario(s)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nscenario %s: %d clients completed %d queries (%.1f/hour), errors %v\n",
		s.Name, s.Clients, res.Completed, res.Throughput(), res.ErrorsByKind)
}
