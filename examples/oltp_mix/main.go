// oltp_mix demonstrates the small-query bypass: a mixed OLTP + DSS
// workload where point queries compile below the first monitor threshold
// and are never blocked, even while large ad-hoc compilations queue at
// the gates — the paper's "administrator can run diagnostic queries even
// if the system is overloaded" property. The experiment resolves from
// the scenario registry.
//
// Run with: go run ./examples/oltp_mix
package main

import (
	"fmt"

	"compilegate"
)

func main() {
	s, ok := compilegate.ScenarioByName("oltp-mix")
	if !ok {
		panic("oltp-mix scenario not registered")
	}
	res, err := compilegate.RunScenario(s)
	if err != nil {
		panic(err)
	}

	fmt.Printf("%s: %d clients, %v window: %d completions, errors %v\n",
		s.Name, s.Clients, s.Horizon, res.Completed, res.ErrorsByKind)
	fmt.Printf("plan-cache served the repeated OLTP statements; compile-mem mean %d MiB\n",
		res.CompileMemMean/compilegate.MiB)
	fmt.Printf("gateway timeouts: %d (small queries bypass the ladder entirely)\n",
		res.GatewayTimeouts)
	fmt.Println()
	fmt.Println(res.Report)
}
