// oltp_mix demonstrates the small-query bypass: a mixed OLTP + DSS
// workload where point queries compile below the first monitor threshold
// and are never blocked, even while large ad-hoc compilations queue at
// the gates — the paper's "administrator can run diagnostic queries even
// if the system is overloaded" property.
//
// Run with: go run ./examples/oltp_mix
package main

import (
	"fmt"
	"time"

	"compilegate"
)

func main() {
	o := compilegate.DefaultBenchmarkOptions(24)
	o.Workload = "mix" // 3:1 OLTP : SALES
	o.Horizon = 60 * time.Minute
	o.Warmup = 10 * time.Minute
	res, err := compilegate.RunBenchmark(o)
	if err != nil {
		panic(err)
	}

	fmt.Printf("mixed workload, 24 clients, 60 min: %d completions, errors %v\n",
		res.Completed, res.ErrorsByKind)
	fmt.Printf("plan-cache served the repeated OLTP statements; compile-mem mean %d MiB\n",
		res.CompileMemMean/compilegate.MiB)
	fmt.Printf("gateway timeouts: %d (small queries bypass the ladder entirely)\n",
		res.GatewayTimeouts)
	fmt.Println()
	fmt.Println(res.Report)
}
