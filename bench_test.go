// Benchmarks regenerating every figure and headline claim in the paper's
// evaluation (§5), plus ablations of the design choices called out in
// DESIGN.md. Each benchmark resolves its experiment through the scenario
// layer and runs complete simulations in virtual time; independent runs
// within a benchmark execute concurrently through the sweep runner, so
// wall-clock cost drops by roughly the core count. The reported custom
// metrics (completions, ratios, error counts) are the quantities the
// paper's figures plot. Wall-clock ns/op is incidental.
//
// The benchmarks use a compressed 2-hour window (30-minute warmup) so the
// whole suite completes in minutes; cmd/figures regenerates the paper's
// full 8-hour runs.
package compilegate

import (
	"math/rand"
	"strconv"
	"testing"
	"time"

	"compilegate/internal/catalog"
	"compilegate/internal/cluster"
	"compilegate/internal/core"
	"compilegate/internal/engine"
	"compilegate/internal/errclass"
	"compilegate/internal/gateway"
	"compilegate/internal/harness"
	"compilegate/internal/mem"
	"compilegate/internal/optimizer"
	"compilegate/internal/scenario"
	"compilegate/internal/sqlparser"
	"compilegate/internal/stats"
	"compilegate/internal/vtime"
	"compilegate/internal/workload"
)

// benchWindow compresses a scenario to the suite's measurement window.
func benchWindow(s scenario.Scenario) scenario.Scenario {
	return s.WithWindow(2*time.Hour, 30*time.Minute)
}

// benchScenario is the SALES configuration at the given client count on
// the compressed window.
func benchScenario(clients int) scenario.Scenario {
	return benchWindow(scenario.Sales(clients))
}

// registered resolves a registry scenario on the compressed window.
func registered(b *testing.B, name string) scenario.Scenario {
	b.Helper()
	s, ok := scenario.Get(name)
	if !ok {
		b.Fatalf("scenario %s not registered", name)
	}
	return benchWindow(s)
}

// mustSweep runs scenarios concurrently, failing the benchmark on any
// error, and returns results in input order.
func mustSweep(b *testing.B, scenarios ...scenario.Scenario) []*harness.Result {
	b.Helper()
	out := make([]*harness.Result, len(scenarios))
	for i, sr := range scenario.RunSweep(scenarios, 0) {
		if sr.Err != nil {
			b.Fatalf("%s: %v", sr.Scenario.Name, sr.Err)
		}
		out[i] = sr.Result
	}
	return out
}

// simMeter accumulates scheduler-event counts across a benchmark's
// simulation runs so every benchmark reports sim-events/sec — the
// throughput of the simulator itself, independent of what the simulated
// server achieved. Create it before b.N work starts and report at the
// end.
type simMeter struct {
	events uint64
	start  time.Time
}

func startSimMeter(b *testing.B) *simMeter {
	b.ReportAllocs()
	return &simMeter{start: time.Now()}
}

func (m *simMeter) add(results ...*harness.Result) {
	for _, r := range results {
		m.events += r.SimEvents
	}
}

func (m *simMeter) addEvents(n uint64) { m.events += n }

func (m *simMeter) report(b *testing.B) {
	if sec := time.Since(m.start).Seconds(); sec > 0 {
		b.ReportMetric(float64(m.events)/sec, "sim-events/sec")
	}
}

// BenchmarkFigure1MonitorLadder verifies and reports the monitor ladder:
// thresholds strictly ascending, concurrency strictly descending
// (4·CPU / 1·CPU / 1), timeouts ascending.
func BenchmarkFigure1MonitorLadder(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		chain, err := gateway.NewChain(gateway.DefaultConfig(8, 4*mem.GiB))
		if err != nil {
			b.Fatal(err)
		}
		info := chain.Info()
		for j := 1; j < len(info); j++ {
			if info[j].Threshold <= info[j-1].Threshold || info[j].Slots > info[j-1].Slots {
				b.Fatal("monitor ladder not monotonic")
			}
		}
		b.ReportMetric(float64(info[0].Slots), "small-slots")
		b.ReportMetric(float64(info[1].Slots), "medium-slots")
		b.ReportMetric(float64(info[2].Slots), "big-slots")
	}
}

// BenchmarkFigure2ThrottleTrace reproduces the Figure 2 trace: staggered
// compilations block at monitors (flat regions in their memory curves)
// and later compilations are blocked by earlier ones.
func BenchmarkFigure2ThrottleTrace(b *testing.B) {
	meter := startSimMeter(b)
	for i := 0; i < b.N; i++ {
		sched := vtime.NewScheduler()
		budget := mem.NewBudget(1 * mem.GiB)
		gov, err := core.NewGovernor(core.DefaultOptions(2, budget.Total()), budget.NewTracker("compile"))
		if err != nil {
			b.Fatal(err)
		}
		var waits time.Duration
		peaks := []int64{420 * mem.MiB, 300 * mem.MiB, 280 * mem.MiB}
		for qi, peak := range peaks {
			qi, peak := qi, peak
			sched.Go("q", func(t *vtime.Task) {
				t.Sleep(time.Duration(qi) * 5 * time.Second)
				c := gov.Begin(t, "q")
				for c.Used() < peak {
					if err := c.Alloc(10 * mem.MiB); err != nil {
						b.Error(err)
						break
					}
					t.Sleep(time.Second)
				}
				waits += c.GateWait()
				c.Finish()
			})
		}
		if err := sched.Run(); err != nil {
			b.Fatal(err)
		}
		if waits == 0 {
			b.Fatal("no gate blocking occurred; Figure 2 trace is flat")
		}
		meter.addEvents(sched.Events())
		b.ReportMetric(waits.Seconds(), "gate-wait-s")
	}
	meter.report(b)
}

// throughputFigure runs one paper throughput figure (3, 4 or 5): the
// throttled scenario and its baseline sweep concurrently.
func throughputFigure(b *testing.B, clients int) {
	meter := startSimMeter(b)
	for i := 0; i < b.N; i++ {
		s := benchScenario(clients)
		res := mustSweep(b, s, s.Baseline())
		th, ba := res[0], res[1]
		meter.add(res...)
		ratio, _ := harness.Compare(th, ba)
		b.ReportMetric(float64(th.Completed), "throttled-completions")
		b.ReportMetric(float64(ba.Completed), "baseline-completions")
		b.ReportMetric(ratio, "throughput-ratio")
		b.ReportMetric(float64(th.Errors), "throttled-errors")
		b.ReportMetric(float64(ba.Errors), "baseline-errors")
	}
	meter.report(b)
}

// BenchmarkFigure3Throughput30 reproduces Figure 3 (30 clients): the
// paper reports ~35% higher throughput with throttling enabled.
func BenchmarkFigure3Throughput30(b *testing.B) { throughputFigure(b, 30) }

// BenchmarkFigure4Throughput35 reproduces Figure 4 (35 clients).
func BenchmarkFigure4Throughput35(b *testing.B) { throughputFigure(b, 35) }

// BenchmarkFigure5Throughput40 reproduces Figure 5 (40 clients).
func BenchmarkFigure5Throughput40(b *testing.B) { throughputFigure(b, 40) }

// BenchmarkFigure5Collapse40 runs the timer-heaviest registry scenario:
// the Figure 5 pair at 40 clients, where the unthrottled baseline
// collapses into the OOM-retry spiral — peak live-timer density (codegen
// ramp steps, grant retries, client retry backoffs, pager ticks all in
// flight) and therefore the scheduler's worst case. Tracked separately
// from the figure benchmarks so timer-wheel regressions surface on the
// scenario that stresses the wheel hardest.
func BenchmarkFigure5Collapse40(b *testing.B) {
	meter := startSimMeter(b)
	for i := 0; i < b.N; i++ {
		s := registered(b, "figure5")
		res := mustSweep(b, s, s.Baseline())
		meter.add(res...)
		ratio, _ := harness.Compare(res[0], res[1])
		b.ReportMetric(float64(res[0].Completed), "throttled-completions")
		b.ReportMetric(float64(res[1].Completed), "baseline-completions")
		b.ReportMetric(ratio, "throughput-ratio")
		b.ReportMetric(float64(res[1].Errors), "baseline-errors")
	}
	meter.report(b)
}

// BenchmarkClientSweep reproduces the §5.2 observation that 30 clients is
// the maximum-throughput point: fewer clients yield less throughput, more
// clients saturate the server. All four populations run concurrently.
func BenchmarkClientSweep(b *testing.B) {
	counts := []int{10, 20, 30, 40}
	meter := startSimMeter(b)
	for i := 0; i < b.N; i++ {
		scenarios := make([]scenario.Scenario, len(counts))
		for j, clients := range counts {
			scenarios[j] = benchScenario(clients)
		}
		for j, r := range mustSweep(b, scenarios...) {
			meter.add(r)
			b.ReportMetric(float64(r.Completed), "completions-"+strconv.Itoa(counts[j]))
		}
	}
	meter.report(b)
}

// BenchmarkCompletionRates reproduces the §5.2 reliability claim:
// throttling yields measurably higher completion rates (fewer resource
// errors) under overload.
func BenchmarkCompletionRates(b *testing.B) {
	meter := startSimMeter(b)
	for i := 0; i < b.N; i++ {
		s30, s40 := benchScenario(30), benchScenario(40)
		res := mustSweep(b, s30, s30.Baseline(), s40, s40.Baseline())
		meter.add(res...)
		b.ReportMetric(completionRate(res[0]), "throttled-rate-30")
		b.ReportMetric(completionRate(res[1]), "baseline-rate-30")
		b.ReportMetric(completionRate(res[2]), "throttled-rate-40")
		b.ReportMetric(completionRate(res[3]), "baseline-rate-40")
	}
	meter.report(b)
}

func completionRate(r *harness.Result) float64 {
	total := float64(r.Completed + r.Errors)
	if total == 0 {
		return 0
	}
	return float64(r.Completed) / total
}

// BenchmarkCompileMemoryByWorkload reproduces the §5.1 claim that SALES
// queries consume one to two orders of magnitude more compile memory than
// TPC-H queries of similar scale.
func BenchmarkCompileMemoryByWorkload(b *testing.B) {
	salesCat := catalog.NewSales(catalog.SalesConfig{Scale: 0.04, ExtentBytes: 8 << 20})
	tpchCat := catalog.NewTPCHLike(0.0004, 8<<20)
	salesOpt := optimizer.New(stats.NewEstimator(salesCat), optimizer.DefaultConfig())
	tpchOpt := optimizer.New(stats.NewEstimator(tpchCat), optimizer.DefaultConfig())
	salesGen, tpchGen := workload.NewSales(), workload.NewTPCH()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var salesBytes, tpchBytes int64
		const n = 30
		for j := 0; j < n; j++ {
			q, err := sqlparser.Parse(salesGen.Next(rng))
			if err != nil {
				b.Fatal(err)
			}
			p, err := salesOpt.Optimize(q, optimizer.Hooks{})
			if err != nil {
				b.Fatal(err)
			}
			salesBytes += p.CompileBytes
			q2, err := sqlparser.Parse(tpchGen.Next(rng))
			if err != nil {
				b.Fatal(err)
			}
			p2, err := tpchOpt.Optimize(q2, optimizer.Hooks{})
			if err != nil {
				b.Fatal(err)
			}
			tpchBytes += p2.CompileBytes
		}
		ratio := float64(salesBytes) / float64(tpchBytes)
		if ratio < 10 {
			b.Fatalf("SALES/TPC-H compile memory ratio = %.1f, paper says 1-2 orders of magnitude", ratio)
		}
		b.ReportMetric(float64(salesBytes)/n/float64(mem.MiB), "sales-MiB/query")
		b.ReportMetric(float64(tpchBytes)/n/float64(mem.MiB), "tpch-MiB/query")
		b.ReportMetric(ratio, "sales/tpch-ratio")
	}
}

// BenchmarkQueryProfile reproduces the §5.2 workload profile: compiles of
// 10-90 s and executions of 30 s - 10 min.
func BenchmarkQueryProfile(b *testing.B) {
	meter := startSimMeter(b)
	for i := 0; i < b.N; i++ {
		r := mustSweep(b, benchScenario(30))[0]
		meter.add(r)
		b.ReportMetric(r.CompileP50.Seconds(), "compile-p50-s")
		b.ReportMetric(r.ExecP50.Seconds(), "exec-p50-s")
		if r.CompileP50 < time.Second || r.CompileP50 > 5*time.Minute {
			b.Fatalf("compile p50 %v outside the paper's profile", r.CompileP50)
		}
		if r.ExecP50 < 10*time.Second || r.ExecP50 > 30*time.Minute {
			b.Fatalf("exec p50 %v outside the paper's profile", r.ExecP50)
		}
	}
	meter.report(b)
}

// BenchmarkRetryStorm runs the fault-plane headline pair: a compile-storm
// burst under aggressive client retries at 40 clients, throttled (with
// brown-out and a cooperating driver) against the collapsing baseline.
// It first asserts that the retry path's error handling is allocation-free:
// the gateway rewrites one recycled ErrTimeout in place and the taxonomy
// classifies it without formatting, so a retry storm costs no garbage.
func BenchmarkRetryStorm(b *testing.B) {
	var te gateway.ErrTimeout
	if a := testing.AllocsPerRun(100, func() {
		te = gateway.ErrTimeout{Gate: "small", Wait: 42 * time.Second}
		if !errclass.IsShed(&te) || !errclass.IsCrashed(engine.ErrCrashed) {
			b.Fatal("error taxonomy misclassified recycled errors")
		}
	}); a != 0 {
		b.Fatalf("recycled-error retry path allocates %.1f allocs/op, want 0", a)
	}
	meter := startSimMeter(b)
	for i := 0; i < b.N; i++ {
		s := registered(b, "retry-storm")
		res := mustSweep(b, s, s.Baseline())
		th, ba := res[0], res[1]
		meter.add(res...)
		ratio, _ := harness.Compare(th, ba)
		b.ReportMetric(ratio, "throughput-ratio")
		b.ReportMetric(float64(th.Load.Retries), "throttled-retries")
		b.ReportMetric(float64(ba.Load.Retries), "baseline-retries")
		b.ReportMetric(float64(th.Load.GiveUps), "giveups")
		b.ReportMetric(th.RecoveryTime.Seconds(), "recovery-s")
	}
	meter.report(b)
}

// BenchmarkCluster runs the cluster plane: the three registered
// multi-node scenarios plus the affinity experiment's round-robin twin,
// all concurrently, on their registered windows (they are already
// bench-sized; the 1000-client round-robin run dominates the cost).
// The headline custom metric is the plan-cache locality margin the
// routing-policy claim pins.
func BenchmarkCluster(b *testing.B) {
	meter := startSimMeter(b)
	for i := 0; i < b.N; i++ {
		rr, ok := scenario.Get("cluster-roundrobin")
		if !ok {
			b.Fatal("cluster-roundrobin not registered")
		}
		aff, ok := scenario.Get("cluster-affinity")
		if !ok {
			b.Fatal("cluster-affinity not registered")
		}
		affTwin := aff
		affTwin.Name = "cluster-affinity-roundrobin"
		affTwin.Router = cluster.RoundRobin
		loss, ok := scenario.Get("cluster-nodeloss")
		if !ok {
			b.Fatal("cluster-nodeloss not registered")
		}
		res := mustSweep(b, rr, aff, affTwin, loss)
		meter.add(res...)
		b.ReportMetric(float64(res[0].Completed), "roundrobin-completions")
		b.ReportMetric(res[1].PlanCacheHitRate, "affinity-hit-rate")
		b.ReportMetric(res[1].PlanCacheHitRate-res[2].PlanCacheHitRate, "affinity-hit-margin")
		b.ReportMetric(float64(res[3].Errors), "nodeloss-errors")
		b.ReportMetric(res[3].RecoveryTime.Seconds(), "nodeloss-recovery-s")
	}
	meter.report(b)
}

// --- Ablations (A-1 .. A-5 in DESIGN.md) ---

// BenchmarkAblationMonitorCount compares 1-, 2-, 3- and 5-monitor
// ladders; the paper chose three monitors ("four memory usage
// categories") as the best balance. The ladder variants come from the
// scenario registry and all four servers run concurrently.
func BenchmarkAblationMonitorCount(b *testing.B) {
	meter := startSimMeter(b)
	for i := 0; i < b.N; i++ {
		scenarios := []scenario.Scenario{
			registered(b, "monitors-1"),
			registered(b, "monitors-2"),
			benchScenario(30), // the paper's 3-monitor default
			registered(b, "monitors-5"),
		}
		names := []string{"1", "2", "3", "5"}
		for j, r := range mustSweep(b, scenarios...) {
			meter.add(r)
			b.ReportMetric(float64(r.Completed), "completions-"+names[j]+"mon")
		}
	}
	meter.report(b)
}

// BenchmarkAblationDynamicThresholds compares §4.1's broker-driven
// thresholds against static ones.
func BenchmarkAblationDynamicThresholds(b *testing.B) {
	meter := startSimMeter(b)
	for i := 0; i < b.N; i++ {
		dynamic := benchScenario(35)
		static := benchScenario(35)
		// Compose with the scenario's calibrated operating point: only the
		// thresholds policy may differ between the two arms.
		static.Engine = func(c *engine.Config) {
			scenario.CalibratedKnobs().Apply(c)
			c.DynamicThresholds = false
		}
		res := mustSweep(b, dynamic, static)
		meter.add(res...)
		b.ReportMetric(float64(res[0].Completed), "completions-dynamic")
		b.ReportMetric(float64(res[0].Errors), "errors-dynamic")
		b.ReportMetric(float64(res[1].Completed), "completions-static")
		b.ReportMetric(float64(res[1].Errors), "errors-static")
	}
	meter.report(b)
}

// BenchmarkAblationBestEffortPlan compares §4.1's best-effort plans
// against plain out-of-memory failures on a memory-starved machine.
func BenchmarkAblationBestEffortPlan(b *testing.B) {
	meter := startSimMeter(b)
	for i := 0; i < b.N; i++ {
		res := mustSweep(b, registered(b, "best-effort"), registered(b, "best-effort-off"))
		meter.add(res...)
		for j, key := range []string{"on", "off"} {
			r := res[j]
			b.ReportMetric(float64(r.Completed), "completions-besteffort-"+key)
			b.ReportMetric(float64(r.ErrorsByKind[engine.ErrKindOOM]), "oom-besteffort-"+key)
			b.ReportMetric(float64(r.BestEffortPlans), "besteffort-plans-"+key)
		}
	}
	meter.report(b)
}

// BenchmarkAblationBypass verifies the diagnostic-query property: small
// queries proceed unblocked (zero gate acquisitions) even while the
// system is saturated with large compilations.
func BenchmarkAblationBypass(b *testing.B) {
	meter := startSimMeter(b)
	for i := 0; i < b.N; i++ {
		r := mustSweep(b, registered(b, "oltp-mix"))[0]
		meter.add(r)
		b.ReportMetric(float64(r.Completed), "mix-completions")
		b.ReportMetric(float64(r.GatewayTimeouts), "gateway-timeouts")
	}
	meter.report(b)
}

// BenchmarkAblationBrokerOnly measures the broker's contribution without
// compilation throttling (ablation A-5).
func BenchmarkAblationBrokerOnly(b *testing.B) {
	meter := startSimMeter(b)
	for i := 0; i < b.N; i++ {
		res := mustSweep(b, registered(b, "broker-only"), registered(b, "no-governance"))
		meter.add(res...)
		b.ReportMetric(float64(res[0].Completed), "completions-broker-on")
		b.ReportMetric(float64(res[1].Completed), "completions-broker-off")
	}
	meter.report(b)
}
