// Benchmarks regenerating every figure and headline claim in the paper's
// evaluation (§5), plus ablations of the design choices called out in
// DESIGN.md. Each benchmark runs complete simulations in virtual time; the
// reported custom metrics (completions, ratios, error counts) are the
// quantities the paper's figures plot. Wall-clock ns/op is incidental.
//
// The benchmarks use a compressed 2-hour window (30-minute warmup) so the
// whole suite completes in minutes; cmd/figures regenerates the paper's
// full 8-hour runs.
package compilegate

import (
	"math/rand"
	"testing"
	"time"

	"compilegate/internal/catalog"
	"compilegate/internal/core"
	"compilegate/internal/engine"
	"compilegate/internal/gateway"
	"compilegate/internal/harness"
	"compilegate/internal/mem"
	"compilegate/internal/optimizer"
	"compilegate/internal/sqlparser"
	"compilegate/internal/stats"
	"compilegate/internal/vtime"
	"compilegate/internal/workload"
)

// benchWindow is the compressed measurement window used by the suite.
func benchOptions(clients int, throttled bool) harness.Options {
	o := harness.DefaultOptions(clients)
	o.Horizon = 2 * time.Hour
	o.Warmup = 30 * time.Minute
	o.Throttled = throttled
	return o
}

func mustRun(b *testing.B, o harness.Options) *harness.Result {
	b.Helper()
	r, err := harness.Run(o)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkFigure1MonitorLadder verifies and reports the monitor ladder:
// thresholds strictly ascending, concurrency strictly descending
// (4·CPU / 1·CPU / 1), timeouts ascending.
func BenchmarkFigure1MonitorLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chain, err := gateway.NewChain(gateway.DefaultConfig(8, 4*mem.GiB))
		if err != nil {
			b.Fatal(err)
		}
		info := chain.Info()
		for j := 1; j < len(info); j++ {
			if info[j].Threshold <= info[j-1].Threshold || info[j].Slots > info[j-1].Slots {
				b.Fatal("monitor ladder not monotonic")
			}
		}
		b.ReportMetric(float64(info[0].Slots), "small-slots")
		b.ReportMetric(float64(info[1].Slots), "medium-slots")
		b.ReportMetric(float64(info[2].Slots), "big-slots")
	}
}

// BenchmarkFigure2ThrottleTrace reproduces the Figure 2 trace: staggered
// compilations block at monitors (flat regions in their memory curves)
// and later compilations are blocked by earlier ones.
func BenchmarkFigure2ThrottleTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sched := vtime.NewScheduler()
		budget := mem.NewBudget(1 * mem.GiB)
		gov, err := core.NewGovernor(core.DefaultOptions(2, budget.Total()), budget.NewTracker("compile"))
		if err != nil {
			b.Fatal(err)
		}
		var waits time.Duration
		peaks := []int64{420 * mem.MiB, 300 * mem.MiB, 280 * mem.MiB}
		for qi, peak := range peaks {
			qi, peak := qi, peak
			sched.Go("q", func(t *vtime.Task) {
				t.Sleep(time.Duration(qi) * 5 * time.Second)
				c := gov.Begin(t, "q")
				for c.Used() < peak {
					if err := c.Alloc(10 * mem.MiB); err != nil {
						b.Error(err)
						break
					}
					t.Sleep(time.Second)
				}
				waits += c.GateWait()
				c.Finish()
			})
		}
		if err := sched.Run(); err != nil {
			b.Fatal(err)
		}
		if waits == 0 {
			b.Fatal("no gate blocking occurred; Figure 2 trace is flat")
		}
		b.ReportMetric(waits.Seconds(), "gate-wait-s")
	}
}

// throughputFigure runs one paper throughput figure (3, 4 or 5).
func throughputFigure(b *testing.B, clients int) {
	for i := 0; i < b.N; i++ {
		th := mustRun(b, benchOptions(clients, true))
		ba := mustRun(b, benchOptions(clients, false))
		ratio, _ := harness.Compare(th, ba)
		b.ReportMetric(float64(th.Completed), "throttled-completions")
		b.ReportMetric(float64(ba.Completed), "baseline-completions")
		b.ReportMetric(ratio, "throughput-ratio")
		b.ReportMetric(float64(th.Errors), "throttled-errors")
		b.ReportMetric(float64(ba.Errors), "baseline-errors")
	}
}

// BenchmarkFigure3Throughput30 reproduces Figure 3 (30 clients): the
// paper reports ~35% higher throughput with throttling enabled.
func BenchmarkFigure3Throughput30(b *testing.B) { throughputFigure(b, 30) }

// BenchmarkFigure4Throughput35 reproduces Figure 4 (35 clients).
func BenchmarkFigure4Throughput35(b *testing.B) { throughputFigure(b, 35) }

// BenchmarkFigure5Throughput40 reproduces Figure 5 (40 clients).
func BenchmarkFigure5Throughput40(b *testing.B) { throughputFigure(b, 40) }

// BenchmarkClientSweep reproduces the §5.2 observation that 30 clients is
// the maximum-throughput point: fewer clients yield less throughput, more
// clients saturate the server.
func BenchmarkClientSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, clients := range []int{10, 20, 30, 40} {
			r := mustRun(b, benchOptions(clients, true))
			b.ReportMetric(float64(r.Completed), "completions-"+itoa(clients))
		}
	}
}

// BenchmarkCompletionRates reproduces the §5.2 reliability claim:
// throttling yields measurably higher completion rates (fewer resource
// errors) under overload.
func BenchmarkCompletionRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, clients := range []int{30, 40} {
			th := mustRun(b, benchOptions(clients, true))
			ba := mustRun(b, benchOptions(clients, false))
			b.ReportMetric(completionRate(th), "throttled-rate-"+itoa(clients))
			b.ReportMetric(completionRate(ba), "baseline-rate-"+itoa(clients))
		}
	}
}

func completionRate(r *harness.Result) float64 {
	total := float64(r.Completed + r.Errors)
	if total == 0 {
		return 0
	}
	return float64(r.Completed) / total
}

// BenchmarkCompileMemoryByWorkload reproduces the §5.1 claim that SALES
// queries consume one to two orders of magnitude more compile memory than
// TPC-H queries of similar scale.
func BenchmarkCompileMemoryByWorkload(b *testing.B) {
	salesCat := catalog.NewSales(catalog.SalesConfig{Scale: 0.04, ExtentBytes: 8 << 20})
	tpchCat := catalog.NewTPCHLike(0.0004, 8<<20)
	salesOpt := optimizer.New(stats.NewEstimator(salesCat), optimizer.DefaultConfig())
	tpchOpt := optimizer.New(stats.NewEstimator(tpchCat), optimizer.DefaultConfig())
	salesGen, tpchGen := workload.NewSales(), workload.NewTPCH()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var salesBytes, tpchBytes int64
		const n = 30
		for j := 0; j < n; j++ {
			q, err := sqlparser.Parse(salesGen.Next(rng))
			if err != nil {
				b.Fatal(err)
			}
			p, err := salesOpt.Optimize(q, optimizer.Hooks{})
			if err != nil {
				b.Fatal(err)
			}
			salesBytes += p.CompileBytes
			q2, err := sqlparser.Parse(tpchGen.Next(rng))
			if err != nil {
				b.Fatal(err)
			}
			p2, err := tpchOpt.Optimize(q2, optimizer.Hooks{})
			if err != nil {
				b.Fatal(err)
			}
			tpchBytes += p2.CompileBytes
		}
		ratio := float64(salesBytes) / float64(tpchBytes)
		if ratio < 10 {
			b.Fatalf("SALES/TPC-H compile memory ratio = %.1f, paper says 1-2 orders of magnitude", ratio)
		}
		b.ReportMetric(float64(salesBytes)/n/float64(mem.MiB), "sales-MiB/query")
		b.ReportMetric(float64(tpchBytes)/n/float64(mem.MiB), "tpch-MiB/query")
		b.ReportMetric(ratio, "sales/tpch-ratio")
	}
}

// BenchmarkQueryProfile reproduces the §5.2 workload profile: compiles of
// 10-90 s and executions of 30 s - 10 min.
func BenchmarkQueryProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := mustRun(b, benchOptions(30, true))
		b.ReportMetric(r.CompileP50.Seconds(), "compile-p50-s")
		b.ReportMetric(r.ExecP50.Seconds(), "exec-p50-s")
		if r.CompileP50 < time.Second || r.CompileP50 > 5*time.Minute {
			b.Fatalf("compile p50 %v outside the paper's profile", r.CompileP50)
		}
		if r.ExecP50 < 10*time.Second || r.ExecP50 > 30*time.Minute {
			b.Fatalf("exec p50 %v outside the paper's profile", r.ExecP50)
		}
	}
}

// --- Ablations (A-1 .. A-5 in DESIGN.md) ---

// BenchmarkAblationMonitorCount compares 1-, 2-, 3- and 5-monitor
// ladders; the paper chose three monitors ("four memory usage
// categories") as the best balance.
func BenchmarkAblationMonitorCount(b *testing.B) {
	ladders := map[string]gateway.Config{
		"1": {Levels: []gateway.LevelConfig{
			{Name: "only", Threshold: 380 * mem.KiB, Slots: 8, Timeout: 12 * time.Minute},
		}},
		"2": {Levels: []gateway.LevelConfig{
			{Name: "small", Threshold: 380 * mem.KiB, Slots: 32, Timeout: 6 * time.Minute},
			{Name: "big", Threshold: 256 * mem.MiB, Slots: 1, Timeout: 24 * time.Minute},
		}},
		"3": gateway.DefaultConfig(8, 4*mem.GiB),
		"5": {Levels: []gateway.LevelConfig{
			{Name: "xs", Threshold: 380 * mem.KiB, Slots: 32, Timeout: 6 * time.Minute},
			{Name: "s", Threshold: 16 * mem.MiB, Slots: 16, Timeout: 8 * time.Minute},
			{Name: "m", Threshold: 43 * mem.MiB, Slots: 8, Timeout: 12 * time.Minute},
			{Name: "l", Threshold: 128 * mem.MiB, Slots: 4, Timeout: 16 * time.Minute},
			{Name: "xl", Threshold: 256 * mem.MiB, Slots: 1, Timeout: 24 * time.Minute},
		}},
	}
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"1", "2", "3", "5"} {
			cfg := engine.DefaultConfig()
			ladder := ladders[name]
			cfg.GatewayOverride = &ladder
			o := benchOptions(30, true)
			o.Engine = &cfg
			r := mustRun(b, o)
			b.ReportMetric(float64(r.Completed), "completions-"+name+"mon")
		}
	}
}

// BenchmarkAblationDynamicThresholds compares §4.1's broker-driven
// thresholds against static ones.
func BenchmarkAblationDynamicThresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, dyn := range []bool{true, false} {
			cfg := engine.DefaultConfig()
			cfg.DynamicThresholds = dyn
			o := benchOptions(35, true)
			o.Engine = &cfg
			r := mustRun(b, o)
			key := "static"
			if dyn {
				key = "dynamic"
			}
			b.ReportMetric(float64(r.Completed), "completions-"+key)
			b.ReportMetric(float64(r.Errors), "errors-"+key)
		}
	}
}

// BenchmarkAblationBestEffortPlan compares §4.1's best-effort plans
// against plain out-of-memory failures on a memory-starved machine.
func BenchmarkAblationBestEffortPlan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, be := range []bool{true, false} {
			cfg := engine.DefaultConfig()
			cfg.BestEffort = be
			cfg.MemoryBytes = 2 * mem.GiB // starved: exhaustion signal fires
			o := benchOptions(30, true)
			o.Engine = &cfg
			r := mustRun(b, o)
			key := "off"
			if be {
				key = "on"
			}
			b.ReportMetric(float64(r.Completed), "completions-besteffort-"+key)
			b.ReportMetric(float64(r.ErrorsByKind[engine.ErrKindOOM]), "oom-besteffort-"+key)
			b.ReportMetric(float64(r.BestEffortPlans), "besteffort-plans-"+key)
		}
	}
}

// BenchmarkAblationBypass verifies the diagnostic-query property: small
// queries proceed unblocked (zero gate acquisitions) even while the
// system is saturated with large compilations.
func BenchmarkAblationBypass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions(24, true)
		o.Workload = "mix"
		r := mustRun(b, o)
		b.ReportMetric(float64(r.Completed), "mix-completions")
		b.ReportMetric(float64(r.GatewayTimeouts), "gateway-timeouts")
	}
}

// BenchmarkAblationBrokerOnly measures the broker's contribution without
// compilation throttling (ablation A-5).
func BenchmarkAblationBrokerOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, brokerOn := range []bool{true, false} {
			cfg := engine.DefaultConfig()
			cfg.BrokerEnabled = brokerOn
			o := benchOptions(30, false) // throttle off in both
			o.Engine = &cfg
			r := mustRun(b, o)
			key := "off"
			if brokerOn {
				key = "on"
			}
			b.ReportMetric(float64(r.Completed), "completions-broker-"+key)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
