// Package executor runs physical plans in virtual time: scans pull
// extents through the buffer pool, joins and aggregates burn CPU on the
// shared processor pool, and each query holds an execution memory grant
// (its hash-table workspace) for the duration of the run — the same
// reserve-up-front discipline SQL Server uses for query execution memory.
package executor

import (
	"fmt"
	"math/rand"
	"time"

	"compilegate/internal/bufferpool"
	"compilegate/internal/errclass"
	"compilegate/internal/freelist"
	"compilegate/internal/mem"
	"compilegate/internal/plan"
	"compilegate/internal/storage"
	"compilegate/internal/vtime"
)

// ErrGrantTimeout is returned when a query cannot obtain its execution
// memory grant within the configured timeout.
type ErrGrantTimeout struct {
	Bytes int64
	Wait  time.Duration
}

func (e *ErrGrantTimeout) Error() string {
	return fmt.Sprintf("executor: timed out after %v waiting for %s execution grant",
		e.Wait, mem.FormatBytes(e.Bytes))
}

// Is classifies a grant timeout as an expired resource wait (the work
// was admitted; the memory never arrived), not shed work.
func (e *ErrGrantTimeout) Is(target error) bool { return target == errclass.Timeout }

// GrantManager queues execution memory grants against a tracker, FIFO
// with timeout — the RESOURCE_SEMAPHORE analogue.
type GrantManager struct {
	tracker *mem.Tracker
	queue   *vtime.WaitQueue
	timeout time.Duration

	granted, timeouts uint64
	reductions        uint64
	waitTotal         time.Duration

	ops freelist.List[grantOp] // recycled continuation ops (single scheduler)
}

// NewGrantManager creates a grant manager. tracker should carry a limit
// (SetLimit) bounding total concurrent execution memory.
func NewGrantManager(tracker *mem.Tracker, timeout time.Duration) *GrantManager {
	return &GrantManager{
		tracker: tracker,
		queue:   vtime.NewWaitQueue("exec-grants"),
		timeout: timeout,
	}
}

// Tracker returns the underlying tracker.
func (gm *GrantManager) Tracker() *mem.Tracker { return gm.tracker }

// Granted returns the number of grants issued.
func (gm *GrantManager) Granted() uint64 { return gm.granted }

// Timeouts returns the number of grant waits that timed out.
func (gm *GrantManager) Timeouts() uint64 { return gm.timeouts }

// Reductions returns how many times a queued grant lowered its ask.
func (gm *GrantManager) Reductions() uint64 { return gm.reductions }

// Waiting returns the number of queued requests.
func (gm *GrantManager) Waiting() int { return gm.queue.Len() }

// TotalWait returns aggregate time spent queued for grants.
func (gm *GrantManager) TotalWait() time.Duration { return gm.waitTotal }

// Acquire reserves bytes of execution memory for task t, queueing FIFO
// behind earlier requests when memory is unavailable.
func (gm *GrantManager) Acquire(t *vtime.Task, bytes int64) error {
	_, err := gm.AcquireReduced(t, bytes, 1.0)
	return err
}

// grantOp is the continuation state machine behind AcquireReduced: wait
// FIFO with timeout, halving the ask past the halfway point, retrying
// the reservation on every wake.
type grantOp struct {
	gm               *GrantManager
	want, ask, floor int64
	start            time.Duration
	deadline, half   time.Duration
	granted          *int64
	errp             *error
	k                vtime.Step
	state            int8
}

const (
	gwWait int8 = iota // queue (or time out) for another retry
	gwWoke             // signaled or timed out: retry the reservation
)

func (op *grantOp) Run(t *vtime.Task) {
	gm := op.gm
	for {
		switch op.state {
		case gwWait:
			remain := op.deadline - t.Now()
			if remain <= 0 {
				op.fail(t)
				return
			}
			op.state = gwWoke
			gm.queue.WaitTimeoutThen(t, remain, op)
			return
		case gwWoke:
			if t.TimedOut() {
				op.fail(t)
				return
			}
			// Past the halfway point, halve the ask (not below the floor).
			if t.Now() >= op.half && op.ask > op.floor {
				op.ask /= 2
				if op.ask < op.floor {
					op.ask = op.floor
				}
				gm.reductions++
			}
			if err := gm.tracker.Reserve(op.ask); err == nil {
				gm.granted++
				gm.waitTotal += t.Now() - op.start
				// Let the next waiter retry too: memory may remain.
				gm.queue.Signal()
				op.finish(t, op.ask, nil)
				return
			}
			op.state = gwWait
		}
	}
}

func (op *grantOp) fail(t *vtime.Task) {
	gm := op.gm
	gm.timeouts++
	gm.waitTotal += t.Now() - op.start
	op.finish(t, 0, &ErrGrantTimeout{Bytes: op.want, Wait: t.Now() - op.start})
}

func (op *grantOp) finish(t *vtime.Task, granted int64, err error) {
	*op.granted = granted
	*op.errp = err
	k := op.k
	op.k, op.granted, op.errp = nil, nil, nil
	op.gm.ops.Put(op)
	k.Run(t)
}

// AcquireReducedThen reserves execution memory as continuation steps,
// then runs k with the outcome stored through granted and errp. See
// AcquireReduced for the reduction semantics.
func (gm *GrantManager) AcquireReducedThen(t *vtime.Task, want int64, minFrac float64, granted *int64, errp *error, k vtime.Step) {
	*errp = nil
	if want <= 0 {
		*granted = 0
		k.Run(t)
		return
	}
	if minFrac <= 0 || minFrac > 1 {
		minFrac = 1
	}
	floor := int64(float64(want) * minFrac)
	if floor < 1 {
		floor = 1
	}
	start := t.Now()
	// FIFO: newcomers queue behind existing waiters even if their (small)
	// request would fit, preventing starvation of big grants.
	if gm.queue.Len() == 0 {
		if err := gm.tracker.Reserve(want); err == nil {
			gm.granted++
			*granted = want
			k.Run(t)
			return
		}
	}
	op := gm.ops.Get()
	if op == nil {
		op = &grantOp{gm: gm}
	}
	op.want, op.ask, op.floor = want, want, floor
	op.start, op.deadline, op.half = start, start+gm.timeout, start+gm.timeout/2
	op.granted, op.errp, op.k, op.state = granted, errp, k, gwWait
	op.Run(t)
}

// AcquireReduced reserves execution memory, accepting a reduced grant
// under pressure: the request asks for want bytes but, once half the
// timeout has elapsed, settles for progressively less — never below
// want*minFrac. It returns the bytes actually granted. This models the
// engine's grant-reduction path (§3: execution "can potentially respond
// to memory pressure"); the executor pays for the shortfall by spilling.
func (gm *GrantManager) AcquireReduced(t *vtime.Task, want int64, minFrac float64) (int64, error) {
	var granted int64
	var err error
	t.Await(func(k vtime.Step) {
		gm.AcquireReducedThen(t, want, minFrac, &granted, &err, k)
	})
	return granted, err
}

// Release returns a grant and wakes the longest waiter to retry.
func (gm *GrantManager) Release(bytes int64) {
	if bytes <= 0 {
		return
	}
	gm.tracker.Release(bytes)
	gm.queue.Signal()
}

// Kick wakes the longest waiter to retry its reservation. The engine's
// housekeeping calls this when memory is released outside the grant path
// (e.g. a compilation finished), so queued grants notice promptly.
func (gm *GrantManager) Kick() {
	gm.queue.Signal()
}

// Config tunes the executor.
type Config struct {
	// CostUnitCPU converts one CPU cost-model unit into virtual CPU time.
	// The cost model's CPURow etc. are expressed in these units.
	CostUnitCPU time.Duration
	// GrantTimeout bounds the wait for execution memory.
	GrantTimeout time.Duration
	// ReadBatch is how many extents are requested per buffer-pool call.
	ReadBatch int
	// Pattern shapes scan locality.
	Pattern storage.Pattern
	// MinGrantFrac enables grant reduction under pressure: a queued query
	// accepts as little as this fraction of its requested grant and
	// spills the shortfall to disk. 0 (or 1) disables reduction.
	MinGrantFrac float64
	// SpillPenaltyPerByte is the extra virtual time per shortfall byte
	// (write + later read of spilled partitions), charged against the
	// disk channels.
	SpillExtentTime time.Duration
	// RefaultExtentTime is the nominal disk time per refaulted workspace
	// extent when the machine is thrashing: an overcommitted machine
	// pages parts of each query's granted workspace out and back in,
	// costing (slowdown-1) * grant-extents of extra transfers. The
	// transfers ride the same dilated disk channels as every other I/O,
	// so the effective cost is superlinear in the slowdown — deliberately:
	// refault traffic on a thrashing machine is itself slowed by the
	// thrash. 0 disables the penalty (it also stays off until SetPressure
	// installs a slowdown source).
	RefaultExtentTime time.Duration
}

// DefaultConfig returns the calibrated executor tuning.
func DefaultConfig() Config {
	return Config{
		CostUnitCPU:  time.Second,
		GrantTimeout: 10 * time.Minute,
		ReadBatch:    32,
		Pattern:      storage.DefaultPattern(),
		// Grant reduction (reduced grants + hash spill) is an extension
		// the paper only hints at (§3); it is opt-in so the benchmark
		// baseline fails under memory starvation the way the paper's
		// engine did. Set MinGrantFrac < 1 to enable it.
		MinGrantFrac:    1.0,
		SpillExtentTime: 200 * time.Millisecond, // write + re-read per spilled extent
		// One paged-out-and-back workspace extent costs one disk
		// round-trip, same as a spill extent.
		RefaultExtentTime: 200 * time.Millisecond,
	}
}

// Stats reports one execution.
type Stats struct {
	ExtentsRead int
	Hits        int
	CPUTime     time.Duration
	GrantBytes  int64 // bytes actually granted
	SpillBytes  int64 // shortfall spilled to disk (reduced grant)
	// PageStallTime is the nominal (pre-dilation) disk time charged for
	// refaulting the workspace on an overcommitted machine; the virtual
	// time actually spent is this stretched by the slowdown in effect.
	PageStallTime time.Duration
	Elapsed       time.Duration
}

// Executor runs plans.
type Executor struct {
	cfg    Config
	pool   *bufferpool.Pool
	layout *storage.Layout
	cpu    *vtime.CPUSet
	grants *GrantManager
	cost   plan.CostModel

	// pressure reports the machine's current paging slowdown (nil or
	// func returning <= 1 when healthy); drives workspace refaults.
	pressure func() float64

	executed       uint64
	pageStallTotal time.Duration

	execs freelist.List[execOp] // recycled continuation ops (single scheduler)
}

// New creates an executor.
func New(cfg Config, pool *bufferpool.Pool, layout *storage.Layout, cpu *vtime.CPUSet, grants *GrantManager, cost plan.CostModel) *Executor {
	if cfg.ReadBatch <= 0 {
		cfg.ReadBatch = 32
	}
	return &Executor{cfg: cfg, pool: pool, layout: layout, cpu: cpu, grants: grants, cost: cost}
}

// SetPressure installs the paging-slowdown source (the engine wires the
// memory budget's Slowdown). A factor above 1 makes executions refault
// part of their granted workspace; see Config.RefaultExtentTime.
func (e *Executor) SetPressure(fn func() float64) { e.pressure = fn }

// Executed returns the number of completed executions.
func (e *Executor) Executed() uint64 { return e.executed }

// PageStallTotal returns aggregate workspace-refault disk time charged
// across all executions.
func (e *Executor) PageStallTotal() time.Duration { return e.pageStallTotal }

// Grants exposes the grant manager.
func (e *Executor) Grants() *GrantManager { return e.grants }

// execOp is the continuation state machine behind Execute: acquire the
// grant, run the plan's nodes (children first — build before probe,
// matching hash-join scheduling; the tree is flattened into exactly the
// old recursion's visit order), pay spill and refault I/O, release.
// Scan-key and node scratch buffers are retained across uses.
type execOp struct {
	e    *Executor
	p    *plan.Plan
	rng  *rand.Rand
	st   *Stats
	errp *error
	k    vtime.Step

	start     time.Duration
	want      int64
	granted   int64
	nodes     []*plan.Node
	ni        int
	keys      []storage.ExtentKey
	bi, bj    int
	batchHits int
	state     int8
}

const (
	exGranted   int8 = iota // grant outcome known
	exNode                  // run the next node
	exBatch                 // issue the next read batch of the current scan
	exBatchDone             // account a finished read batch
	exNodeCPU               // current node's CPU charge finished
	exSpill                 // pay spill I/O for a reduced grant
	exRefault               // pay workspace refault I/O under thrash
	exFinish                // account and release
)

func (op *execOp) Run(t *vtime.Task) {
	e := op.e
	st := op.st
	for {
		switch op.state {
		case exGranted:
			if *op.errp != nil {
				// No grant was taken; nothing to release.
				op.finish(t)
				return
			}
			st.GrantBytes = op.granted
			st.SpillBytes = op.want - op.granted
			op.nodes = appendPostorder(op.nodes[:0], op.p.Root)
			op.ni = 0
			op.state = exNode
		case exNode:
			if op.ni >= len(op.nodes) {
				op.state = exSpill
				continue
			}
			n := op.nodes[op.ni]
			switch n.Op {
			case plan.OpSeqScan, plan.OpIndexScan:
				op.keys = e.layout.ScanExtentsInto(op.keys[:0], n.Table, n.ScanFraction, e.cfg.Pattern, op.rng)
				op.bi = 0
				op.state = exBatch
			case plan.OpHashJoin:
				build := n.Right.OutCard
				probe := n.Left.OutCard
				units := build*e.cost.BuildRow + probe*e.cost.CPURow + n.OutCard*e.cost.CPURow
				if op.useCPU(t, units) {
					return
				}
			case plan.OpHashAgg:
				// The optimizer's agg cost is pure CPU.
				if op.useCPU(t, n.NodeCost) {
					return
				}
			default:
				op.ni++
			}
		case exBatch:
			if op.bi >= len(op.keys) {
				st.ExtentsRead += len(op.keys)
				n := op.nodes[op.ni]
				tb := e.layout.Catalog().Table(n.Table)
				visited := float64(tb.Rows)
				if n.Op == plan.OpIndexScan {
					visited *= n.ScanFraction
				}
				if op.useCPU(t, visited*e.cost.CPURow) {
					return
				}
				continue
			}
			j := op.bi + e.cfg.ReadBatch
			if j > len(op.keys) {
				j = len(op.keys)
			}
			op.bj = j
			op.state = exBatchDone
			e.pool.ReadManyThen(t, op.keys[op.bi:j], &op.batchHits, op)
			return
		case exBatchDone:
			st.Hits += op.batchHits
			op.bi = op.bj
			op.state = exBatch
		case exNodeCPU:
			op.ni++
			op.state = exNode
		case exSpill:
			op.state = exRefault
			// A reduced grant spills hash partitions: pay write + re-read
			// time on the disk channels, proportional to the shortfall.
			if st.SpillBytes > 0 && e.cfg.SpillExtentTime > 0 {
				extents := (st.SpillBytes + e.pool.ExtentBytes() - 1) / e.pool.ExtentBytes()
				e.pool.DiskDelayThen(t, time.Duration(extents)*e.cfg.SpillExtentTime, op)
				return
			}
		case exRefault:
			op.state = exFinish
			// On a thrashing machine part of the granted workspace was
			// paged out mid-run and must fault back in: (slowdown-1) extra
			// transfers per workspace extent, against the same disk
			// channels.
			if e.pressure != nil && op.granted > 0 && e.cfg.RefaultExtentTime > 0 {
				if f := e.pressure(); f > 1 {
					extents := (op.granted + e.pool.ExtentBytes() - 1) / e.pool.ExtentBytes()
					stall := time.Duration((f - 1) * float64(extents) * float64(e.cfg.RefaultExtentTime))
					st.PageStallTime = stall
					e.pageStallTotal += stall
					e.pool.DiskDelayThen(t, stall, op)
					return
				}
			}
		case exFinish:
			e.executed++
			st.Elapsed = t.Now() - op.start
			e.grants.Release(op.granted)
			op.finish(t)
			return
		}
	}
}

// useCPU charges the node's CPU units; it reports whether the op parked
// (true = return from Run, resume at exNodeCPU).
func (op *execOp) useCPU(t *vtime.Task, units float64) bool {
	d := time.Duration(units * float64(op.e.cfg.CostUnitCPU))
	if d <= 0 {
		op.ni++
		op.state = exNode
		return false
	}
	op.st.CPUTime += d
	op.state = exNodeCPU
	op.e.cpu.UseThen(t, d, op)
	return true
}

func (op *execOp) finish(t *vtime.Task) {
	k := op.k
	op.k, op.p, op.rng, op.st, op.errp = nil, nil, nil, nil, nil
	op.e.execs.Put(op)
	k.Run(t)
}

// appendPostorder flattens the plan tree into the execution order the
// recursive walk used: right subtree (build side), left subtree (probe
// side), then the node itself.
func appendPostorder(nodes []*plan.Node, n *plan.Node) []*plan.Node {
	if n == nil {
		return nodes
	}
	nodes = appendPostorder(nodes, n.Right)
	nodes = appendPostorder(nodes, n.Left)
	return append(nodes, n)
}

// ExecuteThen runs plan p as continuation steps on the event loop, then
// runs k with the outcome in st and errp. rng drives scan locality (seed
// it per query for deterministic-but-varied access patterns).
func (e *Executor) ExecuteThen(t *vtime.Task, p *plan.Plan, rng *rand.Rand, st *Stats, errp *error, k vtime.Step) {
	op := e.execs.Get()
	if op == nil {
		op = &execOp{e: e}
	}
	*st = Stats{}
	*errp = nil
	op.p, op.rng, op.st, op.errp, op.k = p, rng, st, errp, k
	op.start = t.Now()
	op.want = p.MemoryGrant()
	minFrac := e.cfg.MinGrantFrac
	if minFrac <= 0 {
		minFrac = 1
	}
	op.state = exGranted
	e.grants.AcquireReducedThen(t, op.want, minFrac, &op.granted, op.errp, op)
}

// Execute runs plan p on behalf of task t. rng drives scan locality (seed
// it per query for deterministic-but-varied access patterns).
func (e *Executor) Execute(t *vtime.Task, p *plan.Plan, rng *rand.Rand) (Stats, error) {
	var st Stats
	var err error
	t.Await(func(k vtime.Step) { e.ExecuteThen(t, p, rng, &st, &err, k) })
	return st, err
}
