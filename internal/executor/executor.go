// Package executor runs physical plans in virtual time: scans pull
// extents through the buffer pool, joins and aggregates burn CPU on the
// shared processor pool, and each query holds an execution memory grant
// (its hash-table workspace) for the duration of the run — the same
// reserve-up-front discipline SQL Server uses for query execution memory.
package executor

import (
	"fmt"
	"math/rand"
	"time"

	"compilegate/internal/bufferpool"
	"compilegate/internal/mem"
	"compilegate/internal/plan"
	"compilegate/internal/storage"
	"compilegate/internal/vtime"
)

// ErrGrantTimeout is returned when a query cannot obtain its execution
// memory grant within the configured timeout.
type ErrGrantTimeout struct {
	Bytes int64
	Wait  time.Duration
}

func (e *ErrGrantTimeout) Error() string {
	return fmt.Sprintf("executor: timed out after %v waiting for %s execution grant",
		e.Wait, mem.FormatBytes(e.Bytes))
}

// GrantManager queues execution memory grants against a tracker, FIFO
// with timeout — the RESOURCE_SEMAPHORE analogue.
type GrantManager struct {
	tracker *mem.Tracker
	queue   *vtime.WaitQueue
	timeout time.Duration

	granted, timeouts uint64
	reductions        uint64
	waitTotal         time.Duration
}

// NewGrantManager creates a grant manager. tracker should carry a limit
// (SetLimit) bounding total concurrent execution memory.
func NewGrantManager(tracker *mem.Tracker, timeout time.Duration) *GrantManager {
	return &GrantManager{
		tracker: tracker,
		queue:   vtime.NewWaitQueue("exec-grants"),
		timeout: timeout,
	}
}

// Tracker returns the underlying tracker.
func (gm *GrantManager) Tracker() *mem.Tracker { return gm.tracker }

// Granted returns the number of grants issued.
func (gm *GrantManager) Granted() uint64 { return gm.granted }

// Timeouts returns the number of grant waits that timed out.
func (gm *GrantManager) Timeouts() uint64 { return gm.timeouts }

// Reductions returns how many times a queued grant lowered its ask.
func (gm *GrantManager) Reductions() uint64 { return gm.reductions }

// Waiting returns the number of queued requests.
func (gm *GrantManager) Waiting() int { return gm.queue.Len() }

// TotalWait returns aggregate time spent queued for grants.
func (gm *GrantManager) TotalWait() time.Duration { return gm.waitTotal }

// Acquire reserves bytes of execution memory for task t, queueing FIFO
// behind earlier requests when memory is unavailable.
func (gm *GrantManager) Acquire(t *vtime.Task, bytes int64) error {
	got, err := gm.AcquireReduced(t, bytes, 1.0)
	_ = got
	return err
}

// AcquireReduced reserves execution memory, accepting a reduced grant
// under pressure: the request asks for want bytes but, once half the
// timeout has elapsed, settles for progressively less — never below
// want*minFrac. It returns the bytes actually granted. This models the
// engine's grant-reduction path (§3: execution "can potentially respond
// to memory pressure"); the executor pays for the shortfall by spilling.
func (gm *GrantManager) AcquireReduced(t *vtime.Task, want int64, minFrac float64) (int64, error) {
	if want <= 0 {
		return 0, nil
	}
	if minFrac <= 0 || minFrac > 1 {
		minFrac = 1
	}
	floor := int64(float64(want) * minFrac)
	if floor < 1 {
		floor = 1
	}
	start := t.Now()
	deadline := start + gm.timeout
	half := start + gm.timeout/2
	ask := want
	// FIFO: newcomers queue behind existing waiters even if their (small)
	// request would fit, preventing starvation of big grants.
	if gm.queue.Len() == 0 {
		if err := gm.tracker.Reserve(ask); err == nil {
			gm.granted++
			return ask, nil
		}
	}
	for {
		remain := deadline - t.Now()
		if remain <= 0 || !gm.queue.WaitTimeout(t, remain) {
			gm.timeouts++
			gm.waitTotal += t.Now() - start
			return 0, &ErrGrantTimeout{Bytes: want, Wait: t.Now() - start}
		}
		// Past the halfway point, halve the ask (not below the floor).
		if t.Now() >= half && ask > floor {
			ask /= 2
			if ask < floor {
				ask = floor
			}
			gm.reductions++
		}
		if err := gm.tracker.Reserve(ask); err == nil {
			gm.granted++
			gm.waitTotal += t.Now() - start
			// Let the next waiter retry too: memory may remain.
			gm.queue.Signal()
			return ask, nil
		}
	}
}

// Release returns a grant and wakes the longest waiter to retry.
func (gm *GrantManager) Release(bytes int64) {
	if bytes <= 0 {
		return
	}
	gm.tracker.Release(bytes)
	gm.queue.Signal()
}

// Kick wakes the longest waiter to retry its reservation. The engine's
// housekeeping calls this when memory is released outside the grant path
// (e.g. a compilation finished), so queued grants notice promptly.
func (gm *GrantManager) Kick() {
	gm.queue.Signal()
}

// Config tunes the executor.
type Config struct {
	// CostUnitCPU converts one CPU cost-model unit into virtual CPU time.
	// The cost model's CPURow etc. are expressed in these units.
	CostUnitCPU time.Duration
	// GrantTimeout bounds the wait for execution memory.
	GrantTimeout time.Duration
	// ReadBatch is how many extents are requested per buffer-pool call.
	ReadBatch int
	// Pattern shapes scan locality.
	Pattern storage.Pattern
	// MinGrantFrac enables grant reduction under pressure: a queued query
	// accepts as little as this fraction of its requested grant and
	// spills the shortfall to disk. 0 (or 1) disables reduction.
	MinGrantFrac float64
	// SpillPenaltyPerByte is the extra virtual time per shortfall byte
	// (write + later read of spilled partitions), charged against the
	// disk channels.
	SpillExtentTime time.Duration
	// RefaultExtentTime is the nominal disk time per refaulted workspace
	// extent when the machine is thrashing: an overcommitted machine
	// pages parts of each query's granted workspace out and back in,
	// costing (slowdown-1) * grant-extents of extra transfers. The
	// transfers ride the same dilated disk channels as every other I/O,
	// so the effective cost is superlinear in the slowdown — deliberately:
	// refault traffic on a thrashing machine is itself slowed by the
	// thrash. 0 disables the penalty (it also stays off until SetPressure
	// installs a slowdown source).
	RefaultExtentTime time.Duration
}

// DefaultConfig returns the calibrated executor tuning.
func DefaultConfig() Config {
	return Config{
		CostUnitCPU:  time.Second,
		GrantTimeout: 10 * time.Minute,
		ReadBatch:    32,
		Pattern:      storage.DefaultPattern(),
		// Grant reduction (reduced grants + hash spill) is an extension
		// the paper only hints at (§3); it is opt-in so the benchmark
		// baseline fails under memory starvation the way the paper's
		// engine did. Set MinGrantFrac < 1 to enable it.
		MinGrantFrac:    1.0,
		SpillExtentTime: 200 * time.Millisecond, // write + re-read per spilled extent
		// One paged-out-and-back workspace extent costs one disk
		// round-trip, same as a spill extent.
		RefaultExtentTime: 200 * time.Millisecond,
	}
}

// Stats reports one execution.
type Stats struct {
	ExtentsRead int
	Hits        int
	CPUTime     time.Duration
	GrantBytes  int64 // bytes actually granted
	SpillBytes  int64 // shortfall spilled to disk (reduced grant)
	// PageStallTime is the nominal (pre-dilation) disk time charged for
	// refaulting the workspace on an overcommitted machine; the virtual
	// time actually spent is this stretched by the slowdown in effect.
	PageStallTime time.Duration
	Elapsed       time.Duration
}

// Executor runs plans.
type Executor struct {
	cfg    Config
	pool   *bufferpool.Pool
	layout *storage.Layout
	cpu    *vtime.CPUSet
	grants *GrantManager
	cost   plan.CostModel

	// pressure reports the machine's current paging slowdown (nil or
	// func returning <= 1 when healthy); drives workspace refaults.
	pressure func() float64

	executed       uint64
	pageStallTotal time.Duration
}

// New creates an executor.
func New(cfg Config, pool *bufferpool.Pool, layout *storage.Layout, cpu *vtime.CPUSet, grants *GrantManager, cost plan.CostModel) *Executor {
	if cfg.ReadBatch <= 0 {
		cfg.ReadBatch = 32
	}
	return &Executor{cfg: cfg, pool: pool, layout: layout, cpu: cpu, grants: grants, cost: cost}
}

// SetPressure installs the paging-slowdown source (the engine wires the
// memory budget's Slowdown). A factor above 1 makes executions refault
// part of their granted workspace; see Config.RefaultExtentTime.
func (e *Executor) SetPressure(fn func() float64) { e.pressure = fn }

// Executed returns the number of completed executions.
func (e *Executor) Executed() uint64 { return e.executed }

// PageStallTotal returns aggregate workspace-refault disk time charged
// across all executions.
func (e *Executor) PageStallTotal() time.Duration { return e.pageStallTotal }

// Grants exposes the grant manager.
func (e *Executor) Grants() *GrantManager { return e.grants }

// Execute runs plan p on behalf of task t. rng drives scan locality (seed
// it per query for deterministic-but-varied access patterns).
func (e *Executor) Execute(t *vtime.Task, p *plan.Plan, rng *rand.Rand) (Stats, error) {
	start := t.Now()
	var st Stats
	want := p.MemoryGrant()
	minFrac := e.cfg.MinGrantFrac
	if minFrac <= 0 {
		minFrac = 1
	}
	granted, err := e.grants.AcquireReduced(t, want, minFrac)
	if err != nil {
		return st, err
	}
	st.GrantBytes = granted
	st.SpillBytes = want - granted
	defer e.grants.Release(granted)

	if err := e.runNode(t, p.Root, rng, &st); err != nil {
		return st, err
	}
	// A reduced grant spills hash partitions: pay write + re-read time on
	// the disk channels, proportional to the shortfall.
	if st.SpillBytes > 0 && e.cfg.SpillExtentTime > 0 {
		extents := (st.SpillBytes + e.pool.ExtentBytes() - 1) / e.pool.ExtentBytes()
		e.pool.DiskDelay(t, time.Duration(extents)*e.cfg.SpillExtentTime)
	}
	// On a thrashing machine part of the granted workspace was paged out
	// mid-run and must fault back in: (slowdown-1) extra transfers per
	// workspace extent, against the same disk channels.
	if e.pressure != nil && granted > 0 && e.cfg.RefaultExtentTime > 0 {
		if f := e.pressure(); f > 1 {
			extents := (granted + e.pool.ExtentBytes() - 1) / e.pool.ExtentBytes()
			stall := time.Duration((f - 1) * float64(extents) * float64(e.cfg.RefaultExtentTime))
			st.PageStallTime = stall
			e.pageStallTotal += stall
			e.pool.DiskDelay(t, stall)
		}
	}
	e.executed++
	st.Elapsed = t.Now() - start
	return st, nil
}

// runNode executes the subtree rooted at n (children first — build before
// probe, matching hash-join scheduling).
func (e *Executor) runNode(t *vtime.Task, n *plan.Node, rng *rand.Rand, st *Stats) error {
	if n == nil {
		return nil
	}
	// Hash joins consume the build side (right) before probing (left).
	if err := e.runNode(t, n.Right, rng, st); err != nil {
		return err
	}
	if err := e.runNode(t, n.Left, rng, st); err != nil {
		return err
	}

	switch n.Op {
	case plan.OpSeqScan, plan.OpIndexScan:
		keys := e.layout.ScanExtents(n.Table, n.ScanFraction, e.cfg.Pattern, rng)
		for i := 0; i < len(keys); i += e.cfg.ReadBatch {
			j := i + e.cfg.ReadBatch
			if j > len(keys) {
				j = len(keys)
			}
			st.Hits += e.pool.ReadMany(t, keys[i:j])
		}
		st.ExtentsRead += len(keys)
		tb := e.layout.Catalog().Table(n.Table)
		visited := float64(tb.Rows)
		if n.Op == plan.OpIndexScan {
			visited *= n.ScanFraction
		}
		e.useCPU(t, visited*e.cost.CPURow, st)
	case plan.OpHashJoin:
		build := n.Right.OutCard
		probe := n.Left.OutCard
		units := build*e.cost.BuildRow + probe*e.cost.CPURow + n.OutCard*e.cost.CPURow
		e.useCPU(t, units, st)
	case plan.OpHashAgg:
		units := n.NodeCost // the optimizer's agg cost is pure CPU
		e.useCPU(t, units, st)
	}
	return nil
}

func (e *Executor) useCPU(t *vtime.Task, units float64, st *Stats) {
	d := time.Duration(units * float64(e.cfg.CostUnitCPU))
	if d <= 0 {
		return
	}
	st.CPUTime += d
	e.cpu.Use(t, d)
}
