package executor

import (
	"math/rand"
	"testing"
	"time"

	"compilegate/internal/mem"
	"compilegate/internal/vtime"
)

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestAcquireReducedFullWhenFree(t *testing.T) {
	e := newEnv(mem.GiB, time.Minute)
	s := vtime.NewScheduler()
	s.Go("q", func(tk *vtime.Task) {
		got, err := e.grants.AcquireReduced(tk, 100*mem.MiB, 0.25)
		if err != nil {
			t.Error(err)
			return
		}
		if got != 100*mem.MiB {
			t.Errorf("reduced to %d with no contention", got)
		}
		e.grants.Release(got)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if e.grants.Reductions() != 0 {
		t.Fatal("phantom reduction")
	}
}

func TestAcquireReducedUnderPressure(t *testing.T) {
	e := newEnv(mem.GiB, 4*time.Minute) // tracker limit 1 GiB
	gm := e.grants
	s := vtime.NewScheduler()
	var got int64
	s.Go("hog", func(tk *vtime.Task) {
		g, err := gm.AcquireReduced(tk, 900*mem.MiB, 1)
		if err != nil {
			t.Error(err)
			return
		}
		tk.Sleep(time.Hour) // hold: only 124 MiB remain under the limit
		gm.Release(g)
	})
	s.Go("victim", func(tk *vtime.Task) {
		tk.Sleep(time.Millisecond)
		var err error
		got, err = gm.AcquireReduced(tk, 400*mem.MiB, 0.25)
		if err != nil {
			t.Errorf("reduced grant failed: %v", err)
			return
		}
		gm.Release(got)
	})
	// A kicker so the victim retries after the halfway point.
	s.Go("kicker", func(tk *vtime.Task) {
		for i := 0; i < 60; i++ {
			tk.Sleep(5 * time.Second)
			gm.Kick()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 100*mem.MiB {
		t.Fatalf("granted %d, want the 100 MiB floor (400 MiB * 0.25)", got)
	}
	if gm.Reductions() == 0 {
		t.Fatal("no reduction recorded")
	}
}

func TestAcquireReducedStillTimesOut(t *testing.T) {
	e := newEnv(mem.GiB, 10*time.Second)
	gm := e.grants
	s := vtime.NewScheduler()
	s.Go("hog", func(tk *vtime.Task) {
		g, _ := gm.AcquireReduced(tk, 1000*mem.MiB, 1)
		tk.Sleep(time.Hour)
		gm.Release(g)
	})
	s.Go("victim", func(tk *vtime.Task) {
		tk.Sleep(time.Millisecond)
		if _, err := gm.AcquireReduced(tk, 800*mem.MiB, 0.5); err == nil {
			t.Error("grant succeeded with zero memory available")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if gm.Timeouts() != 1 {
		t.Fatalf("timeouts = %d", gm.Timeouts())
	}
}

func TestSpillChargedOnReducedGrant(t *testing.T) {
	e := newEnv(mem.GiB, 2*time.Minute)
	// Direct spill-path check: execute with a hog holding most of the
	// grant budget so the query runs with a reduced grant and spills.
	p := e.plan(t, starQ(3))
	if p.MemoryGrant() == 0 {
		t.Skip("plan needs no grant")
	}
	s := vtime.NewScheduler()
	var full, reduced Stats
	s.Go("baseline", func(tk *vtime.Task) {
		var err error
		full, err = e.exec.Execute(tk, p, newTestRand())
		if err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Second run with a hog squeezing the tracker; grant reduction
	// enabled (it is opt-in).
	e2 := newEnvCfg(p.MemoryGrant()+p.MemoryGrant()/3, 2*time.Minute,
		func(c *Config) { c.MinGrantFrac = 0.25 })
	p2 := e2.plan(t, starQ(3))
	s2 := vtime.NewScheduler()
	s2.Go("hog", func(tk *vtime.Task) {
		g, err := e2.grants.AcquireReduced(tk, p2.MemoryGrant(), 1)
		if err != nil {
			t.Error(err)
			return
		}
		tk.Sleep(3 * time.Minute)
		e2.grants.Release(g)
	})
	s2.Go("victim", func(tk *vtime.Task) {
		tk.Sleep(time.Millisecond)
		var err error
		reduced, err = e2.exec.Execute(tk, p2, newTestRand())
		if err != nil {
			t.Errorf("execution with reduced grant failed: %v", err)
		}
	})
	s2.Go("kicker", func(tk *vtime.Task) {
		for i := 0; i < 100; i++ {
			tk.Sleep(2 * time.Second)
			e2.grants.Kick()
		}
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if full.SpillBytes != 0 {
		t.Fatalf("unconstrained run spilled %d bytes", full.SpillBytes)
	}
	if reduced.SpillBytes == 0 {
		t.Fatal("constrained run did not spill")
	}
	if reduced.GrantBytes >= p2.MemoryGrant() {
		t.Fatal("grant was not reduced")
	}
}
