package executor

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"compilegate/internal/bufferpool"
	"compilegate/internal/catalog"
	"compilegate/internal/mem"
	"compilegate/internal/optimizer"
	"compilegate/internal/plan"
	"compilegate/internal/stats"
	"compilegate/internal/storage"
	"compilegate/internal/vtime"
)

type env struct {
	budget *mem.Budget
	pool   *bufferpool.Pool
	layout *storage.Layout
	cpu    *vtime.CPUSet
	grants *GrantManager
	exec   *Executor
	opt    *optimizer.Optimizer
}

func newEnv(grantLimit int64, grantTimeout time.Duration) *env {
	return newEnvCfg(grantLimit, grantTimeout, nil)
}

func newEnvCfg(grantLimit int64, grantTimeout time.Duration, mutate func(*Config)) *env {
	cat := catalog.NewSales(catalog.SalesConfig{Scale: 0.001, ExtentBytes: 8 << 20})
	est := stats.NewEstimator(cat)
	budget := mem.NewBudget(4 * mem.GiB)
	bpCfg := bufferpool.DefaultConfig()
	pool := bufferpool.New(bpCfg, budget.NewTracker("bufferpool"))
	layout := storage.NewLayout(cat)
	cpu := vtime.NewCPUSet(8, 50*time.Millisecond)
	gt := budget.NewTracker("exec")
	gt.SetLimit(grantLimit)
	grants := NewGrantManager(gt, grantTimeout)
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	exec := New(cfg, pool, layout, cpu, grants, plan.DefaultCostModel())
	return &env{
		budget: budget, pool: pool, layout: layout, cpu: cpu,
		grants: grants, exec: exec,
		opt: optimizer.New(est, optimizer.DefaultConfig()),
	}
}

func (e *env) plan(t *testing.T, q *plan.Query) *plan.Plan {
	t.Helper()
	p, err := e.opt.Optimize(q, optimizer.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func starQ(n int) *plan.Query {
	dims := []string{"dim_product", "dim_store", "dim_date", "dim_channel"}
	q := &plan.Query{Tables: []plan.TableTerm{{Name: "sales_fact"}}}
	for i := 0; i < n && i < len(dims); i++ {
		q.Tables = append(q.Tables, plan.TableTerm{Name: dims[i]})
		q.Joins = append(q.Joins, plan.JoinEdge{A: "sales_fact", B: dims[i]})
	}
	return q
}

func TestExecuteSimpleScan(t *testing.T) {
	e := newEnv(mem.GiB, time.Minute)
	p := e.plan(t, &plan.Query{Tables: []plan.TableTerm{{Name: "dim_product"}}})
	s := vtime.NewScheduler()
	var st Stats
	s.Go("q", func(tk *vtime.Task) {
		var err error
		st, err = e.exec.Execute(tk, p, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if st.ExtentsRead == 0 {
		t.Fatal("no extents read")
	}
	if st.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if e.exec.Executed() != 1 {
		t.Fatal("execution not counted")
	}
}

func TestWarmCacheFasterThanCold(t *testing.T) {
	e := newEnv(mem.GiB, time.Minute)
	p := e.plan(t, starQ(2))
	s := vtime.NewScheduler()
	var cold, warm Stats
	s.Go("q", func(tk *vtime.Task) {
		var err error
		cold, err = e.exec.Execute(tk, p, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Error(err)
		}
		warm, err = e.exec.Execute(tk, p, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if warm.Hits <= cold.Hits {
		t.Fatalf("warm hits %d <= cold hits %d", warm.Hits, cold.Hits)
	}
	if warm.Elapsed >= cold.Elapsed {
		t.Fatalf("warm run %v not faster than cold %v", warm.Elapsed, cold.Elapsed)
	}
}

func TestGrantAcquireRelease(t *testing.T) {
	e := newEnv(mem.GiB, time.Minute)
	q := starQ(2)
	q.GroupBy = []plan.ColRef{{Table: "dim_store", Column: "city_id"}}
	q.Aggregates = 1
	p := e.plan(t, q)
	if p.MemoryGrant() <= 0 {
		t.Fatal("plan needs no grant; test is vacuous")
	}
	s := vtime.NewScheduler()
	s.Go("q", func(tk *vtime.Task) {
		if _, err := e.exec.Execute(tk, p, rand.New(rand.NewSource(1))); err != nil {
			t.Error(err)
		}
		if e.grants.Tracker().Used() != 0 {
			t.Errorf("grant leaked: %d", e.grants.Tracker().Used())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if e.grants.Granted() == 0 {
		t.Fatal("no grant issued")
	}
}

func TestGrantQueueingSerializes(t *testing.T) {
	e := newEnv(mem.GiB, time.Hour)
	gm := e.grants
	s := vtime.NewScheduler()
	var order []string
	hold := func(name string, bytes int64, holdFor time.Duration, after time.Duration) {
		s.Go(name, func(tk *vtime.Task) {
			tk.Sleep(after)
			if err := gm.Acquire(tk, bytes); err != nil {
				t.Error(err)
				return
			}
			order = append(order, name)
			tk.Sleep(holdFor)
			gm.Release(bytes)
		})
	}
	hold("a", 700*mem.MiB, time.Second, 0)
	hold("b", 700*mem.MiB, time.Second, time.Millisecond) // must wait for a
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
	if gm.TotalWait() == 0 {
		t.Fatal("no grant wait accounted")
	}
}

func TestGrantTimeout(t *testing.T) {
	e := newEnv(mem.GiB, 5*time.Second)
	gm := e.grants
	s := vtime.NewScheduler()
	var gotErr error
	s.Go("hog", func(tk *vtime.Task) {
		if err := gm.Acquire(tk, 900*mem.MiB); err != nil {
			t.Error(err)
		}
		tk.Sleep(time.Hour)
		gm.Release(900 * mem.MiB)
	})
	s.Go("victim", func(tk *vtime.Task) {
		tk.Sleep(time.Millisecond)
		gotErr = gm.Acquire(tk, 500*mem.MiB)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var ge *ErrGrantTimeout
	if !errors.As(gotErr, &ge) {
		t.Fatalf("err = %v, want grant timeout", gotErr)
	}
	if gm.Timeouts() != 1 {
		t.Fatalf("timeouts = %d", gm.Timeouts())
	}
}

func TestGrantFIFONoBarge(t *testing.T) {
	e := newEnv(mem.GiB, time.Hour)
	gm := e.grants
	s := vtime.NewScheduler()
	var order []string
	s.Go("hog", func(tk *vtime.Task) {
		gm.Acquire(tk, 900*mem.MiB)
		tk.Sleep(time.Second)
		gm.Release(900 * mem.MiB)
	})
	s.Go("big-waiter", func(tk *vtime.Task) {
		tk.Sleep(time.Millisecond)
		if err := gm.Acquire(tk, 800*mem.MiB); err != nil {
			t.Error(err)
			return
		}
		order = append(order, "big")
		tk.Sleep(time.Second)
		gm.Release(800 * mem.MiB)
	})
	s.Go("small-late", func(tk *vtime.Task) {
		tk.Sleep(2 * time.Millisecond)
		if err := gm.Acquire(tk, 10*mem.MiB); err != nil {
			t.Error(err)
			return
		}
		order = append(order, "small")
		gm.Release(10 * mem.MiB)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "big" {
		t.Fatalf("order = %v: small request barged past queued big grant", order)
	}
}

func TestCPUConsumption(t *testing.T) {
	e := newEnv(mem.GiB, time.Minute)
	p := e.plan(t, starQ(3))
	s := vtime.NewScheduler()
	var st Stats
	s.Go("q", func(tk *vtime.Task) {
		st, _ = e.exec.Execute(tk, p, rand.New(rand.NewSource(1)))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if st.CPUTime <= 0 {
		t.Fatal("no CPU consumed by 3-join plan")
	}
	if e.cpu.BusyTime() < st.CPUTime {
		t.Fatal("CPU pool busy time below query CPU time")
	}
}

func TestKickWakesWaiter(t *testing.T) {
	e := newEnv(mem.GiB, time.Hour)
	gm := e.grants
	// Occupy budget with non-grant memory so Acquire queues, then free it
	// and Kick.
	other := e.budget.NewTracker("other")
	s := vtime.NewScheduler()
	var acquiredAt time.Duration
	s.Go("setup", func(tk *vtime.Task) {
		// Fill almost the whole machine (bufferpool empty, so no reclaim).
		if err := other.Reserve(3900 * mem.MiB); err != nil {
			t.Error(err)
		}
		tk.Sleep(10 * time.Second)
		other.Release(3900 * mem.MiB)
		gm.Kick()
	})
	s.Go("waiter", func(tk *vtime.Task) {
		tk.Sleep(time.Millisecond)
		if err := gm.Acquire(tk, 800*mem.MiB); err != nil {
			t.Error(err)
			return
		}
		acquiredAt = tk.Now()
		gm.Release(800 * mem.MiB)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if acquiredAt != 10*time.Second {
		t.Fatalf("waiter acquired at %v, want 10s (via Kick)", acquiredAt)
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() Stats {
		e := newEnv(mem.GiB, time.Minute)
		p := e.plan(t, starQ(2))
		s := vtime.NewScheduler()
		var st Stats
		s.Go("q", func(tk *vtime.Task) {
			st, _ = e.exec.Execute(tk, p, rand.New(rand.NewSource(42)))
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic execution: %+v vs %+v", a, b)
	}
}
