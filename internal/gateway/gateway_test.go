package gateway

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"compilegate/internal/errclass"
	"compilegate/internal/mem"
	"compilegate/internal/vtime"
)

// testConfig builds a small, fast chain: thresholds 100/1000/10000 bytes,
// slots 4/2/1, timeouts 1s/2s/4s.
func testConfig() Config {
	return Config{Levels: []LevelConfig{
		{Name: "small", Threshold: 100, Slots: 4, Timeout: time.Second},
		{Name: "medium", Threshold: 1000, Slots: 2, Timeout: 2 * time.Second,
			Dynamic: true, TargetFraction: 0.5, MinThreshold: 200},
		{Name: "big", Threshold: 10000, Slots: 1, Timeout: 4 * time.Second,
			Dynamic: true, TargetFraction: 0.5, MinThreshold: 2000},
	}}
}

func mustChain(t *testing.T, cfg Config) *Chain {
	t.Helper()
	c, err := NewChain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Levels: []LevelConfig{{Name: "a", Threshold: 10, Slots: 0, Timeout: time.Second}}},
		{Levels: []LevelConfig{
			{Name: "a", Threshold: 100, Slots: 2, Timeout: time.Second},
			{Name: "b", Threshold: 50, Slots: 1, Timeout: time.Second}, // threshold not ascending
		}},
		{Levels: []LevelConfig{
			{Name: "a", Threshold: 100, Slots: 2, Timeout: time.Second},
			{Name: "b", Threshold: 200, Slots: 4, Timeout: time.Second}, // slots not descending
		}},
		{Levels: []LevelConfig{
			{Name: "a", Threshold: 100, Slots: 2, Timeout: 2 * time.Second},
			{Name: "b", Threshold: 200, Slots: 1, Timeout: time.Second}, // timeout not ascending
		}},
	}
	for i, cfg := range bad {
		if _, err := NewChain(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
	if _, err := NewChain(testConfig()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestDefaultConfigShape(t *testing.T) {
	cfg := DefaultConfig(8, 4*mem.GiB)
	c := mustChain(t, cfg)
	info := c.Info()
	if len(info) != 3 {
		t.Fatalf("levels = %d, want 3", len(info))
	}
	if info[0].Slots != 32 || info[1].Slots != 8 || info[2].Slots != 1 {
		t.Fatalf("slots = %d/%d/%d, want 32/8/1", info[0].Slots, info[1].Slots, info[2].Slots)
	}
	for i := 1; i < 3; i++ {
		if info[i].Threshold <= info[i-1].Threshold {
			t.Fatal("thresholds not ascending")
		}
		if info[i].Timeout <= info[i-1].Timeout {
			t.Fatal("timeouts not ascending")
		}
	}
}

func TestBelowFirstThresholdNeverBlocks(t *testing.T) {
	s := vtime.NewScheduler()
	c := mustChain(t, testConfig())
	done := 0
	for i := 0; i < 50; i++ {
		s.Go("diag", func(tk *vtime.Task) {
			ti := c.NewTicket()
			if err := ti.Update(tk, 99); err != nil {
				t.Error(err)
			}
			if ti.Held() != 0 {
				t.Errorf("tiny query holds %d gates", ti.Held())
			}
			ti.Close()
			done++
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 50 {
		t.Fatalf("done = %d", done)
	}
	if c.Acquires() != 0 {
		t.Fatalf("acquires = %d, want 0", c.Acquires())
	}
}

func TestGateConcurrencyLimits(t *testing.T) {
	s := vtime.NewScheduler()
	c := mustChain(t, testConfig())
	inSmall, maxSmall := 0, 0
	for i := 0; i < 10; i++ {
		s.Go("q", func(tk *vtime.Task) {
			ti := c.NewTicket()
			if err := ti.Update(tk, 500); err != nil { // crosses small only
				t.Error(err)
				return
			}
			inSmall++
			if inSmall > maxSmall {
				maxSmall = inSmall
			}
			tk.Sleep(100 * time.Millisecond)
			inSmall--
			ti.Close()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxSmall != 4 {
		t.Fatalf("max concurrent past small gate = %d, want 4", maxSmall)
	}
}

func TestGatesAcquiredInOrderAndReleasedReverse(t *testing.T) {
	s := vtime.NewScheduler()
	c := mustChain(t, testConfig())
	s.Go("q", func(tk *vtime.Task) {
		ti := c.NewTicket()
		if err := ti.Update(tk, 150); err != nil {
			t.Error(err)
		}
		if ti.Held() != 1 {
			t.Errorf("held = %d after crossing small, want 1", ti.Held())
		}
		if err := ti.Update(tk, 50000); err != nil {
			t.Error(err)
		}
		if ti.Held() != 3 {
			t.Errorf("held = %d after crossing big, want 3", ti.Held())
		}
		info := c.Info()
		for i, l := range info {
			if l.Holders != 1 {
				t.Errorf("level %d holders = %d, want 1", i, l.Holders)
			}
		}
		ti.Close()
		for i, l := range c.Info() {
			if l.Holders != 0 {
				t.Errorf("level %d holders = %d after Close, want 0", i, l.Holders)
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeoutAbortsAndReleases(t *testing.T) {
	s := vtime.NewScheduler()
	cfg := testConfig()
	cfg.Levels[2].Slots = 1
	c := mustChain(t, cfg)
	var timeoutErr error
	s.Go("hog", func(tk *vtime.Task) {
		ti := c.NewTicket()
		if err := ti.Update(tk, 50000); err != nil {
			t.Error(err)
		}
		tk.Sleep(time.Hour) // hold the big gate forever
		ti.Close()
	})
	s.Go("victim", func(tk *vtime.Task) {
		tk.Sleep(time.Millisecond)
		ti := c.NewTicket()
		start := tk.Now()
		err := ti.Update(tk, 50000)
		timeoutErr = err
		if ti.Held() != 0 {
			t.Errorf("victim still holds %d gates after timeout", ti.Held())
		}
		if waited := tk.Now() - start; waited != 4*time.Second {
			t.Errorf("victim waited %v, want the big gate's 4s timeout", waited)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var te *ErrTimeout
	if !errors.As(timeoutErr, &te) {
		t.Fatalf("err = %v, want *ErrTimeout", timeoutErr)
	}
	if te.Gate != "big" {
		t.Fatalf("timed out at %q, want big", te.Gate)
	}
	if c.Timeouts() != 1 {
		t.Fatalf("chain timeouts = %d, want 1", c.Timeouts())
	}
}

func TestBlockedCompilationResumes(t *testing.T) {
	s := vtime.NewScheduler()
	c := mustChain(t, testConfig())
	var resumedAt time.Duration
	s.Go("holder", func(tk *vtime.Task) {
		ti := c.NewTicket()
		_ = ti.Update(tk, 50000)
		tk.Sleep(500 * time.Millisecond)
		ti.Close()
	})
	s.Go("waiter", func(tk *vtime.Task) {
		tk.Sleep(time.Millisecond)
		ti := c.NewTicket()
		if err := ti.Update(tk, 50000); err != nil {
			t.Error(err)
			return
		}
		resumedAt = tk.Now()
		ti.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if resumedAt != 500*time.Millisecond {
		t.Fatalf("waiter resumed at %v, want 500ms", resumedAt)
	}
	if c.TotalWait() == 0 {
		t.Fatal("wait time not accounted")
	}
}

func TestDynamicThresholds(t *testing.T) {
	c := mustChain(t, testConfig())
	// No target: static thresholds.
	if c.Info()[1].Threshold != 1000 {
		t.Fatalf("static medium threshold = %d", c.Info()[1].Threshold)
	}
	// Target 10000, F=0.5, one small compilation => medium threshold 5000.
	s := vtime.NewScheduler()
	s.Go("q", func(tk *vtime.Task) {
		ti := c.NewTicket()
		_ = ti.Update(tk, 150) // now 1 holder at small
		c.SetTarget(10000)
		if got := c.Info()[1].Threshold; got != 5000 {
			t.Errorf("medium threshold = %d, want 5000 (= 10000*0.5/1)", got)
		}
		ti.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// After release, population floor of 1 keeps the same value.
	if got := c.Info()[1].Threshold; got != 5000 {
		t.Fatalf("medium threshold after release = %d", got)
	}
	// More small compilations split the allotment: threshold drops.
	s2 := vtime.NewScheduler()
	s2.Go("pair", func(tk *vtime.Task) {
		a, b := c.NewTicket(), c.NewTicket()
		_ = a.Update(tk, 150)
		_ = b.Update(tk, 150)
		if got := c.Info()[1].Threshold; got != 2500 {
			t.Errorf("medium threshold with 2 small = %d, want 2500", got)
		}
		a.Close()
		b.Close()
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	// Clearing the target restores statics.
	c.SetTarget(0)
	if got := c.Info()[1].Threshold; got != 1000 {
		t.Fatalf("threshold after clearing target = %d, want 1000", got)
	}
}

func TestDynamicThresholdFloor(t *testing.T) {
	c := mustChain(t, testConfig())
	c.SetTarget(10) // absurdly low target
	if got := c.Info()[1].Threshold; got != 200 {
		t.Fatalf("medium threshold = %d, want MinThreshold 200", got)
	}
	// Ladder stays monotonic even when floors collide.
	info := c.Info()
	for i := 1; i < len(info); i++ {
		if info[i].Threshold <= info[i-1].Threshold {
			t.Fatalf("ladder not monotonic: %v", info)
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := vtime.NewScheduler()
	c := mustChain(t, testConfig())
	s.Go("q", func(tk *vtime.Task) {
		ti := c.NewTicket()
		_ = ti.Update(tk, 5000)
		ti.Close()
		ti.Close()
		ti.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, l := range c.Info() {
		if l.Holders != 0 {
			t.Fatalf("holders = %d after multiple Close", l.Holders)
		}
	}
}

func TestStringRendering(t *testing.T) {
	c := mustChain(t, testConfig())
	if c.String() == "" {
		t.Fatal("empty String()")
	}
}

// Property: for any interleaving of compilations with random peak usages
// and hold times, (a) holder counts never exceed slots at any level,
// (b) a ticket holding gate i holds every gate below i, and (c) after all
// tasks finish every gate is free.
func TestQuickGatewayInvariants(t *testing.T) {
	type job struct {
		Peak uint32
		Hold uint8
	}
	f := func(jobs []job) bool {
		if len(jobs) > 24 {
			jobs = jobs[:24]
		}
		s := vtime.NewScheduler()
		cfg := testConfig()
		// Long timeouts so slow interleavings don't time out spuriously.
		for i := range cfg.Levels {
			cfg.Levels[i].Timeout = time.Hour * time.Duration(i+1)
		}
		c, err := NewChain(cfg)
		if err != nil {
			return false
		}
		violated := false
		check := func() {
			info := c.Info()
			for i, l := range info {
				if l.Holders > l.Slots {
					violated = true
				}
				if i > 0 && info[i].Holders > info[i-1].Holders {
					// More holders above than below => some ticket skipped
					// a gate.
					violated = true
				}
			}
		}
		for _, j := range jobs {
			j := j
			s.Go("q", func(tk *vtime.Task) {
				ti := c.NewTicket()
				peak := int64(j.Peak % 100000)
				// Grow in 3 steps to exercise incremental acquisition.
				for step := int64(1); step <= 3; step++ {
					if err := ti.Update(tk, peak*step/3); err != nil {
						return // timeout path still valid
					}
					check()
					tk.Sleep(time.Duration(j.Hold) * time.Millisecond)
				}
				ti.Close()
				check()
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		for _, l := range c.Info() {
			if l.Holders != 0 || l.Waiting != 0 {
				return false
			}
		}
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTimeoutErrorRecycled pins the allocation discipline of the retry
// path: every timeout on a chain returns the same recycled *ErrTimeout,
// rewritten in place, and the taxonomy classifies it as shed work
// without formatting anything. Callers that retain the error must copy
// it — this test is the contract saying so.
func TestTimeoutErrorRecycled(t *testing.T) {
	s := vtime.NewScheduler()
	cfg := testConfig()
	c := mustChain(t, cfg)
	s.Go("hog", func(tk *vtime.Task) {
		ti := c.NewTicket()
		if err := ti.Update(tk, 50000); err != nil {
			t.Error(err)
		}
		tk.Sleep(time.Hour)
		ti.Close()
	})
	var errs []error
	for v := 0; v < 2; v++ {
		s.Go("victim", func(tk *vtime.Task) {
			tk.Sleep(time.Millisecond)
			ti := c.NewTicket()
			if err := ti.Update(tk, 50000); err != nil {
				errs = append(errs, err)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(errs) != 2 {
		t.Fatalf("got %d timeout errors, want 2", len(errs))
	}
	if errs[0] != errs[1] {
		t.Fatalf("timeout errors not recycled: %p vs %p", errs[0], errs[1])
	}
	if !errclass.IsShed(errs[0]) {
		t.Fatalf("recycled timeout not classified as shed: %v", errs[0])
	}
	te := errs[0].(*ErrTimeout)
	if allocs := testing.AllocsPerRun(100, func() {
		*te = ErrTimeout{Gate: "big", Wait: 4 * time.Second}
		if !errclass.IsShed(te) {
			t.Error("rewritten timeout lost its class")
		}
	}); allocs != 0 {
		t.Fatalf("recycled timeout rewrite allocates %.1f/op, want 0", allocs)
	}
}
