// Package gateway implements the paper's memory monitors (§4, Figure 1):
// a chain of gateways with progressively higher memory thresholds and
// progressively lower limits on concurrent compilations.
//
// A compilation holds a Ticket. As the compilation's memory usage grows it
// calls Ticket.Update with the new total; when the usage crosses a level's
// threshold the ticket must acquire that level's semaphore before the
// allocation may proceed. Gates are acquired strictly in order (a ticket
// holding gate i holds all gates < i) and released in reverse order when
// the ticket is closed. If a gate cannot be acquired within its timeout the
// compilation is aborted with ErrTimeout — the paper's throttle-induced
// "timeout" error.
//
// The medium and big thresholds may be dynamic (§4.1): the chain divides
// the compile-memory target across the query-size categories, computing
// threshold[i] = target·F[i] / S[i] where F[i] is the fraction of the
// target allotted to the category below gate i and S[i] is the current
// number of compilations in that category.
package gateway

import (
	"fmt"
	"strings"
	"time"

	"compilegate/internal/errclass"
	"compilegate/internal/mem"
	"compilegate/internal/vtime"
)

// ErrTimeout is returned when a compilation waits longer than a gate's
// timeout. The error text identifies the gate and formats lazily — the
// chain recycles one value in place per failure (like the budget's OOM
// errors), so a retry storm of timeouts allocates nothing. Callers that
// keep a timeout past the chain's next failure must copy the value.
type ErrTimeout struct {
	Gate string
	Wait time.Duration
}

func (e *ErrTimeout) Error() string {
	return fmt.Sprintf("gateway: timed out after %v waiting for %s gate", e.Wait, e.Gate)
}

// Is classifies a gate timeout as deliberately shed work: the monitor
// refused the compilation to protect the machine, so a well-behaved
// client does not resubmit it.
func (e *ErrTimeout) Is(target error) bool { return target == errclass.Shed }

// LevelConfig describes one gateway level.
type LevelConfig struct {
	// Name identifies the level ("small", "medium", "big").
	Name string
	// Threshold is the static entry threshold in bytes: a compilation
	// must hold this gate before its memory may exceed the threshold.
	Threshold int64
	// Slots is the number of compilations allowed past this gate at once.
	Slots int
	// Timeout aborts a compilation that waits longer at this gate.
	// Timeouts grow for later gates, as in the paper.
	Timeout time.Duration
	// Dynamic marks the threshold for target-based recomputation.
	Dynamic bool
	// TargetFraction is F in the paper's formula: the fraction of the
	// compile-memory target allotted to the category below this gate.
	TargetFraction float64
	// MinThreshold floors the dynamic threshold so it can never fall
	// below the previous gate's threshold region.
	MinThreshold int64
}

// Config describes a gateway chain.
type Config struct {
	Levels []LevelConfig
}

// DefaultConfig mirrors the paper's production settings for a machine with
// the given CPU count: three monitors; four concurrent compilations per CPU
// at the small gate; one per CPU at the medium gate; a single compilation
// at the big gate. Thresholds are expressed against the given total
// physical memory, sized to the staged compile-memory stock
// (engine.CompileStages): an ad-hoc DSS compilation peaks near
// totalMem/12 on average, so the medium gate catches the upper half of
// that distribution and the big gate only its heaviest tail — on a
// healthy machine the static ladder barely binds, and throttling comes
// from the dynamic (broker-target-driven) thresholds shrinking under
// pressure.
func DefaultConfig(cpus int, totalMem int64) Config {
	return Config{Levels: []LevelConfig{
		{
			Name:      "small",
			Threshold: 380 * mem.KiB, // per-architecture diagnostic-query floor
			Slots:     4 * cpus,
			Timeout:   6 * time.Minute,
		},
		{
			Name:           "medium",
			Threshold:      totalMem / 16, // static fallback; dynamic in practice
			Slots:          cpus,
			Timeout:        12 * time.Minute,
			Dynamic:        true,
			TargetFraction: 0.45,
			MinThreshold:   totalMem / 96,
		},
		{
			Name:           "big",
			Threshold:      totalMem / 6,
			Slots:          1,
			Timeout:        24 * time.Minute,
			Dynamic:        true,
			TargetFraction: 0.45,
			MinThreshold:   totalMem / 12,
		},
	}}
}

// Chain is a live gateway chain.
type Chain struct {
	levels []*level
	target int64 // broker-assigned compile memory target (0 = unset)

	acquires  uint64
	timeouts  uint64
	waitTotal time.Duration

	// timeoutErr is the recycled timeout error, rewritten per failure.
	timeoutErr ErrTimeout
}

type level struct {
	cfg       LevelConfig
	threshold int64 // current effective threshold
	sem       *vtime.Semaphore
	holders   int // tickets currently holding this gate
}

// NewChain validates cfg and builds a chain.
func NewChain(cfg Config) (*Chain, error) {
	if len(cfg.Levels) == 0 {
		return nil, fmt.Errorf("gateway: no levels configured")
	}
	c := &Chain{}
	var prevThreshold int64 = -1
	prevTimeout := time.Duration(0)
	for i, lc := range cfg.Levels {
		if lc.Threshold <= prevThreshold {
			return nil, fmt.Errorf("gateway: level %d (%s) threshold %d not above previous %d",
				i, lc.Name, lc.Threshold, prevThreshold)
		}
		if lc.Slots <= 0 {
			return nil, fmt.Errorf("gateway: level %d (%s) has %d slots", i, lc.Name, lc.Slots)
		}
		if i > 0 && lc.Slots > cfg.Levels[i-1].Slots {
			return nil, fmt.Errorf("gateway: level %d (%s) slots %d exceed previous level's %d",
				i, lc.Name, lc.Slots, cfg.Levels[i-1].Slots)
		}
		if lc.Timeout < prevTimeout {
			return nil, fmt.Errorf("gateway: level %d (%s) timeout %v below previous %v",
				i, lc.Name, lc.Timeout, prevTimeout)
		}
		prevThreshold = lc.Threshold
		prevTimeout = lc.Timeout
		c.levels = append(c.levels, &level{
			cfg:       lc,
			threshold: lc.Threshold,
			sem:       vtime.NewSemaphore("gate-"+lc.Name, lc.Slots),
		})
	}
	return c, nil
}

// Levels returns the number of gateway levels.
func (c *Chain) Levels() int { return len(c.levels) }

// LevelInfo reports the current state of one level.
type LevelInfo struct {
	Name      string
	Threshold int64
	Slots     int
	Holders   int
	Waiting   int
	Timeout   time.Duration
}

// Info returns per-level state, ordered from the small gate up.
func (c *Chain) Info() []LevelInfo {
	out := make([]LevelInfo, len(c.levels))
	for i, l := range c.levels {
		out[i] = LevelInfo{
			Name:      l.cfg.Name,
			Threshold: l.threshold,
			Slots:     l.sem.Cap(),
			Holders:   l.holders,
			Waiting:   l.sem.Waiting(),
			Timeout:   l.cfg.Timeout,
		}
	}
	return out
}

// Acquires returns the total number of successful gate acquisitions.
func (c *Chain) Acquires() uint64 { return c.acquires }

// Timeouts returns the number of gate waits that ended in ErrTimeout.
func (c *Chain) Timeouts() uint64 { return c.timeouts }

// TotalWait returns the aggregate time compilations spent blocked at gates.
func (c *Chain) TotalWait() time.Duration { return c.waitTotal }

// SetTarget installs the broker's compile-memory target and recomputes
// dynamic thresholds. A target of 0 restores static thresholds.
func (c *Chain) SetTarget(target int64) {
	c.target = target
	c.recomputeThresholds()
}

// Target returns the current compile-memory target (0 when unset).
func (c *Chain) Target() int64 { return c.target }

// recomputeThresholds applies the paper's formula: for each dynamic level
// i, the category below it (compilations holding gate i-1 but not gate i,
// or all unthrottled compilations for i==0) may together consume
// target·F; dividing by the category's current population yields the
// per-compilation threshold at which a member must upgrade.
func (c *Chain) recomputeThresholds() {
	if c.target <= 0 {
		for _, l := range c.levels {
			l.threshold = l.cfg.Threshold
		}
		return
	}
	for i, l := range c.levels {
		if !l.cfg.Dynamic {
			l.threshold = l.cfg.Threshold
			continue
		}
		// Population of the category below gate i.
		var pop int
		if i == 0 {
			pop = 1
		} else {
			pop = c.levels[i-1].holders - l.holders
		}
		if pop < 1 {
			pop = 1
		}
		th := int64(float64(c.target) * l.cfg.TargetFraction / float64(pop))
		if th < l.cfg.MinThreshold {
			th = l.cfg.MinThreshold
		}
		// Keep the ladder monotonic: never drop below the previous
		// level's current threshold.
		if i > 0 && th <= c.levels[i-1].threshold {
			th = c.levels[i-1].threshold + 1
		}
		l.threshold = th
	}
}

// Ticket tracks one compilation's progress through the chain.
type Ticket struct {
	chain *Chain
	held  int // gates [0, held) are held
	usage int64
	waits time.Duration
}

// NewTicket starts a compilation at zero usage holding no gates.
func (c *Chain) NewTicket() *Ticket {
	return &Ticket{chain: c}
}

// Held reports how many gates the ticket currently holds.
func (t *Ticket) Held() int { return t.held }

// Usage returns the last usage reported via Update.
func (t *Ticket) Usage() int64 { return t.usage }

// WaitTime returns the total time this ticket spent blocked at gates.
func (t *Ticket) WaitTime() time.Duration { return t.waits }

// Update informs the chain that the compilation's memory usage is now
// usage bytes. If the usage crosses gate thresholds the calling task blocks
// until each gate is acquired (in order). On timeout the ticket's gates are
// released and an *ErrTimeout is returned; the compilation must abort.
func (t *Ticket) Update(task *vtime.Task, usage int64) error {
	t.usage = usage
	for t.held < len(t.chain.levels) {
		l := t.chain.levels[t.held]
		if usage <= l.threshold {
			return nil
		}
		start := task.Now()
		ok := l.sem.AcquireTimeout(task, l.cfg.Timeout)
		waited := task.Now() - start
		t.waits += waited
		t.chain.waitTotal += waited
		if !ok {
			t.chain.timeouts++
			t.chain.timeoutErr = ErrTimeout{Gate: l.cfg.Name, Wait: waited}
			t.Close()
			return &t.chain.timeoutErr
		}
		t.chain.acquires++
		t.held++
		l.holders++
		t.chain.recomputeThresholds()
	}
	return nil
}

// Close releases every gate the ticket holds, in reverse acquisition
// order. It is idempotent.
func (t *Ticket) Close() {
	for t.held > 0 {
		t.held--
		l := t.chain.levels[t.held]
		l.holders--
		l.sem.Release()
	}
	t.chain.recomputeThresholds()
}

// String renders the chain state for diagnostics.
func (c *Chain) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "gateway chain (target=%s):\n", mem.FormatBytes(c.target))
	for _, info := range c.Info() {
		fmt.Fprintf(&sb, "  %-8s threshold=%-12s slots=%d held=%d waiting=%d timeout=%v\n",
			info.Name, mem.FormatBytes(info.Threshold), info.Slots, info.Holders, info.Waiting, info.Timeout)
	}
	return sb.String()
}
