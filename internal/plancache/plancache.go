// Package plancache implements the compiled-plan cache: fingerprint-keyed
// storage of physical plans with LRU eviction, charged against the machine
// budget, shrinkable on broker notice.
//
// The paper's SALES workload deliberately defeats this cache (every query
// is uniquified), which is precisely why compilation memory dominates; the
// OLTP workloads hit it and skip compilation entirely. Both behaviours
// fall out of the fingerprint. Because SALES churns an insert and an
// eviction through the cache per statement, recency is an intrusive
// doubly-linked list over pooled entries rather than container/list.
package plancache

import (
	"fmt"
	"time"

	"compilegate/internal/freelist"
	"compilegate/internal/mem"
	"compilegate/internal/plan"
)

type entry struct {
	key        string
	p          *plan.Plan
	bytes      int64
	added      time.Duration
	prev, next *entry // recency list: front = most recent
}

// Cache is the plan cache.
type Cache struct {
	tracker *mem.Tracker
	entries map[string]*entry
	front   *entry // most recently used
	back    *entry // least recently used
	target  int64

	free freelist.List[entry] // recycled entries

	hits, misses, inserts, evictions uint64
}

// New creates a cache charging plans to tracker.
func New(tracker *mem.Tracker) *Cache {
	return &Cache{
		tracker: tracker,
		entries: make(map[string]*entry),
	}
}

// Bytes returns the cache's current memory.
func (c *Cache) Bytes() int64 { return c.tracker.Used() }

// Len returns the number of cached plans.
func (c *Cache) Len() int { return len(c.entries) }

// Hits, Misses, Evictions expose the counters.
func (c *Cache) Hits() uint64      { return c.hits }
func (c *Cache) Misses() uint64    { return c.misses }
func (c *Cache) Evictions() uint64 { return c.evictions }

// HitRate returns hits/(hits+misses), 0 with no traffic.
func (c *Cache) HitRate() float64 {
	t := c.hits + c.misses
	if t == 0 {
		return 0
	}
	return float64(c.hits) / float64(t)
}

// --- recency list ---

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.front
	if c.front != nil {
		c.front.prev = e
	} else {
		c.back = e
	}
	c.front = e
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.back = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFront(e *entry) {
	if c.front == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// release drops an entry from the map and list and recycles it.
func (c *Cache) release(e *entry) {
	c.unlink(e)
	delete(c.entries, e.key)
	c.tracker.Release(e.bytes)
	e.p = nil
	e.key = ""
	c.free.Put(e)
}

// Get returns the cached plan for the fingerprint, refreshing recency.
func (c *Cache) Get(key string) (*plan.Plan, bool) {
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.moveToFront(e)
	return e.p, true
}

// Put caches a plan under the fingerprint at virtual time now. If memory
// cannot be found even after evicting colder plans the plan is simply not
// cached (compilation already succeeded; caching is best-effort).
// Re-putting an existing key replaces the stored plan and adjusts the
// tracker charge to the new plan's size.
func (c *Cache) Put(key string, p *plan.Plan, now time.Duration) {
	if e, ok := c.entries[key]; ok {
		// Drop the stale entry and release its charge; the fresh plan
		// goes through the normal insert path below (which may evict
		// colder plans to make room if it grew).
		c.release(e)
	}
	bytes := p.PlanBytes()
	// Respect the broker target by making room first.
	if c.target > 0 {
		for c.Bytes()+bytes > c.target && c.evictOldest() {
		}
		if c.Bytes()+bytes > c.target {
			return
		}
	}
	for c.tracker.Reserve(bytes) != nil {
		if !c.evictOldest() {
			return // nothing left to evict; skip caching
		}
	}
	e := c.free.Get()
	if e == nil {
		e = &entry{}
	}
	e.key, e.p, e.bytes, e.added = key, p, bytes, now
	c.pushFront(e)
	c.entries[key] = e
	c.inserts++
}

// Clear drops every cached plan, releasing all tracker charge — the
// cache's state after a crash/restart (an in-memory cache does not
// survive the process).
func (c *Cache) Clear() {
	// Not routed through evictOldest: losing the cache to a crash is not
	// an eviction, so the eviction counter stays a pure LRU measurement.
	for c.back != nil {
		c.release(c.back)
	}
}

// evictOldest removes the least-recently-used plan; reports success.
func (c *Cache) evictOldest() bool {
	e := c.back
	if e == nil {
		return false
	}
	c.release(e)
	c.evictions++
	return true
}

// Shrink releases up to want bytes of plans (LRU first), returning the
// bytes freed. It serves as the cache's mem.Reclaimer and broker handler.
func (c *Cache) Shrink(want int64) int64 {
	var freed int64
	for freed < want {
		before := c.Bytes()
		if !c.evictOldest() {
			break
		}
		freed += before - c.Bytes()
	}
	return freed
}

// SetTarget installs the broker target, immediately shrinking to it.
// Zero clears the target.
func (c *Cache) SetTarget(target int64) {
	c.target = target
	if target > 0 && c.Bytes() > target {
		c.Shrink(c.Bytes() - target)
	}
}

// Target returns the broker target (0 when unset).
func (c *Cache) Target() int64 { return c.target }

// String summarizes the cache.
func (c *Cache) String() string {
	return fmt.Sprintf("plancache: %d plans, %s, hit-rate %.1f%%, evictions %d",
		c.Len(), mem.FormatBytes(c.Bytes()), c.HitRate()*100, c.evictions)
}
