package plancache

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"compilegate/internal/mem"
	"compilegate/internal/plan"
)

// tinyPlan builds a plan with n nodes (n >= 1, left-deep).
func tinyPlan(n int) *plan.Plan {
	root := &plan.Node{Op: plan.OpSeqScan, Table: "t"}
	for i := 1; i < n; i++ {
		root = &plan.Node{Op: plan.OpHashJoin, Left: root, Right: &plan.Node{Op: plan.OpSeqScan}}
		n-- // each join adds two nodes; compensate
	}
	return &plan.Plan{Root: root}
}

func TestGetPutHitMiss(t *testing.T) {
	b := mem.NewBudget(mem.GiB)
	c := New(b.NewTracker("plancache"))
	p := tinyPlan(1)
	if _, ok := c.Get("q1"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("q1", p, 0)
	got, ok := c.Get("q1")
	if !ok || got != p {
		t.Fatal("cached plan not returned")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
	if c.Bytes() != p.PlanBytes() {
		t.Fatalf("bytes = %d, want %d", c.Bytes(), p.PlanBytes())
	}
}

func TestPutDuplicateRefreshes(t *testing.T) {
	b := mem.NewBudget(mem.GiB)
	c := New(b.NewTracker("plancache"))
	p := tinyPlan(1)
	c.Put("q1", p, 0)
	c.Put("q1", p, time.Second)
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Bytes() != p.PlanBytes() {
		t.Fatal("duplicate Put double-charged")
	}
}

// TestPutReplacesStalePlan pins the re-put contract: the cache must
// serve the newest plan and charge its size, not keep the stale entry
// with a refreshed recency.
func TestPutReplacesStalePlan(t *testing.T) {
	b := mem.NewBudget(mem.GiB)
	c := New(b.NewTracker("plancache"))
	old, fresh := tinyPlan(1), tinyPlan(5)
	if old.PlanBytes() == fresh.PlanBytes() {
		t.Fatal("test plans must differ in size")
	}
	c.Put("q1", old, 0)
	c.Put("q1", fresh, time.Second)
	got, ok := c.Get("q1")
	if !ok || got != fresh {
		t.Fatal("re-put kept the stale plan")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Bytes() != fresh.PlanBytes() {
		t.Fatalf("bytes = %d, want the fresh plan's %d", c.Bytes(), fresh.PlanBytes())
	}

	// Shrinking on re-put releases the difference too.
	c.Put("q1", old, 2*time.Second)
	if c.Bytes() != old.PlanBytes() {
		t.Fatalf("bytes = %d after shrink, want %d", c.Bytes(), old.PlanBytes())
	}
}

func TestLRUEvictionUnderBudget(t *testing.T) {
	p := tinyPlan(1)
	// Budget fits exactly 3 plans.
	b := mem.NewBudget(3 * p.PlanBytes())
	c := New(b.NewTracker("plancache"))
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("q%d", i), tinyPlan(1), time.Duration(i))
	}
	// Touch q0 so q1 is the LRU.
	c.Get("q0")
	c.Put("q3", tinyPlan(1), 10)
	if _, ok := c.Get("q1"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get("q0"); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d", c.Evictions())
	}
}

func TestShrink(t *testing.T) {
	b := mem.NewBudget(mem.GiB)
	c := New(b.NewTracker("plancache"))
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("q%d", i), tinyPlan(1), time.Duration(i))
	}
	before := c.Bytes()
	freed := c.Shrink(before / 2)
	if freed < before/2 {
		t.Fatalf("freed %d of requested %d", freed, before/2)
	}
	if c.Bytes() != before-freed {
		t.Fatal("bytes inconsistent after shrink")
	}
	// Oldest (q0...) went first.
	if _, ok := c.Get("q0"); ok {
		t.Fatal("oldest survived shrink")
	}
	if _, ok := c.Get("q9"); !ok {
		t.Fatal("newest evicted by shrink")
	}
}

func TestSetTargetShrinksAndCaps(t *testing.T) {
	b := mem.NewBudget(mem.GiB)
	c := New(b.NewTracker("plancache"))
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("q%d", i), tinyPlan(1), 0)
	}
	target := c.Bytes() / 2
	c.SetTarget(target)
	if c.Bytes() > target {
		t.Fatalf("bytes %d > target %d", c.Bytes(), target)
	}
	// New puts respect the cap (evict-to-fit).
	lenBefore := c.Len()
	c.Put("new", tinyPlan(1), 1)
	if c.Bytes() > target {
		t.Fatal("Put grew past target")
	}
	if c.Len() != lenBefore {
		t.Fatalf("len changed unexpectedly: %d -> %d", lenBefore, c.Len())
	}
	c.SetTarget(0)
	if c.Target() != 0 {
		t.Fatal("target not cleared")
	}
}

func TestPutSkipsWhenNoRoom(t *testing.T) {
	p := tinyPlan(1)
	b := mem.NewBudget(p.PlanBytes() / 2) // can't fit even one
	c := New(b.NewTracker("plancache"))
	c.Put("q", p, 0)
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("plan cached despite no memory")
	}
}

func TestString(t *testing.T) {
	b := mem.NewBudget(mem.GiB)
	c := New(b.NewTracker("plancache"))
	if c.String() == "" {
		t.Fatal("empty String")
	}
}

// Property: cache bytes always equal the sum of cached plans' bytes and
// never exceed the budget; Len matches the LRU list.
func TestQuickCacheAccounting(t *testing.T) {
	f := func(ops []uint8) bool {
		p := tinyPlan(1)
		b := mem.NewBudget(5 * p.PlanBytes())
		c := New(b.NewTracker("plancache"))
		for i, op := range ops {
			key := fmt.Sprintf("q%d", op%12)
			if op%3 == 0 {
				c.Get(key)
			} else {
				c.Put(key, tinyPlan(1), time.Duration(i))
			}
			if c.Bytes() != int64(c.Len())*p.PlanBytes() {
				return false
			}
			if c.Bytes() > b.Total() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
