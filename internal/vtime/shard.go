package vtime

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// Shards is a deterministic multi-event-loop runtime: K single-goroutine
// vtime shards, each owning one reusable Scheduler (its own run queue,
// timer wheel, and task slab), executing provably-independent jobs —
// jobs that share no mutable simulation state, such as the separate
// server+client populations of a sweep.
//
// Determinism is by construction, not by locking:
//
//   - Placement is static: job i always runs on shard i%K, and each
//     shard executes its jobs in submission order. There is no work
//     stealing, so which scheduler runs a job is a pure function of
//     (i, K) — the deliberate tradeoff against dynamic balancing, paid
//     for the ability to reuse each shard's scheduler and arenas.
//   - Every job starts on a Reset scheduler, whose observable state is
//     identical to a fresh one. A job's virtual-time execution therefore
//     never depends on K or on what ran before it on the same shard:
//     per-job results (and every golden digest derived from them) are
//     bit-identical at any K, including K=1.
//   - The completion ledger is merged in (deadline, shard, seq) order —
//     final virtual time first, shard index then per-shard submission
//     sequence breaking ties — so the global completion order is itself
//     deterministic for a given K, independent of host scheduling.
type Shards struct {
	k       int
	batches []chan shardBatch
	wg      sync.WaitGroup
	closed  bool
}

// Completion is one job's entry in the merged ledger of a Shards run.
type Completion struct {
	// Deadline is the job's final virtual time — when its simulation
	// completed on the shard's clock.
	Deadline time.Duration
	// Shard is the event loop the job ran on (= Job % K).
	Shard int
	// Seq is the job's submission sequence within its shard.
	Seq int
	// Job is the submitted job index.
	Job int
	// Err is the job's error, if any.
	Err error
}

type shardJob struct {
	idx, seq int
	out      *Completion
}

type shardBatch struct {
	jobs []shardJob
	fn   func(i int, sched *Scheduler) (time.Duration, error)
	done *sync.WaitGroup
}

// NewShards starts K shard event loops; k <= 0 uses GOMAXPROCS. Close
// must be called to stop the shard goroutines.
func NewShards(k int) *Shards {
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	sh := &Shards{k: k, batches: make([]chan shardBatch, k)}
	for i := 0; i < k; i++ {
		ch := make(chan shardBatch)
		sh.batches[i] = ch
		sh.wg.Add(1)
		go sh.shardLoop(i, ch)
	}
	return sh
}

// K returns the shard count.
func (sh *Shards) K() int { return sh.k }

// shardLoop is one shard: a goroutine owning one scheduler, reused via
// Reset across every job the shard is assigned. A job that leaves the
// scheduler non-idle (a failed run abandoning tasks) poisons it; the
// shard replaces it with a fresh one, which is observably equivalent.
func (sh *Shards) shardLoop(shard int, ch <-chan shardBatch) {
	defer sh.wg.Done()
	sched := NewScheduler()
	for b := range ch {
		for _, j := range b.jobs {
			if !sched.Idle() {
				sched = NewScheduler()
			} else {
				sched.Reset()
			}
			deadline, err := b.fn(j.idx, sched)
			*j.out = Completion{
				Deadline: deadline,
				Shard:    shard,
				Seq:      j.seq,
				Job:      j.idx,
				Err:      err,
			}
			b.done.Done()
		}
	}
}

// Run executes jobs 0..n-1 across the shards (job i on shard i%K, each
// shard in ascending submission order) and returns the completion
// ledger merged by (deadline, shard, seq). fn receives the job index
// and the shard's scheduler — freshly Reset, so the job must create all
// simulation state on it and drive it to completion — and returns the
// job's final virtual time. Job outputs other than the ledger entry are
// the caller's to collect (typically into a results slice indexed by
// job, which keeps them in submission order regardless of K).
func (sh *Shards) Run(n int, fn func(i int, sched *Scheduler) (time.Duration, error)) []Completion {
	ledger := make([]Completion, n)
	if n == 0 {
		return ledger
	}
	var done sync.WaitGroup
	done.Add(n)
	perShard := make([][]shardJob, sh.k)
	for i := 0; i < n; i++ {
		s := i % sh.k
		perShard[s] = append(perShard[s], shardJob{idx: i, seq: len(perShard[s]), out: &ledger[i]})
	}
	for s, jobs := range perShard {
		if len(jobs) == 0 {
			continue
		}
		sh.batches[s] <- shardBatch{jobs: jobs, fn: fn, done: &done}
	}
	done.Wait()
	sort.SliceStable(ledger, func(a, b int) bool {
		la, lb := ledger[a], ledger[b]
		if la.Deadline != lb.Deadline {
			return la.Deadline < lb.Deadline
		}
		if la.Shard != lb.Shard {
			return la.Shard < lb.Shard
		}
		return la.Seq < lb.Seq
	})
	return ledger
}

// Close stops the shard goroutines. Pending Run calls must have
// returned; Close is idempotent.
func (sh *Shards) Close() {
	if sh.closed {
		return
	}
	sh.closed = true
	for _, ch := range sh.batches {
		close(ch)
	}
	sh.wg.Wait()
}
