package vtime

import (
	"math/rand"
	"testing"
	"time"
)

// refTimer is the reference model the wheel is checked against: the old
// binary heap's contract, a priority queue ordered by (deadline, arming
// sequence).
type refTimer struct {
	t    *Task
	wake time.Duration
	seq  int
}

// refPopDue removes and returns, in (wake, seq) order, every reference
// entry due at the earliest pending deadline.
func refPopDue(ref *[]refTimer) (time.Duration, []*Task) {
	entries := *ref
	min := entries[0].wake
	for _, e := range entries[1:] {
		if e.wake < min {
			min = e.wake
		}
	}
	var due []refTimer
	keep := entries[:0]
	for _, e := range entries {
		if e.wake == min {
			due = append(due, e)
		} else {
			keep = append(keep, e)
		}
	}
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && due[j].seq < due[j-1].seq; j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	*ref = keep
	out := make([]*Task, len(due))
	for i, e := range due {
		out[i] = e.t
	}
	return min, out
}

// TestWheelHeapDifferential drives the timer wheel through randomized
// arm/cancel/fire sequences and checks that every fired batch matches the
// reference heap order exactly: same instants, same tasks, same
// within-instant order. Deadline spans range from sub-tick nanoseconds to
// hours so the mix exercises same-bucket ties, level-0 placement, and
// multi-level cascades.
func TestWheelHeapDifferential(t *testing.T) {
	spans := []time.Duration{
		1, 100, time.Microsecond, 300 * time.Microsecond, // sub-tick
		5 * time.Millisecond, 80 * time.Millisecond, // level 0/1
		2 * time.Second, 90 * time.Second, // level 1/2
		45 * time.Minute, 7 * time.Hour, // level 3/4
	}
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := &timerWheel{}
		var ref []refTimer
		var now time.Duration
		seq := 0
		var armed []*Task

		arm := func() {
			d := time.Duration(1 + rng.Int63n(int64(spans[rng.Intn(len(spans))])))
			if rng.Intn(4) == 0 && len(ref) > 0 {
				// Deliberate tie with an already-armed deadline.
				d = ref[rng.Intn(len(ref))].wake - now
				if d <= 0 {
					d = 1
				}
			}
			tk := &Task{wlevel: -1, wakeAt: now + d}
			w.add(tk)
			seq++
			ref = append(ref, refTimer{t: tk, wake: tk.wakeAt, seq: seq})
			armed = append(armed, tk)
		}
		cancel := func() {
			if len(armed) == 0 {
				return
			}
			i := rng.Intn(len(armed))
			tk := armed[i]
			w.remove(tk)
			armed = append(armed[:i], armed[i+1:]...)
			for j, e := range ref {
				if e.t == tk {
					ref = append(ref[:j], ref[j+1:]...)
					break
				}
			}
		}
		fire := func() {
			if len(ref) == 0 {
				return
			}
			wantAt, want := refPopDue(&ref)
			b := w.findMinBucket()
			if b == nil {
				t.Fatalf("seed %d: wheel empty with %d reference timers", seed, len(want))
			}
			min := b.head.wakeAt
			for tk := b.head.wnext; tk != nil; tk = tk.wnext {
				if tk.wakeAt < min {
					min = tk.wakeAt
				}
			}
			if min != wantAt {
				t.Fatalf("seed %d: wheel fires at %v, heap at %v", seed, min, wantAt)
			}
			now = min
			w.cur = uint64(min) >> tickShift
			var got []*Task
			for tk := b.head; tk != nil; {
				next := tk.wnext
				if tk.wakeAt == min {
					w.remove(tk)
					got = append(got, tk)
				}
				tk = next
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d: wheel fired %d timers at %v, heap fired %d",
					seed, len(got), min, len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d: dispatch order diverges at position %d of the %v batch",
						seed, i, min)
				}
				for j, tk := range armed {
					if tk == got[i] {
						armed = append(armed[:j], armed[j+1:]...)
						break
					}
				}
			}
		}

		for op := 0; op < 4000; op++ {
			switch r := rng.Intn(10); {
			case r < 5:
				arm()
			case r < 7:
				cancel()
			default:
				fire()
			}
			if w.count != len(ref) {
				t.Fatalf("seed %d: wheel count %d, reference %d", seed, w.count, len(ref))
			}
		}
		for len(ref) > 0 {
			fire()
		}
		if w.count != 0 {
			t.Fatalf("seed %d: %d timers left in the wheel after drain", seed, w.count)
		}
	}
}

// TestWheelFarDeadline arms a deadline in the wheel's coarsest levels —
// crossing high power-of-two tick boundaries on the way — and checks it
// still fires at the exact requested instant.
func TestWheelFarDeadline(t *testing.T) {
	s := NewScheduler()
	const far = 200 * 365 * 24 * time.Hour // ~200 years out
	var woke time.Duration
	s.GoFunc("far", func(tk *Task) {
		tk.SleepThen(far, StepFunc(func(tk *Task) { woke = tk.Now() }))
	})
	s.GoFunc("near", func(tk *Task) {
		tk.SleepThen(time.Second, StepFunc(func(tk *Task) {}))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != far {
		t.Fatalf("far timer fired at %v, want %v", woke, far)
	}
}

// BenchmarkTimerWheel measures a dense arm/cancel/fire mix with 10k live
// timers: every dispatched event re-arms its timer at a pseudo-random
// deadline, and a tenth of the tasks wait with timeouts that a signaler
// cancels in bursts — the cancellation path stays hot. Reported
// sim-events/sec is the scheduler's own dispatch throughput.
func BenchmarkTimerWheel(b *testing.B) {
	const tasks = 10_000
	b.ReportAllocs()
	start := time.Now()
	var events uint64
	for i := 0; i < b.N; i++ {
		s := NewScheduler()
		q := NewWaitQueue("bench")
		remaining := tasks * 20 // dispatches before the run winds down
		var spin func(tk *Task)
		state := uint64(12345)
		nextDur := func() time.Duration {
			// xorshift: cheap deterministic spread over ~1µs..1.1s,
			// crossing several wheel levels.
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return time.Duration(1000 + state%(1<<30))
		}
		spin = func(tk *Task) {
			if remaining <= 0 {
				return
			}
			remaining--
			tk.SleepThen(nextDur(), StepFunc(spin))
		}
		var wait func(tk *Task)
		wait = func(tk *Task) {
			if remaining <= 0 {
				return
			}
			remaining--
			q.WaitTimeoutThen(tk, nextDur(), StepFunc(wait))
		}
		for j := 0; j < tasks; j++ {
			if j%10 == 0 {
				s.GoFunc("w", wait)
			} else {
				s.GoFunc("t", spin)
			}
		}
		s.GoFunc("signaler", StepFunc(func(tk *Task) {
			var tick func(tk *Task)
			tick = func(tk *Task) {
				for j := 0; j < 64; j++ {
					if !q.Signal() { // cancels the waiter's timer
						break
					}
				}
				if remaining > 0 {
					tk.SleepThen(50*time.Millisecond, StepFunc(tick))
				}
			}
			tick(tk)
		}))
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
		events += s.Events()
	}
	if sec := time.Since(start).Seconds(); sec > 0 {
		b.ReportMetric(float64(events)/sec, "sim-events/sec")
	}
}
