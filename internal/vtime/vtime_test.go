package vtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSleepOrdering(t *testing.T) {
	s := NewScheduler()
	var order []string
	s.Go("b", func(tk *Task) {
		tk.Sleep(2 * time.Second)
		order = append(order, "b")
	})
	s.Go("a", func(tk *Task) {
		tk.Sleep(1 * time.Second)
		order = append(order, "a")
	})
	s.Go("c", func(tk *Task) {
		tk.Sleep(3 * time.Second)
		order = append(order, "c")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", s.Now())
	}
}

func TestSleepZeroYields(t *testing.T) {
	s := NewScheduler()
	var order []string
	s.Go("x", func(tk *Task) {
		order = append(order, "x1")
		tk.Sleep(0)
		order = append(order, "x2")
	})
	s.Go("y", func(tk *Task) {
		order = append(order, "y1")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "x1" || order[1] != "y1" || order[2] != "x2" {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 0 {
		t.Fatalf("yield advanced the clock to %v", s.Now())
	}
}

func TestSleepUntil(t *testing.T) {
	s := NewScheduler()
	var at time.Duration
	s.Go("x", func(tk *Task) {
		tk.SleepUntil(5 * time.Second)
		at = tk.Now()
		tk.SleepUntil(time.Second) // already past: yields, no time travel
		if tk.Now() != 5*time.Second {
			t.Errorf("clock went backwards: %v", tk.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", at)
	}
}

func TestWaitSignal(t *testing.T) {
	s := NewScheduler()
	q := NewWaitQueue("q")
	var got time.Duration
	s.Go("waiter", func(tk *Task) {
		q.Wait(tk)
		got = tk.Now()
	})
	s.Go("signaler", func(tk *Task) {
		tk.Sleep(7 * time.Second)
		if !q.Signal() {
			t.Error("Signal found no waiter")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 7*time.Second {
		t.Fatalf("waiter woke at %v, want 7s", got)
	}
}

func TestWaitTimeout(t *testing.T) {
	s := NewScheduler()
	q := NewWaitQueue("q")
	var signaled bool
	var woke time.Duration
	s.Go("waiter", func(tk *Task) {
		signaled = q.WaitTimeout(tk, 3*time.Second)
		woke = tk.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if signaled {
		t.Fatal("WaitTimeout reported signaled, want timeout")
	}
	if woke != 3*time.Second {
		t.Fatalf("woke at %v, want 3s", woke)
	}
	if q.Len() != 0 {
		t.Fatalf("queue still holds %d waiters after timeout", q.Len())
	}
}

func TestWaitTimeoutSignaledFirst(t *testing.T) {
	s := NewScheduler()
	q := NewWaitQueue("q")
	var signaled bool
	s.Go("waiter", func(tk *Task) {
		signaled = q.WaitTimeout(tk, 10*time.Second)
	})
	s.Go("signaler", func(tk *Task) {
		tk.Sleep(1 * time.Second)
		q.Signal()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !signaled {
		t.Fatal("waiter timed out despite early signal")
	}
	if s.Now() != 1*time.Second {
		t.Fatalf("run ended at %v, want 1s (timer should be cancelled)", s.Now())
	}
}

func TestBroadcast(t *testing.T) {
	s := NewScheduler()
	q := NewWaitQueue("q")
	woken := 0
	for i := 0; i < 5; i++ {
		s.Go("w", func(tk *Task) {
			q.Wait(tk)
			woken++
		})
	}
	s.Go("b", func(tk *Task) {
		tk.Sleep(time.Second)
		if n := q.Broadcast(); n != 5 {
			t.Errorf("Broadcast woke %d, want 5", n)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := NewScheduler()
	q := NewWaitQueue("q")
	s.Go("stuck", func(tk *Task) { q.Wait(tk) })
	err := s.Run()
	de, ok := err.(*ErrDeadlock)
	if !ok {
		t.Fatalf("err = %v, want *ErrDeadlock", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck" {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

func TestFIFOSignalOrder(t *testing.T) {
	s := NewScheduler()
	q := NewWaitQueue("q")
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		s.Go("w", func(tk *Task) {
			tk.Sleep(time.Duration(i) * time.Millisecond) // enqueue in order
			q.Wait(tk)
			order = append(order, i)
		})
	}
	s.Go("sig", func(tk *Task) {
		tk.Sleep(time.Second)
		for q.Signal() {
			tk.Yield() // let each woken task record before the next signal
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("wake order = %v, want FIFO", order)
		}
	}
}

func TestSemaphoreBasic(t *testing.T) {
	s := NewScheduler()
	sem := NewSemaphore("s", 2)
	maxHeld, held := 0, 0
	for i := 0; i < 6; i++ {
		s.Go("t", func(tk *Task) {
			sem.Acquire(tk)
			held++
			if held > maxHeld {
				maxHeld = held
			}
			tk.Sleep(time.Second)
			held--
			sem.Release()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxHeld != 2 {
		t.Fatalf("max concurrent holders = %d, want 2", maxHeld)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("6 tasks × 1s at width 2 finished at %v, want 3s", s.Now())
	}
}

func TestSemaphoreTimeout(t *testing.T) {
	s := NewScheduler()
	sem := NewSemaphore("s", 1)
	var got bool
	s.Go("holder", func(tk *Task) {
		sem.Acquire(tk)
		tk.Sleep(10 * time.Second)
		sem.Release()
	})
	s.Go("waiter", func(tk *Task) {
		tk.Sleep(time.Millisecond)
		got = sem.AcquireTimeout(tk, time.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("AcquireTimeout succeeded, want timeout")
	}
	if sem.Held() != 0 {
		t.Fatalf("held = %d after all released, want 0", sem.Held())
	}
}

func TestSemaphoreHandoffNoBarge(t *testing.T) {
	s := NewScheduler()
	sem := NewSemaphore("s", 1)
	var order []string
	s.Go("holder", func(tk *Task) {
		sem.Acquire(tk)
		tk.Sleep(time.Second)
		sem.Release()
	})
	s.Go("first", func(tk *Task) {
		tk.Sleep(10 * time.Millisecond)
		sem.Acquire(tk)
		order = append(order, "first")
		sem.Release()
	})
	s.Go("barger", func(tk *Task) {
		tk.Sleep(999 * time.Millisecond)
		// Arrives just before release; must queue behind "first".
		sem.Acquire(tk)
		order = append(order, "barger")
		sem.Release()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "first" {
		t.Fatalf("order = %v, want [first barger]", order)
	}
}

func TestSemaphoreSetCapGrow(t *testing.T) {
	s := NewScheduler()
	sem := NewSemaphore("s", 0)
	done := 0
	for i := 0; i < 3; i++ {
		s.Go("w", func(tk *Task) {
			sem.Acquire(tk)
			done++
			sem.Release()
		})
	}
	s.Go("grower", func(tk *Task) {
		tk.Sleep(time.Second)
		sem.SetCap(2)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Fatalf("done = %d, want 3", done)
	}
}

func TestSemaphoreShrinkDrains(t *testing.T) {
	s := NewScheduler()
	sem := NewSemaphore("s", 2)
	concurrentAfterShrink := 0
	s.Go("a", func(tk *Task) {
		sem.Acquire(tk)
		tk.Sleep(2 * time.Second)
		sem.Release()
	})
	s.Go("b", func(tk *Task) {
		sem.Acquire(tk)
		tk.Sleep(4 * time.Second)
		sem.Release()
	})
	s.Go("shrink", func(tk *Task) {
		tk.Sleep(time.Second)
		sem.SetCap(1)
	})
	s.Go("late", func(tk *Task) {
		tk.Sleep(3 * time.Second) // a released at 2s, but cap=1 and b holds
		sem.Acquire(tk)
		concurrentAfterShrink = sem.Held()
		if tk.Now() != 4*time.Second {
			t.Errorf("late acquired at %v, want 4s", tk.Now())
		}
		sem.Release()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if concurrentAfterShrink != 1 {
		t.Fatalf("held after shrink = %d, want 1", concurrentAfterShrink)
	}
}

func TestCPUSetSingleTask(t *testing.T) {
	s := NewScheduler()
	cpu := NewCPUSet(4, 50*time.Millisecond)
	s.Go("t", func(tk *Task) {
		cpu.Use(tk, time.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != time.Second {
		t.Fatalf("1s of CPU on idle pool took %v", s.Now())
	}
	if cpu.BusyTime() != time.Second {
		t.Fatalf("BusyTime = %v, want 1s", cpu.BusyTime())
	}
}

func TestCPUSetContention(t *testing.T) {
	// 2 CPUs, 4 tasks × 1s CPU each => 4s of work / 2 CPUs = 2s elapsed.
	s := NewScheduler()
	cpu := NewCPUSet(2, 100*time.Millisecond)
	for i := 0; i < 4; i++ {
		s.Go("t", func(tk *Task) { cpu.Use(tk, time.Second) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("elapsed = %v, want 2s", s.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		s := NewScheduler()
		q := NewWaitQueue("q")
		sem := NewSemaphore("sem", 2)
		var log []string
		for i := 0; i < 8; i++ {
			i := i
			s.Go("t", func(tk *Task) {
				tk.Sleep(time.Duration(i%3) * time.Millisecond)
				sem.Acquire(tk)
				tk.Sleep(time.Duration(10-i) * time.Millisecond)
				sem.Release()
				if i%2 == 0 {
					q.Signal()
				} else if i < 5 {
					q.WaitTimeout(tk, 20*time.Millisecond)
				}
				log = append(log, tk.Name()+string(rune('0'+i)))
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// Property: for any set of sleep durations, tasks wake in sorted order of
// duration and the final clock equals the max.
func TestQuickSleepProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 50 {
			durs = durs[:50]
		}
		s := NewScheduler()
		var woke []time.Duration
		var maxD time.Duration
		for _, u := range durs {
			d := time.Duration(u) * time.Microsecond
			if d > maxD {
				maxD = d
			}
			s.Go("t", func(tk *Task) {
				tk.Sleep(d)
				woke = append(woke, tk.Now())
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 1; i < len(woke); i++ {
			if woke[i] < woke[i-1] {
				return false
			}
		}
		return s.Now() == maxD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a semaphore never admits more holders than its capacity, for
// random acquire/hold/release schedules.
func TestQuickSemaphoreNeverOverCap(t *testing.T) {
	f := func(capRaw uint8, holds []uint8) bool {
		capN := int(capRaw%4) + 1
		if len(holds) > 40 {
			holds = holds[:40]
		}
		s := NewScheduler()
		sem := NewSemaphore("s", capN)
		held, over := 0, false
		for _, h := range holds {
			h := h
			s.Go("t", func(tk *Task) {
				tk.Sleep(time.Duration(h%7) * time.Millisecond)
				sem.Acquire(tk)
				held++
				if held > capN {
					over = true
				}
				tk.Sleep(time.Duration(h) * time.Millisecond)
				held--
				sem.Release()
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		return !over && sem.Held() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGoFromTask(t *testing.T) {
	s := NewScheduler()
	var childRan bool
	s.Go("parent", func(tk *Task) {
		tk.Scheduler().Go("child", func(c *Task) {
			c.Sleep(time.Second)
			childRan = true
		})
		tk.Sleep(2 * time.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child task never ran")
	}
}
