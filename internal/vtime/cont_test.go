package vtime

import (
	"testing"
	"time"
)

// TestContinuationSleepChain drives a pure continuation task (no
// goroutine) through a SleepThen chain and checks the virtual
// timestamps it observes.
func TestContinuationSleepChain(t *testing.T) {
	s := NewScheduler()
	var wakes []time.Duration
	var step func(tk *Task)
	step = func(tk *Task) {
		wakes = append(wakes, tk.Now())
		if len(wakes) < 3 {
			tk.SleepThen(2*time.Second, StepFunc(step))
		}
		// Returning without arming a resume point exits the task.
	}
	s.GoFunc("chain", step)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{0, 2 * time.Second, 4 * time.Second}
	if len(wakes) != len(want) {
		t.Fatalf("wakes = %v, want %v", wakes, want)
	}
	for i := range want {
		if wakes[i] != want[i] {
			t.Fatalf("wake %d at %v, want %v", i, wakes[i], want[i])
		}
	}
	if s.Live() != 0 {
		t.Fatalf("live = %d after Run", s.Live())
	}
}

// TestContinuationWaitSignal checks WaitThen wake order (FIFO) with a
// mix of continuation and blocking-style waiters on one queue.
func TestContinuationWaitSignal(t *testing.T) {
	s := NewScheduler()
	q := NewWaitQueue("q")
	var order []string
	s.GoFunc("c1", func(tk *Task) {
		q.WaitThen(tk, StepFunc(func(tk *Task) { order = append(order, "c1") }))
	})
	s.Go("g1", func(tk *Task) {
		q.Wait(tk)
		order = append(order, "g1")
	})
	s.GoFunc("c2", func(tk *Task) {
		q.WaitThen(tk, StepFunc(func(tk *Task) { order = append(order, "c2") }))
	})
	s.GoFunc("signaler", func(tk *Task) {
		tk.SleepThen(time.Second, StepFunc(func(tk *Task) {
			if n := q.Broadcast(); n != 3 {
				t.Errorf("Broadcast woke %d, want 3", n)
			}
		}))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "c1" || order[1] != "g1" || order[2] != "c2" {
		t.Fatalf("wake order = %v, want [c1 g1 c2]", order)
	}
}

// TestContinuationWaitTimeout checks both outcomes of WaitTimeoutThen
// via Task.TimedOut, and that a timed-out waiter is unlinked from the
// queue without disturbing FIFO order of the others.
func TestContinuationWaitTimeout(t *testing.T) {
	s := NewScheduler()
	q := NewWaitQueue("q")
	var events []string
	s.GoFunc("early", func(tk *Task) {
		q.WaitTimeoutThen(tk, time.Second, StepFunc(func(tk *Task) {
			if tk.TimedOut() {
				events = append(events, "early-timeout")
			} else {
				events = append(events, "early-signaled")
			}
		}))
	})
	s.GoFunc("late", func(tk *Task) {
		q.WaitTimeoutThen(tk, time.Minute, StepFunc(func(tk *Task) {
			if tk.TimedOut() {
				events = append(events, "late-timeout")
			} else {
				events = append(events, "late-signaled")
			}
		}))
	})
	s.GoFunc("signaler", func(tk *Task) {
		tk.SleepThen(10*time.Second, StepFunc(func(tk *Task) {
			q.Signal()
		}))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != "early-timeout" || events[1] != "late-signaled" {
		t.Fatalf("events = %v, want [early-timeout late-signaled]", events)
	}
}

// TestContinuationDeadlockReport checks that continuation tasks blocked
// forever are named in the deadlock error exactly like goroutine tasks.
func TestContinuationDeadlockReport(t *testing.T) {
	s := NewScheduler()
	q := NewWaitQueue("q")
	s.GoFunc("cont-waiter", func(tk *Task) {
		q.WaitThen(tk, StepFunc(func(tk *Task) {}))
	})
	s.Go("goro-waiter", func(tk *Task) {
		q.Wait(tk)
	})
	err := s.Run()
	dl, ok := err.(*ErrDeadlock)
	if !ok {
		t.Fatalf("Run = %v, want *ErrDeadlock", err)
	}
	if len(dl.Blocked) != 2 || dl.Blocked[0] != "cont-waiter" || dl.Blocked[1] != "goro-waiter" {
		t.Fatalf("blocked = %v, want sorted [cont-waiter goro-waiter]", dl.Blocked)
	}
}

// TestContinuationYieldInterleave checks YieldThen lets another task run
// at the same virtual instant.
func TestContinuationYieldInterleave(t *testing.T) {
	s := NewScheduler()
	var order []string
	s.GoFunc("a", func(tk *Task) {
		order = append(order, "a1")
		tk.YieldThen(StepFunc(func(tk *Task) {
			order = append(order, "a2")
			if tk.Now() != 0 {
				t.Errorf("yield advanced the clock to %v", tk.Now())
			}
		}))
	})
	s.GoFunc("b", func(tk *Task) {
		order = append(order, "b")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a1" || order[1] != "b" || order[2] != "a2" {
		t.Fatalf("order = %v, want [a1 b a2]", order)
	}
}

// TestAwaitSyncAndParked exercises both Await paths from a
// blocking-style task: a composite op that completes synchronously and
// one that parks.
func TestAwaitSyncAndParked(t *testing.T) {
	s := NewScheduler()
	var afterSync, afterParked time.Duration
	s.Go("task", func(tk *Task) {
		// Synchronous completion: the op calls k inline, no round trip.
		tk.Await(func(k Step) { k.Run(tk) })
		afterSync = tk.Now()
		// Parked completion: the op arms a timer.
		tk.Await(func(k Step) { tk.SleepThen(3*time.Second, k) })
		afterParked = tk.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if afterSync != 0 {
		t.Fatalf("sync Await advanced clock to %v", afterSync)
	}
	if afterParked != 3*time.Second {
		t.Fatalf("parked Await resumed at %v, want 3s", afterParked)
	}
}

// TestSemaphoreAcquireThen checks the continuation acquire paths,
// including the slot handoff from Release.
func TestSemaphoreAcquireThen(t *testing.T) {
	s := NewScheduler()
	m := NewSemaphore("m", 1)
	var got []string
	s.GoFunc("holder", func(tk *Task) {
		m.AcquireThen(tk, StepFunc(func(tk *Task) {
			got = append(got, "holder")
			tk.SleepThen(5*time.Second, StepFunc(func(tk *Task) {
				m.Release()
			}))
		}))
	})
	s.GoFunc("waiter", func(tk *Task) {
		m.AcquireTimeoutThen(tk, time.Minute, StepFunc(func(tk *Task) {
			if tk.TimedOut() {
				t.Error("waiter timed out despite Release")
				return
			}
			got = append(got, "waiter")
			if tk.Now() != 5*time.Second {
				t.Errorf("waiter acquired at %v, want 5s", tk.Now())
			}
			m.Release()
		}))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "holder" || got[1] != "waiter" {
		t.Fatalf("order = %v, want [holder waiter]", got)
	}
	if m.Held() != 0 {
		t.Fatalf("held = %d after run", m.Held())
	}
}

// TestCPUSetUseThen checks that the continuation CPU op charges the same
// virtual time as the blocking wrapper and respects quantum contention.
func TestCPUSetUseThen(t *testing.T) {
	s := NewScheduler()
	c := NewCPUSet(1, 100*time.Millisecond)
	var contDone, goroDone time.Duration
	s.GoFunc("cont", func(tk *Task) {
		c.UseThen(tk, 250*time.Millisecond, StepFunc(func(tk *Task) {
			contDone = tk.Now()
		}))
	})
	s.Go("goro", func(tk *Task) {
		c.Use(tk, 250*time.Millisecond)
		goroDone = tk.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// One processor, two 250ms demands in 100ms quanta: the tasks
	// interleave quantum by quantum, finishing at 450ms and 500ms.
	if contDone != 450*time.Millisecond {
		t.Fatalf("cont finished at %v, want 450ms", contDone)
	}
	if goroDone != 500*time.Millisecond {
		t.Fatalf("goro finished at %v, want 500ms", goroDone)
	}
	if c.BusyTime() != 500*time.Millisecond {
		t.Fatalf("busy = %v, want 500ms", c.BusyTime())
	}
}

// TestEventsCounter checks the dispatch counter feeding sim-events/sec.
func TestEventsCounter(t *testing.T) {
	s := NewScheduler()
	s.GoFunc("a", func(tk *Task) {
		tk.SleepThen(time.Second, StepFunc(func(tk *Task) {}))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Events() != 2 {
		t.Fatalf("Events = %d, want 2 (spawn dispatch + timer wake)", s.Events())
	}
}
