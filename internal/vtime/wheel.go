package vtime

import "math/bits"

// Timer-wheel geometry. One tick is 2^tickShift nanoseconds (~1.05 ms);
// each level holds 64 slots and each level's slots are 64x wider than the
// level below, so level 0 resolves single ticks and higher levels hold
// coarser horizons. Placement is by the highest bit where the deadline's
// tick differs from the clock's tick, so the level count must cover the
// whole 64-bit XOR range: eleven levels (66 bits) index any deadline a
// time.Duration can express, with no clamping or overflow cases.
const (
	tickShift   = 20
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 11
)

// timerBucket is one wheel slot: an intrusive doubly-linked FIFO of tasks
// threaded through Task.wprev/wnext. Within a bucket, tasks appear in
// arming order — the (deadline, seq) tie-break order the old binary heap
// used falls out for free, because a level-0 bucket holds exactly one
// tick's worth of deadlines and ties fire in insertion order.
type timerBucket struct {
	head, tail *Task
}

// timerWheel is a hierarchical timing wheel over the scheduler's virtual
// clock. Arming and disarming a timer are O(1) pointer splices into the
// bucket lists and allocate nothing (the links live inline in the Task);
// timers far in the future sit in coarse high-level slots and cascade
// into finer levels as the clock approaches them.
//
// Indexing is by absolute deadline tick: a timer whose tick dt first
// differs from the current tick cur in bit range [6l, 6l+6) lives at
// level l, slot (dt >> 6l) & 63. Invariants maintained throughout:
//
//   - every armed deadline is >= the clock, so within a level all
//     occupied slots are at indices >= the clock's index at that level;
//   - a level-0 bucket therefore holds exactly one tick value, and all
//     entries of a bucket are in arming order (cascades preserve
//     relative order, and direct arms into a bucket always carry later
//     arming sequence numbers than anything cascaded into it).
type timerWheel struct {
	cur   uint64              // current tick (now >> tickShift)
	count int                 // armed timers
	occ   [wheelLevels]uint64 // per-level slot-occupancy bitmaps
	slot  [wheelLevels][wheelSlots]timerBucket
}

// place links t into the bucket its wakeAt belongs to, relative to the
// current tick. count is not touched (add and cascade share it).
func (w *timerWheel) place(t *Task) {
	dt := uint64(t.wakeAt) >> tickShift
	if dt < w.cur {
		dt = w.cur // overdue within the current tick: due now
	}
	level := 0
	if diff := dt ^ w.cur; diff != 0 {
		level = (bits.Len64(diff) - 1) / wheelBits
	}
	s := int(dt>>(uint(level)*wheelBits)) & wheelMask
	b := &w.slot[level][s]
	t.wlevel, t.wslot = int8(level), int8(s)
	t.wprev = b.tail
	t.wnext = nil
	if b.tail != nil {
		b.tail.wnext = t
	} else {
		b.head = t
		w.occ[level] |= 1 << uint(s)
	}
	b.tail = t
}

// add arms t (wakeAt must be set).
func (w *timerWheel) add(t *Task) {
	w.place(t)
	w.count++
}

// remove disarms t: an O(1) unlink of the intrusive links, no tombstones
// and no allocation — cancellation never leaves residue to skip later.
func (w *timerWheel) remove(t *Task) {
	b := &w.slot[t.wlevel][t.wslot]
	if t.wprev != nil {
		t.wprev.wnext = t.wnext
	} else {
		b.head = t.wnext
	}
	if t.wnext != nil {
		t.wnext.wprev = t.wprev
	} else {
		b.tail = t.wprev
	}
	if b.head == nil {
		w.occ[t.wlevel] &^= 1 << uint(t.wslot)
	}
	t.wprev, t.wnext = nil, nil
	t.wlevel = -1
	w.count--
}

// cascade empties bucket (level, s) and re-places every entry relative to
// the current tick. Entries always land at a strictly lower level (their
// high digits now match the clock's), and relative order is preserved.
func (w *timerWheel) cascade(level, s int) {
	b := &w.slot[level][s]
	t := b.head
	b.head, b.tail = nil, nil
	w.occ[level] &^= 1 << uint(s)
	for t != nil {
		next := t.wnext
		t.wprev, t.wnext = nil, nil
		w.place(t)
		t = next
	}
}

// findMinBucket advances the wheel to the level-0 bucket holding the
// globally earliest deadline and returns it, cascading coarse slots down
// as the clock crosses into them. Must only be called with count > 0.
//
// Two facts make the scan correct. First, entries at level l in a slot
// *after* the clock's index all expire after the current slot of every
// level above ends, so the earliest pending deadline is either in a
// not-yet-cascaded *current* slot of some upper level or in the first
// occupied future slot of the lowest occupied level. Second, cascading
// upper-level current slots top-down first means one pass settles them:
// a cascade from level h only deposits into levels below h, and never
// into a current slot of a level >= 1 (matching digits would have sent
// the entry lower still).
func (w *timerWheel) findMinBucket() *timerBucket {
	for {
		// Settle the current slots of the upper levels.
		for l := wheelLevels - 1; l >= 1; l-- {
			ci := int(w.cur>>(uint(l)*wheelBits)) & wheelMask
			if w.occ[l]&(1<<uint(ci)) != 0 {
				w.cascade(l, ci)
			}
		}
		if w.occ[0] != 0 {
			return &w.slot[0][bits.TrailingZeros64(w.occ[0])]
		}
		// Nothing this fine yet: jump the clock to the start of the
		// earliest future occupied slot (lowest occupied level is
		// earliest) and cascade it, then rescan.
		advanced := false
		for l := 1; l < wheelLevels; l++ {
			if w.occ[l] == 0 {
				continue
			}
			s := bits.TrailingZeros64(w.occ[l])
			shift := uint(l) * wheelBits
			w.cur = w.cur&^(uint64(1)<<(shift+wheelBits)-1) | uint64(s)<<shift
			w.cascade(l, s)
			advanced = true
			break
		}
		if !advanced {
			return nil // unreachable with count > 0; caller checks
		}
	}
}
