// Diagnostics for the scheduler: deadlock detection and reporting live
// here so the hot-path files (vtime.go, wheel.go) carry no formatting or
// sorting machinery. Nothing in this file runs during normal event
// processing — the only per-event cost of deadlock reporting is the
// one-time registration of each WaitQueue on its first waiter.
package vtime

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// ErrDeadlock is returned by Run when live tasks remain but none is
// runnable and no timer is pending.
type ErrDeadlock struct {
	Now     time.Duration
	Blocked []string // names of blocked tasks
}

func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("vtime: deadlock at %v: %d task(s) blocked forever: %s",
		e.Now, len(e.Blocked), strings.Join(e.Blocked, ", "))
}

// registerQueue remembers a wait queue for deadlock reporting. Called
// once per queue, from the queue's first pushWaiter.
func (s *Scheduler) registerQueue(q *WaitQueue) {
	q.sched = s
	s.queues = append(s.queues, q)
}

// deadlock builds the ErrDeadlock naming every blocked task. At deadlock
// no timer is pending and the run queue is empty, so every live task is
// parked in some wait queue; the queues registered on first use cover
// them all.
func (s *Scheduler) deadlock() error {
	var names []string
	for _, q := range s.queues {
		for t := q.head; t != nil; t = t.qnext {
			names = append(names, t.name)
		}
	}
	sort.Strings(names)
	return &ErrDeadlock{Now: s.now, Blocked: names}
}
