// Package vtime provides a deterministic virtual-time scheduler used to
// run the simulated DBMS.
//
// The scheduler is a single-goroutine event loop. All "concurrency" in
// the simulation is expressed as vtime tasks; exactly one task executes
// at any instant, so runs are fully deterministic: the same program
// produces the same interleaving and the same virtual timestamps on
// every run, regardless of GOMAXPROCS or host load.
//
// A task's resume point is an explicit continuation (a Step). Blocking
// operations — SleepThen, WaitQueue.WaitThen, Semaphore.AcquireThen —
// enqueue the continuation into the timer wheel or a wait queue and
// return; the event loop later invokes it with a plain function call.
// No goroutine parks and no channel operation happens per event.
//
// Timers live in a hierarchical timing wheel (wheel.go): arming and
// disarming are O(1) pointer splices with the links embedded in the Task,
// so the per-step codegen ramps, grant retries, and pager ticks of a
// dense run cost no allocation and no O(log n) heap maintenance. The
// wheel fires timers in exactly the (deadline, arming order) sequence
// the original binary heap used, so every digest derived from a run is
// bit-identical to the heap scheduler (pinned by the scenario
// golden-digest test and the wheel-vs-heap differential test).
//
// Two task flavours share the same run queue and timer wheel:
//
//   - Continuation tasks (GoStep) are pure state machines. They have no
//     stack at all; each step runs on the event-loop goroutine.
//   - Blocking-style tasks (Go) keep the classic imperative API
//     (Task.Sleep, WaitQueue.Wait, ...). Their bodies run on a coroutine
//     (iter.Pull), which the loop enters and leaves by direct coroutine
//     switch — roughly 4x cheaper than a channel handoff, and with no
//     runtime-scheduler involvement. Blocking code can execute a whole
//     continuation-style composite operation with ONE coroutine round
//     trip via Task.Await; the hot engine paths use this so high-
//     frequency events (CPU quanta, disk transfers, grant retries) never
//     touch a stack.
//
// Tasks block by sleeping or by waiting on a WaitQueue; when no task is
// runnable the scheduler advances the virtual clock to the next timer.
// Wall-clock time never matters: a five-hour benchmark window executes
// in however long the event processing takes.
package vtime

import (
	"iter"
	"time"
)

// Step is a task resume point: the unit of execution dispatched by the
// event loop. Implementations are usually small state-machine structs so
// re-arming a task costs no allocation; StepFunc adapts plain functions.
type Step interface {
	Run(*Task)
}

// StepFunc adapts a function to a Step.
type StepFunc func(*Task)

// Run invokes f.
func (f StepFunc) Run(t *Task) { f(t) }

// Scheduler owns the virtual clock, the run queue, and the timer wheel.
// Create one with NewScheduler, add tasks with Go or GoStep, and drive
// everything with Run.
type Scheduler struct {
	now time.Duration

	// runq is a ring buffer of runnable tasks (FIFO).
	runq  []*Task
	rhead int
	rlen  int

	wheel timerWheel

	live   int    // tasks started and not yet exited
	seq    uint64 // task-ID sequence (diagnostics only)
	events uint64 // dispatched events (sim-events/sec numerator)

	// queues holds every WaitQueue tasks of this scheduler have waited
	// on, so deadlock reports (diag.go) can name the blocked tasks; the
	// hot wait paths only pay a nil check for it.
	queues []*WaitQueue

	running *Task

	// Task slab: chunked arena the Tasks of a run are carved from.
	// Starting a task costs one allocation per taskChunkSize tasks
	// instead of one each, and Reset rewinds the whole slab for the next
	// run — the per-run arena freed (recycled) wholesale at run end.
	// Task records embed their timer and wait-queue links, so this one
	// slab is also the run's timer and wait-queue storage.
	tchunks [][]Task
	tcur    int
}

const taskChunkSize = 64

// NewScheduler returns a scheduler with the virtual clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now reports the current virtual time. It may be called from task
// context or, between Run invocations, from the host goroutine.
func (s *Scheduler) Now() time.Duration { return s.now }

// Live reports the number of tasks that have been started and not yet
// finished.
func (s *Scheduler) Live() int { return s.live }

// Events reports how many events (task dispatches) the scheduler has
// processed — the numerator of the sim-events/sec benchmark metric.
func (s *Scheduler) Events() uint64 { return s.events }

// Idle reports whether the scheduler holds no live tasks, no runnable
// tasks, and no armed timers — the state in which Reset is legal. A
// scheduler whose Run returned nil is idle; one abandoned after a
// deadlock is not.
func (s *Scheduler) Idle() bool {
	return s.live == 0 && s.rlen == 0 && s.wheel.count == 0
}

// Reset restores an idle scheduler to the observable state NewScheduler
// returns — clock at zero, zero task sequence, zero event count, no
// registered queues — while retaining the run queue ring, timer-wheel
// geometry, and task-slab chunks. A run on a Reset scheduler is
// bit-identical to a run on a fresh one (pinned by the scenario
// arena-reuse test), which is what lets a sweep shard reuse one
// scheduler across its whole job stream. Reset panics if the scheduler
// is not Idle: task records of an abandoned (deadlocked) run may still
// be referenced by parked coroutines and must not be recycled.
func (s *Scheduler) Reset() {
	if !s.Idle() {
		panic("vtime: Reset on a non-idle scheduler")
	}
	s.now = 0
	s.seq = 0
	s.events = 0
	s.queues = s.queues[:0]
	s.running = nil
	s.wheel.cur = 0
	for i := range s.tchunks {
		s.tchunks[i] = s.tchunks[i][:0]
	}
	s.tcur = 0
}

// newTask carves a pointer-stable Task slot out of the slab. Slots are
// stale when reused after Reset; the caller initializes every field.
func (s *Scheduler) newTask() *Task {
	for {
		if s.tcur == len(s.tchunks) {
			s.tchunks = append(s.tchunks, make([]Task, 0, taskChunkSize))
		}
		c := s.tchunks[s.tcur]
		if len(c) == cap(c) {
			s.tcur++
			continue
		}
		c = c[:len(c)+1]
		s.tchunks[s.tcur] = c
		return &c[len(c)-1]
	}
}

// --- run queue ---

func (s *Scheduler) pushRunq(t *Task) {
	if s.rlen == len(s.runq) {
		s.growRunq()
	}
	s.runq[(s.rhead+s.rlen)&(len(s.runq)-1)] = t
	s.rlen++
}

func (s *Scheduler) popRunq() *Task {
	t := s.runq[s.rhead]
	s.runq[s.rhead] = nil
	s.rhead = (s.rhead + 1) & (len(s.runq) - 1)
	s.rlen--
	return t
}

func (s *Scheduler) growRunq() {
	n := len(s.runq) * 2
	if n == 0 {
		n = 64
	}
	nb := make([]*Task, n)
	for i := 0; i < s.rlen; i++ {
		nb[i] = s.runq[(s.rhead+i)&(len(s.runq)-1)]
	}
	s.runq = nb
	s.rhead = 0
}

// Go creates a blocking-style task named name executing fn and schedules
// it to run. The body runs on a coroutine entered by direct switch; fn
// may use the imperative API (Sleep, Wait, Await, ...). The name is used
// only for diagnostics (deadlock reports). Go may be called from the
// host goroutine before Run, or from a running task.
func (s *Scheduler) Go(name string, fn func(*Task)) *Task {
	s.seq++
	t := s.newTask()
	*t = Task{s: s, name: name, id: s.seq, wlevel: -1, goro: true}
	next, _ := iter.Pull(func(yield func(struct{}) bool) {
		t.yieldCo = yield
		if !yield(struct{}{}) {
			return
		}
		fn(t)
	})
	t.resumeCo = func() bool { _, ok := next(); return ok }
	t.resumeCo() // prime to the initial yield so yieldCo is captured
	s.live++
	t.k = coroResume
	s.pushRunq(t)
	return t
}

// GoStep starts a continuation task: k runs when the task is first
// scheduled, and the task exits when a step returns without arming a new
// resume point (SleepThen, YieldThen, WaitThen, ...). Continuation tasks
// have no stack and may not call the blocking API.
func (s *Scheduler) GoStep(name string, k Step) *Task {
	s.seq++
	t := s.newTask()
	*t = Task{s: s, name: name, id: s.seq, wlevel: -1}
	s.live++
	t.k = k
	s.pushRunq(t)
	return t
}

// GoFunc is GoStep for a plain function initial step.
func (s *Scheduler) GoFunc(name string, f func(*Task)) *Task {
	return s.GoStep(name, StepFunc(f))
}

// Run executes tasks until every task has exited. It returns an
// *ErrDeadlock if tasks remain blocked with no pending timer. Run must
// be called from the host goroutine (not from a task).
func (s *Scheduler) Run() error {
	for {
		if s.rlen == 0 {
			if s.wheel.count == 0 {
				if s.live == 0 {
					return nil
				}
				return s.deadlock()
			}
			s.fireDue()
		}
		t := s.popRunq()
		s.events++
		s.running = t
		k := t.k
		t.k = nil
		// De-virtualized dispatch: the overwhelmingly common resume
		// points — coroutine switches, CPU-quantum ops, plain functions —
		// take a direct (inlinable) call instead of an interface call.
		// Everything else (the engine's composite compile/exec/grant ops,
		// which amortize many events per arm) dispatches virtually.
		switch kk := k.(type) {
		case coroResumeStep:
			kk.Run(t)
		case *cpuUseOp:
			kk.Run(t)
		case StepFunc:
			kk(t)
		default:
			k.Run(t)
		}
		s.running = nil
		if t.k == nil && !t.goro {
			// A continuation task's step returned without arming a new
			// resume point: the task is done.
			s.live--
		}
	}
}

// fireDue advances the virtual clock to the earliest pending deadline
// and makes every timer due at that exact instant runnable, in arming
// order — the same (deadline, sequence) order the old binary heap
// dispatched. The candidates all live in one level-0 bucket (a bucket
// spans a single tick), so a short list scan finds the sub-tick minimum
// and collects its cohort.
func (s *Scheduler) fireDue() {
	w := &s.wheel
	b := w.findMinBucket()
	min := b.head.wakeAt
	for t := b.head.wnext; t != nil; t = t.wnext {
		if t.wakeAt < min {
			min = t.wakeAt
		}
	}
	s.now = min
	w.cur = uint64(min) >> tickShift
	for t := b.head; t != nil; {
		next := t.wnext
		if t.wakeAt == min {
			w.remove(t)
			if t.queue != nil {
				// Waiting with timeout: the timeout fired first.
				t.queue.removeWaiter(t)
				t.queue = nil
				t.timedOut = true
			}
			s.pushRunq(t)
		}
		t = next
	}
}

// Task is a cooperative thread of execution under a Scheduler. All Task
// methods must be called from the task's own context.
//
// Field order is deliberate: the state the event loop touches on every
// dispatch, sleep, and wake — the resume point, scheduler, deadline,
// wait-queue membership, and flags — packs into the first cache line;
// the wheel links follow immediately (touched on arm/disarm), and the
// cold diagnostic and coroutine plumbing trails at the end.
type Task struct {
	// k is the pending resume point, invoked when the task is next
	// dispatched from the run queue.
	k Step
	s *Scheduler

	// Embedded timer: a task has at most one pending timer, so the wheel
	// entry lives inline (no allocation per sleep). wlevel is -1 when
	// the task is not armed.
	wakeAt time.Duration

	// Wait-queue membership (intrusive FIFO list).
	queue        *WaitQueue
	qprev, qnext *Task

	wlevel, wslot int8
	goro          bool // blocking-style task (has a coroutine)
	onCoro        bool // currently executing inside the coroutine
	syncDone      bool // Await operation completed without parking
	timedOut      bool

	// Wheel bucket links (intrusive doubly-linked FIFO).
	wprev, wnext *Task

	// Coroutine support for blocking-style tasks.
	resumeCo func() bool
	yieldCo  func(struct{}) bool

	// Diagnostics only.
	id   uint64
	name string
}

// Name returns the diagnostic name the task was created with.
func (t *Task) Name() string { return t.name }

// ID returns the task's unique creation sequence number.
func (t *Task) ID() uint64 { return t.id }

// Now reports the current virtual time.
func (t *Task) Now() time.Duration { return t.s.now }

// Scheduler returns the scheduler this task belongs to.
func (t *Task) Scheduler() *Scheduler { return t.s }

// TimedOut reports whether the task's last timed wait ended by timeout
// rather than by a signal. Continuation steps resumed from
// WaitTimeoutThen / AcquireTimeoutThen consult it.
func (t *Task) TimedOut() bool { return t.timedOut }

// --- coroutine switching ---

// coroResumeStep switches control into a blocking-style task's
// coroutine. As the final continuation of an Await chain it also marks
// synchronous completion when the chain never parked.
type coroResumeStep struct{}

func (coroResumeStep) Run(t *Task) {
	if t.onCoro {
		// The Await chain completed while still executing inside the
		// coroutine: no switch needed.
		t.syncDone = true
		return
	}
	t.switchIn()
}

var coroResume Step = coroResumeStep{}

func (t *Task) switchIn() {
	t.onCoro = true
	alive := t.resumeCo()
	t.onCoro = false
	if !alive {
		t.s.live--
	}
}

// park suspends the coroutine until the task's pending continuation
// (which must be coroResume, or a chain ending in it) runs.
func (t *Task) park() {
	if !t.goro {
		panic("vtime: blocking wait on continuation task " + t.name)
	}
	// yield reports false only after an iter.Pull stop, which the
	// scheduler never issues: coroutines of forever-blocked tasks are
	// abandoned in place when Run returns ErrDeadlock, exactly as the
	// channel-based scheduler abandoned its parked goroutines. The guard
	// keeps that invariant loud instead of silently running task code
	// after a teardown.
	if !t.yieldCo(struct{}{}) {
		panic("vtime: task " + t.name + " resumed after scheduler teardown")
	}
}

// Await runs a continuation-style composite operation from a
// blocking-style task with at most one coroutine round trip: start must
// arrange — via the *Then primitives — for the provided Step to
// eventually run; that Step resumes this call. If the operation
// completes without ever parking, Await returns without touching the
// scheduler.
func (t *Task) Await(start func(k Step)) {
	if !t.goro {
		panic("vtime: Await on continuation task " + t.name)
	}
	t.syncDone = false
	start(coroResume)
	if t.syncDone {
		return
	}
	t.park()
}

// --- continuation primitives ---

// YieldThen reschedules the task at the back of the run queue with
// resume point k, letting other runnable tasks execute at the same
// virtual instant.
func (t *Task) YieldThen(k Step) {
	t.k = k
	t.s.pushRunq(t)
}

// SleepThen blocks the task for d of virtual time, then runs k.
// Non-positive d yields.
func (t *Task) SleepThen(d time.Duration, k Step) {
	if d <= 0 {
		t.YieldThen(k)
		return
	}
	t.k = k
	t.s.addTimer(t, t.s.now+d)
}

// --- blocking wrappers (coroutine tasks only) ---

// Yield reschedules the task at the back of the run queue, letting other
// runnable tasks execute at the same virtual instant.
func (t *Task) Yield() {
	t.YieldThen(coroResume)
	t.park()
}

// Sleep blocks the task for d of virtual time. Non-positive d yields.
func (t *Task) Sleep(d time.Duration) {
	t.SleepThen(d, coroResume)
	t.park()
}

// SleepUntil blocks until the virtual clock reaches at.
func (t *Task) SleepUntil(at time.Duration) {
	t.Sleep(at - t.s.now)
}

// --- timers ---

// addTimer arms t's embedded timer for the absolute instant at. Ties at
// the same instant fire in arming order (the wheel's bucket FIFO), which
// is exactly the (deadline, sequence) order of the old timer heap.
func (s *Scheduler) addTimer(t *Task, at time.Duration) {
	t.wakeAt = at
	s.wheel.add(t)
}

func (s *Scheduler) cancelTimer(t *Task) {
	if t.wlevel >= 0 {
		s.wheel.remove(t)
	}
}

// WaitQueue is a FIFO condition queue. Tasks block on it with Wait /
// WaitTimeout (or arm a continuation with WaitThen / WaitTimeoutThen);
// other tasks wake them with Signal or Broadcast. Membership is an
// intrusive doubly-linked list, so timeout removal is O(1) while wake
// order stays strictly FIFO. A WaitQueue must only be used by tasks of a
// single scheduler.
type WaitQueue struct {
	name       string
	sched      *Scheduler // set on first wait, for deadlock reports
	head, tail *Task
	n          int
}

// NewWaitQueue returns an empty wait queue; name is used in diagnostics.
func NewWaitQueue(name string) *WaitQueue { return &WaitQueue{name: name} }

// Name returns the queue's diagnostic name.
func (q *WaitQueue) Name() string { return q.name }

// Len reports the number of tasks currently waiting.
func (q *WaitQueue) Len() int { return q.n }

func (q *WaitQueue) pushWaiter(t *Task) {
	if q.sched == nil {
		t.s.registerQueue(q)
	}
	t.qprev = q.tail
	t.qnext = nil
	if q.tail != nil {
		q.tail.qnext = t
	} else {
		q.head = t
	}
	q.tail = t
	q.n++
}

func (q *WaitQueue) removeWaiter(t *Task) {
	if t.qprev != nil {
		t.qprev.qnext = t.qnext
	} else {
		q.head = t.qnext
	}
	if t.qnext != nil {
		t.qnext.qprev = t.qprev
	} else {
		q.tail = t.qprev
	}
	t.qprev, t.qnext = nil, nil
	q.n--
}

// WaitThen blocks t until another task calls Signal or Broadcast, then
// runs k.
func (q *WaitQueue) WaitThen(t *Task, k Step) {
	t.k = k
	t.queue = q
	q.pushWaiter(t)
}

// WaitTimeoutThen blocks t until signaled or until d of virtual time has
// elapsed, then runs k; k distinguishes the outcomes via t.TimedOut().
// Non-positive d runs k synchronously with the timeout outcome.
func (q *WaitQueue) WaitTimeoutThen(t *Task, d time.Duration, k Step) {
	if d <= 0 {
		t.timedOut = true
		k.Run(t)
		return
	}
	t.timedOut = false
	t.k = k
	t.queue = q
	q.pushWaiter(t)
	t.s.addTimer(t, t.s.now+d)
}

// Wait blocks t until another task calls Signal or Broadcast.
func (q *WaitQueue) Wait(t *Task) {
	q.WaitThen(t, coroResume)
	t.park()
}

// WaitTimeout blocks t until signaled or until d of virtual time has
// elapsed. It reports true if the task was signaled and false on
// timeout.
func (q *WaitQueue) WaitTimeout(t *Task, d time.Duration) bool {
	if d <= 0 {
		return false
	}
	q.WaitTimeoutThen(t, d, coroResume)
	t.park()
	return !t.timedOut
}

// Signal wakes the longest-waiting task, if any, and reports whether a
// task was woken. It must be called from a running task.
func (q *WaitQueue) Signal() bool {
	t := q.head
	if t == nil {
		return false
	}
	q.removeWaiter(t)
	t.queue = nil
	t.s.cancelTimer(t)
	t.s.pushRunq(t)
	return true
}

// Broadcast wakes every waiting task and returns how many were woken.
func (q *WaitQueue) Broadcast() int {
	n := 0
	for q.Signal() {
		n++
	}
	return n
}
