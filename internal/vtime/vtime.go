// Package vtime provides a deterministic, cooperative virtual-time
// scheduler used to run the simulated DBMS.
//
// All "concurrency" in the simulation is expressed as vtime tasks. Exactly
// one task executes at any instant (the scheduler and the running task hand
// control back and forth over channels), so runs are fully deterministic:
// the same program produces the same interleaving and the same virtual
// timestamps on every run, regardless of GOMAXPROCS or host load.
//
// Tasks block by sleeping (Task.Sleep) or by waiting on a WaitQueue; when no
// task is runnable the scheduler advances the virtual clock to the next
// timer. Wall-clock time never matters: a five-hour benchmark window
// executes in however long the event processing takes.
package vtime

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Scheduler owns the virtual clock and the run queue. Create one with
// NewScheduler, add tasks with Go, and drive everything with Run.
type Scheduler struct {
	now     time.Duration
	runq    []*Task
	timers  timerHeap
	live    int // tasks started and not yet exited
	blocked map[*Task]struct{}
	seq     uint64

	yield   chan struct{} // running task -> scheduler: "I parked or exited"
	running *Task
}

// NewScheduler returns a scheduler with the virtual clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{
		yield:   make(chan struct{}),
		blocked: make(map[*Task]struct{}),
	}
}

// Now reports the current virtual time. It may be called from task context
// or, between Run invocations, from the host goroutine.
func (s *Scheduler) Now() time.Duration { return s.now }

// Live reports the number of tasks that have been started and not yet
// finished.
func (s *Scheduler) Live() int { return s.live }

// Go creates a new task named name executing fn and schedules it to run.
// The name is used only for diagnostics (deadlock reports). Go may be
// called from the host goroutine before Run, or from a running task.
func (s *Scheduler) Go(name string, fn func(*Task)) *Task {
	s.seq++
	t := &Task{
		s:      s,
		name:   name,
		id:     s.seq,
		resume: make(chan struct{}),
	}
	s.live++
	s.runq = append(s.runq, t)
	go func() {
		<-t.resume
		fn(t)
		t.exited = true
		s.live--
		s.yield <- struct{}{}
	}()
	return t
}

// ErrDeadlock is returned by Run when live tasks remain but none is
// runnable and no timer is pending.
type ErrDeadlock struct {
	Now     time.Duration
	Blocked []string // names of blocked tasks
}

func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("vtime: deadlock at %v: %d task(s) blocked forever: %s",
		e.Now, len(e.Blocked), strings.Join(e.Blocked, ", "))
}

// Run executes tasks until every task has exited. It returns an
// *ErrDeadlock if tasks remain blocked with no pending timer. Run must be
// called from the host goroutine (not from a task).
func (s *Scheduler) Run() error {
	for {
		if len(s.runq) == 0 {
			if s.timers.Len() == 0 {
				if s.live == 0 {
					return nil
				}
				names := make([]string, 0, len(s.blocked))
				for t := range s.blocked {
					names = append(names, t.name)
				}
				sort.Strings(names)
				return &ErrDeadlock{Now: s.now, Blocked: names}
			}
			// Advance the clock to the next timer and fire everything
			// due at that instant.
			s.now = s.timers[0].wakeAt
			for s.timers.Len() > 0 && s.timers[0].wakeAt == s.now {
				tm := heap.Pop(&s.timers).(*timer)
				t := tm.task
				t.timer = nil
				if t.queue != nil {
					// Waiting with timeout: the timeout fired first.
					t.queue.remove(t)
					t.queue = nil
					t.timedOut = true
				}
				s.makeRunnable(t)
			}
		}
		t := s.runq[0]
		s.runq = s.runq[1:]
		s.running = t
		t.resume <- struct{}{}
		<-s.yield
		s.running = nil
	}
}

func (s *Scheduler) makeRunnable(t *Task) {
	delete(s.blocked, t)
	s.runq = append(s.runq, t)
}

// Task is a cooperative thread of execution under a Scheduler. All Task
// methods must be called from the task's own function.
type Task struct {
	s      *Scheduler
	name   string
	id     uint64
	resume chan struct{}

	// Blocking bookkeeping, owned by the scheduler/running task.
	timer    *timer
	queue    *WaitQueue
	timedOut bool
	exited   bool
}

// Name returns the diagnostic name the task was created with.
func (t *Task) Name() string { return t.name }

// ID returns the task's unique creation sequence number.
func (t *Task) ID() uint64 { return t.id }

// Now reports the current virtual time.
func (t *Task) Now() time.Duration { return t.s.now }

// Scheduler returns the scheduler this task belongs to.
func (t *Task) Scheduler() *Scheduler { return t.s }

// park hands control to the scheduler and blocks until resumed.
func (t *Task) park() {
	t.s.yield <- struct{}{}
	<-t.resume
}

// Yield reschedules the task at the back of the run queue, letting other
// runnable tasks execute at the same virtual instant.
func (t *Task) Yield() {
	t.s.runq = append(t.s.runq, t)
	t.park()
}

// Sleep blocks the task for d of virtual time. Non-positive d yields.
func (t *Task) Sleep(d time.Duration) {
	if d <= 0 {
		t.Yield()
		return
	}
	t.s.addTimer(t, t.s.now+d)
	t.s.blocked[t] = struct{}{}
	t.park()
}

// SleepUntil blocks until the virtual clock reaches at.
func (t *Task) SleepUntil(at time.Duration) {
	t.Sleep(at - t.s.now)
}

type timer struct {
	wakeAt time.Duration
	seq    uint64
	task   *Task
	index  int
}

func (s *Scheduler) addTimer(t *Task, at time.Duration) {
	s.seq++
	tm := &timer{wakeAt: at, seq: s.seq, task: t}
	t.timer = tm
	heap.Push(&s.timers, tm)
}

func (s *Scheduler) cancelTimer(t *Task) {
	if t.timer != nil {
		heap.Remove(&s.timers, t.timer.index)
		t.timer = nil
	}
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].wakeAt != h[j].wakeAt {
		return h[i].wakeAt < h[j].wakeAt
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	tm := x.(*timer)
	tm.index = len(*h)
	*h = append(*h, tm)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	tm := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return tm
}

// WaitQueue is a FIFO condition queue. Tasks block on it with Wait or
// WaitTimeout; other tasks wake them with Signal or Broadcast. A WaitQueue
// must only be used by tasks of a single scheduler.
type WaitQueue struct {
	name    string
	waiters []*Task
}

// NewWaitQueue returns an empty wait queue; name is used in diagnostics.
func NewWaitQueue(name string) *WaitQueue { return &WaitQueue{name: name} }

// Name returns the queue's diagnostic name.
func (q *WaitQueue) Name() string { return q.name }

// Len reports the number of tasks currently waiting.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Wait blocks t until another task calls Signal or Broadcast.
func (q *WaitQueue) Wait(t *Task) {
	t.queue = q
	q.waiters = append(q.waiters, t)
	t.s.blocked[t] = struct{}{}
	t.park()
}

// WaitTimeout blocks t until signaled or until d of virtual time has
// elapsed. It reports true if the task was signaled and false on timeout.
func (q *WaitQueue) WaitTimeout(t *Task, d time.Duration) bool {
	if d <= 0 {
		return false
	}
	t.timedOut = false
	t.queue = q
	q.waiters = append(q.waiters, t)
	t.s.addTimer(t, t.s.now+d)
	t.s.blocked[t] = struct{}{}
	t.park()
	return !t.timedOut
}

// Signal wakes the longest-waiting task, if any, and reports whether a
// task was woken. It must be called from a running task.
func (q *WaitQueue) Signal() bool {
	for len(q.waiters) > 0 {
		t := q.waiters[0]
		q.waiters = q.waiters[1:]
		t.queue = nil
		t.s.cancelTimer(t)
		t.s.makeRunnable(t)
		return true
	}
	return false
}

// Broadcast wakes every waiting task and returns how many were woken.
func (q *WaitQueue) Broadcast() int {
	n := 0
	for q.Signal() {
		n++
	}
	return n
}

func (q *WaitQueue) remove(t *Task) {
	for i, w := range q.waiters {
		if w == t {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}
