package vtime

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"
)

// shardJobFn is a tiny simulation: job i sleeps a duration derived from
// its index and returns the shard clock's final time.
func shardJobFn(i int, sched *Scheduler) (time.Duration, error) {
	d := time.Duration((i*7)%5+1) * time.Second
	sched.Go(fmt.Sprintf("job-%d", i), func(tk *Task) {
		tk.Sleep(d)
	})
	if err := sched.Run(); err != nil {
		return 0, err
	}
	return sched.Now(), nil
}

func TestShardsRunLedger(t *testing.T) {
	const n = 11
	sh := NewShards(3)
	defer sh.Close()
	if sh.K() != 3 {
		t.Fatalf("K = %d, want 3", sh.K())
	}
	ledger := sh.Run(n, shardJobFn)
	if len(ledger) != n {
		t.Fatalf("ledger length %d, want %d", len(ledger), n)
	}
	// The ledger is sorted by (deadline, shard, seq).
	if !sort.SliceIsSorted(ledger, func(a, b int) bool {
		la, lb := ledger[a], ledger[b]
		if la.Deadline != lb.Deadline {
			return la.Deadline < lb.Deadline
		}
		if la.Shard != lb.Shard {
			return la.Shard < lb.Shard
		}
		return la.Seq < lb.Seq
	}) {
		t.Fatalf("ledger not sorted by (deadline, shard, seq): %+v", ledger)
	}
	seen := make(map[int]bool)
	for _, c := range ledger {
		if c.Err != nil {
			t.Fatalf("job %d: %v", c.Job, c.Err)
		}
		// Placement is static: job i runs on shard i%K.
		if c.Shard != c.Job%3 {
			t.Fatalf("job %d ran on shard %d, want %d", c.Job, c.Shard, c.Job%3)
		}
		if c.Deadline != time.Duration((c.Job*7)%5+1)*time.Second {
			t.Fatalf("job %d deadline %v", c.Job, c.Deadline)
		}
		seen[c.Job] = true
	}
	if len(seen) != n {
		t.Fatalf("ledger covers %d distinct jobs, want %d", len(seen), n)
	}
}

func TestShardsDeadlineInvariantAcrossK(t *testing.T) {
	deadlines := func(k, n int) map[int]time.Duration {
		sh := NewShards(k)
		defer sh.Close()
		out := make(map[int]time.Duration, n)
		for _, c := range sh.Run(n, shardJobFn) {
			out[c.Job] = c.Deadline
		}
		return out
	}
	ref := deadlines(1, 9)
	for _, k := range []int{2, 4, 16} {
		if got := deadlines(k, 9); !reflect.DeepEqual(got, ref) {
			t.Fatalf("per-job deadlines at K=%d differ from K=1: %v vs %v", k, got, ref)
		}
	}
}

func TestShardsErrorAndPoisonedScheduler(t *testing.T) {
	sh := NewShards(1)
	defer sh.Close()
	boom := errors.New("boom")
	// Job 0 deadlocks its scheduler (a live task with nothing to wake
	// it) and returns an error, leaving the shard's scheduler non-idle.
	// Job 1 then runs on the same shard and must get a clean one.
	ledger := sh.Run(2, func(i int, sched *Scheduler) (time.Duration, error) {
		if i == 0 {
			q := NewWaitQueue("never")
			sched.Go("stuck", func(tk *Task) { q.Wait(tk) })
			if err := sched.Run(); err == nil {
				return 0, errors.New("expected deadlock")
			}
			return 0, boom
		}
		return shardJobFn(i, sched)
	})
	var got [2]Completion
	for _, c := range ledger {
		got[c.Job] = c
	}
	if !errors.Is(got[0].Err, boom) {
		t.Fatalf("job 0 error = %v, want boom", got[0].Err)
	}
	if got[1].Err != nil {
		t.Fatalf("job 1 after a poisoned scheduler: %v", got[1].Err)
	}
	if want := time.Duration((1*7)%5+1) * time.Second; got[1].Deadline != want {
		t.Fatalf("job 1 deadline %v, want %v", got[1].Deadline, want)
	}
}

func TestShardsEmptyRunAndIdempotentClose(t *testing.T) {
	sh := NewShards(0) // 0 = GOMAXPROCS
	if sh.K() < 1 {
		t.Fatalf("K = %d", sh.K())
	}
	if got := sh.Run(0, shardJobFn); len(got) != 0 {
		t.Fatalf("empty run returned %d completions", len(got))
	}
	sh.Close()
	sh.Close() // must be a no-op
}

func TestIdleAndReset(t *testing.T) {
	s := NewScheduler()
	if !s.Idle() {
		t.Fatal("fresh scheduler not idle")
	}
	s.Go("sleeper", func(tk *Task) { tk.Sleep(time.Second) })
	if s.Idle() {
		t.Fatal("scheduler idle with a live task")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !s.Idle() {
		t.Fatal("scheduler not idle after Run returned nil")
	}
	if s.Now() == 0 || s.Events() == 0 {
		t.Fatal("run left no trace to reset")
	}
	s.Reset()
	if s.Now() != 0 || s.Events() != 0 || !s.Idle() {
		t.Fatalf("Reset left now=%v events=%d idle=%v", s.Now(), s.Events(), s.Idle())
	}
	// A run on the reset scheduler behaves like one on a fresh scheduler.
	s.Go("again", func(tk *Task) { tk.Sleep(2 * time.Second) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("post-reset Now = %v", s.Now())
	}
}

func TestResetPanicsOnNonIdle(t *testing.T) {
	s := NewScheduler()
	q := NewWaitQueue("never")
	s.Go("stuck", func(tk *Task) { q.Wait(tk) })
	if err := s.Run(); err == nil {
		t.Fatal("expected deadlock")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reset on a non-idle scheduler did not panic")
		}
	}()
	s.Reset()
}

func TestDeadlockErrorNamesBlockedTasks(t *testing.T) {
	s := NewScheduler()
	q := NewWaitQueue("gate")
	s.Go("alice", func(tk *Task) { q.Wait(tk) })
	s.Go("bob", func(tk *Task) { q.Wait(tk) })
	err := s.Run()
	var dl *ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("Run returned %v, want *ErrDeadlock", err)
	}
	msg := dl.Error()
	for _, name := range []string{"alice", "bob", "2 task(s)"} {
		if !strings.Contains(msg, name) {
			t.Fatalf("deadlock message missing %q: %s", name, msg)
		}
	}
}

func TestSemaphoreAccessorsAndTimeouts(t *testing.T) {
	s := NewScheduler()
	m := NewSemaphore("gate", 1)
	if m.Name() != "gate" || m.Cap() != 1 {
		t.Fatalf("accessors: name %q cap %d", m.Name(), m.Cap())
	}
	var holderTimedOut, waiterAcquired, thenAcquired, thenTimedOut bool
	s.Go("holder", func(tk *Task) {
		if !m.AcquireTimeout(tk, time.Second) {
			holderTimedOut = true
			return
		}
		tk.Sleep(3 * time.Second)
		m.Release()
	})
	s.Go("waiter", func(tk *Task) {
		// Queued behind holder; the slot is handed over at t=3s, inside
		// the 5 s timeout.
		waiterAcquired = m.AcquireTimeout(tk, 5*time.Second)
		if waiterAcquired {
			m.Release()
		}
	})
	s.Go("observer", func(tk *Task) {
		tk.Sleep(time.Second)
		if m.Waiting() != 1 {
			t.Errorf("Waiting = %d at t=1s, want 1", m.Waiting())
		}
	})
	s.Go("hopeless", func(tk *Task) {
		// Queued behind waiter with a timeout that fires first.
		m.AcquireTimeoutThen(tk, time.Millisecond, StepFunc(func(tk *Task) {
			thenTimedOut = tk.TimedOut()
		}))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if holderTimedOut || !waiterAcquired || !thenTimedOut {
		t.Fatalf("holderTimedOut=%v waiterAcquired=%v thenTimedOut=%v",
			holderTimedOut, waiterAcquired, thenTimedOut)
	}

	// AcquireTimeoutThen on a free semaphore runs synchronously.
	s2 := NewScheduler()
	m2 := NewSemaphore("free", 1)
	s2.Go("instant", func(tk *Task) {
		m2.AcquireTimeoutThen(tk, time.Second, StepFunc(func(tk *Task) {
			thenAcquired = !tk.TimedOut()
		}))
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if !thenAcquired {
		t.Fatal("AcquireTimeoutThen on a free semaphore timed out")
	}
}

func TestSemaphoreSetCapWakesWaiters(t *testing.T) {
	s := NewScheduler()
	m := NewSemaphore("pool", 0)
	var acquired int
	for i := 0; i < 2; i++ {
		s.Go(fmt.Sprintf("w%d", i), func(tk *Task) {
			m.Acquire(tk)
			acquired++
		})
	}
	s.Go("grower", func(tk *Task) {
		tk.Sleep(time.Second)
		m.SetCap(2)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if acquired != 2 || m.Held() != 2 {
		t.Fatalf("acquired=%d held=%d after SetCap growth", acquired, m.Held())
	}
}

func TestSemaphoreReleasePanicsUnheld(t *testing.T) {
	m := NewSemaphore("empty", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of an unheld semaphore did not panic")
		}
	}()
	m.Release()
}

func TestCPUSetDilationAndAccessors(t *testing.T) {
	s := NewScheduler()
	c := NewCPUSet(2, 50*time.Millisecond)
	if c.N() != 2 {
		t.Fatalf("N = %d", c.N())
	}
	c.SetDilation(func() float64 { return 2 })
	s.Go("worker", func(tk *Task) {
		c.Use(tk, 100*time.Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 100ms of useful work at 2x dilation occupies 200ms: 100ms stall.
	if c.StallTime() != 100*time.Millisecond {
		t.Fatalf("StallTime = %v, want 100ms", c.StallTime())
	}
	if c.BusyTime() != 200*time.Millisecond {
		t.Fatalf("BusyTime = %v, want 200ms", c.BusyTime())
	}
	// UseThen with non-positive d runs the continuation synchronously.
	var ran bool
	s.Reset()
	s.Go("zero", func(tk *Task) {
		c.UseThen(tk, 0, StepFunc(func(*Task) { ran = true }))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("UseThen(0) did not run its continuation")
	}
}

func TestTaskAndQueueIdentity(t *testing.T) {
	s := NewScheduler()
	q := NewWaitQueue("diag")
	if q.Name() != "diag" {
		t.Fatalf("queue name %q", q.Name())
	}
	var id uint64
	tk := s.Go("ident", func(tk *Task) { id = tk.ID() })
	if tk.Name() != "ident" {
		t.Fatalf("task name %q", tk.Name())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if id == 0 || id != tk.ID() {
		t.Fatalf("task ID %d vs %d", id, tk.ID())
	}
}
