package vtime

import (
	"time"

	"compilegate/internal/freelist"
)

// Semaphore is a FIFO counting semaphore over virtual time. Release hands
// the slot directly to the longest waiter (no barging), which keeps
// admission strictly fair — the property the paper's gateways rely on.
type Semaphore struct {
	name string
	cap  int
	held int
	q    *WaitQueue
}

// NewSemaphore returns a semaphore with capacity cap.
func NewSemaphore(name string, cap int) *Semaphore {
	if cap < 0 {
		panic("vtime: negative semaphore capacity")
	}
	return &Semaphore{name: name, cap: cap, q: NewWaitQueue(name)}
}

// Name returns the semaphore's diagnostic name.
func (m *Semaphore) Name() string { return m.name }

// Cap returns the semaphore's capacity.
func (m *Semaphore) Cap() int { return m.cap }

// Held returns the number of currently held slots.
func (m *Semaphore) Held() int { return m.held }

// Waiting returns the number of tasks queued for a slot.
func (m *Semaphore) Waiting() int { return m.q.Len() }

// SetCap changes the capacity. Growing wakes as many waiters as new slots
// allow. Shrinking never revokes held slots; the semaphore drains down to
// the new capacity as holders release.
func (m *Semaphore) SetCap(newCap int) {
	if newCap < 0 {
		panic("vtime: negative semaphore capacity")
	}
	m.cap = newCap
	for m.held < m.cap && m.q.Len() > 0 {
		m.held++
		m.q.Signal()
	}
}

// TryAcquire acquires a slot without blocking and reports success.
// It fails if the semaphore is full or other tasks are already queued.
func (m *Semaphore) TryAcquire() bool {
	if m.held < m.cap && m.q.Len() == 0 {
		m.held++
		return true
	}
	return false
}

// Acquire blocks task t until a slot is available.
func (m *Semaphore) Acquire(t *Task) {
	if m.TryAcquire() {
		return
	}
	m.q.Wait(t)
	// Slot was transferred by Release/SetCap before the wakeup.
}

// AcquireThen acquires a slot, running k once it is held. The slot may
// be taken synchronously (k runs inline) or handed over by a Release.
func (m *Semaphore) AcquireThen(t *Task, k Step) {
	if m.TryAcquire() {
		k.Run(t)
		return
	}
	m.q.WaitThen(t, k)
}

// AcquireTimeout blocks for at most d and reports whether the slot was
// acquired.
func (m *Semaphore) AcquireTimeout(t *Task, d time.Duration) bool {
	if m.TryAcquire() {
		return true
	}
	return m.q.WaitTimeout(t, d)
}

// AcquireTimeoutThen acquires a slot or gives up after d, then runs k;
// k reads t.TimedOut() to distinguish the outcomes (false = acquired).
func (m *Semaphore) AcquireTimeoutThen(t *Task, d time.Duration, k Step) {
	if m.TryAcquire() {
		t.timedOut = false
		k.Run(t)
		return
	}
	m.q.WaitTimeoutThen(t, d, k)
}

// Release returns a slot. If tasks are waiting and capacity allows, the
// slot is handed to the longest waiter without decrementing held.
func (m *Semaphore) Release() {
	if m.held <= 0 {
		panic("vtime: Release of unheld semaphore " + m.name)
	}
	if m.held <= m.cap && m.q.Signal() {
		return // slot transferred to the woken waiter
	}
	m.held--
}

// CPUSet models a pool of processors with FCFS quantum scheduling: a task
// consuming CPU repeatedly claims a processor for one quantum. This
// approximates processor sharing closely enough for throughput modelling
// while keeping event counts low.
type CPUSet struct {
	sem      *Semaphore
	quantum  time.Duration
	busy     time.Duration // aggregate CPU time consumed
	dilation func() float64
	stall    time.Duration // extra occupancy charged by dilation

	ops freelist.List[cpuUseOp] // recycled continuation ops (single scheduler)
}

// NewCPUSet creates a CPU pool with n processors and the given scheduling
// quantum (e.g. 50ms).
func NewCPUSet(n int, quantum time.Duration) *CPUSet {
	if quantum <= 0 {
		panic("vtime: non-positive CPU quantum")
	}
	return &CPUSet{sem: NewSemaphore("cpu", n), quantum: quantum}
}

// N returns the number of processors.
func (c *CPUSet) N() int { return c.sem.Cap() }

// BusyTime returns the aggregate CPU time consumed so far across all
// processors.
func (c *CPUSet) BusyTime() time.Duration { return c.busy }

// SetDilation installs a time-dilation hook: every quantum of useful work
// occupies the processor for quantum*fn() of virtual time. The engine
// wires this to the memory budget's paging slowdown so a thrashing
// machine stretches every CPU-bound operation — the stall cycles a real
// processor spends waiting on hard page faults. fn is re-read each
// quantum, so the penalty tracks pressure as it develops. nil restores
// undilated execution.
func (c *CPUSet) SetDilation(fn func() float64) { c.dilation = fn }

// StallTime returns the aggregate extra occupancy charged by dilation.
func (c *CPUSet) StallTime() time.Duration { return c.stall }

// cpuUseOp is the continuation state machine behind Use/UseThen: claim a
// processor, run one quantum, release, repeat.
type cpuUseOp struct {
	c      *CPUSet
	remain time.Duration
	q      time.Duration
	occupy time.Duration
	k      Step
	state  int8
}

const (
	cpuClaim int8 = iota
	cpuRun
	cpuDone
)

func (op *cpuUseOp) Run(t *Task) {
	c := op.c
	for {
		switch op.state {
		case cpuClaim:
			q := c.quantum
			if op.remain < q {
				q = op.remain
			}
			occupy := q
			if c.dilation != nil {
				if f := c.dilation(); f > 1 {
					occupy = time.Duration(float64(q) * f)
				}
			}
			op.q, op.occupy = q, occupy
			op.state = cpuRun
			if !c.sem.TryAcquire() {
				// FIFO wait; the slot is transferred by Release.
				c.sem.q.WaitThen(t, op)
				return
			}
		case cpuRun:
			op.state = cpuDone
			t.SleepThen(op.occupy, op)
			return
		case cpuDone:
			c.sem.Release()
			c.busy += op.occupy
			c.stall += op.occupy - op.q
			op.remain -= op.q
			if op.remain <= 0 {
				k := op.k
				op.k = nil
				c.ops.Put(op)
				k.Run(t)
				return
			}
			op.state = cpuClaim
		}
	}
}

// UseThen consumes d of CPU time on behalf of t, competing with other
// tasks for the processors, then runs k. The whole operation executes as
// continuation steps on the event loop.
func (c *CPUSet) UseThen(t *Task, d time.Duration, k Step) {
	if d <= 0 {
		k.Run(t)
		return
	}
	op := c.ops.Get()
	if op == nil {
		op = &cpuUseOp{c: c}
	}
	op.remain, op.k, op.state = d, k, cpuClaim
	op.Run(t)
}

// Use consumes d of CPU time on behalf of t, competing with other tasks
// for the processors.
func (c *CPUSet) Use(t *Task, d time.Duration) {
	if d <= 0 {
		return
	}
	t.Await(func(k Step) { c.UseThen(t, d, k) })
}
