package scenario

import (
	"fmt"
	"time"

	"compilegate/internal/engine"
	"compilegate/internal/gateway"
	"compilegate/internal/mem"
	"compilegate/internal/workload"
)

// Sales returns the canonical §5 SALES experiment at the given client
// count: the paper's 8-hour run measured from t = 3 h, throttling on,
// under the pressure calibration cmd/calibrate selected (compilations
// hold their memory for minutes, so an unthrottled server at 30+ clients
// ignites compile-memory thrash instead of queuing politely).
func Sales(clients int) Scenario {
	return Scenario{
		Name:        "sales",
		Description: "SALES ad-hoc DSS workload (§5.2)",
		Clients:     clients,
		Scale:       0.04,
		Workload:    workload.SpecSales,
		Horizon:     8 * time.Hour,
		Warmup:      3 * time.Hour,
		Throttled:   true,
		Seed:        1,
		Engine:      calibrated(nil),
	}
}

// calibrated composes the §5 pressure calibration with an additional
// engine delta (nil for none): every SALES-derived scenario starts from
// the calibrated operating point, then applies its own override.
func calibrated(extra func(*engine.Config)) func(*engine.Config) {
	return func(c *engine.Config) {
		CalibratedKnobs().Apply(c)
		if extra != nil {
			extra(c)
		}
	}
}

// figure builds one of the paper's throughput figures (3, 4, 5).
func figure(n, clients int, pct string) Scenario {
	s := Sales(clients)
	s.Name = fmt.Sprintf("figure%d", n)
	s.Description = fmt.Sprintf(
		"Figure %d: throttled vs baseline throughput at %d clients (%s)", n, clients, pct)
	return s
}

// monitorLadder is the monitor-count ablation (DESIGN.md A-1): the same
// contested region split across 1, 2 or 5 monitors instead of the
// paper's 3.
func monitorLadder(n string) gateway.Config {
	switch n {
	case "1":
		return gateway.Config{Levels: []gateway.LevelConfig{
			{Name: "only", Threshold: 380 * mem.KiB, Slots: 8, Timeout: 12 * time.Minute},
		}}
	case "2":
		return gateway.Config{Levels: []gateway.LevelConfig{
			{Name: "small", Threshold: 380 * mem.KiB, Slots: 32, Timeout: 6 * time.Minute},
			{Name: "big", Threshold: 256 * mem.MiB, Slots: 1, Timeout: 24 * time.Minute},
		}}
	default: // "5"
		return gateway.Config{Levels: []gateway.LevelConfig{
			{Name: "xs", Threshold: 380 * mem.KiB, Slots: 32, Timeout: 6 * time.Minute},
			{Name: "s", Threshold: 16 * mem.MiB, Slots: 16, Timeout: 8 * time.Minute},
			{Name: "m", Threshold: 43 * mem.MiB, Slots: 8, Timeout: 12 * time.Minute},
			{Name: "l", Threshold: 128 * mem.MiB, Slots: 4, Timeout: 16 * time.Minute},
			{Name: "xl", Threshold: 256 * mem.MiB, Slots: 1, Timeout: 24 * time.Minute},
		}}
	}
}

func monitorAblation(n string) Scenario {
	s := Sales(30)
	s.Name = "monitors-" + n
	s.Description = "monitor-count ablation A-1: " + n + "-monitor ladder instead of 3"
	ladder := monitorLadder(n)
	s.Engine = calibrated(func(c *engine.Config) { c.GatewayOverride = &ladder })
	return s
}

// init registers every paper experiment in the default registry, in the
// order the evaluation section presents them.
func init() {
	// Figure 2's conditions as a harness run: a memory-starved server
	// where compilations visibly queue at the monitors. cmd/figures
	// additionally renders the per-compilation trace with the governance
	// primitives directly.
	fig2 := Sales(12)
	fig2.Name = "figure2"
	fig2.Description = "Figure 2 conditions: compilations throttle at the monitor ladder under memory pressure"
	fig2.Horizon, fig2.Warmup = 30*time.Minute, 5*time.Minute
	fig2.Engine = calibrated(func(c *engine.Config) { c.MemoryBytes = 2 * mem.GiB })
	Default.MustRegister(fig2)

	Default.MustRegister(figure(3, 30, "paper: ~35% higher throughput"))
	Default.MustRegister(figure(4, 35, "paper: throttled stays ahead"))
	Default.MustRegister(figure(5, 40, "paper: baseline collapses under overload"))

	for _, n := range []string{"1", "2", "5"} {
		Default.MustRegister(monitorAblation(n))
	}

	// A-5: the broker's contribution alone — throttling off in both; the
	// no-governance twin turns the broker off too.
	brokerOnly := Sales(30)
	brokerOnly.Name = "broker-only"
	brokerOnly.Description = "ablation A-5: Memory Broker without compilation throttling"
	brokerOnly.Throttled = false
	Default.MustRegister(brokerOnly)

	noGov := Sales(30)
	noGov.Name = "no-governance"
	noGov.Description = "ablation A-5 twin: neither broker nor throttling"
	noGov.Throttled = false
	noGov.Engine = calibrated(func(c *engine.Config) { c.BrokerEnabled = false })
	Default.MustRegister(noGov)

	// The mixed workload: OLTP point queries bypass the ladder while
	// SALES compilations queue ("diagnostics under overload", §4).
	mix := Scenario{
		Name:        "oltp-mix",
		Description: "3:1 OLTP:SALES mix — small queries bypass the monitor ladder",
		Clients:     24,
		Scale:       0.04,
		Workload:    workload.SpecMix,
		Horizon:     60 * time.Minute,
		Warmup:      10 * time.Minute,
		Throttled:   true,
		Seed:        1,
	}
	Default.MustRegister(mix)

	// §4.1's best-effort plans on a starved machine, plus the
	// plain-OOM twin. The smaller machine keeps the 32-bit *default*
	// user VAS (2 GB, no extended-VAS boot switch), so compilations
	// exhaust the address space early and the exhaustion signal fires
	// constantly — exactly the regime best-effort plans exist for.
	starved := func(c *engine.Config) {
		c.MemoryBytes = 2 * mem.GiB
		c.VASBytes = 1792 * mem.MiB
	}
	be := Sales(30)
	be.Name = "best-effort"
	be.Description = "§4.1 best-effort plans under memory exhaustion (2 GiB machine)"
	be.Engine = calibrated(starved)
	Default.MustRegister(be)

	beOff := Sales(30)
	beOff.Name = "best-effort-off"
	beOff.Description = "best-effort disabled: exhausted compilations fail with OOM"
	beOff.Engine = calibrated(func(c *engine.Config) {
		starved(c)
		c.BestEffort = false
	})
	Default.MustRegister(beOff)

	// The demo-sized ad-hoc DSS run the examples use.
	dss := Sales(30)
	dss.Name = "adhoc-dss"
	dss.Description = "SALES ad-hoc DSS demo window (90 min)"
	dss.Horizon, dss.Warmup = 90*time.Minute, 15*time.Minute
	Default.MustRegister(dss)

	// A seconds-scale smoke configuration for quickstarts and tests.
	quick := Sales(4)
	quick.Name = "quickstart"
	quick.Description = "small SALES smoke run (4 clients, 20 min)"
	quick.Scale = 0.02
	quick.Horizon, quick.Warmup = 20*time.Minute, 2*time.Minute
	Default.MustRegister(quick)
}
