package scenario

import (
	"testing"
	"time"
)

// TestSearchBeatsGridDifferential pins the successive-halving contract
// against the exhaustive grid on the full default calibration at a
// compressed window: the search must reach a fidelity score at least
// as good as the grid's best while spending at most a quarter of the
// grid's simulation budget. Both sides run the same seed population,
// so the scores are directly comparable.
func TestSearchBeatsGridDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full search-vs-grid differential skipped in short mode (nightly runs it)")
	}
	cal := DefaultCalibration()
	cal.Horizon, cal.Warmup = 40*time.Minute, 10*time.Minute
	seeds := Seeds(5)

	grid := cal
	grid.Seeds = seeds
	grep := grid.Run()
	gbest, gscore := grep.Best()

	srep := cal.Search(seeds)
	t.Logf("grid best %s score %.4f in %d runs; search:\n%s",
		gbest.Name, gscore, srep.GridRuns, srep)

	if srep.Score > gscore+1e-9 {
		t.Fatalf("search winner %s score %.4f worse than grid best %s score %.4f",
			srep.Winner.Name, srep.Score, gbest.Name, gscore)
	}
	if 4*srep.Runs > srep.GridRuns {
		t.Fatalf("search spent %d runs, over a quarter of the grid's %d",
			srep.Runs, srep.GridRuns)
	}
	if srep.Winner.Name == gbest.Name {
		t.Logf("winner agreement: search and grid both selected %s", srep.Winner.Name)
	} else {
		t.Logf("winner disagreement at equal score: search %s (%.4f) vs grid %s (%.4f)",
			srep.Winner.Name, srep.Score, gbest.Name, gscore)
	}
}

// TestSearchCacheNoRecompute verifies the cell cache: the total run
// count must equal twice the number of distinct (knob, clients, seed)
// cells the rung schedule touched — re-evaluating a promoted survivor
// on a wider budget only pays for the new cells.
func TestSearchCacheNoRecompute(t *testing.T) {
	cal := DefaultCalibration()
	cal.Horizon, cal.Warmup = 20*time.Minute, 5*time.Minute
	srep := cal.Search(Seeds(2))

	var rungRuns int
	for _, rung := range srep.Rungs {
		rungRuns += rung.NewRuns
	}
	if rungRuns != srep.Runs {
		t.Fatalf("rung NewRuns sum %d != total Runs %d", rungRuns, srep.Runs)
	}
	// Every evaluated cell appears in Points exactly once, and each cell
	// cost one throttled + one baseline simulation.
	if 2*len(srep.Points) != srep.Runs {
		t.Fatalf("%d evaluated cells but %d runs (want runs = 2 x cells)", len(srep.Points), srep.Runs)
	}
}

// TestSearchDeterministic pins that two searches over the same
// calibration produce identical schedules and winners.
func TestSearchDeterministic(t *testing.T) {
	cal := DefaultCalibration()
	cal.Horizon, cal.Warmup = 20*time.Minute, 5*time.Minute
	a := cal.Search(Seeds(2))
	b := cal.Search(Seeds(2))
	if a.String() != b.String() {
		t.Fatalf("search not deterministic:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}
