package scenario

import (
	"time"

	"compilegate/internal/harness"
	"compilegate/internal/vtime"
)

// SweepResult is one scenario's outcome within a sweep.
type SweepResult struct {
	Scenario Scenario
	Result   *harness.Result
	Err      error
}

// RunSweep executes the scenarios across vtime event-loop shards and
// returns their outcomes in input order. Scenario i runs on shard
// i%workers (static placement, no work stealing), each shard reusing
// one scheduler — run queue, timer wheel, task slab — across its whole
// job stream via Reset. Runs share no mutable state, and every run
// starts from the fresh-scheduler state, so a sweep returns results
// bit-identical to running every scenario serially at any worker count
// (pinned by the shard-invariance test), while the wall-clock cost
// drops to roughly the slowest shard's share.
//
// workers <= 0 uses GOMAXPROCS.
func RunSweep(scenarios []Scenario, workers int) []SweepResult {
	out := make([]SweepResult, len(scenarios))
	if len(scenarios) == 0 {
		return out
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	sh := vtime.NewShards(workers)
	defer sh.Close()
	sh.Run(len(scenarios), func(i int, sched *vtime.Scheduler) (time.Duration, error) {
		s := scenarios[i]
		r, err := s.RunOn(sched)
		out[i] = SweepResult{Scenario: s, Result: r, Err: err}
		return sched.Now(), err
	})
	return out
}
