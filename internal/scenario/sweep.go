package scenario

import (
	"runtime"
	"sync"

	"compilegate/internal/harness"
)

// SweepResult is one scenario's outcome within a sweep.
type SweepResult struct {
	Scenario Scenario
	Result   *harness.Result
	Err      error
}

// RunSweep executes the scenarios concurrently on a bounded worker pool
// and returns their outcomes in input order. Each run builds a private
// vtime.Scheduler, server, and client population, so runs share no
// mutable state: a sweep returns results identical to running every
// scenario serially, while the wall-clock cost drops to roughly
// ceil(len(scenarios)/workers) serial runs.
//
// workers <= 0 uses GOMAXPROCS.
func RunSweep(scenarios []Scenario, workers int) []SweepResult {
	out := make([]SweepResult, len(scenarios))
	if len(scenarios) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				s := scenarios[i]
				r, err := s.Run()
				out[i] = SweepResult{Scenario: s, Result: r, Err: err}
			}
		}()
	}
	for i := range scenarios {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
