package scenario

import (
	"time"

	"compilegate/internal/cluster"
	"compilegate/internal/fault"
	"compilegate/internal/mem"
	"compilegate/internal/workload"
)

// This file registers the cluster-plane scenarios: N engine instances
// on one event loop behind a deterministic router. They exercise the
// three routing policies — even spreading at a four-digit client
// population, fingerprint affinity on a wide statement pool (the
// plan-cache locality experiment), and least-loaded routing through a
// scripted node loss.

func init() {
	// The scale probe: a 1000-client population spread round-robin over
	// four nodes. The point is the population itself — the router, the
	// per-node recorders, and the aggregation have to stay deterministic
	// and even-handed at four digits of concurrent clients.
	rr := Scenario{
		Name:        "cluster-roundrobin",
		Description: "1000 OLTP clients round-robin over 4 nodes — even spread at scale",
		Clients:     1000,
		Scale:       0.04,
		Workload:    workload.SpecOLTP,
		Horizon:     15 * time.Minute,
		Warmup:      5 * time.Minute,
		Throttled:   true,
		Seed:        1,
		Nodes:       4,
		Router:      cluster.RoundRobin,
		Load: func(l *workload.LoadConfig) {
			l.ThinkTime = 15 * time.Second
		},
	}
	Default.MustRegister(rr)

	// The locality experiment: a 2000-statement point-query pool over
	// four nodes. Round-robin pays the pool's cold-compilation bill on
	// every node; fingerprint affinity pays it once across the fleet, so
	// its pooled plan-cache hit rate is measurably higher. The claim test
	// replicates this scenario against its round-robin twin per seed.
	aff := Scenario{
		Name:        "cluster-affinity",
		Description: "wide OLTP pool, fingerprint-affinity routing over 4 nodes — plan-cache locality",
		Clients:     120,
		Scale:       0.04,
		Workload:    workload.SpecOLTPWide,
		Horizon:     30 * time.Minute,
		Warmup:      10 * time.Minute,
		Throttled:   true,
		Seed:        1,
		Nodes:       4,
		Router:      cluster.Affinity,
		Load: func(l *workload.LoadConfig) {
			l.ThinkTime = 5 * time.Second
		},
	}
	Default.MustRegister(aff)

	// The degradation experiment: least-loaded routing through a scripted
	// loss of node 1. While the node is down the router carries its share
	// on the survivors and clients retry lost in-flight work with backoff;
	// recovery is measured on the cluster-level completion sum.
	loss := Scenario{
		Name:        "cluster-nodeloss",
		Description: "mixed workload on 3 nodes, least-loaded routing, node 1 lost for 6 min",
		Clients:     36,
		Scale:       0.04,
		Workload:    workload.SpecMix,
		Horizon:     70 * time.Minute,
		Warmup:      10 * time.Minute,
		Throttled:   true,
		Seed:        1,
		Nodes:       3,
		Router:      cluster.LeastLoaded,
		Load: func(l *workload.LoadConfig) {
			retryDriver(l)
			l.ThinkTime = 5 * time.Second
		},
		Fault: &fault.Plan{Seed: 105, Injections: []fault.Injection{
			{Kind: fault.CrashRestart, Node: 1, At: 40 * time.Minute, Duration: 6 * time.Minute},
		}},
	}
	Default.MustRegister(loss)

	// The thrash-shedding experiment: a wired-memory leak squeezes node 1
	// into the paging regime while the rest of the fleet stays healthy.
	// With the health envelope on, the router reads the node's overcommit
	// and thrash score and steers traffic around it; the breaker converts
	// its shed/timeout responses into an open circuit; failover masks the
	// stragglers. The claim test replicates this scenario against a twin
	// with all three mechanisms off and holds a per-seed throughput
	// margin.
	thrash := Scenario{
		Name:        "cluster-thrash-shed",
		Description: "memory leak thrashes node 1 of 3; health-aware routing sheds around it",
		Clients:     24,
		Scale:       0.04,
		Workload:    workload.SpecSales,
		Horizon:     100 * time.Minute,
		Warmup:      15 * time.Minute,
		Throttled:   true,
		Seed:        1,
		Nodes:       3,
		Router:      cluster.RoundRobin,
		Engine:      calibrated(brownout),
		Load: func(l *workload.LoadConfig) {
			retryDriver(l)
		},
		Health:       &cluster.HealthConfig{Enabled: true},
		Breaker:      &cluster.BreakerConfig{Enabled: true},
		FailoverHops: 2,
		Fault: &fault.Plan{Seed: 106, Injections: []fault.Injection{
			{Kind: fault.MemLeak, Node: 1, At: 25 * time.Minute, Duration: 35 * time.Minute,
				RateBytes: 64 * mem.MiB, Interval: 10 * time.Second, Release: true},
		}},
	}
	Default.MustRegister(thrash)

	// The correlated-storm control: a compile-storm burst hits every node
	// at the same instant. Storms raise pressure fleet-wide, but client
	// queries keep succeeding between sheds, so no breaker may accumulate
	// its consecutive-failure threshold — a breaker design that tripped
	// the whole fleet open under correlated stress would be worse than no
	// breaker at all. The claim test holds all-excluded at exactly zero
	// on every seed.
	storm := Scenario{
		Name:        "cluster-compile-storm",
		Description: "correlated compile storm on all 4 nodes — breakers must not trip the fleet open",
		Clients:     48,
		Scale:       0.04,
		Workload:    workload.SpecSales,
		Horizon:     80 * time.Minute,
		Warmup:      15 * time.Minute,
		Throttled:   true,
		Seed:        1,
		Nodes:       4,
		Router:      cluster.RoundRobin,
		Engine:      calibrated(brownout),
		Load: func(l *workload.LoadConfig) {
			retryDriver(l)
		},
		Breaker:      &cluster.BreakerConfig{Enabled: true},
		FailoverHops: 2,
		Fault: &fault.Plan{Seed: 107, Injections: []fault.Injection{
			{Kind: fault.CompileStorm, Node: 0, At: 40 * time.Minute, Burst: 16, Interval: 2 * time.Second},
			{Kind: fault.CompileStorm, Node: 1, At: 40 * time.Minute, Burst: 16, Interval: 2 * time.Second},
			{Kind: fault.CompileStorm, Node: 2, At: 40 * time.Minute, Burst: 16, Interval: 2 * time.Second},
			{Kind: fault.CompileStorm, Node: 3, At: 40 * time.Minute, Burst: 16, Interval: 2 * time.Second},
		}},
	}
	Default.MustRegister(storm)

	// The recovery experiment: cluster-nodeloss re-run with the router's
	// liveness oracle replaced by circuit breakers. The router discovers
	// the crash through fail-fast responses (tripping node 1's breaker
	// within a handful of submissions), masks them with failover, and
	// re-admits the restarted node through half-open probes. The claim
	// test bounds cluster-level recovery time across seeds.
	recovery := Scenario{
		Name:        "cluster-breaker-recovery",
		Description: "node 1 of 3 lost for 6 min; breakers discover, shed, and re-admit it",
		Clients:     48,
		Scale:       0.04,
		Workload:    workload.SpecOLTP,
		Horizon:     70 * time.Minute,
		Warmup:      10 * time.Minute,
		Throttled:   true,
		Seed:        1,
		Nodes:       3,
		Router:      cluster.RoundRobin,
		Load: func(l *workload.LoadConfig) {
			retryDriver(l)
			l.ThinkTime = 5 * time.Second
		},
		Breaker:      &cluster.BreakerConfig{Enabled: true},
		FailoverHops: 2,
		Fault: &fault.Plan{Seed: 108, Injections: []fault.Injection{
			{Kind: fault.CrashRestart, Node: 1, At: 40 * time.Minute, Duration: 6 * time.Minute},
		}},
	}
	Default.MustRegister(recovery)
}
