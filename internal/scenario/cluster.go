package scenario

import (
	"time"

	"compilegate/internal/cluster"
	"compilegate/internal/fault"
	"compilegate/internal/workload"
)

// This file registers the cluster-plane scenarios: N engine instances
// on one event loop behind a deterministic router. They exercise the
// three routing policies — even spreading at a four-digit client
// population, fingerprint affinity on a wide statement pool (the
// plan-cache locality experiment), and least-loaded routing through a
// scripted node loss.

func init() {
	// The scale probe: a 1000-client population spread round-robin over
	// four nodes. The point is the population itself — the router, the
	// per-node recorders, and the aggregation have to stay deterministic
	// and even-handed at four digits of concurrent clients.
	rr := Scenario{
		Name:        "cluster-roundrobin",
		Description: "1000 OLTP clients round-robin over 4 nodes — even spread at scale",
		Clients:     1000,
		Scale:       0.04,
		Workload:    workload.SpecOLTP,
		Horizon:     15 * time.Minute,
		Warmup:      5 * time.Minute,
		Throttled:   true,
		Seed:        1,
		Nodes:       4,
		Router:      cluster.RoundRobin,
		Load: func(l *workload.LoadConfig) {
			l.ThinkTime = 15 * time.Second
		},
	}
	Default.MustRegister(rr)

	// The locality experiment: a 2000-statement point-query pool over
	// four nodes. Round-robin pays the pool's cold-compilation bill on
	// every node; fingerprint affinity pays it once across the fleet, so
	// its pooled plan-cache hit rate is measurably higher. The claim test
	// replicates this scenario against its round-robin twin per seed.
	aff := Scenario{
		Name:        "cluster-affinity",
		Description: "wide OLTP pool, fingerprint-affinity routing over 4 nodes — plan-cache locality",
		Clients:     120,
		Scale:       0.04,
		Workload:    workload.SpecOLTPWide,
		Horizon:     30 * time.Minute,
		Warmup:      10 * time.Minute,
		Throttled:   true,
		Seed:        1,
		Nodes:       4,
		Router:      cluster.Affinity,
		Load: func(l *workload.LoadConfig) {
			l.ThinkTime = 5 * time.Second
		},
	}
	Default.MustRegister(aff)

	// The degradation experiment: least-loaded routing through a scripted
	// loss of node 1. While the node is down the router carries its share
	// on the survivors and clients retry lost in-flight work with backoff;
	// recovery is measured on the cluster-level completion sum.
	loss := Scenario{
		Name:        "cluster-nodeloss",
		Description: "mixed workload on 3 nodes, least-loaded routing, node 1 lost for 6 min",
		Clients:     36,
		Scale:       0.04,
		Workload:    workload.SpecMix,
		Horizon:     70 * time.Minute,
		Warmup:      10 * time.Minute,
		Throttled:   true,
		Seed:        1,
		Nodes:       3,
		Router:      cluster.LeastLoaded,
		Load: func(l *workload.LoadConfig) {
			retryDriver(l)
			l.ThinkTime = 5 * time.Second
		},
		Fault: &fault.Plan{Seed: 105, Injections: []fault.Injection{
			{Kind: fault.CrashRestart, Node: 1, At: 40 * time.Minute, Duration: 6 * time.Minute},
		}},
	}
	Default.MustRegister(loss)
}
