package scenario

import (
	"math"
	"testing"
)

func TestMeanMedianQuantile(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("Median odd = %v, want 3", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("Median even = %v, want 2.5", got)
	}
	// Type-7 interpolation: q=0.25 over {1,2,3,4} sits at position 0.75.
	if got := Quantile([]float64{1, 2, 3, 4}, 0.25); got != 1.75 {
		t.Fatalf("Quantile(0.25) = %v, want 1.75", got)
	}
	if got := Quantile([]float64{9, 7, 8}, 0); got != 7 {
		t.Fatalf("Quantile(0) = %v, want min", got)
	}
	if got := Quantile([]float64{9, 7, 8}, 1); got != 9 {
		t.Fatalf("Quantile(1) = %v, want max", got)
	}
	// Quantile must not mutate its input.
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{1.2, 1.4, 1.1, 1.6, 1.3}
	a := BootstrapCI(xs, 0.95, 42)
	b := BootstrapCI(xs, 0.95, 42)
	if a != b {
		t.Fatalf("same seed, different intervals: %v vs %v", a, b)
	}
	// The interval must bracket the sample mean and stay inside the range.
	m := Mean(xs)
	if !a.Contains(m) {
		t.Fatalf("CI %v does not contain the mean %v", a, m)
	}
	if a.Lo < 1.1 || a.Hi > 1.6 {
		t.Fatalf("bootstrap CI %v escaped the sample range [1.1, 1.6]", a)
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	if got := BootstrapCI(nil, 0.95, 1); got != (Interval{}) {
		t.Fatalf("empty sample CI = %v, want zero interval", got)
	}
	if got := BootstrapCI([]float64{7}, 0.95, 1); got != (Interval{Lo: 7, Hi: 7}) {
		t.Fatalf("singleton CI = %v, want [7, 7]", got)
	}
	// All-equal samples must give a point interval.
	if got := BootstrapCI([]float64{0, 0, 0, 0, 0}, 0.95, 1); got != (Interval{}) {
		t.Fatalf("all-zero CI = %v, want [0, 0]", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{2, 4, 6}
	s := Summarize(xs, 0)
	if s.N != 3 || s.Mean != 4 || s.Median != 4 || s.Min != 2 || s.Max != 6 {
		t.Fatalf("bad point stats: %+v", s)
	}
	if s.Confidence != 0.95 {
		t.Fatalf("confidence default = %v, want 0.95", s.Confidence)
	}
	// Identical samples carry identical intervals regardless of caller.
	if s2 := Summarize([]float64{2, 4, 6}, 0); s2.CI != s.CI {
		t.Fatalf("same sample, different CI: %v vs %v", s.CI, s2.CI)
	}
	// A narrower confidence must not widen the interval.
	if s80 := Summarize(xs, 0.80); s80.CI.Hi-s80.CI.Lo > s.CI.Hi-s.CI.Lo+1e-12 {
		t.Fatalf("80%% CI %v wider than 95%% CI %v", s80.CI, s.CI)
	}
	if got := Summarize(nil, 0.95); got.N != 0 || got.CI != (Interval{}) {
		t.Fatalf("empty summary = %+v", got)
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 2}
	for _, tc := range []struct {
		x    float64
		want bool
	}{{1, true}, {2, true}, {1.5, true}, {0.999, false}, {2.001, false}} {
		if got := iv.Contains(tc.x); got != tc.want {
			t.Fatalf("Contains(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if !(Interval{Lo: 3, Hi: math.Inf(1)}).Contains(1e12) {
		t.Fatal("unbounded interval rejected a large value")
	}
}
