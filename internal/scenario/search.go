package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// This file replaces the exhaustive calibration grid with successive
// halving: every knob set gets a cheap first look (one client count,
// one seed), the top third is promoted rung by rung onto a widening
// budget (more client counts, then more replication seeds), and only
// the winner is evaluated at the full clients × seeds budget. A (knob,
// clients, seed) cell is simulated at most once — later rungs reuse
// earlier cells — so the search reaches the grid's best fidelity score
// at a quarter or less of the grid's simulation count (pinned by
// TestSearchBeatsGridDifferential), and the saved budget funds seed
// replication of the claims.

// searchCell keys the cell cache: one throttled/baseline pair.
type searchCell struct {
	name    string
	clients int
	seed    int64
}

// SearchRung summarizes one rung of the halving schedule.
type SearchRung struct {
	// Clients/Seeds are the budget this rung scored over.
	Clients []int
	Seeds   []int64
	// Names are the knob sets alive in this rung, best score first.
	Names []string
	// Scores are the rung scores, parallel to Names.
	Scores []float64
	// NewRuns counts simulations this rung added (cached cells are free).
	NewRuns int
}

// SearchReport is a finished successive-halving search.
type SearchReport struct {
	// Winner is the surviving knob set; Score is its fidelity score over
	// the full clients × seeds budget (same scale as the exhaustive
	// grid's CalibrationReport.Score at the same seed population).
	Winner PressureKnobs
	Score  float64
	// Runs is the total simulations the search executed; GridRuns is
	// what the exhaustive grid costs at the same seed budget.
	Runs     int
	GridRuns int
	// Rungs is the schedule as executed.
	Rungs []SearchRung
	// Points holds every evaluated cell (for CSV/report rendering),
	// in knob-grid order.
	Points []CalibrationPoint
}

// Efficiency returns Runs/GridRuns — the fraction of the exhaustive
// budget the search spent.
func (r *SearchReport) Efficiency() float64 {
	if r.GridRuns == 0 {
		return 0
	}
	return float64(r.Runs) / float64(r.GridRuns)
}

// String renders the rung schedule and the verdict.
func (r *SearchReport) String() string {
	var sb strings.Builder
	for i, rung := range r.Rungs {
		fmt.Fprintf(&sb, "rung %d: %d clients x %d seeds, %d new runs:", i, len(rung.Clients), len(rung.Seeds), rung.NewRuns)
		for j, name := range rung.Names {
			fmt.Fprintf(&sb, " %s=%.3f", name, rung.Scores[j])
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "winner %s score %.3f in %d runs (grid: %d, %.0f%%)\n",
		r.Winner.Name, r.Score, r.Runs, r.GridRuns, 100*r.Efficiency())
	return sb.String()
}

// searcher carries the cache and run accounting across rungs.
type searcher struct {
	cal     Calibration
	targets []FidelityTarget
	knobs   map[string]PressureKnobs
	order   map[string]int // knob-grid position, the deterministic tiebreak
	cells   map[searchCell]CalibrationPoint
	runs    int
}

// evaluate simulates every (name, clients, seed) cell not already
// cached, sweeping all missing pairs concurrently.
func (s *searcher) evaluate(names []string, clients []int, seeds []int64) int {
	var missing []searchCell
	var jobs []Scenario
	for _, name := range names {
		for _, cl := range clients {
			for _, seed := range seeds {
				key := searchCell{name, cl, seed}
				if _, ok := s.cells[key]; ok {
					continue
				}
				missing = append(missing, key)
				sc := s.cal.cellScenario(s.knobs[name], cl, seed)
				jobs = append(jobs, sc, sc.Baseline())
			}
		}
	}
	results := RunSweep(jobs, s.cal.Workers)
	for i, key := range missing {
		th, ba := results[2*i], results[2*i+1]
		p := CalibrationPoint{Knobs: s.knobs[key.name], Clients: key.clients, Seed: key.seed}
		switch {
		case th.Err != nil:
			p.Err = th.Err
		case ba.Err != nil:
			p.Err = ba.Err
		default:
			p.Throttled, p.Baseline = th.Result, ba.Result
		}
		s.cells[key] = p
	}
	s.runs += len(jobs)
	return len(jobs)
}

// score sums the squared fidelity misses of name's cells over the given
// budget — the same per-cell scoring as CalibrationReport.Score, so a
// full-budget search score and a grid score are directly comparable.
func (s *searcher) score(name string, clients []int, seeds []int64) float64 {
	var score float64
	for _, cl := range clients {
		t, ok := target(s.targets, cl)
		if !ok {
			continue
		}
		for _, seed := range seeds {
			p := s.cells[searchCell{name, cl, seed}]
			if p.Err != nil {
				score += t.Ratio * t.Ratio
				continue
			}
			ratio := p.Ratio()
			if t.AtLeast && ratio >= t.Ratio {
				continue
			}
			d := ratio - t.Ratio
			score += d * d
		}
	}
	return score
}

func target(targets []FidelityTarget, clients int) (FidelityTarget, bool) {
	for _, t := range targets {
		if t.Clients == clients {
			return t, true
		}
	}
	return FidelityTarget{}, false
}

// Search runs successive halving over the calibration's knob sets with
// the given replication seeds (nil falls back to the grid's seed list).
// The schedule: rung 0 scores every knob set at the first client count
// under the first seed; each following rung promotes the top third
// (ceil) and widens the budget by one client count, then by seeds,
// until a single survivor holds the full clients × seeds budget.
func (c Calibration) Search(seeds []int64) *SearchReport {
	if c.Horizon <= 0 {
		c.Horizon, c.Warmup = 3*time.Hour, 45*time.Minute
	}
	if len(seeds) == 0 {
		seeds = c.seedList()
	}
	targets := c.Targets
	if targets == nil {
		targets = PaperTargets()
	}
	s := &searcher{
		cal:     c,
		targets: targets,
		knobs:   make(map[string]PressureKnobs, len(c.Knobs)),
		order:   make(map[string]int, len(c.Knobs)),
		cells:   make(map[searchCell]CalibrationPoint),
	}
	survivors := make([]string, len(c.Knobs))
	for i, k := range c.Knobs {
		survivors[i] = k.Name
		s.knobs[k.Name] = k
		s.order[k.Name] = i
	}

	rep := &SearchReport{GridRuns: 2 * len(c.Knobs) * len(c.Clients) * len(seeds)}
	nClients, nSeeds := 1, 1
	for {
		clients, runSeeds := c.Clients[:nClients], seeds[:nSeeds]
		newRuns := s.evaluate(survivors, clients, runSeeds)

		scores := make([]float64, len(survivors))
		for i, name := range survivors {
			scores[i] = s.score(name, clients, runSeeds)
		}
		// Joint sort by (score, knob-grid order): the index permutation
		// keeps names and scores aligned; the grid-order tiebreak makes
		// reruns deterministic.
		idx := make([]int, len(survivors))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			if scores[idx[a]] != scores[idx[b]] {
				return scores[idx[a]] < scores[idx[b]]
			}
			return s.order[survivors[idx[a]]] < s.order[survivors[idx[b]]]
		})
		ranked := make([]string, len(idx))
		rankedScores := make([]float64, len(idx))
		for i, j := range idx {
			ranked[i], rankedScores[i] = survivors[j], scores[j]
		}
		survivors = ranked
		rep.Rungs = append(rep.Rungs, SearchRung{
			Clients: append([]int(nil), clients...),
			Seeds:   append([]int64(nil), runSeeds...),
			Names:   append([]string(nil), survivors...),
			Scores:  rankedScores,
			NewRuns: newRuns,
		})

		if nClients == len(c.Clients) && nSeeds == len(seeds) {
			// Full budget reached: the final pick is by full-budget score.
			survivors = survivors[:1]
			break
		}
		// Promote the top third, but never fewer than two arms before the
		// budget is complete: a single-seed score must not be allowed to
		// commit the search (that would re-create the lucky-draw problem
		// replication exists to kill).
		if len(survivors) > 2 {
			keep := (len(survivors) + 2) / 3
			if keep < 2 {
				keep = 2
			}
			survivors = survivors[:keep]
		}
		if nClients < len(c.Clients) {
			nClients++
		} else {
			nSeeds++
		}
	}

	rep.Winner = s.knobs[survivors[0]]
	rep.Score = s.score(survivors[0], c.Clients, seeds)
	rep.Runs = s.runs
	for _, k := range c.Knobs {
		for _, cl := range c.Clients {
			for _, seed := range seeds {
				if p, ok := s.cells[searchCell{k.Name, cl, seed}]; ok {
					rep.Points = append(rep.Points, p)
				}
			}
		}
	}
	return rep
}
