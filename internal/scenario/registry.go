package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of scenarios. Iteration (Names,
// Scenarios, List) is sorted by name, so listings and docs snippets are
// stable regardless of init wiring order. Safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Scenario
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Scenario)}
}

// Register adds a scenario, rejecting invalid descriptions and duplicate
// names.
func (r *Registry) Register(s Scenario) error {
	if err := s.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[s.Name]; dup {
		return fmt.Errorf("scenario: duplicate name %q", s.Name)
	}
	r.byName[s.Name] = s
	return nil
}

// MustRegister is Register for init-time wiring.
func (r *Registry) MustRegister(s Scenario) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// Get returns the scenario registered under name.
func (r *Registry) Get(name string) (Scenario, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byName[name]
	return s, ok
}

// Names returns the registered names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byName))
	for name := range r.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Scenarios returns the registered scenarios sorted by name.
func (r *Registry) Scenarios() []Scenario {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.byName))
	for name := range r.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Scenario, 0, len(names))
	for _, name := range names {
		out = append(out, r.byName[name])
	}
	return out
}

// List renders a table of the registered scenarios for -list flags.
func (r *Registry) List() string {
	var sb strings.Builder
	for _, s := range r.Scenarios() {
		throttle := "throttled"
		if !s.Throttled {
			throttle = "baseline"
		}
		fmt.Fprintf(&sb, "  %-16s %2d clients, %-5s %-9s window [%v, %v)\n      %s\n",
			s.Name, s.Clients, s.Workload.String()+",", throttle, s.Warmup, s.Horizon,
			s.Description)
	}
	return sb.String()
}

// Default is the registry holding every paper experiment; paper.go
// populates it at init.
var Default = NewRegistry()

// Get resolves name against the default registry.
func Get(name string) (Scenario, bool) { return Default.Get(name) }

// Names lists the default registry's names.
func Names() []string { return Default.Names() }

// All returns the default registry's scenarios.
func All() []Scenario { return Default.Scenarios() }

// List renders the default registry.
func List() string { return Default.List() }
