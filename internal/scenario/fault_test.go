package scenario

import (
	"fmt"
	"math/rand"
	"testing"

	"compilegate/internal/fault"
)

// TestFaultDeterminism proves shard/worker invariance holds under the
// fault plane: randomized seeded fault plans over registry scenarios
// produce byte-identical digests at every worker count. Injections run
// as ordinary scheduler tasks, so this must hold by construction — a
// divergence means an injection leaked state across runs or drew
// randomness outside its plan seed.
func TestFaultDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	rng := rand.New(rand.NewSource(0xFA17))
	base := MustGet(t, "quickstart")
	jobs := make([]Scenario, 0, 8)
	for trial := 0; trial < 4; trial++ {
		plan := fault.Random(rng, base.Horizon)
		s := base
		s.Name = fmt.Sprintf("fault-rand-%d", trial)
		s.Fault = &plan
		jobs = append(jobs, s)
	}
	// The registered fault scenarios ride along: their scripted plans
	// cover each kind at full scale.
	for _, name := range []string{"fault-diskstall", "fault-leak", "fault-crash-restart", "retry-storm"} {
		jobs = append(jobs, MustGet(t, name))
	}

	ref := RunSweep(jobs, 1)
	refDigests := make([]string, len(ref))
	for i, sr := range ref {
		if sr.Err != nil {
			t.Fatalf("%s (workers=1): %v", sr.Scenario.Name, sr.Err)
		}
		refDigests[i] = digest(sr)
	}

	for _, workers := range []int{2, 4} {
		got := RunSweep(jobs, workers)
		for i, sr := range got {
			if sr.Err != nil {
				t.Fatalf("%s (workers=%d): %v", sr.Scenario.Name, workers, sr.Err)
			}
			if d := digest(sr); d != refDigests[i] {
				t.Errorf("%s: digest diverged at workers=%d:\ngot:  %s\nwant: %s",
					sr.Scenario.Name, workers, d, refDigests[i])
			}
		}
	}
}
