package scenario

import (
	"testing"
	"time"
)

// TestClaimThroughputSeparation pins the paper's headline claim at the
// recalibrated figure3 operating point: the throttled server sustains at
// least 1.2x the unthrottled baseline's throughput (the paper shows
// ~1.35x at 30 clients). The window is compressed to the calibration
// window (3 h measured from 45 min) to keep the test fast; the full
// 8-hour figures show the same separation (EXPERIMENTS.md).
func TestClaimThroughputSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	s, ok := Get("figure3")
	if !ok {
		t.Fatal("figure3 not registered")
	}
	s = s.WithWindow(3*time.Hour, 45*time.Minute)
	res := RunSweep([]Scenario{s, s.Baseline()}, 2)
	for _, sr := range res {
		if sr.Err != nil {
			t.Fatalf("%s: %v", sr.Scenario.Name, sr.Err)
		}
	}
	th, ba := res[0].Result, res[1].Result
	if ba.Completed == 0 {
		t.Fatal("baseline completed nothing")
	}
	ratio := float64(th.Completed) / float64(ba.Completed)
	if ratio < 1.2 {
		t.Fatalf("throttled/baseline = %d/%d = %.2fx, want >= 1.2x (paper: ~1.35x)",
			th.Completed, ba.Completed, ratio)
	}
	// The separation must come from the thrash regime, not from baseline
	// failures alone: the baseline should actually be overcommitted.
	if ba.AvgOvercommitRatio <= 1 {
		t.Fatalf("baseline overcommit ratio = %.2f, want > 1 (thrashing)", ba.AvgOvercommitRatio)
	}
	// And governance must keep the throttled server out of deep thrash.
	if th.AvgOvercommitRatio >= ba.AvgOvercommitRatio {
		t.Fatalf("throttled overcommit %.2f not below baseline %.2f",
			th.AvgOvercommitRatio, ba.AvgOvercommitRatio)
	}
}
