package scenario

import (
	"math"
	"sync"
	"testing"
)

// The paper-claim tests below assert distributions, not draws: every
// claim replicates its scenario over ClaimSeeds() (5 by default; PR CI
// narrows to 3 through CLAIMS_SEEDS) at the paper's full 8 h window
// measured from 3 h, and holds only when the bootstrap confidence
// interval of the metric sits inside the claimed band. Compressed
// windows are deliberately not used here: at 3 h/45 min the figure3
// separation genuinely fails on some seeds (seed 3 gives 0.99x), which
// is exactly the lucky-draw failure mode replication exists to expose.

// claimReplication runs the named figure's paired replication over the
// claim seed population, memoized so the figure3 claims share one set
// of simulations. The CSV artifact is written when REPLICATION_CSV_DIR
// is set (the nightly workflow collects it).
var claimReps sync.Map // name -> *ReplicationReport

func claimReplication(t *testing.T, name string) *ReplicationReport {
	t.Helper()
	if rep, ok := claimReps.Load(name); ok {
		return rep.(*ReplicationReport)
	}
	rep, err := Replication{Scenario: MustGet(t, name), Seeds: ClaimSeeds(), Paired: true}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCSVEnv(MetricCompleted, MetricErrors, MetricThroughputRatio,
		MetricOvercommit, MetricOvercommitMargin, MetricCompileP50, MetricCompileP90); err != nil {
		t.Logf("replication CSV artifact: %v", err)
	}
	claimReps.Store(name, rep)
	return rep
}

// metricBaselineOvercommit reads the unthrottled twin's overcommit —
// the thrash-regime precondition behind the throughput claims.
var metricBaselineOvercommit = Metric{"ba-overcommit", func(r SeedRun) float64 {
	return r.Baseline.AvgOvercommitRatio
}}

// TestClaimThroughputSeparation pins the paper's headline claim at the
// figure3 operating point (30 clients): across the seed population the
// throttled server sustains at least 1.2x the unthrottled baseline
// (the paper shows ~1.35x), the baseline genuinely thrashes
// (overcommit > 1), and governance keeps the throttled server cooler.
func TestClaimThroughputSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	rep := claimReplication(t, "figure3")
	ClaimBand{
		Claim:  "figure3: throttled sustains >= 1.2x baseline throughput at 30 clients",
		Metric: MetricThroughputRatio, Lo: 1.2, Hi: math.Inf(1),
	}.Assert(t, rep)
	ClaimBand{
		Claim:  "figure3: the unthrottled baseline is overcommitted (thrash regime)",
		Metric: metricBaselineOvercommit, Lo: 1.0, Hi: math.Inf(1),
	}.Assert(t, rep)
	ClaimBand{
		Claim:  "figure3: governance keeps the throttled server cooler than baseline",
		Metric: MetricOvercommitMargin, Lo: 0.02, Hi: math.Inf(1),
	}.Assert(t, rep)
}

// TestClaimMidloadSeparation pins Figure 4's point (35 clients): the
// separation grows with load — at least 1.3x across the population.
func TestClaimMidloadSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	rep := claimReplication(t, "figure4")
	ClaimBand{
		Claim:  "figure4: throttled sustains >= 1.3x baseline throughput at 35 clients",
		Metric: MetricThroughputRatio, Lo: 1.3, Hi: math.Inf(1),
	}.Assert(t, rep)
}

// TestClaimCollapseAtForty pins Figure 5's qualitative claim: at 40
// clients the unthrottled baseline collapses — the throttled server
// sustains at least twice its throughput (baseline starvation reads as
// RatioCap and counts as collapse) while the baseline drowns in
// hundreds more failures (out-of-memory under a thrashing,
// VAS-exhausted machine).
func TestClaimCollapseAtForty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	rep := claimReplication(t, "figure5")
	ClaimBand{
		Claim:  "figure5: throttled sustains >= 2x baseline throughput at 40 clients",
		Metric: MetricThroughputRatio, Lo: 2, Hi: math.Inf(1),
	}.Assert(t, rep)
	ClaimBand{
		Claim:  "figure5: the collapsing baseline fails hundreds more queries",
		Metric: MetricErrorMargin, Lo: 500, Hi: math.Inf(1),
	}.Assert(t, rep)
}

// TestClaimCompileDurationBand pins the unification the staged
// compile-memory model buys: at the *same* calibration that produces
// the Figures 3-5 separation (figure3's operating point), the
// throttled server's compile-duration distribution still matches
// §5.2's 10-90 s ad-hoc profile — the median inside the band and the
// tail bounded. Histogram.Quantile reports the upper bound of the
// median's bucket (bounds ... 1s, 10s, 30s ...), so a median anywhere
// at or below the 10 s bucket reads as exactly 10 s — the band's lower
// edge sits just above 10 to reject sub-band medians.
func TestClaimCompileDurationBand(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	rep := claimReplication(t, "figure3")
	ClaimBand{
		Claim:  "figure3: compile p50 stays in the §5.2 10-90 s ad-hoc band",
		Metric: MetricCompileP50, Lo: 10.5, Hi: 90,
	}.Assert(t, rep)
	ClaimBand{
		Claim:  "figure3: compile p90 stays minutes, not the pre-stage tens of minutes",
		Metric: MetricCompileP90, Lo: 10.5, Hi: 300,
	}.Assert(t, rep)
}
