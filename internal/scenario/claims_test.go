package scenario

import (
	"testing"
	"time"
)

// TestClaimThroughputSeparation pins the paper's headline claim at the
// recalibrated figure3 operating point: the throttled server sustains at
// least 1.2x the unthrottled baseline's throughput (the paper shows
// ~1.35x at 30 clients). The window is compressed to the calibration
// window (3 h measured from 45 min) to keep the test fast; the full
// 8-hour figures show the same separation (EXPERIMENTS.md).
func TestClaimThroughputSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	s, ok := Get("figure3")
	if !ok {
		t.Fatal("figure3 not registered")
	}
	s = s.WithWindow(3*time.Hour, 45*time.Minute)
	res := RunSweep([]Scenario{s, s.Baseline()}, 2)
	for _, sr := range res {
		if sr.Err != nil {
			t.Fatalf("%s: %v", sr.Scenario.Name, sr.Err)
		}
	}
	th, ba := res[0].Result, res[1].Result
	if ba.Completed == 0 {
		t.Fatal("baseline completed nothing")
	}
	ratio := float64(th.Completed) / float64(ba.Completed)
	if ratio < 1.2 {
		t.Fatalf("throttled/baseline = %d/%d = %.2fx, want >= 1.2x (paper: ~1.35x)",
			th.Completed, ba.Completed, ratio)
	}
	// The separation must come from the thrash regime, not from baseline
	// failures alone: the baseline should actually be overcommitted.
	if ba.AvgOvercommitRatio <= 1 {
		t.Fatalf("baseline overcommit ratio = %.2f, want > 1 (thrashing)", ba.AvgOvercommitRatio)
	}
	// And governance must keep the throttled server out of deep thrash.
	if th.AvgOvercommitRatio >= ba.AvgOvercommitRatio {
		t.Fatalf("throttled overcommit %.2f not below baseline %.2f",
			th.AvgOvercommitRatio, ba.AvgOvercommitRatio)
	}
}

// TestClaimCollapseAtForty pins Figure 5's qualitative claim: at 40
// clients the unthrottled baseline collapses — the throttled server
// sustains at least twice its throughput while the baseline drowns in
// failures (out-of-memory under a thrashing, VAS-exhausted machine).
func TestClaimCollapseAtForty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	s, ok := Get("figure5")
	if !ok {
		t.Fatal("figure5 not registered")
	}
	s = s.WithWindow(3*time.Hour, 45*time.Minute)
	res := RunSweep([]Scenario{s, s.Baseline()}, 2)
	for _, sr := range res {
		if sr.Err != nil {
			t.Fatalf("%s: %v", sr.Scenario.Name, sr.Err)
		}
	}
	th, ba := res[0].Result, res[1].Result
	if ba.Completed == 0 {
		// Total baseline starvation also counts as collapse.
		return
	}
	ratio := float64(th.Completed) / float64(ba.Completed)
	if ratio < 2 {
		t.Fatalf("throttled/baseline = %d/%d = %.2fx at 40 clients, want >= 2x (collapse)",
			th.Completed, ba.Completed, ratio)
	}
	if ba.Errors <= th.Errors {
		t.Fatalf("collapsing baseline errors (%d) not above throttled (%d)", ba.Errors, th.Errors)
	}
}

// TestClaimCompileDurationBand pins the unification the staged
// compile-memory model buys: at the *same* calibration that produces
// the Figures 3-5 separation (figure3's operating point), the
// throttled server's compile-duration distribution still matches
// §5.2's 10-90 s ad-hoc profile — the median inside the band and the
// tail bounded. Under the pre-stage calibration this was impossible:
// the collapse regime needed 180 ms task waits, which pushed the
// median to ~25 minutes.
func TestClaimCompileDurationBand(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	s, ok := Get("figure3")
	if !ok {
		t.Fatal("figure3 not registered")
	}
	r, err := s.WithWindow(3*time.Hour, 45*time.Minute).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Histogram.Quantile reports the upper bound of the median's bucket
	// (bounds ... 1s, 10s, 30s ...), so a median anywhere at or below
	// the 10 s bucket reads as exactly 10s — the lower bound must
	// therefore be strict to reject sub-band medians.
	if r.CompileP50 <= 10*time.Second || r.CompileP50 > 90*time.Second {
		t.Fatalf("compile p50 = %v at the figure calibration, want within the §5.2 10-90 s band",
			r.CompileP50)
	}
	// The tail may stretch past the band (gate waits are compile time),
	// but must stay minutes, not the pre-stage tens of minutes.
	if r.CompileP90 > 5*time.Minute {
		t.Fatalf("compile p90 = %v at the figure calibration, want <= 5m", r.CompileP90)
	}
}
