package scenario

import (
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"compilegate/internal/engine"
	"compilegate/internal/harness"
	"compilegate/internal/vtime"
)

// TestRegisteredScenariosBuildValidConfigs proves every registered
// experiment resolves to a runnable configuration: the scenario
// validates, its options carry the declared fields, and the resulting
// engine config assembles a real server over the resolved catalog.
func TestRegisteredScenariosBuildValidConfigs(t *testing.T) {
	all := All()
	if len(all) < 10 {
		t.Fatalf("registry holds %d scenarios, expected the full paper set", len(all))
	}
	for _, s := range all {
		t.Run(s.Name, func(t *testing.T) {
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			o := s.Options()
			if o.Clients != s.Clients || o.Scale != s.Scale || o.Workload != s.Workload ||
				o.Horizon != s.Horizon || o.Warmup != s.Warmup ||
				o.Throttled != s.Throttled || o.Seed != s.Seed {
				t.Fatalf("options %+v do not mirror scenario %+v", o, s)
			}
			if (o.Engine != nil) != (s.Engine != nil) {
				t.Fatal("engine delta not applied")
			}
			ecfg := engine.DefaultConfig()
			if o.Engine != nil {
				ecfg = *o.Engine
			}
			ecfg.Throttle = o.Throttled
			cat := o.Workload.NewCatalog(o.Scale, ecfg.BufferPool.ExtentBytes)
			if _, err := engine.New(ecfg, cat, vtime.NewScheduler()); err != nil {
				t.Fatalf("engine rejects the scenario's config: %v", err)
			}
		})
	}
}

func TestValidateRejectsBrokenScenarios(t *testing.T) {
	good := Sales(4)
	good.Name = "ok"
	cases := map[string]func(*Scenario){
		"no-name":         func(s *Scenario) { s.Name = "" },
		"no-clients":      func(s *Scenario) { s.Clients = 0 },
		"no-scale":        func(s *Scenario) { s.Scale = 0 },
		"bad-workload":    func(s *Scenario) { s.Workload = "tpcds" },
		"warmup>=horizon": func(s *Scenario) { s.Warmup = s.Horizon },
	}
	for name, breakIt := range cases {
		s := good
		breakIt(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: broken scenario validated", name)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryRejectsDuplicatesAndSortsNames(t *testing.T) {
	r := NewRegistry()
	a, b := Sales(4), Sales(5)
	a.Name, b.Name = "b", "a" // registered out of name order on purpose
	if err := r.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(b); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(a); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	// Iteration is sorted by name regardless of registration order, so
	// -list output and docs snippets stay stable.
	if names := r.Names(); !reflect.DeepEqual(names, []string{"a", "b"}) {
		t.Fatalf("names = %v", names)
	}
	if all := r.Scenarios(); len(all) != 2 || all[0].Name != "a" || all[1].Name != "b" {
		t.Fatalf("scenarios not sorted: %v, %v", all[0].Name, all[1].Name)
	}
	if _, ok := r.Get("a"); !ok {
		t.Fatal("registered scenario not found")
	}
	if _, ok := r.Get("zzz"); ok {
		t.Fatal("unknown scenario found")
	}
	if list := r.List(); !strings.Contains(list, "a") || !strings.Contains(list, "b") {
		t.Fatalf("list = %q", list)
	}
}

func TestDerivations(t *testing.T) {
	s := Sales(30)
	ba := s.Baseline()
	if ba.Throttled || !s.Throttled {
		t.Fatal("Baseline must flip throttling on the copy only")
	}
	if ba.Name != s.Name+"-baseline" {
		t.Fatalf("baseline name = %q", ba.Name)
	}
	w := s.WithWindow(time.Hour, time.Minute)
	if w.Horizon != time.Hour || w.Warmup != time.Minute || s.Horizon != 8*time.Hour {
		t.Fatal("WithWindow must replace the window on the copy only")
	}
	if s.WithSeed(9).Seed != 9 || s.WithClients(7).Clients != 7 {
		t.Fatal("WithSeed/WithClients broken")
	}
}

// sweepSet is a cheap, heterogeneous set of registered scenarios used by
// the determinism tests: two as registered, two with a compressed
// window so the suite stays fast.
func sweepSet(t *testing.T) []Scenario {
	t.Helper()
	var out []Scenario
	for _, name := range []string{"quickstart", "figure2", "oltp-mix", "adhoc-dss", "cluster-roundrobin"} {
		s, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %s not registered", name)
		}
		if s.Horizon > 30*time.Minute {
			s = s.WithWindow(20*time.Minute, 5*time.Minute)
		}
		out = append(out, s)
	}
	return out
}

// TestSweepMatchesSerial is the determinism guarantee: a parallel sweep
// over independent scenarios returns results identical to running each
// scenario serially — same measurements, same rendered reports.
func TestSweepMatchesSerial(t *testing.T) {
	scenarios := sweepSet(t)
	serial := make([]*harness.Result, len(scenarios))
	for i, s := range scenarios {
		r, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		serial[i] = r
	}

	parallel := RunSweep(scenarios, len(scenarios))
	if len(parallel) != len(scenarios) {
		t.Fatalf("sweep returned %d results", len(parallel))
	}
	for i, sr := range parallel {
		if sr.Err != nil {
			t.Fatalf("%s: %v", sr.Scenario.Name, sr.Err)
		}
		if sr.Scenario.Name != scenarios[i].Name {
			t.Fatalf("result %d out of order: %s", i, sr.Scenario.Name)
		}
		if sr.Result.Completed == 0 {
			t.Fatalf("%s completed nothing", sr.Scenario.Name)
		}
		if sr.Result.Report != serial[i].Report {
			t.Errorf("%s: parallel report diverges from serial:\n%s\nvs\n%s",
				sr.Scenario.Name, sr.Result.Report, serial[i].Report)
		}
		if !reflect.DeepEqual(sr.Result, serial[i]) {
			t.Errorf("%s: parallel result differs from serial run", sr.Scenario.Name)
		}
	}
}

// TestSweepWorkerCountInvariance is the full-registry determinism
// guard: running every registered scenario through RunSweep with
// workers=1 and with workers=N must produce byte-identical results —
// same measurements, same rendered reports — because each run owns a
// private scheduler and shares no mutable state. It extends the
// four-scenario serial-vs-parallel probe (TestSweepMatchesSerial)
// across the whole registry, guarding scheduler determinism under the
// staged compile-memory model.
//
// A third pass re-runs every scenario with a private, freshly built
// snapshot instead of the process-wide shared one, proving the shared
// immutable run state (catalog, estimator, layout, statement
// identities) changes nothing: sharing is purely a setup-cost
// optimization.
func TestSweepWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	all := All()
	scenarios := make([]Scenario, len(all))
	for i, s := range all {
		scenarios[i] = goldenWindow(s)
	}
	// Replication pass: a multi-seed replication is sweep jobs underneath,
	// so its per-seed results must also be identical at any worker count.
	repScenario := goldenWindow(MustGet(t, "figure3"))
	repOne, err := Replication{Scenario: repScenario, Seeds: Seeds(3), Paired: true, Workers: 1}.Run()
	if err != nil {
		t.Fatal(err)
	}
	repMany, err := Replication{Scenario: repScenario, Seeds: Seeds(3), Paired: true, Workers: 0}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range repOne.Runs {
		if !reflect.DeepEqual(repOne.Runs[i], repMany.Runs[i]) {
			t.Errorf("replication seed %d differs between workers=1 and workers=N", repOne.Runs[i].Seed)
		}
	}
	// Cluster pass: the affinity fleet's per-seed results must be
	// worker-count invariant as well; cluster-thrash-shed re-proves it
	// with health exclusion, breakers, and failover all armed.
	for _, name := range []string{"cluster-affinity", "cluster-thrash-shed"} {
		clOne, err := Replication{Scenario: MustGet(t, name), Seeds: Seeds(2), Workers: 1}.Run()
		if err != nil {
			t.Fatal(err)
		}
		clMany, err := Replication{Scenario: MustGet(t, name), Seeds: Seeds(2), Workers: 0}.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i := range clOne.Runs {
			if !reflect.DeepEqual(clOne.Runs[i], clMany.Runs[i]) {
				t.Errorf("%s replication seed %d differs between workers=1 and workers=N", name, clOne.Runs[i].Seed)
			}
		}
	}

	one := RunSweep(scenarios, 1)
	many := RunSweep(scenarios, 0)
	for i := range scenarios {
		name := scenarios[i].Name
		if one[i].Err != nil || many[i].Err != nil {
			t.Fatalf("%s: errs %v vs %v", name, one[i].Err, many[i].Err)
		}
		if one[i].Result.Report != many[i].Result.Report {
			t.Errorf("%s: report diverges between workers=1 and workers=N:\n%s\nvs\n%s",
				name, one[i].Result.Report, many[i].Result.Report)
			continue
		}
		if !reflect.DeepEqual(one[i].Result, many[i].Result) {
			t.Errorf("%s: results differ between workers=1 and workers=N", name)
		}
	}

	// Shared-snapshot path: private snapshots must reproduce the shared
	// ones bit for bit.
	fresh := make([]*harness.Result, len(scenarios))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, s := range scenarios {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			o := s.Options()
			o.Snapshot = harness.NewSnapshot(o.Workload, o.Scale)
			r, err := harness.Run(o)
			if err != nil {
				t.Errorf("%s: fresh-snapshot run: %v", s.Name, err)
				return
			}
			fresh[i] = r
		}()
	}
	wg.Wait()
	for i := range scenarios {
		if fresh[i] == nil {
			continue
		}
		// The Options differ by the Snapshot pointer itself; blank it
		// before the deep comparison of the measurements.
		shared := *many[i].Result
		private := *fresh[i]
		shared.Options.Snapshot, private.Options.Snapshot = nil, nil
		if !reflect.DeepEqual(shared, private) {
			t.Errorf("%s: fresh-snapshot result differs from shared-snapshot result",
				scenarios[i].Name)
		}
	}
}

func TestSweepWorkerBounds(t *testing.T) {
	s, _ := Get("quickstart")
	// workers > len, workers = 1, workers <= 0 all behave.
	for _, workers := range []int{8, 1, 0} {
		res := RunSweep([]Scenario{s, s.WithSeed(2)}, workers)
		for _, sr := range res {
			if sr.Err != nil {
				t.Fatal(sr.Err)
			}
		}
		if res[0].Result.Options.Seed == res[1].Result.Options.Seed {
			t.Fatal("results out of order")
		}
	}
	if got := RunSweep(nil, 4); len(got) != 0 {
		t.Fatalf("empty sweep returned %d results", len(got))
	}
}

func TestSweepSurfacesErrors(t *testing.T) {
	bad := Sales(0) // invalid: no clients
	bad.Name = "bad"
	res := RunSweep([]Scenario{bad}, 1)
	if res[0].Err == nil {
		t.Fatal("invalid scenario ran")
	}
}
