package scenario

import (
	"time"

	"compilegate/internal/core"
	"compilegate/internal/engine"
	"compilegate/internal/fault"
	"compilegate/internal/mem"
	"compilegate/internal/workload"
)

// This file registers the fault-plane scenarios: scripted failures
// injected into the SALES run to measure graceful degradation — how far
// throughput falls during a fault, and how fast it comes back after the
// fault clears (Result.RecoveryTime). All four use a 2-hour horizon so
// the golden digest window never compresses the injection schedule.

// faultSales is the common fault-scenario base: the calibrated SALES
// machine on a 2-hour horizon measured from t = 20 min.
func faultSales(name, desc string, clients int, plan *fault.Plan) Scenario {
	s := Sales(clients)
	s.Name = name
	s.Description = desc
	s.Horizon, s.Warmup = 2*time.Hour, 20*time.Minute
	s.Fault = plan
	return s
}

// retryDriver is the real-client retry model the fault scenarios use:
// capped exponential backoff with jitter, a per-client retry budget, and
// no resubmission of deliberately shed work.
func retryDriver(l *workload.LoadConfig) {
	l.MaxRetries = 6
	l.BackoffBase = 500 * time.Millisecond
	l.BackoffCap = 10 * time.Second
	l.BackoffJitter = 0.3
	l.RetryBudget = 40
	l.NoRetryShed = true
}

// brownout turns on the governor's sustained-pressure degradation mode
// on top of the calibrated knobs.
func brownout(c *engine.Config) {
	c.Brownout = core.BrownoutConfig{Enabled: true}
}

func init() {
	// A degraded disk: every transfer takes 6x for 20 minutes. The
	// buffer pool's miss latency balloons, executions pile up, and the
	// question is whether compile admission keeps the pile bounded.
	stall := faultSales("fault-diskstall",
		"disk latency x6 for 20 min — throughput dip and recovery",
		30, &fault.Plan{Seed: 101, Injections: []fault.Injection{
			{Kind: fault.DiskStall, At: 40 * time.Minute, Duration: 20 * time.Minute, Factor: 6},
		}})
	Default.MustRegister(stall)

	// A wired-memory leak: 48 MiB every 15 s for 20 minutes (~3.8 GiB),
	// squeezing the machine into the thrash regime until the leaking
	// component is "restarted" and the ballast drops. Brown-out is on:
	// sustained pressure escalates the governor to best-effort-only
	// admission until the leak clears.
	leak := faultSales("fault-leak",
		"wired-memory leak to thrash, released at 60 min; brown-out escalation",
		30, &fault.Plan{Seed: 102, Injections: []fault.Injection{
			{Kind: fault.MemLeak, At: 40 * time.Minute, Duration: 20 * time.Minute,
				RateBytes: 48 * mem.MiB, Interval: 15 * time.Second, Release: true},
		}})
	leak.Engine = calibrated(brownout)
	Default.MustRegister(leak)

	// An engine crash: 4 minutes of downtime at t = 50 min. In-flight
	// queries error, the plan cache and broker history are lost, and
	// clients reconnect by retrying with backoff — recovery time says how
	// long the post-restart cold cache takes to re-warm.
	crash := faultSales("fault-crash-restart",
		"engine crash at 50 min, 4 min down — cold-cache recovery",
		30, &fault.Plan{Seed: 103, Injections: []fault.Injection{
			{Kind: fault.CrashRestart, At: 50 * time.Minute, Duration: 4 * time.Minute},
		}})
	crash.Load = retryDriver
	Default.MustRegister(crash)

	// The retry storm: an overloaded population (40 clients) with an
	// aggressive-retry driver, hit by a burst of big-join compilations.
	// Unthrottled, every timeout turns into resubmissions that amplify
	// the overload; throttled (with brown-out and a cooperating driver
	// that does not resubmit shed work) the storm stays bounded.
	storm := faultSales("retry-storm",
		"compile-storm burst under aggressive client retries at 40 clients",
		40, &fault.Plan{Seed: 104, Injections: []fault.Injection{
			{Kind: fault.CompileStorm, At: 40 * time.Minute, Burst: 24, Interval: 2 * time.Second},
		}})
	storm.Load = retryDriver
	storm.Engine = calibrated(brownout)
	Default.MustRegister(storm)
}
