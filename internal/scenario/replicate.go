package scenario

import (
	"fmt"
	"math"
	"os"
	"strings"

	"compilegate/internal/harness"
)

// This file is the multi-seed replication runner: every paper claim the
// repository pins is asserted over a population of seeds, not a single
// lucky draw. Seeds become sweep jobs through RunSweep, so the
// shard-count and worker-count invariance guarantees of the sweep
// runner carry over to replications for free, and a replication's
// per-seed results are byte-identical at any worker count.

// Seeds returns the canonical replication seed list {1..n}. Claims
// tests default to Seeds(DefaultClaimSeeds), overridable through the
// CLAIMS_SEEDS environment variable (see ClaimSeeds).
func Seeds(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// DefaultClaimSeeds is the seed count every claim asserts over unless
// CLAIMS_SEEDS narrows it (PR CI runs a 3-seed subset; nightly runs
// the full population).
const DefaultClaimSeeds = 5

// ClaimSeeds resolves the claims-test seed list: CLAIMS_SEEDS when set
// to a positive integer, DefaultClaimSeeds otherwise.
func ClaimSeeds() []int64 {
	if v := os.Getenv("CLAIMS_SEEDS"); v != "" {
		var n int
		if _, err := fmt.Sscanf(v, "%d", &n); err == nil && n > 0 {
			return Seeds(n)
		}
	}
	return Seeds(DefaultClaimSeeds)
}

// Replication describes a multi-seed run of one scenario.
type Replication struct {
	// Scenario is the experiment to replicate; its own Seed field is
	// ignored in favor of Seeds.
	Scenario Scenario
	// Seeds is the replication population (one full run per entry).
	Seeds []int64
	// Paired additionally runs the unthrottled Baseline twin under each
	// seed, so ratio metrics compare the pair within a seed.
	Paired bool
	// Workers bounds sweep concurrency (0 = all cores). The results are
	// identical at every worker count.
	Workers int
}

// SeedRun is one seed's outcome within a replication.
type SeedRun struct {
	Seed     int64
	Result   *harness.Result
	Baseline *harness.Result // nil unless the replication was Paired
}

// ReplicationReport holds a finished replication in seed order.
type ReplicationReport struct {
	Scenario Scenario
	Paired   bool
	Runs     []SeedRun
}

// Run executes the replication: one scenario run per seed (plus the
// baseline twin when Paired), all through RunSweep. The first failed
// run aborts with its scenario name and seed.
func (rp Replication) Run() (*ReplicationReport, error) {
	if len(rp.Seeds) == 0 {
		return nil, fmt.Errorf("replicate %s: no seeds", rp.Scenario.Name)
	}
	per := 1
	if rp.Paired {
		per = 2
	}
	jobs := make([]Scenario, 0, per*len(rp.Seeds))
	for _, seed := range rp.Seeds {
		s := rp.Scenario.WithSeed(seed)
		jobs = append(jobs, s)
		if rp.Paired {
			jobs = append(jobs, s.Baseline())
		}
	}
	results := RunSweep(jobs, rp.Workers)
	rep := &ReplicationReport{Scenario: rp.Scenario, Paired: rp.Paired}
	for i, seed := range rp.Seeds {
		run := SeedRun{Seed: seed}
		sr := results[per*i]
		if sr.Err != nil {
			return nil, fmt.Errorf("replicate %s seed %d: %w", sr.Scenario.Name, seed, sr.Err)
		}
		run.Result = sr.Result
		if rp.Paired {
			ba := results[per*i+1]
			if ba.Err != nil {
				return nil, fmt.Errorf("replicate %s seed %d: %w", ba.Scenario.Name, seed, ba.Err)
			}
			run.Baseline = ba.Result
		}
		rep.Runs = append(rep.Runs, run)
	}
	return rep, nil
}

// RatioCap bounds ratio metrics when the baseline completed nothing:
// total starvation reads as "at least this much better", keeping the
// sample arithmetic finite while any sane lower-band claim still holds.
const RatioCap = 1000

// Metric extracts one number from a seed's outcome.
type Metric struct {
	Name string
	F    func(SeedRun) float64
}

// The standard claim metrics.
var (
	// MetricCompleted is completions inside the measurement window.
	MetricCompleted = Metric{"completed", func(r SeedRun) float64 { return float64(r.Result.Completed) }}
	// MetricErrors is failed queries inside the window.
	MetricErrors = Metric{"errors", func(r SeedRun) float64 { return float64(r.Result.Errors) }}
	// MetricThroughputRatio is throttled/baseline completions within the
	// seed (paired replications only; capped at RatioCap on baseline
	// starvation).
	MetricThroughputRatio = Metric{"ratio", func(r SeedRun) float64 {
		if r.Baseline == nil || r.Baseline.Completed == 0 {
			return RatioCap
		}
		return math.Min(RatioCap, float64(r.Result.Completed)/float64(r.Baseline.Completed))
	}}
	// MetricErrorMargin is baseline minus throttled errors within the
	// seed (paired): positive means the baseline failed more.
	MetricErrorMargin = Metric{"err-margin", func(r SeedRun) float64 {
		return float64(r.Baseline.Errors - r.Result.Errors)
	}}
	// MetricOvercommit is the mean wired-memory overcommit ratio.
	MetricOvercommit = Metric{"overcommit", func(r SeedRun) float64 { return r.Result.AvgOvercommitRatio }}
	// MetricOvercommitMargin is baseline minus throttled overcommit
	// within the seed (paired): positive means governance kept the
	// throttled server cooler.
	MetricOvercommitMargin = Metric{"oc-margin", func(r SeedRun) float64 {
		return r.Baseline.AvgOvercommitRatio - r.Result.AvgOvercommitRatio
	}}
	// MetricCompileP50 is the compile-latency median in seconds.
	MetricCompileP50 = Metric{"compile-p50s", func(r SeedRun) float64 { return r.Result.CompileP50.Seconds() }}
	// MetricCompileP90 is the compile-latency p90 in seconds.
	MetricCompileP90 = Metric{"compile-p90s", func(r SeedRun) float64 { return r.Result.CompileP90.Seconds() }}
	// MetricExecP50 is the execution-latency median in seconds.
	MetricExecP50 = Metric{"exec-p50s", func(r SeedRun) float64 { return r.Result.ExecP50.Seconds() }}
	// MetricGatewayTimeouts counts throttle-induced timeouts.
	MetricGatewayTimeouts = Metric{"gw-timeouts", func(r SeedRun) float64 { return float64(r.Result.GatewayTimeouts) }}
	// MetricRecoveryTime is seconds from fault clear to recovered
	// throughput (fault scenarios only). A run that never got back within
	// 10% of its pre-fault throughput scores the whole remaining horizon —
	// a penalty any bounded-recovery band rejects.
	MetricRecoveryTime = Metric{"recovery-s", func(r SeedRun) float64 {
		if !r.Result.Recovered {
			return (r.Result.Options.Horizon - r.Result.Options.Fault.LastClear()).Seconds()
		}
		return r.Result.RecoveryTime.Seconds()
	}}
	// MetricRetries counts client-side resubmissions over the run.
	MetricRetries = Metric{"retries", func(r SeedRun) float64 { return float64(r.Result.Load.Retries) }}
	// MetricPlanCacheHitRate is the end-of-run plan-cache hit rate,
	// pooled across nodes on cluster runs — the routing-locality claim
	// compares it between affinity and round-robin twins.
	MetricPlanCacheHitRate = Metric{"plan-hit-rate", func(r SeedRun) float64 { return r.Result.PlanCacheHitRate }}
	// MetricRerouted counts submissions the cluster router steered away
	// from the policy's first choice (down, tripped, or unhealthy node).
	MetricRerouted = Metric{"rerouted", func(r SeedRun) float64 { return float64(r.Result.Rerouted) }}
	// MetricResubmitted counts router-level failover resubmissions after
	// crashed responses.
	MetricResubmitted = Metric{"resubmitted", func(r SeedRun) float64 { return float64(r.Result.Resubmitted) }}
	// MetricRouterAllExcluded counts submissions that found every node
	// excluded and went to the policy's first choice anyway.
	MetricRouterAllExcluded = Metric{"all-excluded", func(r SeedRun) float64 { return float64(r.Result.RouterAllExcluded) }}
)

// Samples extracts m across the seeds, in seed order.
func (r *ReplicationReport) Samples(m Metric) []float64 {
	out := make([]float64, len(r.Runs))
	for i, run := range r.Runs {
		out[i] = m.F(run)
	}
	return out
}

// Summary is the Summarize of m's samples at the given confidence
// (0 → 0.95).
func (r *ReplicationReport) Summary(m Metric, confidence float64) Summary {
	return Summarize(r.Samples(m), confidence)
}

// Table renders the per-seed values of the given metrics — the full
// replication evidence a failed claim prints.
func (r *ReplicationReport) Table(metrics ...Metric) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s", "seed")
	for _, m := range metrics {
		fmt.Fprintf(&sb, " %14s", m.Name)
	}
	sb.WriteString("\n")
	for _, run := range r.Runs {
		fmt.Fprintf(&sb, "%-6d", run.Seed)
		for _, m := range metrics {
			fmt.Fprintf(&sb, " %14.3f", m.F(run))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// CSV renders the per-seed metric table as CSV (the nightly replication
// artifact format).
func (r *ReplicationReport) CSV(metrics ...Metric) string {
	var sb strings.Builder
	sb.WriteString("scenario,seed")
	for _, m := range metrics {
		sb.WriteString(",")
		sb.WriteString(m.Name)
	}
	sb.WriteString("\n")
	for _, run := range r.Runs {
		fmt.Fprintf(&sb, "%s,%d", r.Scenario.Name, run.Seed)
		for _, m := range metrics {
			fmt.Fprintf(&sb, ",%g", m.F(run))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// WriteCSVEnv appends the report's CSV to $REPLICATION_CSV_DIR/<name>.csv
// when that environment variable is set (the nightly workflow collects
// the directory as its artifact); otherwise it does nothing. Errors are
// returned so tests can surface them without failing the claim itself.
func (r *ReplicationReport) WriteCSVEnv(metrics ...Metric) error {
	dir := os.Getenv("REPLICATION_CSV_DIR")
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := dir + "/" + r.Scenario.Name + ".csv"
	return os.WriteFile(path, []byte(r.CSV(metrics...)), 0o644)
}

// TB is the subset of testing.TB the claim assertions use, declared
// locally so the library does not import the testing package.
type TB interface {
	Helper()
	Logf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// ClaimBand is a paper claim stated as a band over a replicated
// metric: the claim holds when the bootstrap confidence interval for
// the metric's mean lies entirely inside [Lo, Hi]. A claim is a
// statement about the distribution — a single lucky seed cannot pass
// it, and a single unlucky seed cannot fail it.
type ClaimBand struct {
	// Claim names the paper claim in failure output.
	Claim string
	// Metric is the replicated statistic under test.
	Metric Metric
	// Lo/Hi bound the band (inclusive, Hi >= Lo); claims with no upper
	// bound write Hi: math.Inf(1). A [0, 0] band claims "exactly zero
	// on every seed" (the CI of an all-zero sample is degenerate).
	Lo, Hi float64
	// Confidence is the CI coverage (0 → 0.95).
	Confidence float64
	// MinSeeds guards against accidentally thin populations
	// (0 → 3: the PR-CI subset floor; nightly runs 5+).
	MinSeeds int
}

// CheckSamples evaluates the claim band directly over per-seed samples
// — for claims whose replicated statistic is not a harness metric
// (optimizer-level measurements, cross-scenario margins).
func (b ClaimBand) CheckSamples(xs []float64) (Summary, error) {
	minSeeds := b.MinSeeds
	if minSeeds == 0 {
		minSeeds = 3
	}
	if b.Hi < b.Lo {
		return Summary{}, fmt.Errorf("claim %q: invalid band [%g, %g]", b.Claim, b.Lo, b.Hi)
	}
	s := Summarize(xs, b.Confidence)
	if s.N < minSeeds {
		return s, fmt.Errorf("claim %q: %d seeds < the %d-seed floor", b.Claim, s.N, minSeeds)
	}
	if s.CI.Lo < b.Lo || s.CI.Hi > b.Hi {
		return s, fmt.Errorf("claim %q: %s CI [%.3f, %.3f] not within [%g, %g] (%s)",
			b.Claim, b.Metric.Name, s.CI.Lo, s.CI.Hi, b.Lo, b.Hi, s)
	}
	return s, nil
}

// AssertSamples is CheckSamples wired to a test: a failed claim prints
// the per-seed samples, a passing one logs the interval.
func (b ClaimBand) AssertSamples(t TB, xs []float64) Summary {
	t.Helper()
	s, err := b.CheckSamples(xs)
	if err != nil {
		t.Fatalf("%v\nper-seed samples: %v", err, xs)
	}
	t.Logf("claim %q holds: %s = %s", b.Claim, b.Metric.Name, s)
	return s
}

// Check evaluates the claim over the replication, returning the metric
// summary and a descriptive error when the claim does not hold.
func (b ClaimBand) Check(rep *ReplicationReport) (Summary, error) {
	return b.CheckSamples(rep.Samples(b.Metric))
}

// Assert is Check wired to a test: a failed claim prints the summary
// and the full per-seed table, a passing one logs the interval.
func (b ClaimBand) Assert(t TB, rep *ReplicationReport) Summary {
	t.Helper()
	s, err := b.Check(rep)
	if err != nil {
		t.Fatalf("%v\nper-seed replication table:\n%s", err, rep.Table(b.Metric))
	}
	t.Logf("claim %q holds: %s = %s", b.Claim, b.Metric.Name, s)
	return s
}
