// Package scenario separates the declarative description of an
// experiment from its execution, the way a mature engine separates a
// prepared statement from the executor. A Scenario says *what* to run —
// catalog scale, workload spec, client population, measurement window,
// server-config deltas, ablation toggles — and the harness stays the
// *how*. A Registry holds every paper experiment by name so commands,
// examples, and benchmarks resolve configurations instead of hand-wiring
// harness options, and RunSweep executes independent scenarios
// concurrently across vtime event-loop shards (each run starts from
// fresh scheduler state, so per-run determinism is untouched).
package scenario

import (
	"fmt"
	"time"

	"compilegate/internal/cluster"
	"compilegate/internal/engine"
	"compilegate/internal/fault"
	"compilegate/internal/harness"
	"compilegate/internal/vtime"
	"compilegate/internal/workload"
)

// Scenario declaratively describes one experiment. The zero value is not
// runnable; start from a registered scenario or fill in every field.
type Scenario struct {
	// Name is the registry key ("figure3", "oltp-mix", ...).
	Name string
	// Description says what the experiment shows, for -list output.
	Description string

	// Clients is the concurrent user count.
	Clients int
	// Scale is the catalog scale factor (1.0 = the paper's 524 GB mart).
	Scale float64
	// Workload picks the query generator and catalog shape.
	Workload workload.Spec

	// Horizon/Warmup bound the measurement window: clients submit until
	// Horizon, measurements start at Warmup.
	Horizon time.Duration
	Warmup  time.Duration

	// Throttled enables compilation throttling (the paper's feature).
	Throttled bool
	// Seed drives all randomness in the run.
	Seed int64

	// Engine, when non-nil, mutates the default server config — ablation
	// toggles (monitor ladders, broker on/off, memory sizing) live here.
	Engine func(*engine.Config)
	// Load, when non-nil, mutates the default load config (think time,
	// retry policy).
	Load func(*workload.LoadConfig)
	// Fault, when non-nil, is the scripted failure plan injected into the
	// run (shared read-only across sweep runs of the scenario).
	Fault *fault.Plan

	// Nodes runs the experiment as a cluster of that many independent
	// engine instances behind a deterministic router (0 and 1 both mean
	// the classic single server).
	Nodes int
	// Router is the cluster routing policy (zero value: round-robin).
	// Ignored when Nodes <= 1.
	Router cluster.Policy
	// Health, when non-nil, turns on health-aware node exclusion in the
	// cluster router (shared read-only across sweep runs). Cluster
	// scenarios only.
	Health *cluster.HealthConfig
	// Breaker, when non-nil, arms per-node circuit breakers in the
	// cluster router (shared read-only across sweep runs). Cluster
	// scenarios only.
	Breaker *cluster.BreakerConfig
	// FailoverHops bounds router-level failover resubmission on crashed
	// responses (0 disables it). Cluster scenarios only.
	FailoverHops int
}

// Validate reports whether the scenario describes a runnable experiment.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if s.Clients <= 0 {
		return fmt.Errorf("scenario %s: clients = %d", s.Name, s.Clients)
	}
	if s.Scale <= 0 {
		return fmt.Errorf("scenario %s: scale = %g", s.Name, s.Scale)
	}
	if !s.Workload.Valid() {
		return fmt.Errorf("scenario %s: unknown workload %q", s.Name, string(s.Workload))
	}
	if s.Horizon <= 0 || s.Warmup < 0 || s.Warmup >= s.Horizon {
		return fmt.Errorf("scenario %s: window [%v, %v)", s.Name, s.Warmup, s.Horizon)
	}
	if s.Nodes < 0 {
		return fmt.Errorf("scenario %s: nodes = %d", s.Name, s.Nodes)
	}
	if s.Nodes > 1 && !s.Router.Valid() {
		return fmt.Errorf("scenario %s: unknown router policy %q", s.Name, string(s.Router))
	}
	if s.Nodes <= 1 && (s.Health != nil || s.Breaker != nil || s.FailoverHops != 0) {
		return fmt.Errorf("scenario %s: router health/breaker/failover settings require a cluster (nodes = %d)", s.Name, s.Nodes)
	}
	if s.FailoverHops < 0 {
		return fmt.Errorf("scenario %s: negative failover hops %d", s.Name, s.FailoverHops)
	}
	if s.Fault != nil {
		if err := s.Fault.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		nodes := s.Nodes
		if nodes < 1 {
			nodes = 1
		}
		if mx := s.Fault.MaxNode(); mx >= nodes {
			return fmt.Errorf("scenario %s: fault plan targets node %d of a %d-node run", s.Name, mx, nodes)
		}
	}
	return nil
}

// Options resolves the scenario into concrete harness options, applying
// the engine and load deltas over the defaults. Each call builds fresh
// config values, so concurrent runs never share mutable state.
func (s Scenario) Options() harness.Options {
	o := harness.Options{
		Clients:   s.Clients,
		Horizon:   s.Horizon,
		Warmup:    s.Warmup,
		Throttled: s.Throttled,
		Scale:     s.Scale,
		Workload:  s.Workload,
		Seed:      s.Seed,
		Fault:     s.Fault,
		Nodes:     s.Nodes,
		Router:    s.Router,

		Health:       s.Health,
		Breaker:      s.Breaker,
		FailoverHops: s.FailoverHops,
	}
	if s.Engine != nil {
		cfg := engine.DefaultConfig()
		s.Engine(&cfg)
		o.Engine = &cfg
	}
	if s.Load != nil {
		lcfg := workload.DefaultLoadConfig(s.Clients)
		s.Load(&lcfg)
		o.Load = &lcfg
	}
	return o
}

// Run executes the scenario to completion in virtual time.
func (s Scenario) Run() (*harness.Result, error) {
	return s.RunOn(nil)
}

// RunOn executes the scenario on the supplied idle scheduler (nil
// builds a private one); sweep shards pass their pooled scheduler.
func (s Scenario) RunOn(sched *vtime.Scheduler) (*harness.Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return harness.RunOn(sched, s.Options())
}

// Baseline returns the unthrottled twin of the scenario — the
// non-throttled comparison every paper figure makes.
func (s Scenario) Baseline() Scenario {
	s.Name += "-baseline"
	s.Description = "non-throttled baseline of " + s.Description
	s.Throttled = false
	return s
}

// WithWindow returns a copy with the measurement window replaced —
// quick modes and tests compress the window without touching the rest
// of the configuration.
func (s Scenario) WithWindow(horizon, warmup time.Duration) Scenario {
	s.Horizon, s.Warmup = horizon, warmup
	return s
}

// WithSeed returns a copy running under a different seed — sweeps over
// seeds use this for confidence intervals.
func (s Scenario) WithSeed(seed int64) Scenario {
	s.Seed = seed
	return s
}

// WithClients returns a copy at a different client count.
func (s Scenario) WithClients(n int) Scenario {
	s.Clients = n
	return s
}
