package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"compilegate/internal/engine"
	"compilegate/internal/harness"
	"compilegate/internal/mem"
	"compilegate/internal/optimizer"
)

// PressureKnobs is one point of the calibration grid: the pressure-model
// and compile-profile settings that shape the thrash regime of Figures
// 3-5. The zero value of a field means "keep the engine default".
type PressureKnobs struct {
	// Name labels the knob set in reports ("base", "steep", ...).
	Name string

	// CacheReserveFrac sets where paging starts: wired memory beyond
	// (1-CacheReserveFrac)*RAM pays the thrash penalty.
	CacheReserveFrac float64
	// SlowdownSlope is the paging slowdown per unit of overcommit.
	SlowdownSlope float64
	// MaxSlowdown caps the slowdown factor.
	MaxSlowdown float64
	// CommitFrac sizes commit (physical+swap) as a multiple of RAM.
	CommitFrac float64
	// StealFrac is the per-tick pager steal fraction.
	StealFrac float64

	// CompileTaskWait is the non-CPU time per optimizer task; it sets how
	// long compilations hold their memory, and with it the steady-state
	// compile concurrency the monitor ladder sees.
	CompileTaskWait time.Duration
	// ExecGrantLimitFrac caps execution-grant memory as a fraction of
	// RAM; it sets the wired-memory base the compile pileup lands on.
	ExecGrantLimitFrac float64
	// MemoBytesScale multiplies the memo's per-structure memory charge:
	// heavier compilations reach the monitor thresholds sooner without
	// taking longer, preserving the §5.2 10-90 s compile profile.
	MemoBytesScale float64
	// StageCostingScale / StageCodegenScale size the staged costing and
	// codegen ramps (engine.CompileStages) as multiples of the memo:
	// they set how much larger a compilation's *peak* stock is than its
	// exploration share, without stretching per-task waits.
	StageCostingScale float64
	StageCodegenScale float64
	// VASBytes bounds the address space compile, execution grants, and
	// the plan cache contend inside (the paper's testbed was a 32-bit
	// server booted /3GB; its AWE-mapped buffer pool lived outside).
	// Compile stock that outruns the gates exhausts it — the paper's
	// out-of-memory failure mode.
	VASBytes int64
	// BrokerExhaustionFrac overrides broker.Config.ExhaustionFreeFrac:
	// when free-plus-shrinkable memory in a broker domain falls under
	// this fraction, notifications carry the exhaustion signal and
	// governed compilations yield best-effort plans (§4.1) — the
	// throttled server's asymmetric escape valve from the stock spiral.
	BrokerExhaustionFrac float64
}

// Apply overlays the knob set on an engine config.
func (k PressureKnobs) Apply(c *engine.Config) {
	if k.CacheReserveFrac > 0 {
		c.Pressure.CacheReserveFrac = k.CacheReserveFrac
	}
	if k.SlowdownSlope > 0 {
		c.Pressure.SlowdownSlope = k.SlowdownSlope
	}
	if k.MaxSlowdown > 0 {
		c.Pressure.MaxSlowdown = k.MaxSlowdown
	}
	if k.CommitFrac > 0 {
		c.Pressure.CommitFrac = k.CommitFrac
	}
	if k.StealFrac > 0 {
		c.Pressure.StealFrac = k.StealFrac
	}
	if k.CompileTaskWait > 0 {
		c.CompileTaskWait = k.CompileTaskWait
	}
	if k.ExecGrantLimitFrac > 0 {
		c.ExecGrantLimitFrac = k.ExecGrantLimitFrac
	}
	if k.MemoBytesScale > 0 {
		if c.Optimizer.WorkBatch == 0 {
			c.Optimizer = optimizer.DefaultConfig()
		}
		c.Optimizer.Memo.BytesPerGroup = int64(k.MemoBytesScale * float64(c.Optimizer.Memo.BytesPerGroup))
		c.Optimizer.Memo.BytesPerExpr = int64(k.MemoBytesScale * float64(c.Optimizer.Memo.BytesPerExpr))
	}
	if k.StageCostingScale > 0 || k.StageCodegenScale > 0 {
		if c.CompileStages == (engine.CompileStages{}) {
			c.CompileStages = engine.DefaultCompileStages()
		}
		if k.StageCostingScale > 0 {
			c.CompileStages.CostingScale = k.StageCostingScale
		}
		if k.StageCodegenScale > 0 {
			c.CompileStages.CodegenScale = k.StageCodegenScale
		}
	}
	if k.VASBytes > 0 {
		c.VASBytes = k.VASBytes
	}
	if k.BrokerExhaustionFrac > 0 {
		c.Broker.ExhaustionFreeFrac = k.BrokerExhaustionFrac
	}
}

// CalibratedKnobs returns the knob set cmd/calibrate selected for the
// paper's §5 throughput experiments (Figures 3-5) under the staged
// compile-memory model: per-task compile waits stay at the engine's
// default scale (40 ms vs the default 45 ms, against the pre-stage
// 180 ms) — so the §5.2 10-90 s compile-duration profile holds at the
// figure operating point, not just at the default tuning — and the
// collapse regime comes from compile-memory *stock* instead: the
// costing/codegen stages grow every ad-hoc compilation to roughly an
// order of magnitude above its exploration memo over its 10-90 s
// lifetime, and the address space those compilations share with
// execution grants is bounded (the paper's 32-bit testbed, booted with
// extended user VAS, its AWE buffer pool outside). Thirty unthrottled
// clients wire the VAS past the paging threshold at realistic compile
// durations: queries start failing with out-of-memory while the
// machine thrashes, and retries pile more compilations on — the
// paper's collapse. The gateway ladder plus the §4.1 exhaustion signal
// (best-effort plans, BrokerExhaustionFrac) keep the throttled
// server's stock inside the VAS and below the paging threshold. The
// execution-grant share is trimmed to 0.35 so the compile pileup, not
// grant admission, is the contended resource.
//
// See EXPERIMENTS.md, "Calibration methodology".
func CalibratedKnobs() PressureKnobs {
	return PressureKnobs{
		Name:                 "selected",
		CacheReserveFrac:     0.50,
		SlowdownSlope:        14,
		MaxSlowdown:          24,
		CommitFrac:           1.5,
		StealFrac:            0.5,
		CompileTaskWait:      40 * time.Millisecond,
		ExecGrantLimitFrac:   0.35,
		MemoBytesScale:       1.10,
		StageCostingScale:    4,
		StageCodegenScale:    5,
		VASBytes:             2816 * mem.MiB,
		BrokerExhaustionFrac: 0.15,
	}
}

// CalibrationPoint is one grid cell's outcome: a throttled/baseline pair
// at one client count and seed under one knob set.
type CalibrationPoint struct {
	Knobs     PressureKnobs
	Clients   int
	Seed      int64
	Throttled *harness.Result
	Baseline  *harness.Result
	Err       error
}

// Ratio returns throttled/baseline completions (0 when unavailable).
func (p CalibrationPoint) Ratio() float64 {
	if p.Err != nil || p.Baseline == nil || p.Baseline.Completed == 0 {
		return 0
	}
	return float64(p.Throttled.Completed) / float64(p.Baseline.Completed)
}

// FidelityTarget is the throughput separation the paper shows at one
// client count.
type FidelityTarget struct {
	Clients int
	// Ratio is the throttled/baseline separation to aim for.
	Ratio float64
	// AtLeast relaxes the target to a floor: any separation >= Ratio
	// scores perfectly (Figure 5's "baseline collapses" has no upper
	// bound worth matching).
	AtLeast bool
}

// PaperTargets returns the Figures 3-5 separations: ~1.35x at 30
// clients (Figure 3), throttled clearly ahead at 35 (Figure 4), and a
// collapsing baseline at 40 (Figure 5).
func PaperTargets() []FidelityTarget {
	return []FidelityTarget{
		{Clients: 30, Ratio: 1.35},
		{Clients: 35, Ratio: 1.30, AtLeast: true},
		{Clients: 40, Ratio: 1.50, AtLeast: true},
	}
}

// Calibration describes a sweep: every knob set crossed with every
// client count, each cell a throttled/baseline pair.
type Calibration struct {
	Knobs   []PressureKnobs
	Clients []int
	// Horizon/Warmup bound each run's measurement window.
	Horizon, Warmup time.Duration
	Seed            int64
	// Seeds replicates every cell over this seed population; nil runs
	// the single-seed grid at Seed (the historical behavior). A
	// multi-seed grid scores each knob set over all of its cells, so
	// the selected calibration holds as a distribution.
	Seeds []int64
	// Targets score knob sets; nil uses PaperTargets.
	Targets []FidelityTarget
	// Workers bounds concurrent simulations (0 = all cores).
	Workers int
}

// DefaultCalibration returns the grid cmd/calibrate ships: the selected
// calibration plus its neighborhood, so reruns show the sensitivity of
// every knob.
func DefaultCalibration() Calibration {
	base := CalibratedKnobs()
	vary := func(name string, f func(*PressureKnobs)) PressureKnobs {
		k := base
		k.Name = name
		f(&k)
		return k
	}
	return Calibration{
		Knobs: []PressureKnobs{
			base,
			vary("reserve-lo", func(k *PressureKnobs) { k.CacheReserveFrac -= 0.05 }),
			vary("reserve-hi", func(k *PressureKnobs) { k.CacheReserveFrac += 0.05 }),
			vary("slope-lo", func(k *PressureKnobs) { k.SlowdownSlope /= 2 }),
			vary("slope-hi", func(k *PressureKnobs) { k.SlowdownSlope *= 2 }),
			vary("stage-lo", func(k *PressureKnobs) { k.StageCostingScale, k.StageCodegenScale = 3, 4 }),
			vary("stage-hi", func(k *PressureKnobs) { k.StageCostingScale, k.StageCodegenScale = 5, 6 }),
			vary("memo-lo", func(k *PressureKnobs) { k.MemoBytesScale = 1.0 }),
			vary("memo-hi", func(k *PressureKnobs) { k.MemoBytesScale = 1.25 }),
			vary("vas-lo", func(k *PressureKnobs) { k.VASBytes = 2752 * mem.MiB }),
			vary("vas-hi", func(k *PressureKnobs) { k.VASBytes = 2880 * mem.MiB }),
			vary("exhaust-lo", func(k *PressureKnobs) { k.BrokerExhaustionFrac = 0.03 }),
			vary("grant-hi", func(k *PressureKnobs) { k.ExecGrantLimitFrac += 0.10 }),
		},
		Clients: []int{30, 35, 40},
		Horizon: 3 * time.Hour,
		Warmup:  45 * time.Minute,
		Seed:    1,
	}
}

// seedList resolves the grid's seed population: Seeds when set, else
// the single historical Seed.
func (c Calibration) seedList() []int64 {
	if len(c.Seeds) > 0 {
		return c.Seeds
	}
	seed := c.Seed
	if seed == 0 {
		seed = 1
	}
	return []int64{seed}
}

// cellScenario builds the throttled arm of one calibration cell; the
// baseline arm is its Baseline twin. Both the exhaustive grid and the
// successive-halving search expand cells through here, so a (knobs,
// clients, seed) cell is the same simulation no matter which strategy
// asked for it.
func (c Calibration) cellScenario(k PressureKnobs, clients int, seed int64) Scenario {
	s := Sales(clients)
	s.Name = fmt.Sprintf("cal-%s-c%d-s%d", k.Name, clients, seed)
	s.Description = fmt.Sprintf("calibration cell %s at %d clients, seed %d", k.Name, clients, seed)
	s.Horizon, s.Warmup = c.Horizon, c.Warmup
	s.Seed = seed
	s.Engine = func(cfg *engine.Config) { k.Apply(cfg) }
	return s
}

// scenarios expands the grid into throttled/baseline scenario pairs in a
// fixed order: for cell i, index 2i is throttled and 2i+1 its baseline.
func (c Calibration) scenarios() []Scenario {
	seeds := c.seedList()
	out := make([]Scenario, 0, 2*len(c.Knobs)*len(c.Clients)*len(seeds))
	for _, k := range c.Knobs {
		for _, cl := range c.Clients {
			for _, seed := range seeds {
				s := c.cellScenario(k, cl, seed)
				out = append(out, s, s.Baseline())
			}
		}
	}
	return out
}

// Run executes the whole grid through RunSweep (every cell is two
// independent simulations; all of them run concurrently on real cores)
// and collects the outcomes into a report.
func (c Calibration) Run() *CalibrationReport {
	if c.Horizon <= 0 {
		c.Horizon, c.Warmup = 3*time.Hour, 45*time.Minute
	}
	targets := c.Targets
	if targets == nil {
		targets = PaperTargets()
	}
	seeds := c.seedList()
	results := RunSweep(c.scenarios(), c.Workers)
	rep := &CalibrationReport{Targets: targets}
	i := 0
	for _, k := range c.Knobs {
		for _, cl := range c.Clients {
			for _, seed := range seeds {
				th, ba := results[i], results[i+1]
				i += 2
				p := CalibrationPoint{Knobs: k, Clients: cl, Seed: seed}
				switch {
				case th.Err != nil:
					p.Err = th.Err
				case ba.Err != nil:
					p.Err = ba.Err
				default:
					p.Throttled, p.Baseline = th.Result, ba.Result
				}
				rep.Points = append(rep.Points, p)
			}
		}
	}
	return rep
}

// CalibrationReport holds a finished grid with its fidelity targets.
type CalibrationReport struct {
	Points  []CalibrationPoint
	Targets []FidelityTarget
}

func (r *CalibrationReport) target(clients int) (FidelityTarget, bool) {
	for _, t := range r.Targets {
		if t.Clients == clients {
			return t, true
		}
	}
	return FidelityTarget{}, false
}

// Score returns the fidelity of one knob set to the targets: 0 is a
// perfect match, larger is worse. Cells at client counts without a
// target are ignored; failed cells score as a total miss.
func (r *CalibrationReport) Score(name string) float64 {
	var score float64
	for _, p := range r.Points {
		if p.Knobs.Name != name {
			continue
		}
		t, ok := r.target(p.Clients)
		if !ok {
			continue
		}
		if p.Err != nil {
			score += t.Ratio * t.Ratio
			continue
		}
		ratio := p.Ratio()
		if t.AtLeast && ratio >= t.Ratio {
			continue
		}
		d := ratio - t.Ratio
		score += d * d
	}
	return score
}

// Best returns the knob set with the lowest Score. Ties break toward
// the earlier grid entry, so reruns are deterministic.
func (r *CalibrationReport) Best() (PressureKnobs, float64) {
	var best PressureKnobs
	bestScore := -1.0
	for _, p := range r.Points {
		if bestScore >= 0 && p.Knobs.Name == best.Name {
			continue
		}
		s := r.Score(p.Knobs.Name)
		if bestScore < 0 || s < bestScore {
			best, bestScore = p.Knobs, s
		}
	}
	return best, bestScore
}

// CSV renders every cell as one row — the machine-readable sweep output.
func (r *CalibrationReport) CSV() string {
	var sb strings.Builder
	sb.WriteString("knobs,clients,seed,reserve_frac,slope,wait_ms,grant_frac,stage_costing,stage_codegen," +
		"memo_scale,vas_mib,exhaust_frac," +
		"throttled,baseline,ratio,throttled_errors,baseline_errors," +
		"throttled_compile_p50_s,baseline_overcommit,baseline_steal_mib\n")
	for _, p := range r.Points {
		if p.Err != nil {
			fmt.Fprintf(&sb, "%s,%d,%d,,,,,,,,,,,,,,,,,error: %v\n", p.Knobs.Name, p.Clients, p.Seed, p.Err)
			continue
		}
		fmt.Fprintf(&sb, "%s,%d,%d,%.2f,%.1f,%d,%.2f,%.1f,%.1f,%.2f,%d,%.2f,%d,%d,%.3f,%d,%d,%.0f,%.2f,%d\n",
			p.Knobs.Name, p.Clients, p.Seed,
			p.Knobs.CacheReserveFrac, p.Knobs.SlowdownSlope,
			p.Knobs.CompileTaskWait.Milliseconds(), p.Knobs.ExecGrantLimitFrac,
			p.Knobs.StageCostingScale, p.Knobs.StageCodegenScale,
			p.Knobs.MemoBytesScale, p.Knobs.VASBytes>>20, p.Knobs.BrokerExhaustionFrac,
			p.Throttled.Completed, p.Baseline.Completed, p.Ratio(),
			p.Throttled.Errors, p.Baseline.Errors,
			p.Throttled.CompileP50.Seconds(),
			p.Baseline.AvgOvercommitRatio, p.Baseline.PageStealBytes>>20)
	}
	return sb.String()
}

// Markdown renders one table per knob set, ready for EXPERIMENTS.md.
func (r *CalibrationReport) Markdown() string {
	names := make([]string, 0)
	seen := map[string]bool{}
	for _, p := range r.Points {
		if !seen[p.Knobs.Name] {
			seen[p.Knobs.Name] = true
			names = append(names, p.Knobs.Name)
		}
	}
	var sb strings.Builder
	for _, name := range names {
		fmt.Fprintf(&sb, "### %s (score %.3f)\n\n", name, r.Score(name))
		sb.WriteString("| clients | seed | throttled | baseline | ratio | target | compile p50 (throttled) | baseline overcommit |\n")
		sb.WriteString("|---|---|---|---|---|---|---|---|\n")
		for _, p := range r.Points {
			if p.Knobs.Name != name {
				continue
			}
			tgt := "—"
			if t, ok := r.target(p.Clients); ok {
				tgt = fmt.Sprintf("%.2f", t.Ratio)
				if t.AtLeast {
					tgt = "≥" + tgt
				}
			}
			if p.Err != nil {
				fmt.Fprintf(&sb, "| %d | %d | error | error | — | %s | — | — |\n", p.Clients, p.Seed, tgt)
				continue
			}
			fmt.Fprintf(&sb, "| %d | %d | %d | %d | %.2fx | %s | %v | %.2f |\n",
				p.Clients, p.Seed, p.Throttled.Completed, p.Baseline.Completed,
				p.Ratio(), tgt, p.Throttled.CompileP50, p.Baseline.AvgOvercommitRatio)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Ranking returns knob-set names ordered best to worst.
func (r *CalibrationReport) Ranking() []string {
	names := make([]string, 0)
	seen := map[string]bool{}
	for _, p := range r.Points {
		if !seen[p.Knobs.Name] {
			seen[p.Knobs.Name] = true
			names = append(names, p.Knobs.Name)
		}
	}
	sort.SliceStable(names, func(i, j int) bool {
		return r.Score(names[i]) < r.Score(names[j])
	})
	return names
}
