package scenario

import (
	"math"
	"testing"
)

// Fault-plane claims: graceful degradation under scripted failures,
// replicated over the claim seed population like every other pinned
// claim. Calibration (5 seeds, 2 h window): retry-storm ratio 5.0-6.9x
// with baseline retries 6-8x the throttled driver's; throttled recovery
// 600-1800 s after a disk stall and 1560-3360 s after a crash (the
// never-recovered penalty at these schedules is 3600-3960 s, so the
// bands genuinely require recovery, not just a finite score).

// metricRetryAmplification is baseline retries over throttled retries
// within a seed: how much extra work the aggressive driver re-injects
// when nothing sheds load for it.
var metricRetryAmplification = Metric{"retry-amp", func(r SeedRun) float64 {
	if r.Result.Load.Retries == 0 {
		return RatioCap
	}
	return math.Min(RatioCap, float64(r.Baseline.Load.Retries)/float64(r.Result.Load.Retries))
}}

// TestClaimRetryStorm pins the robustness headline: under a compile-storm
// burst with aggressive client retries at 40 clients, the throttled
// server (brown-out on, shed work not resubmitted) sustains at least 3x
// the collapsing baseline, because baseline timeouts amplify into at
// least 4x the retry traffic.
func TestClaimRetryStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	rep := claimReplication(t, "retry-storm")
	ClaimBand{
		Claim:  "retry-storm: throttled sustains >= 3x baseline throughput under the storm",
		Metric: MetricThroughputRatio, Lo: 3, Hi: math.Inf(1),
	}.Assert(t, rep)
	ClaimBand{
		Claim:  "retry-storm: baseline clients re-inject >= 4x the retries of the cooperating driver",
		Metric: metricRetryAmplification, Lo: 4, Hi: math.Inf(1),
	}.Assert(t, rep)
}

// TestClaimBoundedRecovery pins the graceful-degradation claim for the
// throttled server only: after the fault clears, throughput returns to
// within 10% of its pre-fault level in bounded virtual time — under 40
// minutes for a 20-minute 6x disk stall, under an hour for a crash that
// loses the plan cache (the extra time is the cold cache re-warming).
// The baseline twin makes no such promise and is not asserted.
func TestClaimBoundedRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	ClaimBand{
		Claim:  "fault-diskstall: throttled throughput recovers within 40 min of the stall clearing",
		Metric: MetricRecoveryTime, Lo: 0, Hi: 2400,
	}.Assert(t, claimReplication(t, "fault-diskstall"))
	ClaimBand{
		Claim:  "fault-crash-restart: throttled throughput recovers within 60 min of restart",
		Metric: MetricRecoveryTime, Lo: 0, Hi: 3600,
	}.Assert(t, claimReplication(t, "fault-crash-restart"))
}
