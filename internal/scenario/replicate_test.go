package scenario

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"compilegate/internal/harness"
)

// cheapScenario is a fast SALES run for replication plumbing tests.
func cheapScenario() Scenario {
	return Sales(6).WithWindow(20*time.Minute, 5*time.Minute)
}

// syntheticReport builds a report whose metric values are dictated by
// the test, for exercising the stats plumbing without simulations.
func syntheticReport(values ...float64) *ReplicationReport {
	rep := &ReplicationReport{Scenario: Scenario{Name: "synthetic"}}
	for i, v := range values {
		rep.Runs = append(rep.Runs, SeedRun{
			Seed:   int64(i + 1),
			Result: &harness.Result{Completed: int64(v)},
		})
	}
	return rep
}

func TestReplicationMatchesDirectRuns(t *testing.T) {
	sc := cheapScenario()
	rep, err := Replication{Scenario: sc, Seeds: Seeds(3), Paired: true}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 3 || !rep.Paired {
		t.Fatalf("report shape: %d runs, paired=%v", len(rep.Runs), rep.Paired)
	}
	for i, run := range rep.Runs {
		if run.Seed != int64(i+1) {
			t.Fatalf("run %d carries seed %d, want seed order", i, run.Seed)
		}
		// Each seed's results must be identical to running the scenario
		// directly — replication is pure orchestration.
		direct, err := sc.WithSeed(run.Seed).Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(run.Result, direct) {
			t.Fatalf("seed %d: replication result differs from direct run", run.Seed)
		}
		base, err := sc.WithSeed(run.Seed).Baseline().Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(run.Baseline, base) {
			t.Fatalf("seed %d: replication baseline differs from direct run", run.Seed)
		}
	}
}

func TestReplicationWorkerCountInvariance(t *testing.T) {
	sc := cheapScenario()
	one, err := Replication{Scenario: sc, Seeds: Seeds(3), Paired: true, Workers: 1}.Run()
	if err != nil {
		t.Fatal(err)
	}
	many, err := Replication{Scenario: sc, Seeds: Seeds(3), Paired: true, Workers: 4}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one.Runs, many.Runs) {
		t.Fatal("replication results differ between 1 and 4 workers")
	}
}

func TestReplicationErrors(t *testing.T) {
	if _, err := (Replication{Scenario: cheapScenario()}).Run(); err == nil {
		t.Fatal("no-seed replication did not error")
	}
	broken := cheapScenario()
	broken.Scale = 0
	_, err := Replication{Scenario: broken, Seeds: Seeds(2)}.Run()
	if err == nil {
		t.Fatal("broken scenario replicated without error")
	}
	if !strings.Contains(err.Error(), "seed 1") {
		t.Fatalf("error does not name the failing seed: %v", err)
	}
}

func TestClaimBandCheck(t *testing.T) {
	rep := syntheticReport(10, 12, 11, 13, 9)

	// Holds: the CI of mean≈11 sits inside a generous band.
	if _, err := (ClaimBand{Claim: "holds", Metric: MetricCompleted, Lo: 5, Hi: 20}).Check(rep); err != nil {
		t.Fatalf("claim should hold: %v", err)
	}
	// Unbounded above.
	if _, err := (ClaimBand{Claim: "open", Metric: MetricCompleted, Lo: 5, Hi: math.Inf(1)}).Check(rep); err != nil {
		t.Fatalf("unbounded claim should hold: %v", err)
	}
	// Fails: band above the sample.
	if _, err := (ClaimBand{Claim: "fails", Metric: MetricCompleted, Lo: 50, Hi: 60}).Check(rep); err == nil {
		t.Fatal("claim above the sample passed")
	}
	// Invalid band.
	if _, err := (ClaimBand{Claim: "bad", Metric: MetricCompleted, Lo: 2, Hi: 1}).Check(rep); err == nil {
		t.Fatal("inverted band accepted")
	}
	// Seed floor: 2 samples < default 3.
	thin := syntheticReport(10, 12)
	if _, err := (ClaimBand{Claim: "thin", Metric: MetricCompleted, Lo: 0, Hi: 100}).Check(thin); err == nil {
		t.Fatal("2-seed replication passed the 3-seed floor")
	}
	// Exactly-zero band over an all-zero sample.
	zero := syntheticReport(0, 0, 0, 0, 0)
	if _, err := (ClaimBand{Claim: "zero", Metric: MetricCompleted, Lo: 0, Hi: 0}).Check(zero); err != nil {
		t.Fatalf("all-zero sample failed the [0,0] band: %v", err)
	}
}

// fatalTB records Assert's failure output instead of stopping the test.
type fatalTB struct {
	testing.TB
	fatal string
}

func (f *fatalTB) Helper()                           {}
func (f *fatalTB) Logf(string, ...any)               {}
func (f *fatalTB) Fatalf(format string, args ...any) { f.fatal = fmt.Sprintf(format, args...) }

func TestClaimBandAssertPrintsPerSeedTable(t *testing.T) {
	rep := syntheticReport(10, 12, 11)
	var tb fatalTB
	ClaimBand{Claim: "doomed", Metric: MetricCompleted, Lo: 50, Hi: 60}.Assert(&tb, rep)
	if tb.fatal == "" {
		t.Fatal("failed claim did not Fatalf")
	}
	for _, want := range []string{"doomed", "per-seed replication table", "completed", "10.000", "12.000"} {
		if !strings.Contains(tb.fatal, want) {
			t.Fatalf("failure output missing %q:\n%s", want, tb.fatal)
		}
	}
}

func TestRatioMetricsCapStarvation(t *testing.T) {
	run := SeedRun{
		Result:   &harness.Result{Completed: 500},
		Baseline: &harness.Result{Completed: 0},
	}
	if got := MetricThroughputRatio.F(run); got != RatioCap {
		t.Fatalf("starved baseline ratio = %v, want RatioCap", got)
	}
	run.Baseline.Completed = 250
	if got := MetricThroughputRatio.F(run); got != 2 {
		t.Fatalf("ratio = %v, want 2", got)
	}
}

func TestReplicationTableAndCSV(t *testing.T) {
	rep := syntheticReport(10, 12, 11)
	table := rep.Table(MetricCompleted, MetricErrors)
	for _, want := range []string{"seed", "completed", "errors", "10.000"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	csv := rep.CSV(MetricCompleted)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 4 || lines[0] != "scenario,seed,completed" || lines[1] != "synthetic,1,10" {
		t.Fatalf("bad CSV:\n%s", csv)
	}
}

func TestWriteCSVEnv(t *testing.T) {
	rep := syntheticReport(10, 12, 11)
	// Unset: a no-op.
	t.Setenv("REPLICATION_CSV_DIR", "")
	if err := rep.WriteCSVEnv(MetricCompleted); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	t.Setenv("REPLICATION_CSV_DIR", dir)
	if err := rep.WriteCSVEnv(MetricCompleted); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "synthetic.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != rep.CSV(MetricCompleted) {
		t.Fatalf("artifact file does not match CSV():\n%s", data)
	}
}

func TestClaimSeedsEnvOverride(t *testing.T) {
	t.Setenv("CLAIMS_SEEDS", "")
	if got := ClaimSeeds(); len(got) != DefaultClaimSeeds {
		t.Fatalf("default seeds = %v", got)
	}
	t.Setenv("CLAIMS_SEEDS", "3")
	if got := ClaimSeeds(); !reflect.DeepEqual(got, []int64{1, 2, 3}) {
		t.Fatalf("CLAIMS_SEEDS=3 gave %v", got)
	}
	t.Setenv("CLAIMS_SEEDS", "bogus")
	if got := ClaimSeeds(); len(got) != DefaultClaimSeeds {
		t.Fatalf("bogus CLAIMS_SEEDS gave %v", got)
	}
}
