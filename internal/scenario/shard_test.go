package scenario

import (
	"reflect"
	"runtime"
	"testing"

	"compilegate/internal/vtime"
)

// TestShardCountInvariance pins the sharded event-loop contract: a
// full-registry sweep returns byte-identical results at every shard
// count, because scenario i always runs on shard i%K from fresh
// scheduler state and runs share no mutable state. K=1 is the serial
// reference; 2, 4, and NumCPU cover under-, evenly-, and
// over-subscribed placements (K > len(scenarios) clamps inside
// RunSweep). CI runs this under -race, so it doubles as the data-race
// probe for the shard runtime.
func TestShardCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	all := All()
	scenarios := make([]Scenario, len(all))
	for i, s := range all {
		scenarios[i] = goldenWindow(s)
	}
	ref := RunSweep(scenarios, 1)
	for i := range scenarios {
		if ref[i].Err != nil {
			t.Fatalf("%s: workers=1: %v", scenarios[i].Name, ref[i].Err)
		}
	}
	// Replication pass: seeds become sweep jobs, so a replication's
	// per-seed results must be byte-identical at shard counts 1 and 4.
	repScenario := goldenWindow(MustGet(t, "figure3"))
	repRef, err := Replication{Scenario: repScenario, Seeds: Seeds(3), Paired: true, Workers: 1}.Run()
	if err != nil {
		t.Fatal(err)
	}
	repSharded, err := Replication{Scenario: repScenario, Seeds: Seeds(3), Paired: true, Workers: 4}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range repRef.Runs {
		if !reflect.DeepEqual(repRef.Runs[i], repSharded.Runs[i]) {
			t.Errorf("replication seed %d differs between shards=1 and shards=4", repRef.Runs[i].Seed)
		}
	}
	// Cluster pass: a multi-node run adds N servers and a router to one
	// event loop; its per-seed results (including the per-node breakdown
	// and the injected node loss) must be shard-count invariant too.
	// cluster-breaker-recovery re-proves it with the full health plane
	// armed — breaker state machines, failover resubmission, and the
	// per-node transition trails all live on the same loop.
	for _, name := range []string{"cluster-nodeloss", "cluster-breaker-recovery"} {
		clRef, err := Replication{Scenario: MustGet(t, name), Seeds: Seeds(2), Workers: 1}.Run()
		if err != nil {
			t.Fatal(err)
		}
		clSharded, err := Replication{Scenario: MustGet(t, name), Seeds: Seeds(2), Workers: 4}.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i := range clRef.Runs {
			if !reflect.DeepEqual(clRef.Runs[i], clSharded.Runs[i]) {
				t.Errorf("%s replication seed %d differs between shards=1 and shards=4", name, clRef.Runs[i].Seed)
			}
		}
	}

	counts := []int{2, 4, runtime.NumCPU()}
	for _, k := range counts {
		got := RunSweep(scenarios, k)
		for i := range scenarios {
			name := scenarios[i].Name
			if got[i].Err != nil {
				t.Fatalf("%s: workers=%d: %v", name, k, got[i].Err)
			}
			if ref[i].Result.Report != got[i].Result.Report {
				t.Errorf("%s: report diverges between workers=1 and workers=%d:\n%s\nvs\n%s",
					name, k, ref[i].Result.Report, got[i].Result.Report)
				continue
			}
			if !reflect.DeepEqual(ref[i].Result, got[i].Result) {
				t.Errorf("%s: results differ between workers=1 and workers=%d", name, k)
			}
		}
	}
}

// TestSchedulerReuseInvariance pins the arena-reuse contract behind
// the shard scheduler pool: a run on a Reset scheduler — reused run
// queue, timer wheel, and task slab — is bit-identical to a run on a
// fresh one. Two back-to-back runs of the same scenario on one
// scheduler must match each other and the fresh-scheduler reference.
func TestSchedulerReuseInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	s := goldenWindow(MustGet(t, "figure3"))

	fresh, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	sched := vtime.NewScheduler()
	first, err := s.RunOn(sched)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Idle() {
		t.Fatal("scheduler not idle after a completed run")
	}
	sched.Reset()
	second, err := s.RunOn(sched)
	if err != nil {
		t.Fatal(err)
	}

	if first.Report != fresh.Report {
		t.Errorf("pooled-scheduler run diverges from fresh-scheduler run:\n%s\nvs\n%s",
			first.Report, fresh.Report)
	}
	if !reflect.DeepEqual(first, fresh) {
		t.Error("pooled-scheduler result differs from fresh-scheduler result")
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("second run on a Reset scheduler differs from the first")
	}
}

// MustGet fetches a registered scenario or fails the test.
func MustGet(t *testing.T, name string) Scenario {
	t.Helper()
	s, ok := Default.Get(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	return s
}
