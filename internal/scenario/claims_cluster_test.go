package scenario

import (
	"testing"

	"compilegate/internal/cluster"
)

// Cluster-plane claims. The headline is routing locality: on a
// statement pool four times too wide to stay hot on every node,
// fingerprint-affinity routing compiles each statement on one home node
// while round-robin pays the cold-compilation bill on all four, so the
// affinity fleet's pooled plan-cache hit rate sits measurably higher.
// Calibration (5 seeds, registered window): affinity 0.953 vs
// round-robin 0.813, a ~0.14 margin with negligible seed variance.

// TestClaimAffinityPlanCacheLocality replicates cluster-affinity against
// its round-robin twin under each claim seed and pins the per-seed
// hit-rate margin to [0.10, 0.20], plus the affinity fleet's absolute
// hit rate.
func TestClaimAffinityPlanCacheLocality(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	aff := MustGet(t, "cluster-affinity")
	rr := aff
	rr.Name = "cluster-affinity-roundrobin"
	rr.Description = "round-robin twin of " + aff.Description
	rr.Router = cluster.RoundRobin

	seeds := ClaimSeeds()
	repAff, err := Replication{Scenario: aff, Seeds: seeds}.Run()
	if err != nil {
		t.Fatal(err)
	}
	repRR, err := Replication{Scenario: rr, Seeds: seeds}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := repAff.WriteCSVEnv(MetricCompleted, MetricErrors, MetricPlanCacheHitRate); err != nil {
		t.Logf("replication CSV artifact: %v", err)
	}

	ClaimBand{
		Claim:  "cluster-affinity: fleet plan-cache hit rate stays above 0.93",
		Metric: MetricPlanCacheHitRate, Lo: 0.93, Hi: 1,
	}.Assert(t, repAff)

	affHit := repAff.Samples(MetricPlanCacheHitRate)
	rrHit := repRR.Samples(MetricPlanCacheHitRate)
	margins := make([]float64, len(seeds))
	for i := range seeds {
		margins[i] = affHit[i] - rrHit[i]
	}
	ClaimBand{
		Claim:  "cluster-affinity: hit-rate margin over the round-robin twin is 0.10-0.20 per seed",
		Metric: MetricPlanCacheHitRate, Lo: 0.10, Hi: 0.20,
	}.AssertSamples(t, margins)
}
