package scenario

import (
	"testing"

	"compilegate/internal/cluster"
)

// Cluster-plane claims. The headline is routing locality: on a
// statement pool four times too wide to stay hot on every node,
// fingerprint-affinity routing compiles each statement on one home node
// while round-robin pays the cold-compilation bill on all four, so the
// affinity fleet's pooled plan-cache hit rate sits measurably higher.
// Calibration (5 seeds, registered window): affinity 0.953 vs
// round-robin 0.813, a ~0.14 margin with negligible seed variance.

// TestClaimAffinityPlanCacheLocality replicates cluster-affinity against
// its round-robin twin under each claim seed and pins the per-seed
// hit-rate margin to [0.10, 0.20], plus the affinity fleet's absolute
// hit rate.
func TestClaimAffinityPlanCacheLocality(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	aff := MustGet(t, "cluster-affinity")
	rr := aff
	rr.Name = "cluster-affinity-roundrobin"
	rr.Description = "round-robin twin of " + aff.Description
	rr.Router = cluster.RoundRobin

	seeds := ClaimSeeds()
	repAff, err := Replication{Scenario: aff, Seeds: seeds}.Run()
	if err != nil {
		t.Fatal(err)
	}
	repRR, err := Replication{Scenario: rr, Seeds: seeds}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := repAff.WriteCSVEnv(MetricCompleted, MetricErrors, MetricPlanCacheHitRate); err != nil {
		t.Logf("replication CSV artifact: %v", err)
	}

	ClaimBand{
		Claim:  "cluster-affinity: fleet plan-cache hit rate stays above 0.93",
		Metric: MetricPlanCacheHitRate, Lo: 0.93, Hi: 1,
	}.Assert(t, repAff)

	affHit := repAff.Samples(MetricPlanCacheHitRate)
	rrHit := repRR.Samples(MetricPlanCacheHitRate)
	margins := make([]float64, len(seeds))
	for i := range seeds {
		margins[i] = affHit[i] - rrHit[i]
	}
	ClaimBand{
		Claim:  "cluster-affinity: hit-rate margin over the round-robin twin is 0.10-0.20 per seed",
		Metric: MetricPlanCacheHitRate, Lo: 0.10, Hi: 0.20,
	}.AssertSamples(t, margins)
}

// TestClaimThrashShedThroughputMargin replicates cluster-thrash-shed
// against a blind twin (health envelope, breakers, and failover all
// off) under each claim seed. While the leak thrashes node 1, the
// blind router keeps feeding it work that crawls at the paging
// slowdown; the health-aware router reads the node's overcommit and
// thrash score and steers around it, so the fleet completes measurably
// more. Calibration (5 seeds): margins +38..+110 completions on a
// ~700-completion run, rerouted 95-138.
func TestClaimThrashShedThroughputMargin(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	on := MustGet(t, "cluster-thrash-shed")
	off := on
	off.Name = "cluster-thrash-shed-blind"
	off.Description = "blind-router twin of " + on.Description
	off.Health, off.Breaker, off.FailoverHops = nil, nil, 0

	seeds := ClaimSeeds()
	repOn, err := Replication{Scenario: on, Seeds: seeds}.Run()
	if err != nil {
		t.Fatal(err)
	}
	repOff, err := Replication{Scenario: off, Seeds: seeds}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := repOn.WriteCSVEnv(MetricCompleted, MetricErrors, MetricRerouted, MetricResubmitted); err != nil {
		t.Logf("replication CSV artifact: %v", err)
	}

	onC := repOn.Samples(MetricCompleted)
	offC := repOff.Samples(MetricCompleted)
	margins := make([]float64, len(seeds))
	for i := range seeds {
		margins[i] = onC[i] - offC[i]
	}
	ClaimBand{
		Claim:  "cluster-thrash-shed: health-aware routing completes 20-300 more queries than the blind twin per seed",
		Metric: MetricCompleted, Lo: 20, Hi: 300,
	}.AssertSamples(t, margins)
	ClaimBand{
		Claim:  "cluster-thrash-shed: the router actively steers around the thrashing node",
		Metric: MetricRerouted, Lo: 40, Hi: 400,
	}.Assert(t, repOn)
}

// TestClaimStormDoesNotTripFleet replicates cluster-compile-storm: a
// correlated compile-storm burst hits all four nodes at once. Client
// queries keep succeeding between sheds, so the consecutive-failure
// streak behind each breaker keeps resetting — the router must never
// find itself with zero admitting nodes. A breaker design that tripped
// the whole fleet open under correlated stress would fail this at the
// first seed.
func TestClaimStormDoesNotTripFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	rep, err := Replication{Scenario: MustGet(t, "cluster-compile-storm"), Seeds: ClaimSeeds()}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCSVEnv(MetricCompleted, MetricErrors, MetricRouterAllExcluded); err != nil {
		t.Logf("replication CSV artifact: %v", err)
	}
	ClaimBand{
		Claim:  "cluster-compile-storm: correlated storms never leave the router with zero admitting nodes",
		Metric: MetricRouterAllExcluded, Lo: 0, Hi: 0,
	}.Assert(t, rep)
	ClaimBand{
		Claim:  "cluster-compile-storm: the stormed fleet keeps completing work",
		Metric: MetricCompleted, Lo: 600, Hi: 900,
	}.Assert(t, rep)
}

// TestClaimBreakerBoundedRecovery replicates cluster-breaker-recovery:
// the router has no liveness oracle, so node 1's 6-minute outage is
// discovered by fail-fast responses tripping its breaker, masked by
// failover resubmission, and healed through half-open probes after
// restart. Calibration (5 seeds): the breaker trips within a handful
// of submissions (7-8 trips across the outage as probes re-trip),
// failover masks every crashed response (zero client retries), and
// cluster throughput is back inside 10% of its pre-fault mean 14
// minutes after restart on every seed.
func TestClaimBreakerBoundedRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	rep, err := Replication{Scenario: MustGet(t, "cluster-breaker-recovery"), Seeds: ClaimSeeds()}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCSVEnv(MetricCompleted, MetricErrors, MetricResubmitted, MetricRetries, MetricRecoveryTime); err != nil {
		t.Logf("replication CSV artifact: %v", err)
	}
	ClaimBand{
		Claim:  "cluster-breaker-recovery: throughput recovers within 20 min of restart (unrecovered runs score the remaining horizon)",
		Metric: MetricRecoveryTime, Lo: 0, Hi: 1200,
	}.Assert(t, rep)
	ClaimBand{
		Claim:  "cluster-breaker-recovery: failover masks the whole outage — clients never retry",
		Metric: MetricRetries, Lo: 0, Hi: 0,
	}.Assert(t, rep)
	trips := make([]float64, len(rep.Runs))
	for i, run := range rep.Runs {
		trips[i] = float64(run.Result.NodeResults[1].BreakerTrips)
	}
	ClaimBand{
		Claim:  "cluster-breaker-recovery: the crashed node's breaker trips and re-trips across the outage",
		Metric: Metric{Name: "node1-trips"}, Lo: 1, Hi: 30,
	}.AssertSamples(t, trips)
}
