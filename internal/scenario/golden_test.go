package scenario

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// update re-records testdata/golden.txt. Run
//
//	go test ./internal/scenario -run TestRegistryGoldenDigests -update
//
// after an *intentional* model or calibration change; any other diff is
// a determinism regression.
var update = flag.Bool("update", false, "re-record golden scenario digests")

// goldenWindow compresses long-horizon scenarios so the golden sweep
// stays test-sized: everything above two hours runs the benchmark
// window (2 h measured from 30 min), shorter scenarios run as
// registered.
func goldenWindow(s Scenario) Scenario {
	if s.Horizon > 2*time.Hour {
		return s.WithWindow(2*time.Hour, 30*time.Minute)
	}
	return s
}

// digest summarizes one run's observable results. Every field is a
// deterministic function of the scheduler's event order, so any change
// to scheduling, the memory model, or the workload shows up here.
func digest(sr SweepResult) string {
	if sr.Err != nil {
		return fmt.Sprintf("error=%v", sr.Err)
	}
	r := sr.Result
	return fmt.Sprintf(
		"completed=%d errors=%d compile-p50=%v exec-p50=%v submitted=%d retries=%d gateway-timeouts=%d best-effort=%d overcommit-permille=%d",
		r.Completed, r.Errors, r.CompileP50, r.ExecP50,
		r.Load.Submitted, r.Load.Retries, r.GatewayTimeouts, r.BestEffortPlans,
		int64(r.AvgOvercommitRatio*1000))
}

const goldenPath = "testdata/golden.txt"

// TestRegistryGoldenDigests pins the end-to-end results of every
// registered scenario. It is the repository's determinism contract: a
// refactor that claims to preserve behavior must reproduce every line
// byte-for-byte, and an intentional model change must re-record the
// file with -update (and say so in its commit).
func TestRegistryGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	all := All()
	scenarios := make([]Scenario, len(all))
	for i, s := range all {
		scenarios[i] = goldenWindow(s)
	}
	results := RunSweep(scenarios, 0)

	var sb strings.Builder
	for _, sr := range results {
		fmt.Fprintf(&sb, "%s: %s\n", sr.Scenario.Name, digest(sr))
	}
	got := sb.String()

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %d golden digests to %s", len(results), goldenPath)
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("no golden file (run with -update to record): %v", err)
	}
	if got == string(want) {
		return
	}
	// Report per-scenario so a diff names the regressed experiments.
	wantLines := map[string]string{}
	for _, line := range strings.Split(strings.TrimSuffix(string(want), "\n"), "\n") {
		if name, rest, ok := strings.Cut(line, ": "); ok {
			wantLines[name] = rest
		}
	}
	for _, sr := range results {
		d := digest(sr)
		w, ok := wantLines[sr.Scenario.Name]
		switch {
		case !ok:
			t.Errorf("%s: no golden digest recorded (run -update)", sr.Scenario.Name)
		case d != w:
			t.Errorf("%s diverged:\ngot:  %s\nwant: %s", sr.Scenario.Name, d, w)
		}
		delete(wantLines, sr.Scenario.Name)
	}
	for name := range wantLines {
		t.Errorf("%s: golden digest recorded but scenario no longer registered", name)
	}
}
