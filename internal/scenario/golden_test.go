package scenario

import (
	"fmt"
	"testing"
	"time"
)

// TestSchedulerGoldenDigest pins the end-to-end results of a full
// scenario run to the values produced by the seed (goroutine-per-task)
// scheduler, proving the event-loop rewrite preserves run-queue ordering
// — and therefore virtual timestamps and every derived metric — exactly.
//
// The digest covers both arms of the Figure 3 comparison on the
// compressed benchmark window: completions, errors, the compile and
// execution latency medians, and the throttled/baseline throughput
// ratio. Any scheduler change that reorders events, however slightly,
// shifts gate-timeout timing and shows up here.
//
// Recorded against commit 37c27ab (PR 2), before the event-loop rewrite.
func TestSchedulerGoldenDigest(t *testing.T) {
	s := Sales(30).WithWindow(2*time.Hour, 30*time.Minute)
	results := RunSweep([]Scenario{s, s.Baseline()}, 0)
	for _, sr := range results {
		if sr.Err != nil {
			t.Fatalf("%s: %v", sr.Scenario.Name, sr.Err)
		}
	}
	th, ba := results[0].Result, results[1].Result

	ratio := float64(th.Completed) / float64(ba.Completed)
	digest := fmt.Sprintf(
		"throttled: completed=%d errors=%d compile-p50=%v exec-p50=%v submitted=%d retries=%d\n"+
			"baseline: completed=%d errors=%d compile-p50=%v exec-p50=%v submitted=%d retries=%d\n"+
			"ratio=%.6f",
		th.Completed, th.Errors, th.CompileP50, th.ExecP50, th.Load.Submitted, th.Load.Retries,
		ba.Completed, ba.Errors, ba.CompileP50, ba.ExecP50, ba.Load.Submitted, ba.Load.Retries,
		ratio)

	const golden = "" +
		"throttled: completed=187 errors=11 compile-p50=25m35.787306769s exec-p50=5m0s submitted=272 retries=11\n" +
		"baseline: completed=138 errors=1 compile-p50=33m59.130615437s exec-p50=10m0s submitted=195 retries=1\n" +
		"ratio=1.355072"

	if digest != golden {
		t.Errorf("scenario digest diverged from the pre-rewrite scheduler:\ngot:\n%s\nwant:\n%s", digest, golden)
	}
}
