package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// This file is the replication stats core: summary statistics and
// bootstrap percentile confidence intervals over per-seed samples.
// Everything is deterministic — the bootstrap resampler runs on a
// seeded generator — so a claims test that passes once passes always,
// and a re-run reproduces the interval bit for bit.

// Mean returns the arithmetic mean of xs (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the sample median (0 for an empty sample).
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile of xs by linear interpolation between
// order statistics (the "type 7" estimator, what R and NumPy default
// to). q is clamped to [0, 1]; an empty sample yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Interval is a closed confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Summary condenses one metric's per-seed samples: point statistics
// plus a bootstrap percentile confidence interval for the mean.
type Summary struct {
	// N is the sample (seed) count.
	N int
	// Mean/Median/Min/Max are point statistics of the sample.
	Mean, Median, Min, Max float64
	// CI is the bootstrap percentile confidence interval for the mean
	// at Confidence.
	CI Interval
	// Confidence is the nominal coverage of CI (e.g. 0.95).
	Confidence float64
}

// String renders the summary the way the claims tables print it.
func (s Summary) String() string {
	return fmt.Sprintf("mean %.3f, median %.3f, range [%.3f, %.3f], %d%% CI [%.3f, %.3f], n=%d",
		s.Mean, s.Median, s.Min, s.Max, int(s.Confidence*100), s.CI.Lo, s.CI.Hi, s.N)
}

// bootstrapResamples is the resample count behind every interval. Large
// enough that the percentile endpoints are stable to well under the
// band widths the claims assert; small enough to be free next to even
// one simulation run.
const bootstrapResamples = 4000

// BootstrapCI returns the percentile bootstrap confidence interval for
// the mean of xs at the given confidence level: resample xs with
// replacement bootstrapResamples times on a generator seeded with seed,
// take the mean of each resample, and report the matching percentile
// range of those means. No distributional assumptions — the samples
// are whatever the simulations produced. A sample of size <= 1 yields
// a degenerate interval at its own value.
func BootstrapCI(xs []float64, confidence float64, seed int64) Interval {
	if len(xs) == 0 {
		return Interval{}
	}
	if len(xs) == 1 {
		return Interval{Lo: xs[0], Hi: xs[0]}
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, bootstrapResamples)
	for b := range means {
		var sum float64
		for i := 0; i < len(xs); i++ {
			sum += xs[rng.Intn(len(xs))]
		}
		means[b] = sum / float64(len(xs))
	}
	alpha := (1 - confidence) / 2
	return Interval{
		Lo: Quantile(means, alpha),
		Hi: Quantile(means, 1-alpha),
	}
}

// Summarize builds the Summary of xs with a bootstrap CI at the given
// confidence. The resampler's seed is derived from the sample itself,
// so identical samples always carry identical intervals regardless of
// which test computed them.
func Summarize(xs []float64, confidence float64) Summary {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	s := Summary{N: len(xs), Confidence: confidence}
	if len(xs) == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.Median = Median(xs)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs[1:] {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.CI = BootstrapCI(xs, confidence, sampleSeed(xs))
	return s
}

// sampleSeed hashes the sample into the bootstrap generator seed —
// deterministic, but decorrelated across different samples.
func sampleSeed(xs []float64) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, x := range xs {
		b := math.Float64bits(x)
		for i := 0; i < 64; i += 8 {
			h ^= (b >> i) & 0xff
			h *= prime64
		}
	}
	return int64(h &^ (1 << 63))
}
