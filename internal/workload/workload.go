// Package workload synthesizes the paper's benchmark workloads as SQL
// text, and drives them through the engine with a closed-loop multi-client
// load generator.
//
// The SALES generator reproduces §5.1: 10 complex join/aggregate templates
// (15-20 joins each) over the star/snowflake data mart, each submission
// mutated — literals varied and a unique comment appended — so every query
// "appears unique" and defeats plan caching, exactly as the paper's load
// generator does [7].
package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
)

// Generator produces one SQL statement per call.
type Generator interface {
	// Name identifies the workload ("sales", "tpch", "oltp").
	Name() string
	// Next produces the next query using rng for all variation.
	Next(rng *rand.Rand) string
}

// join describes one edge of a template's join tree.
type join struct {
	left, leftCol, right string
}

// salesTemplate is one of the 10 base queries.
type salesTemplate struct {
	joins   []join
	groupBy []string // "table.column"
	aggs    int
	// factFracLo/Hi bound the date-range filter's selectivity on the
	// fact table (fraction of date domain).
	factFracLo, factFracHi float64
	// extraFilters are "table.column" equality filters with a domain to
	// draw the literal from.
	extraFilters []filter

	// Pre-rendered SQL segments (built once, shared by every generator):
	// head runs from SELECT through "BETWEEN ", filterSegs[i] is the
	// " AND col = " preceding extraFilters[i]'s literal, tail is the
	// GROUP BY clause. Next only splices literals between them, so one
	// query costs one string allocation instead of dozens.
	head       string
	filterSegs []string
	tail       string
}

type filter struct {
	col    string // "table.column"
	domain int64
}

// Sales generates the SALES benchmark (§5.1): 10 representative templates
// with 15-20 joins computing aggregates over the join results. The
// template tables are immutable and shared by every Sales instance; only
// the uniquify counter and the scratch buffer are per-generator.
type Sales struct {
	templates []salesTemplate
	// Uniquify appends a per-submission unique comment (default true);
	// disable to measure plan-cache behaviour.
	Uniquify bool
	counter  uint64
	buf      []byte // query-assembly scratch, reused across Next calls
}

// dateDomain is dim_date's date_id domain (3653 days).
const dateDomain = 3653

// core joins shared by all SALES templates: fact to primary dimensions.
func factJoins(dims ...string) []join {
	cols := map[string]string{
		"dim_product":   "product_id",
		"dim_store":     "store_id",
		"dim_customer":  "customer_id",
		"dim_date":      "date_id",
		"dim_promotion": "promo_id",
		"dim_employee":  "employee_id",
		"dim_channel":   "channel_id",
	}
	out := make([]join, 0, len(dims))
	for _, d := range dims {
		out = append(out, join{"sales_fact", cols[d], d})
	}
	return out
}

var snowflakes = map[string]join{
	"dim_subcategory":  {"dim_product", "subcategory_id", "dim_subcategory"},
	"dim_category":     {"dim_subcategory", "category_id", "dim_category"},
	"dim_department":   {"dim_category", "department_id", "dim_department"},
	"dim_brand":        {"dim_product", "brand_id", "dim_brand"},
	"dim_manufacturer": {"dim_brand", "manufacturer_id", "dim_manufacturer"},
	"dim_city":         {"dim_store", "city_id", "dim_city"},
	"dim_region":       {"dim_city", "region_id", "dim_region"},
	"dim_country":      {"dim_region", "country_id", "dim_country"},
	"dim_store_format": {"dim_store", "format_id", "dim_store_format"},
	"dim_segment":      {"dim_customer", "segment_id", "dim_segment"},
	"dim_month":        {"dim_date", "month_id", "dim_month"},
	"dim_quarter":      {"dim_month", "quarter_id", "dim_quarter"},
	"dim_promo_type":   {"dim_promotion", "promo_type_id", "dim_promo_type"},
}

// chain expands base fact joins with snowflake tables (in dependency
// order — parents appear in the map values' left side).
func chain(base []join, tables ...string) []join {
	out := base
	for _, t := range tables {
		out = append(out, snowflakes[t])
	}
	return out
}

// NewSales builds the 10-template SALES workload. The shared template
// tables (join trees, pre-rendered SQL segments) are built once per
// process.
func NewSales() *Sales {
	return &Sales{templates: salesTemplates(), Uniquify: true}
}

// salesTemplates builds the shared, read-only template tables on first
// use.
var salesTemplates = sync.OnceValue(buildSalesTemplates)

func buildSalesTemplates() []salesTemplate {
	allDims := []string{"dim_product", "dim_store", "dim_customer", "dim_date",
		"dim_promotion", "dim_employee", "dim_channel"}
	t := []salesTemplate{
		{ // Q1: product hierarchy rollup, 17 joins
			joins: chain(factJoins(allDims...),
				"dim_subcategory", "dim_category", "dim_department",
				"dim_brand", "dim_manufacturer",
				"dim_city", "dim_region",
				"dim_month", "dim_quarter", "dim_segment"),
			groupBy: []string{"dim_category.category_id", "dim_region.region_id"},
			aggs:    3, factFracLo: 0.05, factFracHi: 0.14,
			extraFilters: []filter{{"dim_department.department_id", 40}},
		},
		{ // Q2: geographic drill-down, 16 joins
			joins: chain(factJoins(allDims...),
				"dim_city", "dim_region", "dim_country", "dim_store_format",
				"dim_subcategory", "dim_category",
				"dim_month", "dim_segment", "dim_promo_type"),
			groupBy: []string{"dim_country.country_id", "dim_store_format.format_id"},
			aggs:    2, factFracLo: 0.04, factFracHi: 0.11,
			extraFilters: []filter{{"dim_region.region_id", 400}},
		},
		{ // Q3: brand/manufacturer analysis, 15 joins
			joins: chain(factJoins(allDims...),
				"dim_brand", "dim_manufacturer", "dim_subcategory",
				"dim_city", "dim_month", "dim_quarter",
				"dim_segment", "dim_promo_type"),
			groupBy: []string{"dim_manufacturer.manufacturer_id"},
			aggs:    4, factFracLo: 0.07, factFracHi: 0.18,
			extraFilters: []filter{{"dim_channel.channel_id", 12}},
		},
		{ // Q4: promotion effectiveness, 16 joins
			joins: chain(factJoins(allDims...),
				"dim_promo_type", "dim_subcategory", "dim_category",
				"dim_city", "dim_region", "dim_month",
				"dim_segment", "dim_store_format", "dim_brand"),
			groupBy: []string{"dim_promo_type.promo_type_id", "dim_month.month_id"},
			aggs:    3, factFracLo: 0.05, factFracHi: 0.13,
		},
		{ // Q5: customer segmentation, 15 joins
			joins: chain(factJoins(allDims...),
				"dim_segment", "dim_city", "dim_region", "dim_country",
				"dim_subcategory", "dim_month", "dim_quarter", "dim_brand"),
			groupBy: []string{"dim_segment.segment_id", "dim_quarter.quarter_id"},
			aggs:    2, factFracLo: 0.04, factFracHi: 0.09,
			extraFilters: []filter{{"dim_country.country_id", 80}},
		},
		{ // Q6: full snowflake sweep, 20 joins
			joins: chain(factJoins(allDims...),
				"dim_subcategory", "dim_category", "dim_department",
				"dim_brand", "dim_manufacturer", "dim_city", "dim_region",
				"dim_country", "dim_store_format", "dim_segment",
				"dim_month", "dim_quarter", "dim_promo_type"),
			groupBy: []string{"dim_department.department_id", "dim_country.country_id"},
			aggs:    5, factFracLo: 0.15, factFracHi: 0.28,
		},
		{ // Q7: time-series by channel, 15 joins
			joins: chain(factJoins(allDims...),
				"dim_month", "dim_quarter", "dim_subcategory",
				"dim_city", "dim_segment", "dim_brand",
				"dim_promo_type", "dim_store_format"),
			groupBy: []string{"dim_channel.channel_id", "dim_month.month_id"},
			aggs:    3, factFracLo: 0.07, factFracHi: 0.16,
		},
		{ // Q8: employee/store performance, 16 joins
			joins: chain(factJoins(allDims...),
				"dim_city", "dim_region", "dim_store_format",
				"dim_subcategory", "dim_category", "dim_brand",
				"dim_month", "dim_segment", "dim_promo_type"),
			groupBy: []string{"dim_store_format.format_id"},
			aggs:    4, factFracLo: 0.04, factFracHi: 0.11,
			extraFilters: []filter{{"dim_category.category_id", 500}},
		},
		{ // Q9: product lifecycle, 17 joins
			joins: chain(factJoins(allDims...),
				"dim_subcategory", "dim_category", "dim_department",
				"dim_brand", "dim_manufacturer", "dim_month", "dim_quarter",
				"dim_segment", "dim_city", "dim_promo_type"),
			groupBy: []string{"dim_brand.brand_id", "dim_quarter.quarter_id"},
			aggs:    2, factFracLo: 0.05, factFracHi: 0.14,
		},
		{ // Q10: everything by region and department, 18 joins
			joins: chain(factJoins(allDims...),
				"dim_subcategory", "dim_category", "dim_department",
				"dim_city", "dim_region", "dim_country",
				"dim_month", "dim_quarter", "dim_segment",
				"dim_brand", "dim_store_format"),
			groupBy: []string{"dim_region.region_id", "dim_department.department_id"},
			aggs:    3, factFracLo: 0.12, factFracHi: 0.22,
		},
	}
	for i := range t {
		renderSalesSegments(&t[i])
	}
	return t
}

// renderSalesSegments pre-renders the static SQL of one template: the
// SELECT/FROM/JOIN head up to the date-range literals, the per-filter
// " AND col = " separators, and the GROUP BY tail. The rendering here is
// the single source of the query text; Next only splices literals in.
func renderSalesSegments(t *salesTemplate) {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, g := range t.groupBy {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(g)
	}
	aggCols := []string{"sales_fact.amount_cents", "sales_fact.quantity", "sales_fact.sale_id"}
	aggFns := []string{"SUM", "COUNT", "AVG", "MIN", "MAX"}
	for i := 0; i < t.aggs; i++ {
		sb.WriteString(", ")
		sb.WriteString(aggFns[i%len(aggFns)])
		sb.WriteString("(")
		sb.WriteString(aggCols[i%len(aggCols)])
		sb.WriteString(")")
	}

	sb.WriteString(" FROM sales_fact")
	for _, j := range t.joins {
		rightKey := strings.TrimPrefix(j.right, "dim_") + "_id"
		// Snowflake tables key on their own first column, which matches
		// the joining column name.
		fmt.Fprintf(&sb, " JOIN %s ON %s.%s = %s.%s",
			j.right, j.left, j.leftCol, j.right, keyColumn(j.right, rightKey, j.leftCol))
	}
	sb.WriteString(" WHERE sales_fact.date_id BETWEEN ")
	t.head = sb.String()

	t.filterSegs = make([]string, len(t.extraFilters))
	for i, f := range t.extraFilters {
		t.filterSegs[i] = " AND " + f.col + " = "
	}

	sb.Reset()
	sb.WriteString(" GROUP BY ")
	for i, g := range t.groupBy {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(g)
	}
	t.tail = sb.String()
}

// Name implements Generator.
func (s *Sales) Name() string { return "sales" }

// Templates returns the number of base queries.
func (s *Sales) Templates() int { return len(s.templates) }

// heavyTemplates indexes the two wide-scan templates (Q6, Q10) whose
// compilations reach a "sizable fraction of total available memory"; they
// are drawn rarely, matching the paper's observation that pressure comes
// from several medium/large compilations rather than constant giants.
var heavyTemplates = []int{5, 9}

// heavyProb is the probability of drawing a heavy template.
const heavyProb = 0.06

// Next implements Generator: picks a template (weighted: heavy templates
// are rare), varies its literals, and appends a uniquifying comment. The
// statement is assembled from the template's pre-rendered segments in a
// reused scratch buffer, so each call costs one allocation (the returned
// string) while producing byte-identical text to rendering from scratch.
func (s *Sales) Next(rng *rand.Rand) string {
	var t *salesTemplate
	if rng.Float64() < heavyProb {
		t = &s.templates[heavyTemplates[rng.Intn(len(heavyTemplates))]]
	} else {
		for {
			i := rng.Intn(len(s.templates))
			if i != heavyTemplates[0] && i != heavyTemplates[1] {
				t = &s.templates[i]
				break
			}
		}
	}
	return s.render(t, rng)
}

// NextHeavy draws only from the heavy wide-scan templates — the big-join
// fingerprints a compile-storm fault injects as a burst of arrivals.
func (s *Sales) NextHeavy(rng *rand.Rand) string {
	return s.render(&s.templates[heavyTemplates[rng.Intn(len(heavyTemplates))]], rng)
}

// render assembles one statement from the chosen template.
func (s *Sales) render(t *salesTemplate, rng *rand.Rand) string {
	buf := append(s.buf[:0], t.head...)

	// Fact date-range filter: selectivity drawn from the template band.
	frac := t.factFracLo + rng.Float64()*(t.factFracHi-t.factFracLo)
	width := int64(frac * dateDomain)
	if width < 1 {
		width = 1
	}
	lo := rng.Int63n(dateDomain - width)
	buf = strconv.AppendInt(buf, lo, 10)
	buf = append(buf, " AND "...)
	buf = strconv.AppendInt(buf, lo+width, 10)
	for i, f := range t.extraFilters {
		buf = append(buf, t.filterSegs[i]...)
		buf = strconv.AppendInt(buf, rng.Int63n(f.domain), 10)
	}
	buf = append(buf, t.tail...)

	if s.Uniquify {
		s.counter++
		buf = append(buf, " /* u"...)
		buf = strconv.AppendUint(buf, s.counter, 10)
		buf = append(buf, " */"...)
	}
	s.buf = buf
	return string(buf)
}

// keyColumn resolves the join column on the right-hand table: dimension
// tables key on "<name>_id", and snowflake joins use the same column name
// on both sides.
func keyColumn(table, derived, leftCol string) string {
	// Snowflake joins (e.g. dim_product.subcategory_id =
	// dim_subcategory.subcategory_id) share the column name; fact joins
	// use the derived primary key (dim_store -> store_id).
	switch table {
	case "dim_store_format":
		return "format_id"
	case "dim_promo_type":
		return "promo_type_id"
	default:
		if strings.HasSuffix(leftCol, "_id") && leftCol != "sale_id" {
			return leftCol
		}
		return derived
	}
}

// TPCH generates TPC-H-shaped queries (0-8 joins) over the TPC-H-like
// catalog — the paper's point of comparison for compile memory.
type TPCH struct {
	Uniquify bool
	counter  uint64
	buf      []byte // query-assembly scratch, reused across Next calls
}

// NewTPCH builds the generator.
func NewTPCH() *TPCH { return &TPCH{Uniquify: true} }

// Name implements Generator.
func (g *TPCH) Name() string { return "tpch" }

// tpchChains are join paths of increasing length through the TPC-H graph.
var tpchChains = [][]string{
	{"lineitem"},
	{"lineitem", "orders"},
	{"lineitem", "orders", "customer"},
	{"lineitem", "orders", "customer", "nation"},
	{"lineitem", "orders", "customer", "nation", "region"},
	{"lineitem", "part", "partsupp"},
	{"lineitem", "supplier", "nation", "region"},
	{"lineitem", "orders", "customer", "nation", "region", "part", "supplier"},
	{"lineitem", "orders", "customer", "nation", "region", "part", "partsupp", "supplier"},
}

var tpchEdges = map[[2]string][2]string{
	{"lineitem", "orders"}:   {"l_orderkey", "o_orderkey"},
	{"lineitem", "part"}:     {"l_partkey", "p_partkey"},
	{"lineitem", "supplier"}: {"l_suppkey", "s_suppkey"},
	{"orders", "customer"}:   {"o_custkey", "c_custkey"},
	{"customer", "nation"}:   {"c_nationkey", "n_nationkey"},
	{"supplier", "nation"}:   {"s_nationkey", "n_nationkey"},
	{"nation", "region"}:     {"n_regionkey", "r_regionkey"},
	{"part", "partsupp"}:     {"p_partkey", "ps_partkey"},
	{"lineitem", "partsupp"}: {"l_partkey", "ps_partkey"},
	{"partsupp", "supplier"}: {"ps_suppkey", "s_suppkey"},
}

// tpchPrefixes pre-renders each chain's static SQL through "BETWEEN ",
// built once per process. Each new table joins against the *earliest*
// already-joined table it has an edge to (insertion order), so the
// emitted join tree is deterministic — the old map-iteration scan could
// pick either endpoint for tables like partsupp that connect to several
// joined tables, making the query text depend on runtime map order.
var tpchPrefixes = sync.OnceValue(func() []string {
	prefixes := make([]string, len(tpchChains))
	for ci, chain := range tpchChains {
		var sb strings.Builder
		sb.WriteString("SELECT COUNT(*), SUM(lineitem.l_partkey) FROM lineitem")
		joined := []string{"lineitem"}
		for _, t := range chain[1:] {
			// Find an already-joined table with an edge to t.
			for _, prev := range joined {
				if cols, ok := tpchEdges[[2]string{prev, t}]; ok {
					fmt.Fprintf(&sb, " JOIN %s ON %s.%s = %s.%s", t, prev, cols[0], t, cols[1])
					joined = append(joined, t)
					break
				}
				if cols, ok := tpchEdges[[2]string{t, prev}]; ok {
					fmt.Fprintf(&sb, " JOIN %s ON %s.%s = %s.%s", t, t, cols[0], prev, cols[1])
					joined = append(joined, t)
					break
				}
			}
		}
		sb.WriteString(" WHERE lineitem.l_orderkey BETWEEN ")
		prefixes[ci] = sb.String()
	}
	return prefixes
})

// Next implements Generator.
func (g *TPCH) Next(rng *rand.Rand) string {
	prefix := tpchPrefixes()[rng.Intn(len(tpchChains))]
	buf := append(g.buf[:0], prefix...)
	buf = strconv.AppendInt(buf, rng.Int63n(1<<20), 10)
	buf = append(buf, " AND "...)
	buf = strconv.AppendInt(buf, 1<<20+rng.Int63n(1<<20), 10)
	if g.Uniquify {
		g.counter++
		buf = append(buf, " /* u"...)
		buf = strconv.AppendUint(buf, g.counter, 10)
		buf = append(buf, " */"...)
	}
	g.buf = buf
	return string(buf)
}

// OLTP generates small point queries over the SALES catalog's dimensions:
// the "small diagnostic/OLTP-class" queries that compile below the first
// monitor threshold. The literal pool is small so plan-cache hits occur.
type OLTP struct {
	// DistinctStatements bounds the number of unique query texts.
	DistinctStatements int
	stmts              []string // rendered statement pool, built on demand
}

// NewOLTP builds the generator with 50 distinct statements.
func NewOLTP() *OLTP { return &OLTP{DistinctStatements: 50} }

// WideStatementCount is the oltp-wide statement-pool size: wide enough
// that one node cannot see every statement often, so routing placement
// decides plan-cache warmth.
const WideStatementCount = 2000

// NewOLTPWide builds the wide-pool generator the cluster affinity
// experiments run.
func NewOLTPWide() *OLTP { return &OLTP{DistinctStatements: WideStatementCount} }

// Name implements Generator.
func (g *OLTP) Name() string { return "oltp" }

// oltpStatement renders the n-th distinct statement.
func oltpStatement(n int) string {
	switch n % 3 {
	case 0:
		return fmt.Sprintf("SELECT * FROM dim_customer WHERE dim_customer.customer_id = %d", n*101)
	case 1:
		return fmt.Sprintf("SELECT * FROM dim_product WHERE dim_product.product_id = %d", n*37)
	default:
		return fmt.Sprintf(
			"SELECT COUNT(*) FROM dim_store JOIN dim_city ON dim_store.city_id = dim_city.city_id WHERE dim_store.store_id = %d", n*13)
	}
}

// Statements returns the generator's complete closed statement set —
// every text Next can produce. Snapshots pre-fingerprint these so runs
// never parse them twice.
func (g *OLTP) Statements() []string {
	if len(g.stmts) != g.DistinctStatements {
		g.stmts = make([]string, g.DistinctStatements)
		for n := range g.stmts {
			g.stmts[n] = oltpStatement(n)
		}
	}
	return g.stmts
}

// Next implements Generator: a draw from the rendered statement pool, no
// per-call formatting.
func (g *OLTP) Next(rng *rand.Rand) string {
	return g.Statements()[rng.Intn(g.DistinctStatements)]
}

// Mix interleaves generators with weights.
type Mix struct {
	gens    []Generator
	weights []int
	total   int
}

// NewMix builds a weighted mix. Weights are relative integers.
func NewMix(gens []Generator, weights []int) *Mix {
	if len(gens) != len(weights) || len(gens) == 0 {
		panic("workload: mismatched mix")
	}
	m := &Mix{gens: gens, weights: weights}
	for _, w := range weights {
		if w <= 0 {
			panic("workload: non-positive weight")
		}
		m.total += w
	}
	return m
}

// Name implements Generator.
func (m *Mix) Name() string {
	names := make([]string, len(m.gens))
	for i, g := range m.gens {
		names[i] = g.Name()
	}
	return "mix(" + strings.Join(names, "+") + ")"
}

// Next implements Generator.
func (m *Mix) Next(rng *rand.Rand) string {
	n := rng.Intn(m.total)
	for i, w := range m.weights {
		if n < w {
			return m.gens[i].Next(rng)
		}
		n -= w
	}
	return m.gens[len(m.gens)-1].Next(rng)
}
