package workload

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"compilegate/internal/catalog"
	"compilegate/internal/sqlparser"
	"compilegate/internal/stats"
	"compilegate/internal/vtime"

	"compilegate/internal/optimizer"
)

func TestSalesTemplatesParseAndJoinCounts(t *testing.T) {
	s := NewSales()
	if s.Templates() != 10 {
		t.Fatalf("templates = %d, paper says 10", s.Templates())
	}
	rng := rand.New(rand.NewSource(1))
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		sql := s.Next(rng)
		q, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatalf("template produced unparseable SQL: %v\n%s", err, sql)
		}
		nj := q.NumJoins()
		if nj < 15 || nj > 20 {
			t.Fatalf("join count = %d, paper says 15-20\n%s", nj, sql)
		}
		seen[nj] = true
		if q.Aggregates == 0 {
			t.Fatal("no aggregates")
		}
		if len(q.GroupBy) == 0 {
			t.Fatal("no GROUP BY")
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("invalid query: %v", err)
		}
	}
	if len(seen) < 3 {
		t.Fatalf("join-count variety too small: %v", seen)
	}
}

func TestSalesQueriesOptimizeAgainstCatalog(t *testing.T) {
	cat := catalog.NewSales(catalog.SalesConfig{Scale: 0.01, ExtentBytes: 8 << 20})
	opt := optimizer.New(stats.NewEstimator(cat), optimizer.DefaultConfig())
	s := NewSales()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		sql := s.Next(rng)
		q, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := opt.Optimize(q, optimizer.Hooks{}); err != nil {
			t.Fatalf("optimize failed: %v\n%s", err, sql)
		}
	}
}

func TestSalesUniquification(t *testing.T) {
	s := NewSales()
	rng := rand.New(rand.NewSource(3))
	fps := map[string]bool{}
	for i := 0; i < 100; i++ {
		fp := sqlparser.Fingerprint(s.Next(rng))
		if fps[fp] {
			t.Fatal("duplicate fingerprint: uniquifier broken")
		}
		fps[fp] = true
	}
	s.Uniquify = false
	// Without uniquification duplicates are possible (same template+literals
	// unlikely, but the counter comment must be gone).
	if strings.Contains(s.Next(rng), "/* u") {
		t.Fatal("uniquifier comment present with Uniquify=false")
	}
}

func TestHeavyTemplatesAreRare(t *testing.T) {
	s := NewSales()
	rng := rand.New(rand.NewSource(4))
	heavy := 0
	n := 3000
	for i := 0; i < n; i++ {
		sql := s.Next(rng)
		// Only the heavy templates can scan > 19% of the date domain.
		q, _ := sqlparser.Parse(sql)
		for _, p := range q.Table("sales_fact").Preds {
			if p.Op == "between" && float64(p.Hi-p.Lo) > 0.19*float64(dateDomain) {
				heavy++
			}
		}
	}
	frac := float64(heavy) / float64(n)
	if frac == 0 || frac > 0.08 {
		t.Fatalf("very-wide-scan fraction = %v, want rare but nonzero (~%v of draws are heavy)", frac, heavyProb)
	}
}

func TestTPCHJoinRange(t *testing.T) {
	g := NewTPCH()
	cat := catalog.NewTPCHLike(0.001, 8<<20)
	opt := optimizer.New(stats.NewEstimator(cat), optimizer.DefaultConfig())
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		sql := g.Next(rng)
		q, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatalf("%v\n%s", err, sql)
		}
		if q.NumJoins() > 8 {
			t.Fatalf("tpch joins = %d, paper says 0-8", q.NumJoins())
		}
		if _, err := opt.Optimize(q, optimizer.Hooks{}); err != nil {
			t.Fatalf("optimize: %v\n%s", err, sql)
		}
	}
}

func TestOLTPSmallAndCacheable(t *testing.T) {
	g := NewOLTP()
	rng := rand.New(rand.NewSource(6))
	fps := map[string]bool{}
	for i := 0; i < 500; i++ {
		sql := g.Next(rng)
		q, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		if len(q.Tables) > 2 {
			t.Fatalf("oltp query touches %d tables", len(q.Tables))
		}
		fps[sqlparser.Fingerprint(sql)] = true
	}
	if len(fps) > g.DistinctStatements {
		t.Fatalf("distinct statements = %d > %d: cache cannot work", len(fps), g.DistinctStatements)
	}
}

func TestMix(t *testing.T) {
	m := NewMix([]Generator{NewOLTP(), NewSales()}, []int{3, 1})
	rng := rand.New(rand.NewSource(7))
	oltp := 0
	for i := 0; i < 400; i++ {
		if !strings.Contains(m.Next(rng), "sales_fact") {
			oltp++
		}
	}
	if oltp < 220 || oltp > 380 {
		t.Fatalf("oltp share = %d/400, want ~300", oltp)
	}
	if !strings.Contains(m.Name(), "oltp") || !strings.Contains(m.Name(), "sales") {
		t.Fatalf("mix name = %q", m.Name())
	}
}

type fakeSubmitter struct {
	calls  int
	failAt map[int]bool
}

func (f *fakeSubmitter) Submit(t *vtime.Task, sql string) error {
	f.calls++
	t.Sleep(time.Second)
	if f.failAt[f.calls] {
		return errFake
	}
	return nil
}

var errFake = &fakeError{}

type fakeError struct{}

func (*fakeError) Error() string { return "fake" }

func TestLoadGeneratorRunsClients(t *testing.T) {
	sched := vtime.NewScheduler()
	sub := &fakeSubmitter{failAt: map[int]bool{}}
	cfg := LoadConfig{
		Clients: 5, Horizon: time.Minute, ThinkTime: time.Second,
		MaxRetries: 1, RetryBackoff: time.Second, Seed: 1,
	}
	done := false
	stats := Run(sched, sub, NewOLTP(), cfg, func() { done = true })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("onAllDone never fired")
	}
	if stats.Submitted == 0 || stats.Succeeded != stats.Submitted {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestLoadGeneratorRetries(t *testing.T) {
	sched := vtime.NewScheduler()
	sub := &fakeSubmitter{failAt: map[int]bool{1: true, 2: true, 3: true, 4: true}}
	cfg := LoadConfig{
		Clients: 1, Horizon: 30 * time.Second, ThinkTime: time.Second,
		MaxRetries: 2, RetryBackoff: time.Second, Seed: 1,
	}
	stats := Run(sched, sub, NewOLTP(), cfg, nil)
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	// First query fails 3 times (initial + 2 retries) => Failed 1; the
	// 4th call is the second query's first attempt, which also fails and
	// is retried once (call 5 succeeds).
	if stats.Failed != 1 {
		t.Fatalf("failed = %d, want 1 (stats %+v)", stats.Failed, stats)
	}
	if stats.Retries < 3 {
		t.Fatalf("retries = %d, want >= 3", stats.Retries)
	}
}

func TestLoadHorizonStopsClients(t *testing.T) {
	sched := vtime.NewScheduler()
	sub := &fakeSubmitter{failAt: map[int]bool{}}
	cfg := LoadConfig{Clients: 3, Horizon: 10 * time.Second, ThinkTime: time.Second, Seed: 1}
	Run(sched, sub, NewOLTP(), cfg, nil)
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if sched.Now() > 15*time.Second {
		t.Fatalf("clients ran past horizon: %v", sched.Now())
	}
}

func TestBackoffFor(t *testing.T) {
	// rng is nil for every jitter-free case: the fixed path and the
	// jitter-free exponential path must not draw from the client RNG, or
	// they would shift every later query and break golden digests.
	cases := []struct {
		name    string
		cfg     LoadConfig
		attempt int
		want    time.Duration
	}{
		{"legacy-fixed", LoadConfig{RetryBackoff: 5 * time.Second}, 1, 5 * time.Second},
		{"legacy-fixed-late-attempt", LoadConfig{RetryBackoff: 5 * time.Second}, 50, 5 * time.Second},
		{"exp-first", LoadConfig{BackoffBase: 500 * time.Millisecond}, 1, 500 * time.Millisecond},
		{"exp-doubles", LoadConfig{BackoffBase: 500 * time.Millisecond}, 5, 8 * time.Second},
		{"exp-capped", LoadConfig{BackoffBase: 500 * time.Millisecond, BackoffCap: 10 * time.Second}, 10, 10 * time.Second},
		// Overflowing shifts must pin to the cap, never wrap. 500ms << 38
		// wraps to a *positive* 8.3e18 ns (~263 years), which a sign check
		// on the shifted result cannot catch — the overflow has to be
		// detected before shifting.
		{"overflow-wraps-positive", LoadConfig{BackoffBase: 500 * time.Millisecond, BackoffCap: 10 * time.Second}, 39, 10 * time.Second},
		{"overflow-wraps-positive-uncapped", LoadConfig{BackoffBase: 500 * time.Millisecond}, 39, 500 * time.Millisecond},
		{"overflow-huge-attempt", LoadConfig{BackoffBase: 500 * time.Millisecond, BackoffCap: 10 * time.Second}, 1000, 10 * time.Second},
		{"overflow-uncapped-pins-to-base", LoadConfig{BackoffBase: 500 * time.Millisecond}, 1000, 500 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := backoffFor(&tc.cfg, nil, tc.attempt); got != tc.want {
			t.Errorf("%s: backoffFor(attempt=%d) = %v, want %v", tc.name, tc.attempt, got, tc.want)
		}
	}
}

func TestBackoffForNeverNegative(t *testing.T) {
	// Sweep every attempt a run could plausibly reach (and far past):
	// backoff must stay positive and respect the cap everywhere.
	cfg := LoadConfig{BackoffBase: 500 * time.Millisecond, BackoffCap: 10 * time.Second}
	for attempt := 1; attempt <= 200; attempt++ {
		d := backoffFor(&cfg, nil, attempt)
		if d <= 0 || d > cfg.BackoffCap {
			t.Fatalf("attempt %d: backoff %v escapes (0, %v]", attempt, d, cfg.BackoffCap)
		}
	}
}

func TestBackoffForJitterBounds(t *testing.T) {
	cfg := LoadConfig{BackoffBase: time.Second, BackoffCap: 10 * time.Second, BackoffJitter: 0.3}
	rng := rand.New(rand.NewSource(7))
	for attempt := 1; attempt <= 20; attempt++ {
		d := backoffFor(&cfg, rng, attempt)
		base := time.Second << uint(attempt-1)
		if attempt > 4 { // 16s > cap
			base = cfg.BackoffCap
		}
		lo := time.Duration(float64(base) * 0.7)
		hi := time.Duration(float64(base) * 1.3)
		if d < lo || d >= hi {
			t.Fatalf("attempt %d: jittered backoff %v outside [%v, %v)", attempt, d, lo, hi)
		}
	}
}

func TestOLTPWideSpec(t *testing.T) {
	sp, err := ParseSpec("oltp-wide")
	if err != nil || sp != SpecOLTPWide {
		t.Fatalf("ParseSpec(oltp-wide) = %v, %v", sp, err)
	}
	stmts := SpecOLTPWide.StaticStatements()
	if len(stmts) != WideStatementCount {
		t.Fatalf("wide statement pool = %d, want %d", len(stmts), WideStatementCount)
	}
	seen := make(map[string]bool, len(stmts))
	for _, s := range stmts {
		seen[s] = true
	}
	if len(seen) != len(stmts) {
		t.Fatalf("wide pool has %d distinct of %d statements", len(seen), len(stmts))
	}
	// The generator only ever draws from the closed pool.
	gen := SpecOLTPWide.Generator()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		if q := gen.Next(rng); !seen[q] {
			t.Fatalf("generator produced statement outside the closed pool: %q", q)
		}
	}
}
