package workload

import (
	"fmt"

	"compilegate/internal/catalog"
)

// DefaultExtentBytes is the extent size shared by the catalogs and the
// default buffer-pool config (engine.New enforces that they match);
// every experiment surface resolves catalogs with it.
const DefaultExtentBytes = 8 << 20

// Spec names a workload declaratively: which query generator to run and
// which catalog shape it runs against. It is the workload half of a
// scenario description — the harness resolves a Spec into a concrete
// Generator and Catalog instead of every experiment hand-wiring them.
type Spec string

// The benchmark workloads.
const (
	// SpecSales is the paper's §5.1 ad-hoc DSS workload: 10 complex
	// join/aggregate templates over the SALES data mart, uniquified to
	// defeat the plan cache.
	SpecSales Spec = "sales"
	// SpecTPCH is the TPC-H-like comparison workload from §5.1.
	SpecTPCH Spec = "tpch"
	// SpecOLTP is a point-query workload of repeated statements that hit
	// the plan cache and bypass the monitor ladder.
	SpecOLTP Spec = "oltp"
	// SpecOLTPWide is SpecOLTP with a much wider closed statement set
	// (WideStatementCount distinct texts): a statement population large
	// enough that *where* a statement lands matters — the cluster
	// affinity-routing experiments measure plan-cache hit rates on it.
	SpecOLTPWide Spec = "oltp-wide"
	// SpecMix interleaves OLTP and SALES 3:1 — the paper's
	// "administrator can still run diagnostics under overload" setting.
	SpecMix Spec = "mix"
)

// ParseSpec validates a workload name from a flag or config file.
func ParseSpec(s string) (Spec, error) {
	sp := Spec(s)
	if sp == "" {
		return SpecSales, nil
	}
	if !sp.Valid() {
		return "", fmt.Errorf("workload: unknown spec %q (want sales|tpch|oltp|oltp-wide|mix)", s)
	}
	return sp, nil
}

// Valid reports whether the spec names a known workload. The empty spec
// is valid and means SpecSales, so zero-valued options keep working.
func (sp Spec) Valid() bool {
	switch sp {
	case "", SpecSales, SpecTPCH, SpecOLTP, SpecOLTPWide, SpecMix:
		return true
	}
	return false
}

func (sp Spec) orDefault() Spec {
	if sp == "" {
		return SpecSales
	}
	return sp
}

// String returns the canonical workload name.
func (sp Spec) String() string { return string(sp.orDefault()) }

// Generator builds the query generator for the spec.
func (sp Spec) Generator() Generator {
	switch sp.orDefault() {
	case SpecTPCH:
		return NewTPCH()
	case SpecOLTP:
		return NewOLTP()
	case SpecOLTPWide:
		return NewOLTPWide()
	case SpecMix:
		return NewMix([]Generator{NewSales(), NewOLTP()}, []int{1, 3})
	default:
		return NewSales()
	}
}

// NewCatalog builds the catalog the spec's queries run against. scale is
// the SALES scale factor; the TPC-H-like catalog keeps the §5.1 relative
// sizing (two orders of magnitude smaller than the data mart).
func (sp Spec) NewCatalog(scale float64, extentBytes int64) *catalog.Catalog {
	switch sp.orDefault() {
	case SpecTPCH:
		return catalog.NewTPCHLike(scale*0.01, extentBytes)
	default:
		return catalog.NewSales(catalog.SalesConfig{Scale: scale, ExtentBytes: extentBytes})
	}
}

// StaticStatements returns the spec's closed statement set: every query
// text the workload can produce that recurs across submissions (the
// OLTP point-query pool). Uniquified workloads (SALES, TPC-H) have none
// and return nil. Run snapshots pre-fingerprint these once per shape so
// no run parses or hashes them again.
func (sp Spec) StaticStatements() []string {
	switch sp.orDefault() {
	case SpecOLTP, SpecMix:
		return NewOLTP().Statements()
	case SpecOLTPWide:
		return NewOLTPWide().Statements()
	default:
		return nil
	}
}
