package workload

import (
	"math"
	"math/rand"
	"time"

	"compilegate/internal/errclass"
	"compilegate/internal/vtime"
)

// Submitter runs one query end to end on behalf of a client task,
// returning the engine's error (compile OOM, gateway timeout, grant
// timeout, ...). The engine's Server implements it.
type Submitter interface {
	Submit(t *vtime.Task, sql string) error
}

// LoadConfig shapes the closed-loop client population (§5.2's custom load
// generator simulating concurrent database users).
type LoadConfig struct {
	// Clients is the number of concurrent users.
	Clients int
	// Horizon: clients stop submitting new queries at this virtual time
	// (in-flight queries run to completion).
	Horizon time.Duration
	// ThinkTime separates a client's queries.
	ThinkTime time.Duration
	// MaxRetries bounds resubmission of a failed query; the paper notes
	// aborted queries "likely need to be resubmitted to the system".
	MaxRetries int
	// RetryBackoff separates retries (the legacy fixed-backoff driver;
	// BackoffBase = 0 selects it).
	RetryBackoff time.Duration
	// Seed makes the run reproducible.
	Seed int64

	// BackoffBase > 0 enables the real-driver retry model: capped
	// exponential backoff (BackoffBase doubling per attempt up to
	// BackoffCap) with deterministic jitter drawn from the client's
	// seeded RNG — sleep ∈ backoff·[1−BackoffJitter, 1+BackoffJitter).
	// The legacy fixed-backoff path draws nothing from the RNG, so
	// existing scenarios reproduce byte-identically.
	BackoffBase   time.Duration
	BackoffCap    time.Duration
	BackoffJitter float64
	// RetryBudget bounds the total retries one client may spend over the
	// whole run (0 = unbounded). A client with an empty budget gives up
	// on first failure — the well-behaved-driver half of the retry-storm
	// comparison.
	RetryBudget int
	// NoRetryShed stops clients from resubmitting deliberately shed work
	// (errclass.Shed, i.e. gateway timeouts): the server said no on
	// purpose, so a cooperating driver fails the query to the user
	// instead of amplifying the overload.
	NoRetryShed bool
}

// DefaultLoadConfig mirrors the paper's setup at the given client count.
func DefaultLoadConfig(clients int) LoadConfig {
	return LoadConfig{
		Clients:      clients,
		Horizon:      2 * time.Hour,
		ThinkTime:    2 * time.Second,
		MaxRetries:   2,
		RetryBackoff: 5 * time.Second,
		Seed:         1,
	}
}

// LoadStats aggregates client-side counters.
type LoadStats struct {
	Submitted int
	Succeeded int
	Failed    int // failures after exhausting retries
	Retries   int
	// GiveUps counts failures abandoned before MaxRetries: shed work the
	// client chose not to resubmit (NoRetryShed) or retries it could not
	// afford (RetryBudget exhausted). Always a subset of Failed.
	GiveUps int
	// BudgetExhausted counts give-ups forced by an empty retry budget
	// (the rest of GiveUps declined to resubmit shed work).
	BudgetExhausted int
}

// backoffFor returns the sleep before retry number attempt (1-based).
// The legacy fixed path must not touch rng: consuming a draw would shift
// every later query of the client and break golden digests.
func backoffFor(cfg *LoadConfig, rng *rand.Rand, attempt int) time.Duration {
	if cfg.BackoffBase <= 0 {
		return cfg.RetryBackoff
	}
	d := cfg.BackoffBase
	if shift := uint(attempt - 1); shift < 63 && d <= math.MaxInt64>>shift {
		d <<= shift
	} else {
		// The shift would overflow. A wrapped value can come out as a
		// small *positive* duration, so the overflow must be caught
		// before shifting rather than by sign-checking the result; pin
		// to the cap (or the base when uncapped).
		d = cfg.BackoffCap
		if d <= 0 {
			d = cfg.BackoffBase
		}
	}
	if cfg.BackoffCap > 0 && d > cfg.BackoffCap {
		d = cfg.BackoffCap
	}
	if cfg.BackoffJitter > 0 {
		// Deterministic jitter in [1-j, 1+j): de-synchronizes a client
		// herd that failed on the same tick without any shared state.
		f := 1 + cfg.BackoffJitter*(2*rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	return d
}

// Run spawns cfg.Clients client tasks against sub. onAllDone (may be nil)
// fires from the last client to finish — use it to stop engine
// housekeeping. Returns the shared stats structure, filled in as the
// simulation runs.
func Run(sched *vtime.Scheduler, sub Submitter, gen Generator, cfg LoadConfig, onAllDone func()) *LoadStats {
	stats := &LoadStats{}
	remaining := cfg.Clients
	for i := 0; i < cfg.Clients; i++ {
		i := i
		sched.Go("client", func(t *vtime.Task) {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			budget := cfg.RetryBudget
			// Stagger arrival so clients don't align on the same instant.
			t.Sleep(time.Duration(i) * 250 * time.Millisecond)
			for t.Now() < cfg.Horizon {
				sql := gen.Next(rng)
				stats.Submitted++
				err := sub.Submit(t, sql)
				retries := 0
				for err != nil && retries < cfg.MaxRetries && t.Now() < cfg.Horizon {
					if cfg.NoRetryShed && errclass.IsShed(err) {
						stats.GiveUps++
						break
					}
					if cfg.RetryBudget > 0 {
						if budget <= 0 {
							stats.GiveUps++
							stats.BudgetExhausted++
							break
						}
						budget--
					}
					retries++
					stats.Retries++
					t.Sleep(backoffFor(&cfg, rng, retries))
					err = sub.Submit(t, sql)
				}
				if err != nil {
					stats.Failed++
				} else {
					stats.Succeeded++
				}
				t.Sleep(cfg.ThinkTime)
			}
			remaining--
			if remaining == 0 && onAllDone != nil {
				onAllDone()
			}
		})
	}
	return stats
}
