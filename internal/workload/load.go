package workload

import (
	"math/rand"
	"time"

	"compilegate/internal/vtime"
)

// Submitter runs one query end to end on behalf of a client task,
// returning the engine's error (compile OOM, gateway timeout, grant
// timeout, ...). The engine's Server implements it.
type Submitter interface {
	Submit(t *vtime.Task, sql string) error
}

// LoadConfig shapes the closed-loop client population (§5.2's custom load
// generator simulating concurrent database users).
type LoadConfig struct {
	// Clients is the number of concurrent users.
	Clients int
	// Horizon: clients stop submitting new queries at this virtual time
	// (in-flight queries run to completion).
	Horizon time.Duration
	// ThinkTime separates a client's queries.
	ThinkTime time.Duration
	// MaxRetries bounds resubmission of a failed query; the paper notes
	// aborted queries "likely need to be resubmitted to the system".
	MaxRetries int
	// RetryBackoff separates retries.
	RetryBackoff time.Duration
	// Seed makes the run reproducible.
	Seed int64
}

// DefaultLoadConfig mirrors the paper's setup at the given client count.
func DefaultLoadConfig(clients int) LoadConfig {
	return LoadConfig{
		Clients:      clients,
		Horizon:      2 * time.Hour,
		ThinkTime:    2 * time.Second,
		MaxRetries:   2,
		RetryBackoff: 5 * time.Second,
		Seed:         1,
	}
}

// LoadStats aggregates client-side counters.
type LoadStats struct {
	Submitted int
	Succeeded int
	Failed    int // failures after exhausting retries
	Retries   int
}

// Run spawns cfg.Clients client tasks against sub. onAllDone (may be nil)
// fires from the last client to finish — use it to stop engine
// housekeeping. Returns the shared stats structure, filled in as the
// simulation runs.
func Run(sched *vtime.Scheduler, sub Submitter, gen Generator, cfg LoadConfig, onAllDone func()) *LoadStats {
	stats := &LoadStats{}
	remaining := cfg.Clients
	for i := 0; i < cfg.Clients; i++ {
		i := i
		sched.Go("client", func(t *vtime.Task) {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			// Stagger arrival so clients don't align on the same instant.
			t.Sleep(time.Duration(i) * 250 * time.Millisecond)
			for t.Now() < cfg.Horizon {
				sql := gen.Next(rng)
				stats.Submitted++
				err := sub.Submit(t, sql)
				retries := 0
				for err != nil && retries < cfg.MaxRetries && t.Now() < cfg.Horizon {
					retries++
					stats.Retries++
					t.Sleep(cfg.RetryBackoff)
					err = sub.Submit(t, sql)
				}
				if err != nil {
					stats.Failed++
				} else {
					stats.Succeeded++
				}
				t.Sleep(cfg.ThinkTime)
			}
			remaining--
			if remaining == 0 && onAllDone != nil {
				onAllDone()
			}
		})
	}
	return stats
}
