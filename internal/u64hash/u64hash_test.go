package u64hash

import (
	"math/rand"
	"testing"
)

func TestSetAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s Set
	ref := make(map[uint64]bool)
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Int63n(5000)) + 1
		added := s.Add(k)
		if added == ref[k] {
			t.Fatalf("Add(%d) = %v, want %v", k, added, !ref[k])
		}
		ref[k] = true
	}
	if s.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(ref))
	}
	s.Reset()
	if s.Len() != 0 || !s.Add(42) {
		t.Fatal("Reset did not empty the set")
	}
}

func TestMapF64AgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var m MapF64
	ref := make(map[uint64]float64)
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Int63n(3000)) + 1
		if rng.Intn(2) == 0 {
			v := rng.Float64()
			m.Put(k, v)
			ref[k] = v
		} else {
			got, ok := m.Get(k)
			want, wok := ref[k]
			if ok != wok || got != want {
				t.Fatalf("Get(%d) = %v,%v want %v,%v", k, got, ok, want, wok)
			}
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(ref))
	}
}

func TestMapI32AgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var m MapI32
	ref := make(map[uint64]int32)
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Int63n(3000)) + 1
		if rng.Intn(2) == 0 {
			v := int32(rng.Intn(100))
			m.Put(k, v)
			ref[k] = v
		} else {
			got, ok := m.Get(k)
			want, wok := ref[k]
			if ok != wok || got != want {
				t.Fatalf("Get(%d) = %v,%v want %v,%v", k, got, ok, want, wok)
			}
		}
	}
	// Zero values round-trip (presence is keyed on the slot, not the value).
	m.Put(999999, 0)
	if v, ok := m.Get(999999); !ok || v != 0 {
		t.Fatal("zero value not stored")
	}
}
