// Package u64hash provides tiny open-addressing hash containers for
// nonzero uint64 keys. The optimizer's memo dedup tables and cardinality
// memos are the hottest data structures in a compilation; these replace
// Go maps there, trading generality for a single mixed-hash probe, no
// per-bucket control words, and backing arrays that Reset retains for
// pooled reuse.
//
// Keys must be nonzero (zero marks an empty slot). All containers grow
// by doubling at 1/2 load, keeping probe sequences short.
package u64hash

// mix is the splitmix64 finalizer: join bitsets and packed ID pairs are
// low-entropy, so slot selection needs a full-avalanche mix.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// minSlots sizes a table's first allocation. Memo dedup tables routinely
// reach thousands of keys per compilation, so starting larger skips most
// of the rehash ladder during pool warm-up: every run rebuilds its pools
// from scratch, and the doubling ladder from a small table was a
// measurable share of each run's allocation volume. 2048 slots (16 KiB
// of keys) amortizes to noise across a pooled instance's lifetime.
const minSlots = 2048

// Set is an open-addressing set of nonzero uint64 keys.
type Set struct {
	slots []uint64
	n     int
}

// Len returns the number of keys in the set.
func (s *Set) Len() int { return s.n }

// Reset empties the set, retaining capacity.
func (s *Set) Reset() {
	clear(s.slots)
	s.n = 0
}

// Add inserts k, reporting whether it was newly added (false = already
// present). k must be nonzero.
func (s *Set) Add(k uint64) bool {
	if len(s.slots) == 0 {
		s.grow()
	}
	mask := uint64(len(s.slots) - 1)
	i := mix(k) & mask
	for {
		switch s.slots[i] {
		case 0:
			if s.n*2 >= len(s.slots) {
				s.grow()
				mask = uint64(len(s.slots) - 1)
				i = mix(k) & mask
				for s.slots[i] != 0 {
					i = (i + 1) & mask
				}
			}
			s.slots[i] = k
			s.n++
			return true
		case k:
			return false
		}
		i = (i + 1) & mask
	}
}

func (s *Set) grow() {
	n := len(s.slots) * 2
	if n < minSlots {
		n = minSlots
	}
	old := s.slots
	s.slots = make([]uint64, n)
	mask := uint64(n - 1)
	for _, k := range old {
		if k == 0 {
			continue
		}
		i := mix(k) & mask
		for s.slots[i] != 0 {
			i = (i + 1) & mask
		}
		s.slots[i] = k
	}
}

// MapF64 maps nonzero uint64 keys to float64 values.
type MapF64 struct {
	keys []uint64
	vals []float64
	n    int
}

// Len returns the number of entries.
func (m *MapF64) Len() int { return m.n }

// Reset empties the map, retaining capacity.
func (m *MapF64) Reset() {
	clear(m.keys)
	m.n = 0
}

// Get returns the value for k and whether it is present.
func (m *MapF64) Get(k uint64) (float64, bool) {
	if len(m.keys) == 0 {
		return 0, false
	}
	mask := uint64(len(m.keys) - 1)
	i := mix(k) & mask
	for {
		switch m.keys[i] {
		case 0:
			return 0, false
		case k:
			return m.vals[i], true
		}
		i = (i + 1) & mask
	}
}

// Put inserts or replaces the value for k. k must be nonzero.
func (m *MapF64) Put(k uint64, v float64) {
	if m.n*2 >= len(m.keys) {
		m.grow()
	}
	mask := uint64(len(m.keys) - 1)
	i := mix(k) & mask
	for {
		switch m.keys[i] {
		case 0:
			m.keys[i] = k
			m.vals[i] = v
			m.n++
			return
		case k:
			m.vals[i] = v
			return
		}
		i = (i + 1) & mask
	}
}

func (m *MapF64) grow() {
	n := len(m.keys) * 2
	if n < minSlots {
		n = minSlots
	}
	oldK, oldV := m.keys, m.vals
	m.keys = make([]uint64, n)
	m.vals = make([]float64, n)
	mask := uint64(n - 1)
	for j, k := range oldK {
		if k == 0 {
			continue
		}
		i := mix(k) & mask
		for m.keys[i] != 0 {
			i = (i + 1) & mask
		}
		m.keys[i] = k
		m.vals[i] = oldV[j]
	}
}

// MapI32 maps nonzero uint64 keys to int32 values.
type MapI32 struct {
	keys []uint64
	vals []int32
	n    int
}

// Len returns the number of entries.
func (m *MapI32) Len() int { return m.n }

// Reset empties the map, retaining capacity.
func (m *MapI32) Reset() {
	clear(m.keys)
	m.n = 0
}

// Get returns the value for k and whether it is present.
func (m *MapI32) Get(k uint64) (int32, bool) {
	if len(m.keys) == 0 {
		return 0, false
	}
	mask := uint64(len(m.keys) - 1)
	i := mix(k) & mask
	for {
		switch m.keys[i] {
		case 0:
			return 0, false
		case k:
			return m.vals[i], true
		}
		i = (i + 1) & mask
	}
}

// Put inserts or replaces the value for k. k must be nonzero.
func (m *MapI32) Put(k uint64, v int32) {
	if m.n*2 >= len(m.keys) {
		m.grow()
	}
	mask := uint64(len(m.keys) - 1)
	i := mix(k) & mask
	for {
		switch m.keys[i] {
		case 0:
			m.keys[i] = k
			m.vals[i] = v
			m.n++
			return
		case k:
			m.vals[i] = v
			return
		}
		i = (i + 1) & mask
	}
}

func (m *MapI32) grow() {
	n := len(m.keys) * 2
	if n < minSlots {
		n = minSlots
	}
	oldK, oldV := m.keys, m.vals
	m.keys = make([]uint64, n)
	m.vals = make([]int32, n)
	mask := uint64(n - 1)
	for j, k := range oldK {
		if k == 0 {
			continue
		}
		i := mix(k) & mask
		for m.keys[i] != 0 {
			i = (i + 1) & mask
		}
		m.keys[i] = k
		m.vals[i] = oldV[j]
	}
}
