// Package errclass defines the engine's error taxonomy: every failed
// query falls into one of four classes, and every concrete error type
// (gateway timeouts, memory-budget OOMs, execution-grant timeouts, crash
// disconnects) advertises its class through errors.Is. Clients and the
// harness branch on the class, never on concrete types or error text —
// a retrying driver needs to know *that* work was shed, not which gate
// shed it.
//
// The classes:
//
//   - Shed: admission control deliberately rejected the work (a gateway
//     monitor timed the compilation out). Well-behaved clients do not
//     resubmit shed work — that is the whole point of shedding.
//   - Timeout: a resource wait expired (execution-grant queue). The work
//     was wanted but the resource never arrived; retrying is reasonable.
//   - OOM: a memory reservation failed against the machine budget, a
//     tracker limit, or the VAS group.
//   - Crashed: the server connection died mid-query (engine crash or a
//     submit while the engine is down). Clients reconnect and retry.
//
// Concrete error types opt in by implementing Is(target error) bool and
// returning true for their class sentinel, so classification composes
// with error wrapping via the standard errors package.
package errclass

import "errors"

// class is the sentinel error type; each value's identity is its class.
type class struct{ name string }

func (c *class) Error() string { return "errclass: " + c.name }

// The four class sentinels. Use errors.Is(err, errclass.Shed) etc.;
// the helpers below read better at call sites.
var (
	Shed    error = &class{"shed"}
	Timeout error = &class{"timeout"}
	OOM     error = &class{"oom"}
	Crashed error = &class{"crashed"}
)

// IsShed reports whether err is deliberately shed work.
func IsShed(err error) bool { return errors.Is(err, Shed) }

// IsTimeout reports whether err is an expired resource wait.
func IsTimeout(err error) bool { return errors.Is(err, Timeout) }

// IsOOM reports whether err is a failed memory reservation.
func IsOOM(err error) bool { return errors.Is(err, OOM) }

// IsCrashed reports whether err is a lost server connection.
func IsCrashed(err error) bool { return errors.Is(err, Crashed) }

// Of returns the class sentinel for err, or nil when err matches none —
// the switch every error-counting path shares.
func Of(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, Crashed):
		return Crashed
	case errors.Is(err, Shed):
		return Shed
	case errors.Is(err, Timeout):
		return Timeout
	case errors.Is(err, OOM):
		return OOM
	default:
		return nil
	}
}
