package errclass

import (
	"errors"
	"fmt"
	"testing"
)

func TestSentinelsDistinct(t *testing.T) {
	all := []error{Shed, Timeout, OOM, Crashed}
	for i, a := range all {
		for j, b := range all {
			if (i == j) != errors.Is(a, b) {
				t.Errorf("Is(%v, %v) = %v", a, b, i != j)
			}
		}
	}
}

func TestWrappedClassification(t *testing.T) {
	wrapped := fmt.Errorf("submit: %w", Shed)
	if !IsShed(wrapped) {
		t.Error("wrapped shed not recognized")
	}
	if IsTimeout(wrapped) || IsOOM(wrapped) || IsCrashed(wrapped) {
		t.Error("wrapped shed matched a foreign class")
	}
	if Of(wrapped) != Shed {
		t.Errorf("Of(wrapped) = %v, want Shed", Of(wrapped))
	}
}

func TestOfUnclassified(t *testing.T) {
	if Of(nil) != nil {
		t.Error("Of(nil) != nil")
	}
	if Of(errors.New("plain")) != nil {
		t.Error("Of(plain) != nil")
	}
}
