// Package memo implements the Cascades-style memo structure ([4] in the
// paper) the optimizer explores: groups of logically-equivalent
// expressions, deduplicated so each alternative is stored once.
//
// The memo is where compilation memory goes. Every group and expression
// created charges simulated bytes through a caller-supplied hook; the
// governor wires that hook to Compilation.Alloc so memo growth is exactly
// the memory the gateways throttle. The paper's premise — "the memory
// consumed during optimization is closely related to the number of
// considered alternatives" — is therefore true by construction.
package memo

import (
	"fmt"

	"compilegate/internal/catalog"
)

// GroupID indexes a group within a memo.
type GroupID int32

// ExprKind distinguishes leaf (table) expressions from join expressions.
type ExprKind int8

// Expression kinds.
const (
	KindLeaf ExprKind = iota
	KindJoin
)

// Expr is one logical alternative inside a group.
type Expr struct {
	Kind  ExprKind
	Table *catalog.Table // KindLeaf
	L, R  GroupID        // KindJoin

	// Rule-application flags prevent re-deriving the same alternatives.
	CommuteApplied bool
	AssocApplied   bool
}

// Group holds logically-equivalent expressions producing the same join
// set.
type Group struct {
	ID    GroupID
	Set   uint64 // bitset of table IDs covered
	Card  float64
	Exprs []*Expr

	// Exploration cursor: Exprs[:Explored] have had rules applied.
	Explored int
}

// ChargeFunc charges n simulated bytes of compilation memory. Returning an
// error aborts memo growth (out of memory or gateway timeout).
type ChargeFunc func(n int64) error

// Config sizes the memo's simulated memory footprint.
type Config struct {
	// BytesPerGroup / BytesPerExpr are the simulated allocation charged
	// for each structure. They are deliberately larger than the Go
	// structs: they model SQL Server's per-alternative optimizer memory
	// (operator trees, properties, required/derived physical props).
	BytesPerGroup int64
	BytesPerExpr  int64
}

// DefaultConfig matches the calibration in DESIGN.md: a 20-join SALES
// compilation exploring tens of thousands of alternatives reaches
// hundreds of simulated MiB — the "several medium/large concurrent ad hoc
// compilations" regime the paper identifies.
func DefaultConfig() Config {
	return Config{
		BytesPerGroup: 96 << 10, // 96 KiB
		BytesPerExpr:  48 << 10, // 48 KiB
	}
}

// Memo is the search-space store.
type Memo struct {
	cfg    Config
	charge ChargeFunc

	groups []*Group
	bySet  map[uint64]GroupID
	// exprKeys dedups join expressions group-wide: (set, l, r).
	exprKeys map[exprKey]struct{}

	bytes      int64
	exprCount  int
	groupCount int
}

type exprKey struct {
	set  uint64
	l, r GroupID
}

// New creates an empty memo. charge may be nil (no accounting), which the
// tests use.
func New(cfg Config, charge ChargeFunc) *Memo {
	if charge == nil {
		charge = func(int64) error { return nil }
	}
	return &Memo{
		cfg:      cfg,
		charge:   charge,
		bySet:    make(map[uint64]GroupID),
		exprKeys: make(map[exprKey]struct{}),
	}
}

// Bytes returns the simulated bytes the memo has charged.
func (m *Memo) Bytes() int64 { return m.bytes }

// Groups returns the number of groups.
func (m *Memo) Groups() int { return m.groupCount }

// Exprs returns the number of expressions.
func (m *Memo) Exprs() int { return m.exprCount }

// Group returns the group with the given ID.
func (m *Memo) Group(id GroupID) *Group { return m.groups[id] }

// AllGroups iterates groups in creation order.
func (m *Memo) AllGroups() []*Group { return m.groups }

// GroupBySet returns the group covering exactly the given table set.
func (m *Memo) GroupBySet(set uint64) (*Group, bool) {
	id, ok := m.bySet[set]
	if !ok {
		return nil, false
	}
	return m.groups[id], true
}

// getOrAddGroup returns the group for set, creating it (with cardinality
// card) if needed. The bool reports whether the group already existed.
func (m *Memo) getOrAddGroup(set uint64, card float64) (*Group, bool, error) {
	if id, ok := m.bySet[set]; ok {
		return m.groups[id], true, nil
	}
	if err := m.charge(m.cfg.BytesPerGroup); err != nil {
		return nil, false, err
	}
	m.bytes += m.cfg.BytesPerGroup
	g := &Group{ID: GroupID(len(m.groups)), Set: set, Card: card}
	m.groups = append(m.groups, g)
	m.bySet[set] = g.ID
	m.groupCount++
	return g, false, nil
}

// AddLeaf inserts a leaf group for the table with the given filtered
// cardinality. Adding the same table twice returns the existing group.
func (m *Memo) AddLeaf(t *catalog.Table, card float64) (*Group, error) {
	set := uint64(1) << uint(t.ID)
	g, existed, err := m.getOrAddGroup(set, card)
	if err != nil {
		return nil, err
	}
	if existed {
		return g, nil
	}
	if err := m.addExpr(g, &Expr{Kind: KindLeaf, Table: t}); err != nil {
		return nil, err
	}
	return g, nil
}

// AddJoin inserts a join expression L⋈R into the group covering
// L.Set ∪ R.Set (creating the group with cardinality card if new). It
// reports whether a new expression was actually added (false = duplicate).
func (m *Memo) AddJoin(l, r *Group, card float64) (*Group, bool, error) {
	if l.Set&r.Set != 0 {
		return nil, false, fmt.Errorf("memo: join sides overlap: %b & %b", l.Set, r.Set)
	}
	set := l.Set | r.Set
	g, _, err := m.getOrAddGroup(set, card)
	if err != nil {
		return nil, false, err
	}
	key := exprKey{set: set, l: l.ID, r: r.ID}
	if _, dup := m.exprKeys[key]; dup {
		return g, false, nil
	}
	if err := m.addExpr(g, &Expr{Kind: KindJoin, L: l.ID, R: r.ID}); err != nil {
		return nil, false, err
	}
	m.exprKeys[key] = struct{}{}
	return g, true, nil
}

func (m *Memo) addExpr(g *Group, e *Expr) error {
	if err := m.charge(m.cfg.BytesPerExpr); err != nil {
		return err
	}
	m.bytes += m.cfg.BytesPerExpr
	g.Exprs = append(g.Exprs, e)
	m.exprCount++
	return nil
}

// String summarizes the memo.
func (m *Memo) String() string {
	return fmt.Sprintf("memo: %d groups, %d exprs, %d simulated bytes",
		m.groupCount, m.exprCount, m.bytes)
}
