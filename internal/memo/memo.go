// Package memo implements the Cascades-style memo structure ([4] in the
// paper) the optimizer explores: groups of logically-equivalent
// expressions, deduplicated so each alternative is stored once.
//
// The memo is where compilation memory goes. Every group and expression
// created charges simulated bytes through a caller-supplied hook; the
// governor wires that hook to Compilation.Alloc so memo growth is exactly
// the memory the gateways throttle. The paper's premise — "the memory
// consumed during optimization is closely related to the number of
// considered alternatives" — is therefore true by construction.
package memo

import (
	"fmt"

	"compilegate/internal/catalog"
	"compilegate/internal/u64hash"
)

// GroupID indexes a group within a memo.
type GroupID int32

// ExprKind distinguishes leaf (table) expressions from join expressions.
type ExprKind int8

// Expression kinds.
const (
	KindLeaf ExprKind = iota
	KindJoin
)

// Expr is one logical alternative inside a group. Expressions of one
// group form an intrusive singly-linked list in insertion order (the
// next link lives in the Expr itself, carved from the same arena), so
// appending an alternative never allocates — the memo's storage is
// struct-of-arenas all the way down.
type Expr struct {
	Kind  ExprKind
	Table *catalog.Table // KindLeaf
	L, R  GroupID        // KindJoin

	next *Expr // intrusive group-list link

	// Rule-application flags prevent re-deriving the same alternatives.
	CommuteApplied bool
	AssocApplied   bool
}

// Next returns the expression inserted after e in its group (nil at the
// tail). Iteration order is exactly insertion order.
func (e *Expr) Next() *Expr { return e.next }

// Group holds logically-equivalent expressions producing the same join
// set.
type Group struct {
	ID   GroupID
	Set  uint64 // bitset of table IDs covered
	Card float64

	// Intrusive expression list plus the exploration cursor: every
	// expression up to and including lastExplored has had rules applied.
	head, tail   *Expr
	lastExplored *Expr
	nExprs       int
}

// FirstExpr returns the group's first expression (nil when empty).
func (g *Group) FirstExpr() *Expr { return g.head }

// Len returns the number of expressions in the group.
func (g *Group) Len() int { return g.nExprs }

// PopUnexplored returns the next expression rules have not yet been
// applied to, advancing the exploration cursor, or nil when every
// expression (including ones appended since the last call) is explored.
func (g *Group) PopUnexplored() *Expr {
	e := g.head
	if g.lastExplored != nil {
		e = g.lastExplored.next
	}
	if e != nil {
		g.lastExplored = e
	}
	return e
}

// ChargeFunc charges n simulated bytes of compilation memory. Returning an
// error aborts memo growth (out of memory or gateway timeout).
type ChargeFunc func(n int64) error

// Config sizes the memo's simulated memory footprint.
type Config struct {
	// BytesPerGroup / BytesPerExpr are the simulated allocation charged
	// for each structure. They are deliberately larger than the Go
	// structs: they model SQL Server's per-alternative optimizer memory
	// (operator trees, properties, required/derived physical props).
	BytesPerGroup int64
	BytesPerExpr  int64
}

// DefaultConfig matches the calibration in DESIGN.md: the memo is the
// *exploration* share of compile memory — a large SALES compilation
// reaches ~100 simulated MiB of memo, and the engine's staged
// costing/codegen phases (engine.CompileStages) multiply that into the
// several-hundred-MiB peak footprint of the "several medium/large
// concurrent ad hoc compilations" regime the paper identifies.
func DefaultConfig() Config {
	return Config{
		BytesPerGroup: 32 << 10, // 32 KiB
		BytesPerExpr:  16 << 10, // 16 KiB
	}
}

// Memo is the search-space store. Groups and expressions are allocated
// from chunked arenas (pointer-stable, reusable via Reset) so a pooled
// memo compiles thousands of statements without churning the garbage
// collector — the per-alternative allocation cost the paper's premise
// turns into the dominant hot-path cost.
type Memo struct {
	cfg    Config
	charge ChargeFunc

	groups []*Group
	bySet  u64hash.MapI32
	// exprKeys dedups join expressions group-wide. The (l, r) child pair
	// alone determines the expression (its set is l.Set|r.Set), so the
	// key packs both group IDs into one word; the set is open-addressing
	// (keys are never zero: overlapping sides are rejected first).
	exprKeys u64hash.Set

	// Arena chunks; each chunk is sliced to its used length and retains
	// capacity across Reset.
	gchunks [][]Group
	gcur    int
	echunks [][]Expr
	ecur    int

	bytes      int64
	exprCount  int
	groupCount int
}

const (
	groupChunkSize = 64
	exprChunkSize  = 256
)

// New creates an empty memo. charge may be nil (no accounting), which the
// tests use.
func New(cfg Config, charge ChargeFunc) *Memo {
	m := &Memo{}
	m.Reset(cfg, charge)
	return m
}

// Reset empties the memo for reuse, retaining arena chunks, map buckets,
// and per-group expression-list capacity. The optimizer pools memos
// across compilations through this.
func (m *Memo) Reset(cfg Config, charge ChargeFunc) {
	if charge == nil {
		charge = func(int64) error { return nil }
	}
	m.cfg = cfg
	m.charge = charge
	m.groups = m.groups[:0]
	m.bySet.Reset()
	m.exprKeys.Reset()
	for i := range m.gchunks {
		m.gchunks[i] = m.gchunks[i][:0]
	}
	for i := range m.echunks {
		m.echunks[i] = m.echunks[i][:0]
	}
	m.gcur, m.ecur = 0, 0
	m.bytes = 0
	m.exprCount = 0
	m.groupCount = 0
}

// allocGroup carves a pointer-stable Group slot out of the arena. The
// slot's fields are stale when reused; the caller initializes them all.
func (m *Memo) allocGroup() *Group {
	for {
		if m.gcur == len(m.gchunks) {
			m.gchunks = append(m.gchunks, make([]Group, 0, groupChunkSize))
		}
		c := m.gchunks[m.gcur]
		if len(c) == cap(c) {
			m.gcur++
			continue
		}
		c = c[:len(c)+1]
		m.gchunks[m.gcur] = c
		return &c[len(c)-1]
	}
}

// allocExpr carves a pointer-stable Expr slot out of the arena.
func (m *Memo) allocExpr() *Expr {
	for {
		if m.ecur == len(m.echunks) {
			m.echunks = append(m.echunks, make([]Expr, 0, exprChunkSize))
		}
		c := m.echunks[m.ecur]
		if len(c) == cap(c) {
			m.ecur++
			continue
		}
		c = c[:len(c)+1]
		m.echunks[m.ecur] = c
		return &c[len(c)-1]
	}
}

// Bytes returns the simulated bytes the memo has charged.
func (m *Memo) Bytes() int64 { return m.bytes }

// Groups returns the number of groups.
func (m *Memo) Groups() int { return m.groupCount }

// Exprs returns the number of expressions.
func (m *Memo) Exprs() int { return m.exprCount }

// Group returns the group with the given ID.
func (m *Memo) Group(id GroupID) *Group { return m.groups[id] }

// AllGroups iterates groups in creation order.
func (m *Memo) AllGroups() []*Group { return m.groups }

// GroupBySet returns the group covering exactly the given table set.
func (m *Memo) GroupBySet(set uint64) (*Group, bool) {
	id, ok := m.bySet.Get(set)
	if !ok {
		return nil, false
	}
	return m.groups[id], true
}

// getOrAddGroup returns the group for set, creating it (with cardinality
// card) if needed. The bool reports whether the group already existed.
func (m *Memo) getOrAddGroup(set uint64, card float64) (*Group, bool, error) {
	if id, ok := m.bySet.Get(set); ok {
		return m.groups[id], true, nil
	}
	if err := m.charge(m.cfg.BytesPerGroup); err != nil {
		return nil, false, err
	}
	m.bytes += m.cfg.BytesPerGroup
	g := m.allocGroup()
	g.ID = GroupID(len(m.groups))
	g.Set = set
	g.Card = card
	g.head, g.tail, g.lastExplored = nil, nil, nil // stale links from a prior life
	g.nExprs = 0
	m.groups = append(m.groups, g)
	m.bySet.Put(set, int32(g.ID))
	m.groupCount++
	return g, false, nil
}

// AddLeaf inserts a leaf group for the table with the given filtered
// cardinality. Adding the same table twice returns the existing group.
func (m *Memo) AddLeaf(t *catalog.Table, card float64) (*Group, error) {
	set := uint64(1) << uint(t.ID)
	g, existed, err := m.getOrAddGroup(set, card)
	if err != nil {
		return nil, err
	}
	if existed {
		return g, nil
	}
	if err := m.addExpr(g, KindLeaf, t, 0, 0); err != nil {
		return nil, err
	}
	return g, nil
}

// AddJoin inserts a join expression L⋈R into the group covering
// L.Set ∪ R.Set (creating the group with cardinality card if new). It
// reports whether a new expression was actually added (false = duplicate).
func (m *Memo) AddJoin(l, r *Group, card float64) (*Group, bool, error) {
	if l.Set&r.Set != 0 {
		return nil, false, fmt.Errorf("memo: join sides overlap: %b & %b", l.Set, r.Set)
	}
	set := l.Set | r.Set
	g, _, err := m.getOrAddGroup(set, card)
	if err != nil {
		return nil, false, err
	}
	// Key insertion before the charge is safe: a failed charge aborts the
	// whole compilation, so the memo is never consulted again.
	key := uint64(uint32(l.ID))<<32 | uint64(uint32(r.ID))
	if !m.exprKeys.Add(key) {
		return g, false, nil
	}
	if err := m.addExpr(g, KindJoin, nil, l.ID, r.ID); err != nil {
		return nil, false, err
	}
	return g, true, nil
}

// AddJoinInto is AddJoin when the covering group is already in hand —
// the commute and associate rules derive alternatives for the very group
// they are exploring, so the set lookup AddJoin pays is pure overhead
// there. g.Set must equal l.Set|r.Set.
func (m *Memo) AddJoinInto(g, l, r *Group) (bool, error) {
	key := uint64(uint32(l.ID))<<32 | uint64(uint32(r.ID))
	if !m.exprKeys.Add(key) {
		return false, nil
	}
	if err := m.addExpr(g, KindJoin, nil, l.ID, r.ID); err != nil {
		return false, err
	}
	return true, nil
}

func (m *Memo) addExpr(g *Group, kind ExprKind, t *catalog.Table, l, r GroupID) error {
	if err := m.charge(m.cfg.BytesPerExpr); err != nil {
		return err
	}
	m.bytes += m.cfg.BytesPerExpr
	e := m.allocExpr()
	e.Kind = kind
	e.Table = t
	e.L, e.R = l, r
	e.next = nil
	e.CommuteApplied = false
	e.AssocApplied = false
	if g.tail == nil {
		g.head = e
	} else {
		g.tail.next = e
	}
	g.tail = e
	g.nExprs++
	m.exprCount++
	return nil
}

// String summarizes the memo.
func (m *Memo) String() string {
	return fmt.Sprintf("memo: %d groups, %d exprs, %d simulated bytes",
		m.groupCount, m.exprCount, m.bytes)
}
