package memo

import (
	"errors"
	"testing"
	"testing/quick"

	"compilegate/internal/catalog"
)

func tables(n int) []*catalog.Table {
	c := catalog.New(8 << 20)
	out := make([]*catalog.Table, n)
	for i := 0; i < n; i++ {
		out[i] = c.AddTable(&catalog.Table{
			Name: string(rune('a' + i)), Rows: int64(1000 * (i + 1)), RowBytes: 100,
		})
	}
	return out
}

func TestAddLeafDedup(t *testing.T) {
	m := New(DefaultConfig(), nil)
	ts := tables(2)
	g1, err := m.AddLeaf(ts[0], 1000)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m.AddLeaf(ts[0], 1000)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("duplicate leaf created a second group")
	}
	if m.Groups() != 1 || m.Exprs() != 1 {
		t.Fatalf("groups=%d exprs=%d, want 1/1", m.Groups(), m.Exprs())
	}
}

func TestAddJoinCreatesUnionGroup(t *testing.T) {
	m := New(DefaultConfig(), nil)
	ts := tables(2)
	a, _ := m.AddLeaf(ts[0], 1000)
	b, _ := m.AddLeaf(ts[1], 2000)
	j, added, err := m.AddJoin(a, b, 5000)
	if err != nil || !added {
		t.Fatalf("AddJoin: added=%v err=%v", added, err)
	}
	if j.Set != a.Set|b.Set {
		t.Fatalf("join set = %b", j.Set)
	}
	if j.Card != 5000 {
		t.Fatalf("join card = %v", j.Card)
	}
	// Commuted join lands in the same group as a distinct expr.
	j2, added2, err := m.AddJoin(b, a, 5000)
	if err != nil || !added2 {
		t.Fatalf("commuted AddJoin: added=%v err=%v", added2, err)
	}
	if j2 != j {
		t.Fatal("commuted join created a new group")
	}
	if j.Len() != 2 {
		t.Fatalf("group exprs = %d, want 2", j.Len())
	}
	// Exact duplicate is rejected.
	_, added3, _ := m.AddJoin(a, b, 5000)
	if added3 {
		t.Fatal("duplicate join expr added")
	}
}

func TestAddJoinOverlapRejected(t *testing.T) {
	m := New(DefaultConfig(), nil)
	ts := tables(2)
	a, _ := m.AddLeaf(ts[0], 1000)
	b, _ := m.AddLeaf(ts[1], 2000)
	j, _, _ := m.AddJoin(a, b, 5000)
	if _, _, err := m.AddJoin(j, a, 1); err == nil {
		t.Fatal("overlapping join accepted")
	}
}

func TestMemoryChargedPerStructure(t *testing.T) {
	cfg := Config{BytesPerGroup: 100, BytesPerExpr: 10}
	var charged int64
	m := New(cfg, func(n int64) error { charged += n; return nil })
	ts := tables(2)
	a, _ := m.AddLeaf(ts[0], 1) // group + expr = 110
	b, _ := m.AddLeaf(ts[1], 1) // 110
	m.AddJoin(a, b, 1)          // 110
	m.AddJoin(b, a, 1)          // expr only = 10
	if charged != 340 {
		t.Fatalf("charged = %d, want 340", charged)
	}
	if m.Bytes() != charged {
		t.Fatalf("Bytes() = %d != charged %d", m.Bytes(), charged)
	}
}

func TestChargeFailureStopsGrowth(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	m := New(DefaultConfig(), func(int64) error {
		calls++
		if calls > 2 {
			return boom
		}
		return nil
	})
	ts := tables(2)
	if _, err := m.AddLeaf(ts[0], 1); err != nil {
		t.Fatal(err)
	}
	_, err := m.AddLeaf(ts[1], 1)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failed group must not be registered.
	if _, ok := m.GroupBySet(1 << uint(ts[1].ID)); ok {
		t.Fatal("failed group registered")
	}
}

func TestGroupLookup(t *testing.T) {
	m := New(DefaultConfig(), nil)
	ts := tables(3)
	a, _ := m.AddLeaf(ts[0], 1)
	if g, ok := m.GroupBySet(a.Set); !ok || g != a {
		t.Fatal("GroupBySet broken")
	}
	if _, ok := m.GroupBySet(1 << 63); ok {
		t.Fatal("phantom group")
	}
	if m.Group(a.ID) != a {
		t.Fatal("Group(ID) broken")
	}
	if m.String() == "" {
		t.Fatal("empty String")
	}
}

// Property: after any sequence of joins over random leaf pairs, the memo
// has exactly one group per distinct table set and expression count >=
// group count; Bytes() equals groups*BytesPerGroup + exprs*BytesPerExpr.
func TestQuickMemoAccounting(t *testing.T) {
	cfg := Config{BytesPerGroup: 7, BytesPerExpr: 3}
	f := func(pairs [][2]uint8) bool {
		m := New(cfg, nil)
		ts := tables(6)
		groups := make([]*Group, 0, 16)
		for _, tb := range ts {
			g, err := m.AddLeaf(tb, 10)
			if err != nil {
				return false
			}
			groups = append(groups, g)
		}
		for _, p := range pairs {
			a := groups[int(p[0])%len(groups)]
			b := groups[int(p[1])%len(groups)]
			if a.Set&b.Set != 0 {
				continue
			}
			g, _, err := m.AddJoin(a, b, 100)
			if err != nil {
				return false
			}
			groups = append(groups, g)
		}
		sets := make(map[uint64]bool)
		for _, g := range m.AllGroups() {
			if sets[g.Set] {
				return false // duplicate set
			}
			sets[g.Set] = true
		}
		want := int64(m.Groups())*cfg.BytesPerGroup + int64(m.Exprs())*cfg.BytesPerExpr
		return m.Bytes() == want && m.Exprs() >= m.Groups()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
