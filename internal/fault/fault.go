// Package fault is the deterministic fault plane: declarative, scripted
// failure injection for the simulated DBMS. A Plan lists injections on
// the virtual-time axis — disk-latency stalls, a wired-memory ballast
// "leak", compile storms of big-join arrivals, and engine crash/restart
// cycles — and Inject runs them as ordinary scheduler tasks against a
// Surface of engine hooks.
//
// Determinism is by construction, not by care: an injection is just
// another task on the run's single event loop, scheduled at fixed
// virtual times with all randomness drawn from the plan's seed, so a
// faulted run is exactly as reproducible as a clean one and shard/worker
// sweep invariance carries over untouched (each run owns its scheduler;
// the plane adds tasks only inside it).
package fault

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"compilegate/internal/vtime"
)

// Kind enumerates the injection types.
type Kind uint8

const (
	// DiskStall dilates every disk transfer by Factor while active —
	// a degraded volume or a neighbor saturating the spindles.
	DiskStall Kind = iota
	// MemLeak ratchets RateBytes of wired ballast every Interval while
	// active — a component that allocates and never frees, squeezing
	// the machine into the pressure model's thrash regime.
	MemLeak
	// CompileStorm submits Burst heavy (big-join) queries spaced
	// Interval apart starting at At — the correlated arrival spike that
	// overwhelms compile memory fastest.
	CompileStorm
	// CrashRestart crashes the engine at At and restarts it Duration
	// later: in-flight queries error, plan cache and broker history are
	// lost, and clients reconnect by retrying.
	CrashRestart
)

// String names the kind for schedules and diagnostics.
func (k Kind) String() string {
	switch k {
	case DiskStall:
		return "disk-stall"
	case MemLeak:
		return "mem-leak"
	case CompileStorm:
		return "compile-storm"
	case CrashRestart:
		return "crash-restart"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Injection is one scripted fault. At/Duration place it on the
// virtual-time axis; the remaining fields are kind-specific.
type Injection struct {
	Kind Kind
	// Node targets one engine instance of a cluster run (0, the
	// default, is the first node — and the only one in a single-server
	// run). The harness validates Node against the run's node count.
	Node int
	// At is the onset virtual time.
	At time.Duration
	// Duration is how long the fault stays active (DiskStall, MemLeak)
	// or how long the engine stays down (CrashRestart). Ignored by
	// CompileStorm, whose extent is Burst·Interval.
	Duration time.Duration

	// Factor is the DiskStall dilation multiplier (> 1).
	Factor float64
	// RateBytes is the MemLeak ratchet per interval.
	RateBytes int64
	// Interval is the MemLeak ratchet cadence (default 10 s) or the
	// CompileStorm arrival spacing (default 0: all at once).
	Interval time.Duration
	// Release drops the accumulated ballast when a MemLeak clears (the
	// leaking component got restarted); without it the ballast stays
	// wired to the end of the run.
	Release bool
	// Burst is the CompileStorm query count.
	Burst int
}

// clear returns the virtual time the injection is over.
func (in Injection) clear() time.Duration {
	if in.Kind == CompileStorm {
		return in.At + time.Duration(in.Burst)*in.Interval
	}
	return in.At + in.Duration
}

// Plan is a scripted fault schedule. The zero value is the empty plan.
type Plan struct {
	// Seed drives the plane's own randomness (storm query text).
	Seed int64
	// Injections fire independently; same-kind injections must not
	// overlap in time.
	Injections []Injection
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Injections) == 0 }

// Validate rejects plans whose schedule is malformed.
func (p *Plan) Validate() error {
	for i, in := range p.Injections {
		if in.At < 0 || in.Duration < 0 || in.Interval < 0 {
			return fmt.Errorf("fault: injection %d (%s): negative time", i, in.Kind)
		}
		if in.Node < 0 {
			return fmt.Errorf("fault: injection %d (%s): negative node %d", i, in.Kind, in.Node)
		}
		switch in.Kind {
		case DiskStall:
			if in.Factor <= 1 {
				return fmt.Errorf("fault: injection %d: disk-stall factor %g must be > 1", i, in.Factor)
			}
			if in.Duration == 0 {
				return fmt.Errorf("fault: injection %d: disk-stall needs a duration", i)
			}
		case MemLeak:
			if in.RateBytes <= 0 {
				return fmt.Errorf("fault: injection %d: mem-leak rate %d must be > 0", i, in.RateBytes)
			}
		case CompileStorm:
			if in.Burst <= 0 {
				return fmt.Errorf("fault: injection %d: compile-storm burst %d must be > 0", i, in.Burst)
			}
		case CrashRestart:
			if in.Duration == 0 {
				return fmt.Errorf("fault: injection %d: crash-restart needs a downtime", i)
			}
		default:
			return fmt.Errorf("fault: injection %d: unknown kind %d", i, in.Kind)
		}
		// Same-kind overlap on the same node would make clears ambiguous
		// (whose stall factor wins? whose ballast drops?); forbid it
		// outright. Different nodes are independent machines, so
		// correlated cross-node faults may overlap freely.
		for j, other := range p.Injections[:i] {
			if other.Kind != in.Kind || other.Node != in.Node {
				continue
			}
			if in.At < other.clear() && other.At < in.clear() {
				return fmt.Errorf("fault: injections %d and %d (%s) overlap", j, i, in.Kind)
			}
		}
	}
	return nil
}

// FirstOnset returns the earliest injection time (-1 for an empty plan).
func (p *Plan) FirstOnset() time.Duration {
	if p.Empty() {
		return -1
	}
	first := p.Injections[0].At
	for _, in := range p.Injections[1:] {
		if in.At < first {
			first = in.At
		}
	}
	return first
}

// LastClear returns the latest time any injection is still active (-1
// for an empty plan). Recovery is measured from here.
func (p *Plan) LastClear() time.Duration {
	if p.Empty() {
		return -1
	}
	last := time.Duration(-1)
	for _, in := range p.Injections {
		if c := in.clear(); c > last {
			last = c
		}
	}
	return last
}

// MaxNode returns the highest node index any injection targets (0 for
// an empty plan) — the harness checks it against the run's node count.
func (p *Plan) MaxNode() int {
	max := 0
	if p == nil {
		return 0
	}
	for _, in := range p.Injections {
		if in.Node > max {
			max = in.Node
		}
	}
	return max
}

// String renders the injected schedule, one line per injection — the
// cmd/figures -faultplan dump. Node is printed only when targeted
// explicitly, so single-server schedules render as before.
func (p *Plan) String() string {
	if p.Empty() {
		return "fault plan: empty\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "fault plan (seed %d): %d injections\n", p.Seed, len(p.Injections))
	for _, in := range p.Injections {
		fmt.Fprintf(&sb, "  t=%-7s %-13s", fmtDur(in.At), in.Kind)
		if in.Node > 0 {
			fmt.Fprintf(&sb, " node=%d", in.Node)
		}
		switch in.Kind {
		case DiskStall:
			fmt.Fprintf(&sb, " x%.1f for %s", in.Factor, fmtDur(in.Duration))
		case MemLeak:
			iv := in.Interval
			if iv <= 0 {
				iv = defaultLeakInterval
			}
			fmt.Fprintf(&sb, " %d B per %s for %s", in.RateBytes, fmtDur(iv), fmtDur(in.Duration))
			if in.Release {
				sb.WriteString(" (released)")
			}
		case CompileStorm:
			fmt.Fprintf(&sb, " burst=%d spaced %s", in.Burst, fmtDur(in.Interval))
		case CrashRestart:
			fmt.Fprintf(&sb, " down for %s", fmtDur(in.Duration))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%gs", d.Seconds())
}

// Surface is the set of engine hooks the plane drives. The harness wires
// it from the engine server; every hook must be non-nil for the kinds the
// plan uses.
type Surface struct {
	// SetDiskStall installs the disk dilation factor (1 = healthy).
	SetDiskStall func(mul float64)
	// Leak wires n more ballast bytes; an error means even the commit
	// limit is gone (the ratchet keeps trying — swap churn is the point).
	Leak func(n int64) error
	// DropLeak releases all accumulated ballast.
	DropLeak func()
	// Crash fails the engine; Restart brings it back.
	Crash   func()
	Restart func()
	// StormQuery submits one heavy query on behalf of the calling ghost
	// task, returning the server's error.
	StormQuery func(t *vtime.Task) error
}

// Stats counts what the plane actually did, filled in as the simulation
// runs.
type Stats struct {
	// Injected counts injections whose onset fired.
	Injected int
	// StallTime is total disk-stall active time.
	StallTime time.Duration
	// LeakedBytes is ballast successfully wired; LeakFailures counts
	// ratchet steps refused at the commit limit.
	LeakedBytes  int64
	LeakFailures int
	// StormSubmitted/StormFailed count storm queries and their errors.
	StormSubmitted int
	StormFailed    int
	// Crashes counts crash onsets; DownTime is total engine downtime.
	Crashes  int
	DownTime time.Duration
}

const defaultLeakInterval = 10 * time.Second

// Inject schedules the plan's injections on sched as ordinary tasks and
// returns the stats structure they fill in. The plan must be valid and
// single-node (every injection targeting node 0).
func Inject(sched *vtime.Scheduler, p Plan, s Surface) *Stats {
	return InjectCluster(sched, p, []Surface{s})
}

// InjectCluster is Inject over a fleet: injection i drives
// surfaces[p.Injections[i].Node], so a plan can stall one node's disk
// while storming another. The caller must validate the plan and ensure
// every targeted node index is in range (the harness checks MaxNode
// against the node count); out-of-range targets panic.
func InjectCluster(sched *vtime.Scheduler, p Plan, surfaces []Surface) *Stats {
	st := &Stats{}
	for i := range p.Injections {
		in := p.Injections[i]
		s := surfaces[in.Node]
		switch in.Kind {
		case DiskStall:
			sched.Go("fault-diskstall", func(t *vtime.Task) {
				t.Sleep(in.At)
				st.Injected++
				s.SetDiskStall(in.Factor)
				t.Sleep(in.Duration)
				s.SetDiskStall(1)
				st.StallTime += in.Duration
			})
		case MemLeak:
			sched.Go("fault-leak", func(t *vtime.Task) {
				t.Sleep(in.At)
				st.Injected++
				iv := in.Interval
				if iv <= 0 {
					iv = defaultLeakInterval
				}
				end := in.At + in.Duration
				for {
					if err := s.Leak(in.RateBytes); err != nil {
						st.LeakFailures++
					} else {
						st.LeakedBytes += in.RateBytes
					}
					if t.Now()+iv > end {
						break
					}
					t.Sleep(iv)
				}
				if t.Now() < end {
					t.Sleep(end - t.Now())
				}
				if in.Release {
					s.DropLeak()
				}
			})
		case CompileStorm:
			sched.Go("fault-storm", func(t *vtime.Task) {
				t.Sleep(in.At)
				st.Injected++
				// Ghost clients: one task per storm query, staggered by
				// the arrival spacing. They are spawned at onset (not at
				// plan time) so a run's task census matches its schedule.
				for k := 0; k < in.Burst; k++ {
					delay := time.Duration(k) * in.Interval
					sched.Go("fault-storm-query", func(tt *vtime.Task) {
						if delay > 0 {
							tt.Sleep(delay)
						}
						st.StormSubmitted++
						if err := s.StormQuery(tt); err != nil {
							st.StormFailed++
						}
					})
				}
			})
		case CrashRestart:
			sched.Go("fault-crash", func(t *vtime.Task) {
				t.Sleep(in.At)
				st.Injected++
				st.Crashes++
				s.Crash()
				t.Sleep(in.Duration)
				s.Restart()
				st.DownTime += in.Duration
			})
		}
	}
	return st
}

// Random generates a valid plan inside the given horizon from rng — the
// chaos differential test's schedule source. Onsets land in the middle
// half of the horizon and every injection clears before the horizon.
func Random(rng *rand.Rand, horizon time.Duration) Plan {
	p := Plan{Seed: rng.Int63()}
	kinds := []Kind{DiskStall, MemLeak, CompileStorm, CrashRestart}
	rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })
	n := 1 + rng.Intn(len(kinds))
	for _, k := range kinds[:n] {
		at := horizon/4 + time.Duration(rng.Int63n(int64(horizon)/4))
		dur := horizon/16 + time.Duration(rng.Int63n(int64(horizon)/8))
		in := Injection{Kind: k, At: at, Duration: dur}
		switch k {
		case DiskStall:
			in.Factor = 2 + 6*rng.Float64()
		case MemLeak:
			in.RateBytes = (8 + rng.Int63n(56)) << 20 // 8-64 MiB per step
			in.Interval = time.Duration(5+rng.Intn(25)) * time.Second
			in.Release = rng.Intn(2) == 0
		case CompileStorm:
			in.Duration = 0
			in.Burst = 4 + rng.Intn(12)
			in.Interval = time.Duration(rng.Intn(2000)) * time.Millisecond
		case CrashRestart:
			in.Duration = time.Duration(1+rng.Intn(5)) * time.Minute
		}
		p.Injections = append(p.Injections, in)
	}
	return p
}
