package fault_test

import (
	"testing"
	"time"

	"compilegate/internal/cluster"
	"compilegate/internal/fault"
	"compilegate/internal/harness"
	"compilegate/internal/mem"
	"compilegate/internal/workload"
)

// fuzzInjection derives one bounded, always-valid injection from raw fuzz
// words. at/dur are clamped inside the fuzz harness horizon so the plan
// passes validation and the run always ends.
func fuzzInjection(kind uint8, at, dur uint16, param uint8) fault.Injection {
	const horizon = 30 * time.Minute
	in := fault.Injection{
		Kind: fault.Kind(kind % 4),
		At:   time.Duration(at%1200) * time.Second,
	}
	maxDur := horizon - in.At - time.Minute
	in.Duration = time.Duration(1+int(dur)%600) * time.Second
	if in.Duration > maxDur {
		in.Duration = maxDur
	}
	switch in.Kind {
	case fault.DiskStall:
		in.Factor = 2 + float64(param%8)
	case fault.MemLeak:
		in.RateBytes = int64(1+param%64) * 4 * mem.MiB
		in.Interval = time.Duration(5+param%30) * time.Second
		in.Release = param%2 == 0
	case fault.CompileStorm:
		in.Duration = 0
		in.Burst = 1 + int(param%8)
		in.Interval = time.Duration(param%4) * time.Second
	case fault.CrashRestart:
		// keep default duration
	}
	return in
}

// FuzzFaultPlan runs arbitrary two-injection schedules through a small
// harness configuration. The harness checks the memory invariant suite
// (budget/tracker/group conservation, no leaked compile memory or
// executor grants, no open compilations) after every run, so any
// schedule that breaks reserve/spill/release conservation surfaces as a
// run error here.
func FuzzFaultPlan(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(300), uint16(120), uint8(3), uint8(1), uint16(700), uint16(60), uint8(7))
	f.Add(int64(2), uint8(1), uint16(100), uint16(500), uint8(10), uint8(3), uint16(900), uint16(200), uint8(0))
	f.Add(int64(3), uint8(2), uint16(0), uint16(1), uint8(255), uint8(2), uint16(1199), uint16(599), uint8(128))
	f.Add(int64(4), uint8(3), uint16(600), uint16(240), uint8(42), uint8(3), uint16(650), uint16(240), uint8(42))
	f.Fuzz(func(t *testing.T, seed int64,
		k1 uint8, at1, dur1 uint16, p1 uint8,
		k2 uint8, at2, dur2 uint16, p2 uint8) {
		plan := fault.Plan{Seed: seed, Injections: []fault.Injection{
			fuzzInjection(k1, at1, dur1, p1),
		}}
		second := fuzzInjection(k2, at2, dur2, p2)
		plan.Injections = append(plan.Injections, second)
		if plan.Validate() != nil {
			// Same-kind overlap: drop the second injection instead of
			// discarding the case.
			plan.Injections = plan.Injections[:1]
		}
		o := harness.Options{
			Clients:   3,
			Horizon:   30 * time.Minute,
			Warmup:    5 * time.Minute,
			Throttled: seed%2 == 0,
			Scale:     0.02,
			Workload:  workload.SpecSales,
			Seed:      seed,
			Fault:     &plan,
		}
		if _, err := harness.Run(o); err != nil {
			t.Fatalf("faulted run failed: %v\nplan:\n%s", err, plan.String())
		}
	})
}

// FuzzClusterFaultPlan drives node-targeted two-injection schedules
// through a three-node cluster with the whole health plane armed —
// health exclusion, aggressive circuit breakers, and failover
// resubmission — under a routing policy picked by the seed. On top of
// the harness's per-node memory invariant suite, every run is audited
// for routing-plane conservation: the per-node routed counts must sum
// to client submissions plus failover resubmissions, and each breaker
// must land in a legal state.
func FuzzClusterFaultPlan(f *testing.F) {
	f.Add(int64(1), uint8(3), uint16(300), uint16(120), uint8(3), uint8(1), uint8(1), uint16(700), uint16(60), uint8(7), uint8(2))
	f.Add(int64(2), uint8(3), uint16(100), uint16(500), uint8(10), uint8(0), uint8(3), uint16(900), uint16(200), uint8(0), uint8(0))
	f.Add(int64(3), uint8(2), uint16(0), uint16(1), uint8(255), uint8(2), uint8(1), uint16(1199), uint16(599), uint8(128), uint8(1))
	f.Add(int64(4), uint8(3), uint16(600), uint16(240), uint8(42), uint8(1), uint8(3), uint16(650), uint16(240), uint8(42), uint8(1))
	policies := []cluster.Policy{cluster.RoundRobin, cluster.LeastLoaded, cluster.Affinity}
	f.Fuzz(func(t *testing.T, seed int64,
		k1 uint8, at1, dur1 uint16, p1, n1 uint8,
		k2 uint8, at2, dur2 uint16, p2, n2 uint8) {
		const nodes = 3
		first := fuzzInjection(k1, at1, dur1, p1)
		first.Node = int(n1 % nodes)
		second := fuzzInjection(k2, at2, dur2, p2)
		second.Node = int(n2 % nodes)
		plan := fault.Plan{Seed: seed, Injections: []fault.Injection{first, second}}
		if plan.Validate() != nil {
			// Same-kind overlap on one node: drop the second injection
			// instead of discarding the case.
			plan.Injections = plan.Injections[:1]
		}
		o := harness.Options{
			Clients:   6,
			Horizon:   30 * time.Minute,
			Warmup:    5 * time.Minute,
			Throttled: true,
			Scale:     0.02,
			Workload:  workload.SpecSales,
			Seed:      seed,
			Fault:     &plan,
			Nodes:     nodes,
			Router:    policies[int(uint64(seed)%3)],
			Health:    &cluster.HealthConfig{Enabled: true, ShedBrownout: seed%2 == 0},
			// Aggressive settings so fuzzed faults actually exercise the
			// trip / cooldown / probe cycle inside the 30-minute horizon.
			Breaker:      &cluster.BreakerConfig{Enabled: true, Threshold: 2, Cooldown: 30 * time.Second, Probes: 2},
			FailoverHops: 2,
		}
		r, err := harness.Run(o)
		if err != nil {
			t.Fatalf("breaker-armed cluster run failed: %v\nplan:\n%s", err, plan.String())
		}
		var routed uint64
		for _, nr := range r.NodeResults {
			routed += nr.Routed
			switch nr.BreakerState {
			case "closed", "open", "half-open":
			default:
				t.Fatalf("node %d finished in unknown breaker state %q", nr.Node, nr.BreakerState)
			}
			for _, tr := range nr.BreakerTransitions {
				if tr.From == tr.To {
					t.Fatalf("node %d logged a self-transition %s", nr.Node, tr)
				}
			}
		}
		if want := uint64(r.Load.Submitted+r.Load.Retries) + r.Resubmitted; routed != want {
			t.Fatalf("routed sum %d != submissions+failovers %d\nplan:\n%s", routed, want, plan.String())
		}
	})
}
