package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"compilegate/internal/vtime"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		inj  []Injection
		ok   bool
	}{
		{"empty", nil, true},
		{"stall", []Injection{{Kind: DiskStall, At: time.Minute, Duration: time.Minute, Factor: 4}}, true},
		{"negative-at", []Injection{{Kind: DiskStall, At: -1, Duration: time.Minute, Factor: 4}}, false},
		{"stall-factor-low", []Injection{{Kind: DiskStall, At: 1, Duration: time.Minute, Factor: 1}}, false},
		{"stall-no-duration", []Injection{{Kind: DiskStall, At: 1, Factor: 4}}, false},
		{"leak-no-rate", []Injection{{Kind: MemLeak, Duration: time.Minute}}, false},
		{"storm-no-burst", []Injection{{Kind: CompileStorm}}, false},
		{"crash-no-downtime", []Injection{{Kind: CrashRestart}}, false},
		{"unknown-kind", []Injection{{Kind: Kind(99), Duration: time.Minute}}, false},
		{"same-kind-overlap", []Injection{
			{Kind: CrashRestart, At: 0, Duration: 2 * time.Minute},
			{Kind: CrashRestart, At: time.Minute, Duration: time.Minute},
		}, false},
		{"cross-kind-overlap-ok", []Injection{
			{Kind: CrashRestart, At: 0, Duration: 2 * time.Minute},
			{Kind: DiskStall, At: time.Minute, Duration: time.Minute, Factor: 2},
		}, true},
		{"same-kind-sequential-ok", []Injection{
			{Kind: CrashRestart, At: 0, Duration: time.Minute},
			{Kind: CrashRestart, At: 2 * time.Minute, Duration: time.Minute},
		}, true},
	}
	for _, tc := range cases {
		p := Plan{Injections: tc.inj}
		if err := p.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestPlanTimes(t *testing.T) {
	var empty *Plan
	if !empty.Empty() || empty.FirstOnset() != -1 || empty.LastClear() != -1 {
		t.Fatalf("nil plan: Empty=%v onset=%v clear=%v", empty.Empty(), empty.FirstOnset(), empty.LastClear())
	}
	p := Plan{Injections: []Injection{
		{Kind: CompileStorm, At: 10 * time.Minute, Burst: 6, Interval: time.Minute},
		{Kind: DiskStall, At: 5 * time.Minute, Duration: 2 * time.Minute, Factor: 3},
	}}
	if got := p.FirstOnset(); got != 5*time.Minute {
		t.Errorf("FirstOnset = %v", got)
	}
	// The storm's extent is Burst·Interval, past the stall's clear.
	if got := p.LastClear(); got != 16*time.Minute {
		t.Errorf("LastClear = %v", got)
	}
}

func TestPlanString(t *testing.T) {
	if got := (&Plan{}).String(); !strings.Contains(got, "empty") {
		t.Errorf("empty plan string = %q", got)
	}
	p := Plan{Seed: 9, Injections: []Injection{
		{Kind: DiskStall, At: time.Minute, Duration: time.Minute, Factor: 4},
		{Kind: MemLeak, At: time.Minute, Duration: time.Minute, RateBytes: 1 << 20, Release: true},
		{Kind: CompileStorm, At: time.Minute, Burst: 3, Interval: time.Second},
		{Kind: CrashRestart, At: time.Minute, Duration: time.Minute},
	}}
	s := p.String()
	for _, want := range []string{"seed 9", "disk-stall", "mem-leak", "(released)", "compile-storm", "burst=3", "crash-restart", "down for"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string missing %q:\n%s", want, s)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestRandomPlansValid(t *testing.T) {
	const horizon = 20 * time.Minute
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := Random(rng, horizon)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: invalid random plan: %v\n%s", seed, err, p.String())
		}
		if p.FirstOnset() < 0 || p.LastClear() > horizon {
			t.Fatalf("seed %d: plan escapes horizon [%v, %v]:\n%s",
				seed, p.FirstOnset(), p.LastClear(), p.String())
		}
	}
}

// recordingSurface logs every hook invocation with its virtual time.
type recordingSurface struct {
	sched  *vtime.Scheduler
	events []string
	leakN  int
}

func (rs *recordingSurface) log(format string, args ...any) {
	rs.events = append(rs.events, fmt.Sprintf("%v "+format, append([]any{rs.sched.Now()}, args...)...))
}

func (rs *recordingSurface) surface() Surface {
	return Surface{
		SetDiskStall: func(m float64) { rs.log("stall=%.0f", m) },
		Leak: func(n int64) error {
			rs.leakN++
			if rs.leakN > 2 {
				return errors.New("commit limit")
			}
			rs.log("leak=%d", n)
			return nil
		},
		DropLeak: func() { rs.log("drop") },
		Crash:    func() { rs.log("crash") },
		Restart:  func() { rs.log("restart") },
		StormQuery: func(t *vtime.Task) error {
			rs.log("storm")
			t.Sleep(time.Second)
			if rs.sched.Now() > 12*time.Minute {
				return errors.New("rejected")
			}
			return nil
		},
	}
}

func TestInject(t *testing.T) {
	sched := vtime.NewScheduler()
	rs := &recordingSurface{sched: sched}
	p := Plan{Injections: []Injection{
		{Kind: DiskStall, At: time.Minute, Duration: 2 * time.Minute, Factor: 5},
		{Kind: MemLeak, At: 2 * time.Minute, Duration: 25 * time.Second,
			RateBytes: 64, Interval: 10 * time.Second, Release: true},
		{Kind: CompileStorm, At: 10 * time.Minute, Burst: 3, Interval: 90 * time.Second},
		{Kind: CrashRestart, At: 20 * time.Minute, Duration: 3 * time.Minute},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	st := Inject(sched, p, rs.surface())
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}

	if st.Injected != 4 {
		t.Errorf("Injected = %d, want 4", st.Injected)
	}
	if st.StallTime != 2*time.Minute {
		t.Errorf("StallTime = %v", st.StallTime)
	}
	// Ratchet steps at 2:00, 2:10, 2:20; the third is refused by the
	// recording surface's commit limit.
	if st.LeakedBytes != 128 || st.LeakFailures != 1 {
		t.Errorf("LeakedBytes = %d LeakFailures = %d", st.LeakedBytes, st.LeakFailures)
	}
	// Storm queries at 10:00, 11:30, 13:00; the recording surface rejects
	// everything after 12 minutes.
	if st.StormSubmitted != 3 || st.StormFailed != 1 {
		t.Errorf("StormSubmitted = %d StormFailed = %d", st.StormSubmitted, st.StormFailed)
	}
	if st.Crashes != 1 || st.DownTime != 3*time.Minute {
		t.Errorf("Crashes = %d DownTime = %v", st.Crashes, st.DownTime)
	}

	want := []string{
		"1m0s stall=5",
		"2m0s leak=64",
		"2m10s leak=64",
		"2m25s drop",
		"3m0s stall=1",
		"10m0s storm",
		"11m30s storm",
		"13m0s storm",
		"20m0s crash",
		"23m0s restart",
	}
	if got := fmt.Sprint(rs.events); got != fmt.Sprint(want) {
		t.Errorf("event log:\ngot:  %v\nwant: %v", rs.events, want)
	}
}

func TestInjectDefaults(t *testing.T) {
	// Interval 0 takes the default leak cadence; a storm with no spacing
	// submits the whole burst at the onset instant.
	sched := vtime.NewScheduler()
	rs := &recordingSurface{sched: sched, leakN: -100}
	p := Plan{Injections: []Injection{
		{Kind: MemLeak, At: time.Minute, Duration: defaultLeakInterval * 2, RateBytes: 8},
		{Kind: CompileStorm, At: time.Minute, Burst: 2},
	}}
	st := Inject(sched, p, rs.surface())
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if st.LeakedBytes != 24 { // steps at 1:00, 1:10, 1:20
		t.Errorf("LeakedBytes = %d, want 24", st.LeakedBytes)
	}
	if st.StormSubmitted != 2 || st.StormFailed != 0 {
		t.Errorf("storm = %d/%d", st.StormSubmitted, st.StormFailed)
	}
}

func TestValidateNodeTargets(t *testing.T) {
	cases := []struct {
		name string
		inj  []Injection
		ok   bool
	}{
		{"negative-node", []Injection{
			{Kind: DiskStall, At: 1, Duration: time.Minute, Factor: 4, Node: -1},
		}, false},
		{"same-kind-same-node-overlap", []Injection{
			{Kind: CrashRestart, At: 0, Duration: 2 * time.Minute, Node: 1},
			{Kind: CrashRestart, At: time.Minute, Duration: time.Minute, Node: 1},
		}, false},
		// The same fault overlapping on *different* nodes is a legitimate
		// correlated-failure schedule.
		{"same-kind-cross-node-overlap-ok", []Injection{
			{Kind: CrashRestart, At: 0, Duration: 2 * time.Minute, Node: 0},
			{Kind: CrashRestart, At: time.Minute, Duration: time.Minute, Node: 1},
		}, true},
	}
	for _, tc := range cases {
		p := Plan{Injections: tc.inj}
		if err := p.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestMaxNode(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.MaxNode() != 0 {
		t.Fatalf("nil plan MaxNode = %d", nilPlan.MaxNode())
	}
	p := &Plan{Injections: []Injection{
		{Kind: DiskStall, At: 1, Duration: time.Minute, Factor: 4},
		{Kind: CrashRestart, At: 1, Duration: time.Minute, Node: 2},
	}}
	if p.MaxNode() != 2 {
		t.Fatalf("MaxNode = %d, want 2", p.MaxNode())
	}
}

func TestPlanStringNodeTargets(t *testing.T) {
	// Untargeted injections render exactly as before; explicit targets
	// carry a node marker.
	p := Plan{Injections: []Injection{
		{Kind: DiskStall, At: time.Minute, Duration: time.Minute, Factor: 4},
		{Kind: CrashRestart, At: 5 * time.Minute, Duration: time.Minute, Node: 2},
	}}
	s := p.String()
	if strings.Contains(s, "node=0") {
		t.Errorf("untargeted injection renders a node marker:\n%s", s)
	}
	if !strings.Contains(s, "node=2") {
		t.Errorf("targeted injection missing node marker:\n%s", s)
	}
}

func TestInjectCluster(t *testing.T) {
	sched := vtime.NewScheduler()
	surfaces := []*recordingSurface{{sched: sched}, {sched: sched}}
	p := Plan{Injections: []Injection{
		{Kind: DiskStall, At: time.Minute, Duration: time.Minute, Factor: 5, Node: 1},
		{Kind: CrashRestart, At: 2 * time.Minute, Duration: time.Minute, Node: 0},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	st := InjectCluster(sched, p, []Surface{surfaces[0].surface(), surfaces[1].surface()})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if st.Injected != 2 || st.Crashes != 1 || st.StallTime != time.Minute {
		t.Errorf("stats = %+v", st)
	}
	want0 := []string{"2m0s crash", "3m0s restart"}
	want1 := []string{"1m0s stall=5", "2m0s stall=1"}
	if got := fmt.Sprint(surfaces[0].events); got != fmt.Sprint(want0) {
		t.Errorf("node 0 events:\ngot:  %v\nwant: %v", surfaces[0].events, want0)
	}
	if got := fmt.Sprint(surfaces[1].events); got != fmt.Sprint(want1) {
		t.Errorf("node 1 events:\ngot:  %v\nwant: %v", surfaces[1].events, want1)
	}
}
