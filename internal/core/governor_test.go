package core

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"compilegate/internal/broker"
	"compilegate/internal/gateway"
	"compilegate/internal/mem"
	"compilegate/internal/vtime"
)

func testOpts() Options {
	return Options{
		Enabled: true,
		Gateways: gateway.Config{Levels: []gateway.LevelConfig{
			{Name: "small", Threshold: 100, Slots: 4, Timeout: time.Second},
			{Name: "medium", Threshold: 1000, Slots: 2, Timeout: 2 * time.Second,
				Dynamic: true, TargetFraction: 0.5, MinThreshold: 200},
			{Name: "big", Threshold: 10000, Slots: 1, Timeout: 4 * time.Second,
				Dynamic: true, TargetFraction: 0.5, MinThreshold: 2000},
		}},
		DynamicThresholds: true,
		BestEffort:        true,
	}
}

func newGov(t *testing.T, opts Options, budget *mem.Budget) *Governor {
	t.Helper()
	g, err := NewGovernor(opts, budget.NewTracker("compile"))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAllocAccounting(t *testing.T) {
	budget := mem.NewBudget(1 << 20)
	g := newGov(t, testOpts(), budget)
	s := vtime.NewScheduler()
	s.Go("q", func(tk *vtime.Task) {
		c := g.Begin(tk, "q1")
		if err := c.Alloc(50); err != nil {
			t.Error(err)
		}
		if err := c.Alloc(30); err != nil {
			t.Error(err)
		}
		if c.Used() != 80 || g.Tracker().Used() != 80 {
			t.Errorf("used = %d/%d, want 80/80", c.Used(), g.Tracker().Used())
		}
		c.Free(20)
		if c.Used() != 60 {
			t.Errorf("used after Free = %d", c.Used())
		}
		c.Finish()
		if g.Tracker().Used() != 0 {
			t.Errorf("tracker leaked %d after Finish", g.Tracker().Used())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if g.Finished() != 1 || g.Active() != 0 {
		t.Fatalf("finished=%d active=%d", g.Finished(), g.Active())
	}
}

func TestDisabledGovernorStillAccounts(t *testing.T) {
	budget := mem.NewBudget(1000)
	g := newGov(t, Options{Enabled: false}, budget)
	s := vtime.NewScheduler()
	s.Go("q", func(tk *vtime.Task) {
		c := g.Begin(tk, "q")
		// Far past every gate threshold; must not block (no chain).
		if err := c.Alloc(900); err != nil {
			t.Error(err)
		}
		// But the budget still binds:
		if err := c.Alloc(200); !errors.Is(err, mem.ErrOutOfMemory) {
			t.Errorf("err = %v, want OOM", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if g.Chain() != nil {
		t.Fatal("disabled governor built a chain")
	}
	if g.Aborted() != 1 {
		t.Fatalf("aborted = %d, want 1 (OOM path)", g.Aborted())
	}
	if g.Tracker().Used() != 0 {
		t.Fatalf("failed compilation leaked %d bytes", g.Tracker().Used())
	}
}

func TestGateBlocksSecondBigCompilation(t *testing.T) {
	budget := mem.NewBudget(1 << 30)
	g := newGov(t, testOpts(), budget)
	s := vtime.NewScheduler()
	var secondDone time.Duration
	s.Go("big1", func(tk *vtime.Task) {
		c := g.Begin(tk, "big1")
		if err := c.Alloc(50000); err != nil {
			t.Error(err)
		}
		tk.Sleep(time.Second)
		c.Finish()
	})
	s.Go("big2", func(tk *vtime.Task) {
		tk.Sleep(time.Millisecond)
		c := g.Begin(tk, "big2")
		if err := c.Alloc(50000); err != nil {
			t.Error(err)
		}
		secondDone = tk.Now()
		if c.GateWait() == 0 {
			t.Error("big2 reports zero gate wait")
		}
		c.Finish()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if secondDone != time.Second {
		t.Fatalf("big2 admitted at %v, want 1s (after big1 released)", secondDone)
	}
}

func TestGateTimeoutAbortsCompilation(t *testing.T) {
	budget := mem.NewBudget(1 << 30)
	g := newGov(t, testOpts(), budget)
	s := vtime.NewScheduler()
	var gotErr error
	s.Go("hog", func(tk *vtime.Task) {
		c := g.Begin(tk, "hog")
		_ = c.Alloc(50000)
		tk.Sleep(time.Hour)
		c.Finish()
	})
	s.Go("victim", func(tk *vtime.Task) {
		tk.Sleep(time.Millisecond)
		c := g.Begin(tk, "victim")
		gotErr = c.Alloc(50000)
		// Victim's partial memory must be rolled back while the hog (still
		// compiling at this instant) keeps its 50000.
		if g.Tracker().Used() != 50000 {
			t.Errorf("tracker = %d right after timeout, want 50000", g.Tracker().Used())
		}
		if g.Aborted() != 1 {
			t.Errorf("aborted = %d, want 1", g.Aborted())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var te *gateway.ErrTimeout
	if !errors.As(gotErr, &te) {
		t.Fatalf("err = %v, want gateway timeout", gotErr)
	}
}

func TestBrokerDrivesDynamicThresholds(t *testing.T) {
	budget := mem.NewBudget(100000)
	g := newGov(t, testOpts(), budget)
	b := broker.New(broker.DefaultConfig(), budget)
	g.AttachBroker(b, 1, 0)

	// Create pressure: a second component hogging most of memory with a
	// rising trend.
	hog := budget.NewTracker("hog")
	hog.MustReserve(60000)
	b.Register("hog", 1, 0, hog.Used, nil)

	s := vtime.NewScheduler()
	s.Go("q", func(tk *vtime.Task) {
		c := g.Begin(tk, "q")
		_ = c.Alloc(150) // one small compilation
		for i := 1; i <= 8; i++ {
			_ = hog.Reserve(3000)
			b.Tick(tk.Now())
			tk.Sleep(time.Second)
		}
		// Broker assigned a compile target; dynamic medium threshold must
		// differ from the static 1000.
		if g.Chain().Target() == 0 {
			t.Error("broker target not installed on chain")
		}
		c.Finish()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBestEffortSignal(t *testing.T) {
	budget := mem.NewBudget(1 << 20)
	g := newGov(t, testOpts(), budget)
	s := vtime.NewScheduler()
	s.Go("q", func(tk *vtime.Task) {
		c := g.Begin(tk, "q")
		if c.ShouldYieldBestEffort() {
			t.Error("best-effort signaled with no exhaustion")
		}
		g.OnBrokerNotice(broker.Notification{Decision: broker.Shrink, Exhaustion: true})
		if !c.ShouldYieldBestEffort() {
			t.Error("best-effort not signaled under exhaustion")
		}
		if c.ShouldYieldBestEffort() {
			t.Error("best-effort signaled twice for one compilation")
		}
		c.Finish()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if g.BestEffortCount() != 1 {
		t.Fatalf("best-effort count = %d", g.BestEffortCount())
	}
}

func TestBestEffortDisabled(t *testing.T) {
	opts := testOpts()
	opts.BestEffort = false
	budget := mem.NewBudget(1 << 20)
	g := newGov(t, opts, budget)
	s := vtime.NewScheduler()
	s.Go("q", func(tk *vtime.Task) {
		c := g.Begin(tk, "q")
		g.OnBrokerNotice(broker.Notification{Exhaustion: true})
		if c.ShouldYieldBestEffort() {
			t.Error("best-effort fired while disabled")
		}
		c.Finish()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFinishIdempotentAndAbort(t *testing.T) {
	budget := mem.NewBudget(1 << 20)
	g := newGov(t, testOpts(), budget)
	s := vtime.NewScheduler()
	s.Go("q", func(tk *vtime.Task) {
		c := g.Begin(tk, "q")
		_ = c.Alloc(500)
		c.Finish()
		c.Finish()
		c.Abort() // after Finish: no effect
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if g.Finished() != 1 || g.Aborted() != 0 {
		t.Fatalf("finished=%d aborted=%d, want 1/0", g.Finished(), g.Aborted())
	}
	s2 := vtime.NewScheduler()
	s2.Go("q", func(tk *vtime.Task) {
		c := g.Begin(tk, "q2")
		_ = c.Alloc(500)
		c.Abort()
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if g.Aborted() != 1 {
		t.Fatalf("aborted = %d, want 1", g.Aborted())
	}
	if g.Tracker().Used() != 0 {
		t.Fatal("abort leaked memory")
	}
}

func TestDefaultOptions(t *testing.T) {
	opts := DefaultOptions(8, 4*mem.GiB)
	budget := mem.NewBudget(4 * mem.GiB)
	g := newGov(t, opts, budget)
	if !g.Enabled() || g.Chain() == nil || g.Chain().Levels() != 3 {
		t.Fatal("default options did not build the 3-monitor chain")
	}
}

// Property: any schedule of compilations with random sizes and outcomes
// (finish/abort) leaves zero tracker memory, zero active compilations, and
// all gates free; and started == finished + aborted.
func TestQuickGovernorLifecycle(t *testing.T) {
	type job struct {
		Size  uint32
		Hold  uint8
		Abort bool
	}
	f := func(jobs []job) bool {
		if len(jobs) > 20 {
			jobs = jobs[:20]
		}
		budget := mem.NewBudget(1 << 40)
		opts := testOpts()
		for i := range opts.Gateways.Levels {
			opts.Gateways.Levels[i].Timeout = time.Hour * time.Duration(i+1)
		}
		g, err := NewGovernor(opts, budget.NewTracker("compile"))
		if err != nil {
			return false
		}
		s := vtime.NewScheduler()
		for _, j := range jobs {
			j := j
			s.Go("q", func(tk *vtime.Task) {
				c := g.Begin(tk, "q")
				size := int64(j.Size % 200000)
				if err := c.Alloc(size); err != nil {
					return // fail() already counted the abort
				}
				tk.Sleep(time.Duration(j.Hold) * time.Millisecond)
				if j.Abort {
					c.Abort()
				} else {
					c.Finish()
				}
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		if g.Tracker().Used() != 0 || g.Active() != 0 {
			return false
		}
		if g.Started() != g.Finished()+g.Aborted() {
			return false
		}
		for _, l := range g.Chain().Info() {
			if l.Holders != 0 || l.Waiting != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
