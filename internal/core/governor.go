// Package core implements the paper's primary contribution: the
// compilation Governor, which binds the Memory Broker (§3) to the
// gateway chain of memory monitors (§4) and exposes the per-compilation
// protocol the optimizer uses.
//
// Every query compilation opens a Compilation handle. All optimizer memory
// goes through Compilation.Alloc, which (a) charges the compile-memory
// tracker against the machine budget and (b) reports the new total to the
// gateway ticket, blocking the compiling task at a monitor when its
// category's concurrency is exhausted. The governor listens to broker
// notifications to adjust dynamic gate thresholds and to raise the
// best-effort-plan signal when memory exhaustion is predicted (§4.1).
package core

import (
	"fmt"
	"time"

	"compilegate/internal/broker"
	"compilegate/internal/gateway"
	"compilegate/internal/mem"
	"compilegate/internal/vtime"
)

// Options configures a Governor.
type Options struct {
	// Enabled turns compilation throttling on. When false the governor
	// only does memory accounting — the paper's "non-throttled" baseline.
	Enabled bool
	// Gateways configures the monitor chain; zero value uses
	// gateway.DefaultConfig for the machine.
	Gateways gateway.Config
	// DynamicThresholds enables §4.1's broker-target-driven thresholds.
	DynamicThresholds bool
	// BestEffort enables §4.1's best-plan-so-far on predicted exhaustion.
	BestEffort bool
	// Brownout configures sustained-pressure degradation (requires
	// BestEffort; the zero value leaves the mode off).
	Brownout BrownoutConfig
}

// BrownoutConfig is the governor's sustained-pressure brown-out mode:
// after EnterTicks consecutive broker ticks under pressure the governor
// escalates to best-effort-only admission — every compilation yields the
// best complete plan it holds at its next opportunity, so compile
// footprints stop growing while the broker drains the backlog — and it
// disarms only after ExitTicks consecutive clean ticks. The asymmetric
// streak requirement is the hysteresis: a single quiet tick inside a
// fault does not flap the server back into full compilation.
type BrownoutConfig struct {
	// Enabled turns the mode on.
	Enabled bool
	// EnterTicks arms brown-out after this many consecutive pressure
	// ticks (0 defaults to 3).
	EnterTicks int
	// ExitTicks disarms it after this many consecutive clean ticks
	// (0 defaults to 6).
	ExitTicks int
}

// DefaultOptions returns the full production feature set for a machine
// with the given CPU count and physical memory.
func DefaultOptions(cpus int, totalMem int64) Options {
	return Options{
		Enabled:           true,
		Gateways:          gateway.DefaultConfig(cpus, totalMem),
		DynamicThresholds: true,
		BestEffort:        true,
	}
}

// Governor coordinates all concurrent compilations.
type Governor struct {
	opts    Options
	tracker *mem.Tracker
	chain   *gateway.Chain

	active     int
	exhaustion bool
	started    uint64
	finished   uint64
	aborted    uint64
	bestEffort uint64 // compilations cut short by the exhaustion signal
	peakActive int

	// Brown-out state machine (see BrownoutConfig).
	brownout        bool
	pressureStreak  int
	cleanStreak     int
	brownoutEntries uint64
	brownoutTicks   uint64
}

// NewGovernor creates a governor charging compile memory to tracker.
func NewGovernor(opts Options, tracker *mem.Tracker) (*Governor, error) {
	g := &Governor{opts: opts, tracker: tracker}
	if opts.Enabled {
		chain, err := gateway.NewChain(opts.Gateways)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		g.chain = chain
	}
	return g, nil
}

// AttachBroker registers the governor as the "compile" component of b.
// weight and min follow broker.Register semantics.
func (g *Governor) AttachBroker(b *broker.Broker, weight float64, min int64) {
	b.Register("compile", weight, min, g.tracker.Used, g.OnBrokerNotice)
}

// OnBrokerNotice applies a broker notification: it installs the
// compile-memory target on the gateway chain (when dynamic thresholds are
// enabled) and latches the exhaustion signal for best-effort plans.
// Without machine-wide pressure the static thresholds are restored — the
// broker "takes no action" when memory is plentiful.
func (g *Governor) OnBrokerNotice(n broker.Notification) {
	if g.chain != nil && g.opts.DynamicThresholds {
		if n.Pressure {
			g.chain.SetTarget(n.Target)
		} else {
			g.chain.SetTarget(0)
		}
	}
	g.exhaustion = n.Exhaustion
	if bo := g.opts.Brownout; bo.Enabled {
		g.brownoutTick(n.Pressure || n.Exhaustion)
	}
}

// brownoutTick advances the brown-out state machine by one broker tick.
func (g *Governor) brownoutTick(pressured bool) {
	if pressured {
		g.pressureStreak++
		g.cleanStreak = 0
	} else {
		g.cleanStreak++
		g.pressureStreak = 0
	}
	enter, exit := g.opts.Brownout.EnterTicks, g.opts.Brownout.ExitTicks
	if enter <= 0 {
		enter = 3
	}
	if exit <= 0 {
		exit = 6
	}
	if g.brownout && g.cleanStreak >= exit {
		g.brownout = false
	}
	if !g.brownout && g.pressureStreak >= enter {
		g.brownout = true
		g.brownoutEntries++
	}
	if g.brownout {
		g.brownoutTicks++
	}
}

// BrownoutActive reports whether the governor is in brown-out.
func (g *Governor) BrownoutActive() bool { return g.brownout }

// Exhaustion reports whether the broker's last notification predicted
// memory exhaustion — the signal behind best-effort plans, exposed for
// node health scoring.
func (g *Governor) Exhaustion() bool { return g.exhaustion }

// BrownoutEntries returns how many times brown-out was entered.
func (g *Governor) BrownoutEntries() uint64 { return g.brownoutEntries }

// BrownoutTicks returns how many broker ticks were spent in brown-out.
func (g *Governor) BrownoutTicks() uint64 { return g.brownoutTicks }

// Enabled reports whether throttling is active.
func (g *Governor) Enabled() bool { return g.opts.Enabled }

// Chain exposes the gateway chain (nil when throttling is disabled).
func (g *Governor) Chain() *gateway.Chain { return g.chain }

// Tracker returns the compile-memory tracker.
func (g *Governor) Tracker() *mem.Tracker { return g.tracker }

// Active returns the number of compilations currently open.
func (g *Governor) Active() int { return g.active }

// PeakActive returns the maximum concurrent compilations observed.
func (g *Governor) PeakActive() int { return g.peakActive }

// Started returns the number of compilations begun.
func (g *Governor) Started() uint64 { return g.started }

// Finished returns the number of compilations completed.
func (g *Governor) Finished() uint64 { return g.finished }

// Aborted returns the number of compilations aborted (timeout or OOM).
func (g *Governor) Aborted() uint64 { return g.aborted }

// BestEffortCount returns how many compilations were cut short by the
// exhaustion signal, returning best-effort plans.
func (g *Governor) BestEffortCount() uint64 { return g.bestEffort }

// Compilation is one query compilation's session with the governor.
type Compilation struct {
	g      *Governor
	task   *vtime.Task
	name   string
	ticket *gateway.Ticket
	used   int64
	peak   int64
	opened time.Duration
	closed bool
	cut    bool // best-effort signal consumed
}

// Begin opens a compilation handle for the given task. name is used in
// diagnostics.
func (g *Governor) Begin(task *vtime.Task, name string) *Compilation {
	c := &Compilation{g: g, task: task, name: name, opened: task.Now()}
	if g.chain != nil {
		c.ticket = g.chain.NewTicket()
	}
	g.active++
	if g.active > g.peakActive {
		g.peakActive = g.active
	}
	g.started++
	return c
}

// Used returns the compilation's current simulated memory.
func (c *Compilation) Used() int64 { return c.used }

// Peak returns the compilation's peak simulated memory.
func (c *Compilation) Peak() int64 { return c.peak }

// GateWait returns the time this compilation has spent blocked at gates.
func (c *Compilation) GateWait() time.Duration {
	if c.ticket == nil {
		return 0
	}
	return c.ticket.WaitTime()
}

// Alloc charges n bytes of compilation memory. The call may block the
// compiling task at a memory monitor. It returns mem.ErrOutOfMemory (via
// the budget) or *gateway.ErrTimeout; either way the compilation has been
// rolled back and must abort (or return a best-effort plan it already
// holds).
func (c *Compilation) Alloc(n int64) error {
	if c.closed {
		panic("core: Alloc on closed compilation " + c.name)
	}
	// Gate first: the monitor must admit the growth before the memory is
	// actually taken, so a blocked compilation holds its current memory
	// but does not keep growing — exactly the paper's "restrict future
	// memory allocations" semantics.
	if c.ticket != nil {
		if err := c.ticket.Update(c.task, c.used+n); err != nil {
			c.fail()
			return err
		}
	}
	if err := c.g.tracker.Reserve(n); err != nil {
		c.fail()
		return err
	}
	c.used += n
	if c.used > c.peak {
		c.peak = c.used
	}
	return nil
}

// Free returns n bytes mid-compilation (e.g. a discarded subtree).
func (c *Compilation) Free(n int64) {
	if n > c.used {
		panic("core: Free exceeds compilation usage")
	}
	c.used -= n
	c.g.tracker.Release(n)
}

// ShouldYieldBestEffort reports whether the compilation should stop
// exploring and return the best complete plan found so far. It returns
// true at most once per compilation, when best-effort is enabled and the
// broker predicts memory exhaustion.
func (c *Compilation) ShouldYieldBestEffort() bool {
	if !c.g.opts.BestEffort || c.cut || c.closed {
		return false
	}
	if c.g.exhaustion || c.g.brownout {
		c.cut = true
		c.g.bestEffort++
		return true
	}
	return false
}

// fail rolls back a compilation whose allocation was rejected.
func (c *Compilation) fail() {
	if c.closed {
		return
	}
	c.release()
	c.g.aborted++
}

// Finish completes the compilation successfully, releasing all memory and
// gates. Idempotent with Abort/fail: only the first close counts.
func (c *Compilation) Finish() {
	if c.closed {
		return
	}
	c.release()
	c.g.finished++
}

// Abort terminates the compilation unsuccessfully (e.g. the client gave
// up), releasing all memory and gates.
func (c *Compilation) Abort() {
	if c.closed {
		return
	}
	c.release()
	c.g.aborted++
}

func (c *Compilation) release() {
	c.closed = true
	if c.used > 0 {
		c.g.tracker.Release(c.used)
		c.used = 0
	}
	if c.ticket != nil {
		c.ticket.Close()
	}
	c.g.active--
}

// Report summarizes governor counters.
func (g *Governor) Report() string {
	s := fmt.Sprintf("governor: enabled=%v started=%d finished=%d aborted=%d best-effort=%d peak-active=%d compile-mem=%s (peak %s)\n",
		g.opts.Enabled, g.started, g.finished, g.aborted, g.bestEffort, g.peakActive,
		mem.FormatBytes(g.tracker.Used()), mem.FormatBytes(g.tracker.Peak()))
	if g.opts.Brownout.Enabled {
		s += fmt.Sprintf("brownout: active=%v entries=%d ticks=%d\n",
			g.brownout, g.brownoutEntries, g.brownoutTicks)
	}
	if g.chain != nil {
		s += g.chain.String()
	}
	return s
}
