package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartNoPaths pins the no-op contract every command relies on when
// the flags are unset: Start("", "") must succeed and return a stop
// function that is safe to call.
func TestStartNoPaths(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

// TestStartWritesProfiles is the flag-wiring smoke test: with both
// paths set, Start begins a CPU profile and stop writes both a CPU and
// a heap profile. The files must exist and be non-empty (pprof's gzip
// framing guarantees non-trivial output even for an idle interval).
func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s not written: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
}

// TestStartMemOnly covers the memPath-only wiring: no CPU profile is
// started, and stop writes the heap profile.
func TestStartMemOnly(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.prof")
	stop, err := Start("", mem)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	fi, err := os.Stat(mem)
	if err != nil {
		t.Fatalf("mem profile not written: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("mem profile is empty")
	}
}

// TestStartBadCPUPath pins the error path: an uncreatable CPU profile
// path must surface as an error, not a silent no-op.
func TestStartBadCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "missing-dir", "cpu.prof"), ""); err == nil {
		t.Fatal("Start with uncreatable cpu path succeeded")
	}
}
