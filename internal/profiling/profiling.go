// Package profiling wires the -cpuprofile / -memprofile flags of the
// command-line tools to runtime/pprof, so every binary captures profiles
// the same way (see DESIGN.md, "Profiling a run").
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty and returns the
// stop function the caller defers: it finishes the CPU profile and, when
// memPath is non-empty, writes an allocation profile after the workload
// ran. Either path may be empty; the returned function is always safe to
// call once.
func Start(cpuPath, memPath string) (func(), error) {
	if cpuPath == "" {
		return func() { writeMemProfile(memPath) }, nil
	}
	f, err := os.Create(cpuPath)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
		writeMemProfile(memPath)
	}, nil
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC() // settle allocations so the profile reflects live state
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
	}
}
