package harness

import (
	"sync"

	"compilegate/internal/catalog"
	"compilegate/internal/engine"
	"compilegate/internal/stats"
	"compilegate/internal/storage"
	"compilegate/internal/workload"
)

// Snapshot is the immutable state of one scenario *shape* — everything a
// run needs that does not depend on the engine config, client count,
// seed, or measurement window: the resolved catalog, the statistics
// estimator, the storage layout, and the workload's pre-fingerprinted
// recurring statement set. A snapshot is built once per (workload,
// scale) and shared read-only by every run of that shape, including
// concurrent sweep runs: only mutable engine state (budget, pools,
// caches, metrics, schedulers) is per-run. This is what lets a
// calibration grid of dozens of knob points amortize all setup cost into
// a single catalog-and-statistics build.
type Snapshot struct {
	Workload workload.Spec
	Scale    float64

	Catalog    *catalog.Catalog
	Estimator  *stats.Estimator
	Layout     *storage.Layout
	Statements engine.StaticStatements
}

// NewSnapshot builds a fresh, uncached snapshot for the shape. Use
// SnapshotFor to share builds process-wide; this constructor exists for
// tests that need an independent copy (the sweep-invariance test proves
// shared and fresh snapshots produce byte-identical results).
func NewSnapshot(spec workload.Spec, scale float64) *Snapshot {
	cat := spec.NewCatalog(scale, workload.DefaultExtentBytes)
	return &Snapshot{
		Workload:   spec,
		Scale:      scale,
		Catalog:    cat,
		Estimator:  stats.NewEstimator(cat),
		Layout:     storage.NewLayout(cat),
		Statements: engine.PrepareStatements(spec.StaticStatements()),
	}
}

// prebuilt converts the snapshot to the engine's shared-component form.
func (s *Snapshot) prebuilt() engine.Prebuilt {
	return engine.Prebuilt{
		Estimator:  s.Estimator,
		Layout:     s.Layout,
		Statements: s.Statements,
	}
}

type snapshotKey struct {
	spec  string
	scale float64
}

var (
	snapshotMu    sync.Mutex
	snapshotCache = map[snapshotKey]*Snapshot{}
)

// SnapshotFor returns the process-wide shared snapshot for the shape,
// building it on first use. Snapshots are immutable after construction,
// so handing the same one to concurrent runs is safe and keeps results
// byte-identical to runs with private copies.
func SnapshotFor(spec workload.Spec, scale float64) *Snapshot {
	key := snapshotKey{spec: spec.String(), scale: scale}
	snapshotMu.Lock()
	snap, ok := snapshotCache[key]
	if !ok {
		snap = NewSnapshot(spec, scale)
		snapshotCache[key] = snap
	}
	snapshotMu.Unlock()
	return snap
}
