// The paper-claim tests live in an external test package so they can
// replicate through internal/scenario (which imports harness): every
// claim is asserted as a band over a multi-seed population with a
// bootstrap confidence interval, never a single draw.
package harness_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"compilegate/internal/catalog"
	"compilegate/internal/optimizer"
	"compilegate/internal/scenario"
	"compilegate/internal/sqlparser"
	"compilegate/internal/stats"
	"compilegate/internal/workload"
)

// defaultsScenario mirrors harness.DefaultOptions(clients) as a
// Scenario (no engine delta, so the harness defaults apply), with a
// compressed window for test cost.
func defaultsScenario(name string, clients int, horizon, warmup time.Duration) scenario.Scenario {
	return scenario.Scenario{
		Name:        name,
		Description: "harness defaults at " + name,
		Clients:     clients,
		Scale:       0.04,
		Workload:    workload.SpecSales,
		Horizon:     horizon,
		Warmup:      warmup,
		Throttled:   true,
		Seed:        1,
	}
}

// replicate runs an unpaired replication over the claim seeds.
func replicate(t *testing.T, s scenario.Scenario) *scenario.ReplicationReport {
	t.Helper()
	rep, err := scenario.Replication{Scenario: s, Seeds: scenario.ClaimSeeds()}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCSVEnv(scenario.MetricCompleted, scenario.MetricErrors,
		scenario.MetricCompileP50, scenario.MetricExecP50, scenario.MetricGatewayTimeouts); err != nil {
		t.Logf("replication CSV artifact: %v", err)
	}
	return rep
}

// TestClaimCompileMemoryRatio pins §5.1: SALES compilations use one to
// two orders of magnitude more memory than TPC-H queries. The ratio is
// replicated over workload-generator seeds — each seed draws a fresh
// 20-query sample from both generators.
func TestClaimCompileMemoryRatio(t *testing.T) {
	salesCat := catalog.NewSales(catalog.SalesConfig{Scale: 0.04, ExtentBytes: 8 << 20})
	tpchCat := catalog.NewTPCHLike(0.0004, 8<<20)
	salesOpt := optimizer.New(stats.NewEstimator(salesCat), optimizer.DefaultConfig())
	tpchOpt := optimizer.New(stats.NewEstimator(tpchCat), optimizer.DefaultConfig())

	compileBytes := func(opt *optimizer.Optimizer, sql string) int64 {
		q, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		p, err := opt.Optimize(q, optimizer.Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		return p.CompileBytes
	}

	var ratios []float64
	for _, seed := range scenario.ClaimSeeds() {
		rng := rand.New(rand.NewSource(seed))
		salesGen, tpchGen := workload.NewSales(), workload.NewTPCH()
		var salesBytes, tpchBytes int64
		for i := 0; i < 20; i++ {
			salesBytes += compileBytes(salesOpt, salesGen.Next(rng))
			tpchBytes += compileBytes(tpchOpt, tpchGen.Next(rng))
		}
		ratios = append(ratios, float64(salesBytes)/float64(tpchBytes))
	}
	scenario.ClaimBand{
		Claim:  "§5.1: SALES/TPC-H compile memory ratio is 1-2 orders of magnitude",
		Metric: scenario.Metric{Name: "mem-ratio"}, Lo: 10, Hi: 300,
	}.AssertSamples(t, ratios)
}

// TestClaimLatencyProfile pins §5.2: compiles of 10-90 s, executions of
// 30 s - 10 min (medians, with slack for the simulation's histogram
// bucketing), across the seed population at the harness defaults.
func TestClaimLatencyProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	rep := replicate(t, defaultsScenario("latency-profile", 30, 90*time.Minute, 15*time.Minute))
	scenario.ClaimBand{
		Claim:  "§5.2: compile p50 within the 10-90 s band (bucketed)",
		Metric: scenario.MetricCompileP50, Lo: 5, Hi: 180,
	}.Assert(t, rep)
	scenario.ClaimBand{
		Claim:  "§5.2: exec p50 within the 30 s - 10 min band (bucketed)",
		Metric: scenario.MetricExecP50, Lo: 20, Hi: 900,
	}.Assert(t, rep)
}

// TestClaimErrorsRiseWithOverload pins the §5.2 observation that pushing
// past the saturation point causes resource failures: within every
// seed, 40 clients produce more errors than 30.
func TestClaimErrorsRiseWithOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	at30 := replicate(t, defaultsScenario("overload-30", 30, 90*time.Minute, 15*time.Minute))
	at40 := replicate(t, defaultsScenario("overload-40", 40, 90*time.Minute, 15*time.Minute))
	e30 := at30.Samples(scenario.MetricErrors)
	e40 := at40.Samples(scenario.MetricErrors)
	margins := make([]float64, len(e30))
	for i := range margins {
		margins[i] = e40[i] - e30[i]
	}
	scenario.ClaimBand{
		Claim:  "§5.2: errors rise when pushed past saturation (40 vs 30 clients)",
		Metric: scenario.Metric{Name: "overload-err-margin"}, Lo: 1, Hi: math.Inf(1),
	}.AssertSamples(t, margins)
}

// TestClaimSmallQueryBypass pins the diagnostic-query property: a mixed
// workload's point queries never block at the gates — zero gateway
// timeouts on every seed, while work still completes.
func TestClaimSmallQueryBypass(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	s := defaultsScenario("small-query-bypass", 16, 40*time.Minute, 5*time.Minute)
	s.Workload = workload.SpecMix
	rep := replicate(t, s)
	scenario.ClaimBand{
		Claim:  "bypass: a mixed workload never times out at the gates",
		Metric: scenario.MetricGatewayTimeouts, Lo: 0, Hi: 0,
	}.Assert(t, rep)
	scenario.ClaimBand{
		Claim:  "bypass: the mixed workload still completes work",
		Metric: scenario.MetricCompleted, Lo: 1, Hi: math.Inf(1),
	}.Assert(t, rep)
}
