package harness

import (
	"math/rand"
	"testing"
	"time"

	"compilegate/internal/catalog"
	"compilegate/internal/optimizer"
	"compilegate/internal/sqlparser"
	"compilegate/internal/stats"
	"compilegate/internal/workload"
)

// These tests pin the paper claims the reproduction demonstrably matches,
// so regressions in calibration are caught by `go test` and not only by
// inspecting benchmark output.

// TestClaimCompileMemoryRatio pins §5.1: SALES compilations use one to
// two orders of magnitude more memory than TPC-H queries.
func TestClaimCompileMemoryRatio(t *testing.T) {
	salesCat := catalog.NewSales(catalog.SalesConfig{Scale: 0.04, ExtentBytes: 8 << 20})
	tpchCat := catalog.NewTPCHLike(0.0004, 8<<20)
	salesOpt := optimizer.New(stats.NewEstimator(salesCat), optimizer.DefaultConfig())
	tpchOpt := optimizer.New(stats.NewEstimator(tpchCat), optimizer.DefaultConfig())
	rng := rand.New(rand.NewSource(7))
	salesGen, tpchGen := workload.NewSales(), workload.NewTPCH()
	var salesBytes, tpchBytes int64
	for i := 0; i < 20; i++ {
		q, err := sqlparser.Parse(salesGen.Next(rng))
		if err != nil {
			t.Fatal(err)
		}
		p, err := salesOpt.Optimize(q, optimizer.Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		salesBytes += p.CompileBytes
		q2, err := sqlparser.Parse(tpchGen.Next(rng))
		if err != nil {
			t.Fatal(err)
		}
		p2, err := tpchOpt.Optimize(q2, optimizer.Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		tpchBytes += p2.CompileBytes
	}
	ratio := float64(salesBytes) / float64(tpchBytes)
	if ratio < 10 || ratio > 300 {
		t.Fatalf("SALES/TPC-H compile memory ratio = %.1f, want 1-2 orders of magnitude", ratio)
	}
}

// TestClaimLatencyProfile pins §5.2: compiles of 10-90 s, executions of
// 30 s - 10 min (medians, with slack for the simulation's bucketing).
func TestClaimLatencyProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	o := DefaultOptions(30)
	o.Horizon = 90 * time.Minute
	o.Warmup = 15 * time.Minute
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.CompileP50 < 5*time.Second || r.CompileP50 > 3*time.Minute {
		t.Fatalf("compile p50 = %v, want within the paper's 10-90 s band", r.CompileP50)
	}
	if r.ExecP50 < 20*time.Second || r.ExecP50 > 15*time.Minute {
		t.Fatalf("exec p50 = %v, want within the paper's 30 s - 10 min band", r.ExecP50)
	}
}

// TestClaimErrorsRiseWithOverload pins the §5.2 observation that pushing
// past the saturation point causes resource failures.
func TestClaimErrorsRiseWithOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	run := func(clients int) int64 {
		o := DefaultOptions(clients)
		o.Horizon = 90 * time.Minute
		o.Warmup = 15 * time.Minute
		r, err := Run(o)
		if err != nil {
			t.Fatal(err)
		}
		return r.Errors
	}
	at30, at40 := run(30), run(40)
	if at40 <= at30 {
		t.Fatalf("errors at 40 clients (%d) not above 30 clients (%d)", at40, at30)
	}
}

// TestClaimSmallQueryBypass pins the diagnostic-query property: a mixed
// workload's point queries never block at the gates.
func TestClaimSmallQueryBypass(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	o := DefaultOptions(16)
	o.Workload = "mix"
	o.Horizon = 40 * time.Minute
	o.Warmup = 5 * time.Minute
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Fatal("mixed workload completed nothing")
	}
	if r.GatewayTimeouts != 0 {
		t.Fatalf("gateway timeouts = %d in a mixed workload with bypass", r.GatewayTimeouts)
	}
}
