package harness

import (
	"fmt"
	"testing"
	"time"

	"compilegate/internal/engine"
	"compilegate/internal/mem"
	"compilegate/internal/optimizer"
)

// TestCalibrateGrid sweeps a few engine knobs and prints the
// throttled-vs-baseline split for each — a quick harness-level probe.
// The real calibration subsystem is internal/scenario's Calibration +
// cmd/calibrate, which sweeps the pressure-model grid with fidelity
// scoring against Figures 3-5; this test predates it and stays as a
// cheap diagnostic of the default (uncalibrated) machine.
func TestCalibrateGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration grid skipped in -short")
	}
	type knob struct {
		name      string
		taskWait  time.Duration
		effort    float64
		maxTasks  int
		vasMiB    int64
		grantFrac float64
		clients   int
		ramMiB    int64
	}
	grid := []knob{
		{"T3g-s1", 45 * time.Millisecond, 1.5, 6000, 0, 0.45, 30, 3072},
		{"T3g-s2", 45 * time.Millisecond, 1.5, 6000, 0, 0.45, 30, 3072},
		{"T2.5g", 45 * time.Millisecond, 1.5, 6000, 0, 0.45, 30, 2560},
		{"T2g", 45 * time.Millisecond, 1.5, 6000, 0, 0.45, 30, 2048},
	}
	for gi, k := range grid {
		ecfg := engine.DefaultConfig()
		ecfg.CompileTaskWait = k.taskWait
		ecfg.VASBytes = k.vasMiB * mem.MiB
		if k.vasMiB == 0 {
			ecfg.VASBytes = 0
		}
		if k.ramMiB > 0 {
			ecfg.MemoryBytes = k.ramMiB * mem.MiB
		}
		ecfg.ExecGrantLimitFrac = k.grantFrac
		ocfg := optimizer.DefaultConfig()
		ocfg.EffortPerCost = k.effort
		ocfg.MaxTasks = k.maxTasks
		ecfg.Optimizer = ocfg

		run := func(throttled bool) *Result {
			o := DefaultOptions(k.clients)
			o.Horizon = 3 * time.Hour
			o.Warmup = 45 * time.Minute
			o.Throttled = throttled
			o.Seed = int64(gi%3) + 1
			o.Engine = &ecfg
			r, err := Run(o)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		th, ba := run(true), run(false)
		ratio := 0.0
		if ba.Completed > 0 {
			ratio = float64(th.Completed)/float64(ba.Completed) - 1
		}
		fmt.Printf("%s vas=%d grant=%.2f cl=%d | th=%d (err %v, conc %.0f, cmem %dMB, exec %dMB) ba=%d (err %v, conc %.0f, cmem %dMB, exec %dMB) => %+.0f%%\n",
			k.name, k.vasMiB, k.grantFrac, k.clients,
			th.Completed, th.ErrorsByKind, th.AvgActiveCompiles, th.AvgCompileBytes>>20, th.AvgExecBytes>>20,
			ba.Completed, ba.ErrorsByKind, ba.AvgActiveCompiles, ba.AvgCompileBytes>>20, ba.AvgExecBytes>>20,
			ratio*100)
	}
}
