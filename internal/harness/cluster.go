package harness

import (
	"fmt"
	"math/rand"
	"strings"

	"compilegate/internal/cluster"
	"compilegate/internal/engine"
	"compilegate/internal/fault"
	"compilegate/internal/metrics"
	"compilegate/internal/vtime"
	"compilegate/internal/workload"
)

// runCluster executes a multi-node configuration: o.Nodes independent
// engine instances built in fixed order on one scheduler, sharing one
// immutable snapshot, fronted by the routing policy in o.Router. The
// client population submits through the router; the fault plane drives
// per-node surfaces. Determinism matches the single-server path: node
// order is fixed at construction, every router decision is a pure
// function of the statement text and per-node counters, and all tasks
// live on the run's single event loop.
func runCluster(sched *vtime.Scheduler, o Options, ecfg engine.Config, snap *Snapshot, lcfg workload.LoadConfig) (*Result, error) {
	nodes := make([]*engine.Server, o.Nodes)
	routed := make([]cluster.Node, o.Nodes)
	for i := range nodes {
		srv, err := engine.NewShared(ecfg, snap.Catalog, snap.prebuilt(), sched)
		if err != nil {
			return nil, fmt.Errorf("harness: node %d: %w", i, err)
		}
		nodes[i] = srv
		routed[i] = srv
	}
	rcfg := cluster.Config{Policy: o.Router, FailoverHops: o.FailoverHops}
	if o.Health != nil {
		rcfg.Health = *o.Health
	}
	if o.Breaker != nil {
		rcfg.Breaker = *o.Breaker
	}
	router, err := cluster.NewRouter(rcfg, routed)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}

	gen := o.Workload.Generator()
	closeAll := func() {
		for _, srv := range nodes {
			srv.Close()
		}
	}
	loadStats := workload.Run(sched, router, gen, lcfg, closeAll)

	// As in the single-server path, fault tasks spawn after the client
	// population so the event schedule is a pure function of the options.
	injecting := o.Fault != nil && !o.Fault.Empty()
	var faultStats *fault.Stats
	if injecting {
		heavy := heavyFor(gen)
		stormRNG := rand.New(rand.NewSource(o.Fault.Seed))
		surfaces := make([]fault.Surface, len(nodes))
		for i, srv := range nodes {
			surfaces[i] = surfaceFor(srv, heavy, stormRNG)
		}
		faultStats = fault.InjectCluster(sched, *o.Fault, surfaces)
	}

	if err := sched.Run(); err != nil {
		return nil, fmt.Errorf("harness: simulation error: %w", err)
	}
	for i, srv := range nodes {
		if err := srv.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("harness: node %d: post-run invariant violation: %w", i, err)
		}
	}

	res := aggregateCluster(o, nodes, router, loadStats)
	res.SimEvents = sched.Events()
	if faultStats != nil {
		res.Fault = faultStats
		series := make([][]metrics.Point, len(nodes))
		for i, srv := range nodes {
			series[i] = srv.Recorder().CompletionSeries(0, o.Horizon)
		}
		measureRecovery(res, metrics.SumSeries(series...), nodes[0].Recorder().SliceDur(), o)
	}
	return res, nil
}

// aggregateCluster folds per-node measurements into one cluster-level
// Result plus the per-node breakdown. Counters sum; rates pool
// (Σhits / Σaccesses); latency quantiles come from merged histograms;
// the overcommit ratio averages across nodes (each node is a whole
// machine).
func aggregateCluster(o Options, nodes []*engine.Server, router *cluster.Router, loadStats *workload.LoadStats) *Result {
	res := &Result{
		Options:           o,
		ErrorsByKind:      make(map[string]int64),
		Load:              *loadStats,
		NodeResults:       make([]NodeResult, len(nodes)),
		Rerouted:          router.Rerouted(),
		Resubmitted:       router.Resubmitted(),
		RouterAllExcluded: router.AllExcluded(),
	}

	var (
		windowSeries                  [][]metrics.Point
		compileHists, execHists       []*metrics.Histogram
		poolHits, poolAccess          uint64
		cacheHits, cacheMisses        uint64
		memSum, memWeight, overcommit int64
	)
	for i, srv := range nodes {
		rec := srv.Recorder()
		nr := NodeResult{
			Node:             i,
			Routed:           router.Routed(i),
			Completed:        rec.CompletionsIn(o.Warmup, o.Horizon),
			Errors:           rec.ErrorsIn(o.Warmup, o.Horizon),
			PlanCacheHits:    srv.PlanCache().Hits(),
			PlanCacheMisses:  srv.PlanCache().Misses(),
			PlanCacheHitRate: srv.PlanCache().HitRate(),
			BestEffortPlans:  srv.Governor().BestEffortCount(),
			Crashes:          srv.Crashes(),
			BrownoutEntries:  srv.Governor().BrownoutEntries(),
			BrownoutTicks:    srv.Governor().BrownoutTicks(),
			BreakerTrips:     router.BreakerTrips(i),
		}
		if chain := srv.Governor().Chain(); chain != nil {
			nr.GatewayTimeouts = chain.Timeouts()
		}
		if st, ok := router.BreakerState(i); ok {
			nr.BreakerState = st.String()
			nr.BreakerTransitions = router.BreakerTransitions(i)
		}
		res.NodeResults[i] = nr

		res.Completed += nr.Completed
		res.Errors += nr.Errors
		for kind, n := range rec.Errors() {
			res.ErrorsByKind[kind] += n
		}
		res.BestEffortPlans += nr.BestEffortPlans
		res.GatewayTimeouts += nr.GatewayTimeouts
		res.BrownoutEntries += nr.BrownoutEntries
		res.BrownoutTicks += nr.BrownoutTicks
		windowSeries = append(windowSeries, rec.CompletionSeries(o.Warmup, o.Horizon))
		compileHists = append(compileHists, srv.CompileTimes())
		execHists = append(execHists, srv.ExecTimes())

		mean, max := srv.CompileMemProfile()
		if w := srv.CompileTimes().Count(); w > 0 {
			memSum += mean * w
			memWeight += w
		}
		if max > res.CompileMemMax {
			res.CompileMemMax = max
		}
		poolHits += srv.BufferPool().Hits()
		poolAccess += srv.BufferPool().Hits() + srv.BufferPool().Misses()
		cacheHits += nr.PlanCacheHits
		cacheMisses += nr.PlanCacheMisses

		poolTr, compTr, execTr, activeTr := srv.Traces()
		res.AvgPoolBytes += traceWindowAvg(poolTr, o.Warmup, o.Horizon)
		res.AvgCompileBytes += traceWindowAvg(compTr, o.Warmup, o.Horizon)
		res.AvgExecBytes += traceWindowAvg(execTr, o.Warmup, o.Horizon)
		res.AvgActiveCompiles += float64(traceWindowAvg(activeTr, o.Warmup, o.Horizon))
		overcommit += traceWindowAvg(srv.OvercommitTrace(), o.Warmup, o.Horizon)
		res.PageStealBytes += srv.PageStealBytes()
	}

	res.Series = metrics.SumSeries(windowSeries...)
	if memWeight > 0 {
		res.CompileMemMean = memSum / memWeight
	}
	if poolAccess > 0 {
		res.BufferPoolHitRate = float64(poolHits) / float64(poolAccess)
	}
	if t := cacheHits + cacheMisses; t > 0 {
		res.PlanCacheHitRate = float64(cacheHits) / float64(t)
	}
	res.AvgOvercommitRatio = float64(overcommit) / float64(len(nodes)) / 1000
	res.CompileP50 = metrics.MergedHistogram(compileHists...).Quantile(0.5)
	res.CompileP90 = metrics.MergedHistogram(compileHists...).Quantile(0.9)
	res.ExecP50 = metrics.MergedHistogram(execHists...).Quantile(0.5)

	var sb strings.Builder
	sb.WriteString(router.Report())
	for i, srv := range nodes {
		fmt.Fprintf(&sb, "--- node %d ---\n", i)
		sb.WriteString(srv.Report())
	}
	res.Report = sb.String()
	return res
}
