// Package harness runs complete benchmark configurations — the virtual
// equivalent of the paper's test lab. One Run builds a scheduler, a
// simulated server over the chosen catalog, and a closed-loop client
// population, executes the whole run in virtual time, and reports the
// same measurements the paper's figures plot.
package harness

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"compilegate/internal/cluster"
	"compilegate/internal/engine"
	"compilegate/internal/fault"
	"compilegate/internal/metrics"
	"compilegate/internal/vtime"
	"compilegate/internal/workload"
)

// Options selects a benchmark configuration.
type Options struct {
	// Clients is the concurrent user count (paper: 30 / 35 / 40).
	Clients int
	// Horizon is how long clients submit queries.
	Horizon time.Duration
	// Warmup excludes the initial portion from measurement, as §5.2 does
	// ("the data starts at an intermediate time index").
	Warmup time.Duration
	// Throttled toggles compilation throttling (the paper's comparison).
	Throttled bool
	// Scale scales the catalog (DESIGN.md: 0.04 keeps page counts
	// tractable while preserving the DB ≫ RAM ratio).
	Scale float64
	// Workload resolves the query generator and catalog; the zero value
	// is workload.SpecSales.
	Workload workload.Spec
	// Seed drives all randomness.
	Seed int64
	// Engine overrides the default engine config when non-nil (ablations
	// use this).
	Engine *engine.Config
	// Load overrides the default load config when non-nil.
	Load *workload.LoadConfig
	// Fault, when non-nil and non-empty, injects the scripted failure
	// plan into the run. Injections execute as ordinary scheduler tasks,
	// so determinism and sweep invariance are unaffected. The plan must
	// clear before Horizon.
	Fault *fault.Plan
	// Snapshot, when non-nil, supplies the shared immutable run state
	// (catalog, estimator, layout, statement identities) instead of the
	// process-wide cache. Its shape must match Workload and Scale. Runs
	// produce byte-identical results with shared, private, or absent
	// snapshots; the field exists for tests proving exactly that.
	Snapshot *Snapshot
	// Nodes runs the experiment as a cluster: that many independent
	// engine instances (each with its own budget, governor, plan cache,
	// and buffer pool) share one scheduler and one snapshot behind a
	// deterministic router. 0 and 1 both mean the classic single-server
	// run.
	Nodes int
	// Router picks the cluster routing policy (zero value:
	// round-robin). Ignored when Nodes <= 1.
	Router cluster.Policy
	// Health, when non-nil, turns on health-aware node exclusion in the
	// cluster router: nodes past the overcommit/thrash thresholds are
	// skipped like crashed ones. Cluster runs only.
	Health *cluster.HealthConfig
	// Breaker, when non-nil, arms a per-node circuit breaker in the
	// cluster router, driven by the errclass outcomes of routed
	// submissions. Cluster runs only.
	Breaker *cluster.BreakerConfig
	// FailoverHops bounds router-level failover resubmission on
	// crashed responses (0 disables it). Cluster runs only.
	FailoverHops int
}

// DefaultOptions returns the SALES configuration at the given client
// count with throttling enabled.
func DefaultOptions(clients int) Options {
	return Options{
		Clients:   clients,
		Horizon:   8 * time.Hour, // the paper measures t = 10800 s .. 28800 s
		Warmup:    3 * time.Hour,
		Throttled: true,
		Scale:     0.04,
		Workload:  workload.SpecSales,
		Seed:      1,
	}
}

// Result is one run's measurements.
type Result struct {
	Options Options
	// Series is completions per slice inside the measurement window —
	// the curve Figures 3-5 plot.
	Series []metrics.Point
	// Completed/Errors are totals inside the measurement window.
	Completed int64
	Errors    int64
	// ErrorsByKind covers the whole run.
	ErrorsByKind map[string]int64
	// Load is the client-side view.
	Load workload.LoadStats
	// CompileMemMean/Max profile per-query compile memory.
	CompileMemMean, CompileMemMax int64
	// BufferPoolHitRate is the end-of-run hit rate (cluster runs:
	// pooled over nodes as Σhits / Σ(hits+misses)).
	BufferPoolHitRate float64
	// PlanCacheHitRate is the end-of-run plan-cache hit rate, pooled
	// the same way for cluster runs — the fingerprint-affinity routing
	// claim reads this.
	PlanCacheHitRate float64
	// GatewayTimeouts / BestEffortPlans count throttling outcomes.
	GatewayTimeouts uint64
	BestEffortPlans uint64
	// BrownoutEntries / BrownoutTicks are the governor's brown-out
	// telemetry (summed across nodes on cluster runs): how many times
	// sustained pressure escalated admission to best-effort-only, and
	// for how many broker ticks in total.
	BrownoutEntries uint64
	BrownoutTicks   uint64
	// Rerouted / Resubmitted count the cluster router's health actions:
	// submissions steered away from their policy's first choice, and
	// failover resubmissions after crashed responses. RouterAllExcluded
	// counts submissions that found every node excluded and went to the
	// policy's first choice anyway. All zero for single-server runs.
	Rerouted          uint64
	Resubmitted       uint64
	RouterAllExcluded uint64
	// CompileP50/ExecP50 are median latencies; CompileP90 bounds the
	// compile-latency tail (the §5.2 profile claims).
	CompileP50, ExecP50 time.Duration
	CompileP90          time.Duration
	// Mid-run averages sampled inside the measurement window.
	AvgPoolBytes, AvgCompileBytes, AvgExecBytes int64
	AvgActiveCompiles                           float64
	// AvgOvercommitRatio is the mean wired-memory overcommit ratio inside
	// the window (>1 means the machine spent the window thrashing).
	AvgOvercommitRatio float64
	// PageStealBytes is buffer-pool memory the pager stole over the run.
	PageStealBytes int64
	// SimEvents is how many scheduler events the run dispatched — the
	// numerator of the simulator's own sim-events/sec throughput metric.
	SimEvents uint64
	// Fault reports what the fault plane did (nil for clean runs).
	Fault *fault.Stats
	// PreFaultThroughput is the mean completions per slice over full
	// slices before the first injection (0 when unmeasurable).
	PreFaultThroughput float64
	// Recovered reports whether, after the last injection cleared,
	// throughput came back within 10% of PreFaultThroughput before the
	// horizon; RecoveryTime is virtual time from fault clear to the end
	// of the first recovered slice — the graceful-degradation metric.
	Recovered    bool
	RecoveryTime time.Duration
	// Report is the engine's diagnostic dump (cluster runs: the router
	// distribution followed by every node's dump).
	Report string
	// NodeResults is the per-node breakdown of a cluster run, in node
	// order; nil for single-server runs.
	NodeResults []NodeResult
}

// NodeResult is one cluster node's share of a run.
type NodeResult struct {
	// Node is the index in router order (fixed at construction).
	Node int
	// Routed counts submissions the router forwarded here.
	Routed uint64
	// Completed/Errors are the node's totals inside the measurement
	// window.
	Completed int64
	Errors    int64
	// PlanCacheHits/Misses/HitRate are the node's plan-cache counters —
	// affinity routing shows up as a higher per-node hit rate.
	PlanCacheHits, PlanCacheMisses uint64
	PlanCacheHitRate               float64
	// BestEffortPlans / GatewayTimeouts count the node's throttling
	// outcomes; Crashes counts fault-plane crash onsets on this node.
	BestEffortPlans uint64
	GatewayTimeouts uint64
	Crashes         uint64
	// BrownoutEntries / BrownoutTicks are the node governor's brown-out
	// telemetry.
	BrownoutEntries uint64
	BrownoutTicks   uint64
	// BreakerState / BreakerTrips / BreakerTransitions describe the
	// node's circuit breaker at end of run (zero values when breakers
	// are disabled; BreakerState is then "").
	BreakerState       string
	BreakerTrips       uint64
	BreakerTransitions []cluster.BreakerTransition
}

// traceWindowAvg averages trace samples with T in [from, to).
func traceWindowAvg(tr *metrics.Trace, from, to time.Duration) int64 {
	var sum, n int64
	for _, p := range tr.Points {
		if p.T < from || p.T >= to {
			continue
		}
		sum += p.V
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// Throughput returns completions per hour inside the window.
func (r *Result) Throughput() float64 {
	window := (r.Options.Horizon - r.Options.Warmup).Hours()
	if window <= 0 {
		return 0
	}
	return float64(r.Completed) / window
}

// Run executes one configuration to completion in virtual time.
func Run(o Options) (*Result, error) {
	return RunOn(nil, o)
}

// RunOn is Run on a caller-supplied scheduler, which must be idle (nil
// builds a private one). Sweep shards pass their pooled scheduler here
// so back-to-back runs reuse its run queue, timer wheel, and task slab;
// results are bit-identical either way.
func RunOn(sched *vtime.Scheduler, o Options) (*Result, error) {
	if o.Clients <= 0 {
		return nil, fmt.Errorf("harness: no clients")
	}
	if !o.Workload.Valid() {
		return nil, fmt.Errorf("harness: unknown workload %q", string(o.Workload))
	}
	if o.Scale <= 0 {
		o.Scale = 0.04
	}
	if o.Horizon <= 0 {
		o.Horizon = 2 * time.Hour
	}
	if o.Warmup >= o.Horizon {
		return nil, fmt.Errorf("harness: warmup %v >= horizon %v", o.Warmup, o.Horizon)
	}
	injecting := o.Fault != nil && !o.Fault.Empty()
	if injecting {
		if err := o.Fault.Validate(); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		if lc := o.Fault.LastClear(); lc > o.Horizon {
			return nil, fmt.Errorf("harness: fault plan clears at %v, past horizon %v", lc, o.Horizon)
		}
		nodes := o.Nodes
		if nodes < 1 {
			nodes = 1
		}
		if mx := o.Fault.MaxNode(); mx >= nodes {
			return nil, fmt.Errorf("harness: fault plan targets node %d of a %d-node run", mx, nodes)
		}
	}
	if o.Nodes > 1 && !o.Router.Valid() {
		return nil, fmt.Errorf("harness: unknown router policy %q", string(o.Router))
	}
	if o.Nodes <= 1 && (o.Health != nil || o.Breaker != nil || o.FailoverHops != 0) {
		return nil, fmt.Errorf("harness: router health/breaker/failover options require a cluster run (nodes = %d)", o.Nodes)
	}
	if o.FailoverHops < 0 {
		return nil, fmt.Errorf("harness: negative failover hops %d", o.FailoverHops)
	}

	var ecfg engine.Config
	if o.Engine != nil {
		ecfg = *o.Engine
	} else {
		ecfg = engine.DefaultConfig()
	}
	ecfg.Throttle = o.Throttled
	if !o.Throttled {
		ecfg.DynamicThresholds = false
		ecfg.BestEffort = false
	}

	snap := o.Snapshot
	if snap == nil {
		snap = SnapshotFor(o.Workload, o.Scale)
	} else if snap.Workload.String() != o.Workload.String() || snap.Scale != o.Scale {
		return nil, fmt.Errorf("harness: snapshot shape %s/%g does not match options %s/%g",
			snap.Workload, snap.Scale, o.Workload, o.Scale)
	}

	if sched == nil {
		sched = vtime.NewScheduler()
	}

	var lcfg workload.LoadConfig
	if o.Load != nil {
		lcfg = *o.Load
	} else {
		lcfg = workload.DefaultLoadConfig(o.Clients)
	}
	lcfg.Clients = o.Clients
	lcfg.Horizon = o.Horizon
	lcfg.Seed = o.Seed

	if o.Nodes > 1 {
		return runCluster(sched, o, ecfg, snap, lcfg)
	}

	srv, err := engine.NewShared(ecfg, snap.Catalog, snap.prebuilt(), sched)
	if err != nil {
		return nil, err
	}

	gen := o.Workload.Generator()
	loadStats := workload.Run(sched, srv, gen, lcfg, srv.Close)

	// The fault plane spawns after the client population so task creation
	// order — and with it the whole event schedule — is a pure function
	// of the options.
	var faultStats *fault.Stats
	if injecting {
		heavy := heavyFor(gen)
		stormRNG := rand.New(rand.NewSource(o.Fault.Seed))
		faultStats = fault.Inject(sched, *o.Fault, surfaceFor(srv, heavy, stormRNG))
	}

	if err := sched.Run(); err != nil {
		return nil, fmt.Errorf("harness: simulation error: %w", err)
	}
	if err := srv.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("harness: post-run invariant violation: %w", err)
	}

	rec := srv.Recorder()
	meanMem, maxMem := srv.CompileMemProfile()
	res := &Result{
		Options:           o,
		Series:            rec.CompletionSeries(o.Warmup, o.Horizon),
		Completed:         rec.CompletionsIn(o.Warmup, o.Horizon),
		Errors:            rec.ErrorsIn(o.Warmup, o.Horizon),
		ErrorsByKind:      rec.Errors(),
		Load:              *loadStats,
		CompileMemMean:    meanMem,
		CompileMemMax:     maxMem,
		BufferPoolHitRate: srv.BufferPool().HitRate(),
		PlanCacheHitRate:  srv.PlanCache().HitRate(),
		BestEffortPlans:   srv.Governor().BestEffortCount(),
		BrownoutEntries:   srv.Governor().BrownoutEntries(),
		BrownoutTicks:     srv.Governor().BrownoutTicks(),
		CompileP50:        srv.CompileTimes().Quantile(0.5),
		CompileP90:        srv.CompileTimes().Quantile(0.9),
		ExecP50:           srv.ExecTimes().Quantile(0.5),
		SimEvents:         sched.Events(),
		Report:            srv.Report(),
	}
	poolTr, compTr, execTr, activeTr := srv.Traces()
	res.AvgPoolBytes = traceWindowAvg(poolTr, o.Warmup, o.Horizon)
	res.AvgCompileBytes = traceWindowAvg(compTr, o.Warmup, o.Horizon)
	res.AvgExecBytes = traceWindowAvg(execTr, o.Warmup, o.Horizon)
	res.AvgActiveCompiles = float64(traceWindowAvg(activeTr, o.Warmup, o.Horizon))
	res.AvgOvercommitRatio = float64(traceWindowAvg(srv.OvercommitTrace(), o.Warmup, o.Horizon)) / 1000
	res.PageStealBytes = srv.PageStealBytes()
	if chain := srv.Governor().Chain(); chain != nil {
		res.GatewayTimeouts = chain.Timeouts()
	}
	if faultStats != nil {
		res.Fault = faultStats
		measureRecovery(res, rec.CompletionSeries(0, o.Horizon), rec.SliceDur(), o)
	}
	return res, nil
}

// heavyFor resolves the generator's compile-storm query source: the
// dedicated heavy-template draw when the generator has one, the plain
// draw otherwise.
func heavyFor(gen workload.Generator) func(*rand.Rand) string {
	if hg, ok := gen.(interface {
		NextHeavy(*rand.Rand) string
	}); ok {
		return hg.NextHeavy
	}
	return gen.Next
}

// surfaceFor wires one server's fault-plane hooks. Storm queries go to
// the server directly (not through a router): the injection targets
// that node.
func surfaceFor(srv *engine.Server, heavy func(*rand.Rand) string, stormRNG *rand.Rand) fault.Surface {
	return fault.Surface{
		SetDiskStall: srv.SetDiskFault,
		Leak:         srv.LeakBallast,
		DropLeak:     srv.DropBallast,
		Crash:        srv.Crash,
		Restart:      srv.Restart,
		StormQuery: func(t *vtime.Task) error {
			return srv.Submit(t, heavy(stormRNG))
		},
	}
}

// measureRecovery computes the graceful-degradation metric: pre-fault
// throughput as the mean over full slices before the first injection
// (slice 0 excluded — it is ramp-up), then the first slice at or after
// the last clear whose completions are back within 10% of that mean.
// The series is the run's full completion series (cluster runs pass
// the node sum).
func measureRecovery(res *Result, series []metrics.Point, sliceDur time.Duration, o Options) {
	onset, clear := o.Fault.FirstOnset(), o.Fault.LastClear()
	var sum, n int64
	for _, p := range series {
		if p.T > 0 && p.T+sliceDur <= onset {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return
	}
	pre := float64(sum) / float64(n)
	res.PreFaultThroughput = pre
	for _, p := range series {
		if p.T < clear {
			continue
		}
		// Only full slices count, matching the pre-fault mean: when the
		// horizon is not a multiple of the slice width, the truncated
		// final slice holds a fraction of a slice's completions and must
		// not decide recovery off a short sample.
		if p.T+sliceDur > o.Horizon {
			continue
		}
		if float64(p.V) >= 0.9*pre {
			res.Recovered = true
			res.RecoveryTime = p.T + sliceDur - clear
			return
		}
	}
}

// SeriesString renders a completion series like the paper's figures.
func SeriesString(points []metrics.Point) string {
	var sb strings.Builder
	for _, p := range points {
		fmt.Fprintf(&sb, "  t=%6.0fs  completed=%d\n", p.T.Seconds(), p.V)
	}
	return sb.String()
}

// Compare renders the throttled-vs-unthrottled comparison the paper's
// figures make, returning the improvement ratio. A starved baseline
// (zero completions) has no finite ratio: the ratio is +Inf when the
// throttled run completed anything and NaN when both completed
// nothing, and the summary says so instead of printing the
// improvement as -100%.
func Compare(throttled, baseline *Result) (ratio float64, summary string) {
	improvement := "undefined (both runs completed 0)"
	switch {
	case baseline.Completed > 0:
		ratio = float64(throttled.Completed) / float64(baseline.Completed)
		improvement = fmt.Sprintf("%.1f%%", (ratio-1)*100)
	case throttled.Completed > 0:
		ratio = math.Inf(1)
		improvement = "+inf (baseline completed 0)"
	default:
		ratio = math.NaN()
	}
	summary = fmt.Sprintf(
		"clients=%d window=[%v,%v): throttled=%d baseline=%d improvement=%s errors(throttled)=%d errors(baseline)=%d",
		throttled.Options.Clients, throttled.Options.Warmup, throttled.Options.Horizon,
		throttled.Completed, baseline.Completed, improvement,
		throttled.Errors, baseline.Errors)
	return ratio, summary
}
