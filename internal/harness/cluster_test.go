package harness

import (
	"reflect"
	"testing"
	"time"

	"compilegate/internal/cluster"
	"compilegate/internal/fault"
	"compilegate/internal/metrics"
	"compilegate/internal/workload"
)

func clusterOpts(nodes int, policy cluster.Policy) Options {
	o := DefaultOptions(12)
	o.Workload = workload.SpecOLTP
	o.Horizon = 30 * time.Minute
	o.Warmup = 5 * time.Minute
	o.Nodes = nodes
	o.Router = policy
	return o
}

func TestClusterRunAggregates(t *testing.T) {
	o := clusterOpts(3, cluster.RoundRobin)
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.NodeResults) != 3 {
		t.Fatalf("node results = %d, want 3", len(r.NodeResults))
	}
	if r.Completed == 0 {
		t.Fatal("cluster completed nothing")
	}
	var completed, errs int64
	var routed uint64
	for i, nr := range r.NodeResults {
		if nr.Node != i {
			t.Fatalf("node result %d has Node=%d", i, nr.Node)
		}
		completed += nr.Completed
		errs += nr.Errors
		routed += nr.Routed
	}
	if completed != r.Completed || errs != r.Errors {
		t.Fatalf("node sums %d/%d != cluster totals %d/%d", completed, errs, r.Completed, r.Errors)
	}
	// The router forwards every submission, including retries.
	if want := uint64(r.Load.Submitted + r.Load.Retries); routed != want {
		t.Fatalf("routed sum %d != submissions %d", routed, want)
	}
	// With every node up, round-robin distributes exactly evenly.
	lo, hi := r.NodeResults[0].Routed, r.NodeResults[0].Routed
	for _, nr := range r.NodeResults[1:] {
		if nr.Routed < lo {
			lo = nr.Routed
		}
		if nr.Routed > hi {
			hi = nr.Routed
		}
	}
	if hi-lo > 1 {
		t.Fatalf("round-robin skew: routed counts span [%d, %d]", lo, hi)
	}
	// The series is the per-slice node sum.
	var sum int64
	for _, p := range r.Series {
		sum += p.V
	}
	if sum != r.Completed {
		t.Fatalf("series sum %d != completed %d", sum, r.Completed)
	}
	if r.Report == "" || r.PlanCacheHitRate <= 0 {
		t.Fatalf("missing aggregate fields: report=%d bytes, hit rate=%v", len(r.Report), r.PlanCacheHitRate)
	}
}

func TestClusterRunDeterministic(t *testing.T) {
	o := clusterOpts(2, cluster.LeastLoaded)
	a, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.Errors != b.Errors {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", a.Completed, a.Errors, b.Completed, b.Errors)
	}
	if !reflect.DeepEqual(a.NodeResults, b.NodeResults) {
		t.Fatalf("node results diverge:\n%+v\n%+v", a.NodeResults, b.NodeResults)
	}
}

func TestClusterAffinityBeatsRoundRobinOnWidePool(t *testing.T) {
	// Round-robin pays the 2000-statement cold-miss bill on every node;
	// affinity pays it once across the fleet.
	base := clusterOpts(4, cluster.Affinity)
	base.Workload = workload.SpecOLTPWide
	aff, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rrOpts := base
	rrOpts.Router = cluster.RoundRobin
	rr, err := Run(rrOpts)
	if err != nil {
		t.Fatal(err)
	}
	if aff.PlanCacheHitRate <= rr.PlanCacheHitRate {
		t.Fatalf("affinity hit rate %.4f not above round-robin %.4f",
			aff.PlanCacheHitRate, rr.PlanCacheHitRate)
	}
}

func TestClusterFaultTargetsOneNode(t *testing.T) {
	o := clusterOpts(2, cluster.RoundRobin)
	o.Fault = &fault.Plan{Seed: 5, Injections: []fault.Injection{
		{Kind: fault.CrashRestart, Node: 1, At: 10 * time.Minute, Duration: 3 * time.Minute},
	}}
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeResults[0].Crashes != 0 || r.NodeResults[1].Crashes != 1 {
		t.Fatalf("crashes = %d/%d, want 0/1",
			r.NodeResults[0].Crashes, r.NodeResults[1].Crashes)
	}
	if r.Fault == nil || r.Fault.Crashes != 1 {
		t.Fatalf("fault stats = %+v", r.Fault)
	}
}

// TestClusterBreakerRunSurfacesRouterDiagnostics runs a breaker-armed
// cluster through a node loss and checks the router's health actions
// land in the Result: breaker state and trips per node, rerouted and
// resubmitted counters, and the routed accounting extended by failover
// hops.
func TestClusterBreakerRunSurfacesRouterDiagnostics(t *testing.T) {
	o := clusterOpts(2, cluster.RoundRobin)
	o.Breaker = &cluster.BreakerConfig{Enabled: true, Threshold: 3}
	o.FailoverHops = 1
	o.Fault = &fault.Plan{Seed: 7, Injections: []fault.Injection{
		{Kind: fault.CrashRestart, Node: 1, At: 10 * time.Minute, Duration: 5 * time.Minute},
	}}
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	for i, nr := range r.NodeResults {
		if nr.BreakerState == "" {
			t.Fatalf("node %d: breaker state missing from result", i)
		}
	}
	if r.NodeResults[1].BreakerTrips == 0 {
		t.Fatal("crashed node's breaker never tripped")
	}
	if len(r.NodeResults[1].BreakerTransitions) == 0 {
		t.Fatal("crashed node has no breaker transition trail")
	}
	if r.Rerouted == 0 {
		t.Fatal("rerouted counter missing from result")
	}
	var routed uint64
	for _, nr := range r.NodeResults {
		routed += nr.Routed
	}
	if want := uint64(r.Load.Submitted+r.Load.Retries) + r.Resubmitted; routed != want {
		t.Fatalf("routed sum %d != submissions+failovers %d", routed, want)
	}
	// The run is deterministic like every other cluster configuration.
	again, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.NodeResults, again.NodeResults) {
		t.Fatalf("breaker-armed run is nondeterministic:\n%+v\n%+v", r.NodeResults, again.NodeResults)
	}
}

func TestClusterValidation(t *testing.T) {
	o := clusterOpts(2, cluster.Policy("bogus"))
	if _, err := Run(o); err == nil {
		t.Fatal("unknown router policy accepted")
	}
	o = clusterOpts(2, cluster.RoundRobin)
	o.Fault = &fault.Plan{Injections: []fault.Injection{
		{Kind: fault.CrashRestart, Node: 2, At: time.Minute, Duration: time.Minute},
	}}
	if _, err := Run(o); err == nil {
		t.Fatal("fault plan targeting a missing node accepted")
	}
}

func TestMeasureRecoverySkipsPartialFinalSlice(t *testing.T) {
	// 55-minute horizon over 10-minute slices leaves a truncated final
	// slice holding ~half a slice's completions; it must not decide
	// recovery either way.
	const sliceDur = 10 * time.Minute
	plan := &fault.Plan{Injections: []fault.Injection{
		{Kind: fault.DiskStall, At: 25 * time.Minute, Duration: 5 * time.Minute, Factor: 2},
	}}
	series := []metrics.Point{
		{T: 0, V: 100}, // ramp-up, excluded from the pre-fault mean
		{T: 10 * time.Minute, V: 100},
		{T: 20 * time.Minute, V: 100}, // straddles the onset, excluded
		{T: 30 * time.Minute, V: 50},
		{T: 40 * time.Minute, V: 80},
		{T: 50 * time.Minute, V: 95}, // truncated: only 5 of 10 minutes ran
	}
	o := Options{Horizon: 55 * time.Minute, Fault: plan}
	res := &Result{}
	measureRecovery(res, series, sliceDur, o)
	if res.PreFaultThroughput != 100 {
		t.Fatalf("pre-fault throughput = %v, want 100", res.PreFaultThroughput)
	}
	if res.Recovered {
		t.Fatal("partial final slice decided recovery")
	}

	// With the horizon extended so the same slice is full, it counts.
	o.Horizon = 60 * time.Minute
	res = &Result{}
	measureRecovery(res, series, sliceDur, o)
	if !res.Recovered {
		t.Fatal("full recovered slice not accepted")
	}
	// Clear is 30m; the recovered slice ends at 60m.
	if res.RecoveryTime != 30*time.Minute {
		t.Fatalf("recovery time = %v, want 30m", res.RecoveryTime)
	}
}
