package harness

import (
	"math"
	"strings"
	"testing"
	"time"

	"compilegate/internal/metrics"
	"compilegate/internal/workload"
)

func quickOpts(clients int) Options {
	o := DefaultOptions(clients)
	o.Horizon = 30 * time.Minute
	o.Warmup = 5 * time.Minute
	return o
}

func TestDefaultOptionsMatchPaperWindow(t *testing.T) {
	o := DefaultOptions(30)
	if o.Horizon != 8*time.Hour || o.Warmup != 3*time.Hour {
		t.Fatalf("window = [%v, %v), paper uses [3h, 8h)", o.Warmup, o.Horizon)
	}
	if !o.Throttled || o.Workload != "sales" {
		t.Fatal("defaults should be throttled SALES")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Options{Clients: 0}); err == nil {
		t.Fatal("zero clients accepted")
	}
	bad := DefaultOptions(5)
	bad.Warmup = bad.Horizon
	if _, err := Run(bad); err == nil {
		t.Fatal("warmup >= horizon accepted")
	}
}

func TestRunProducesSeries(t *testing.T) {
	o := quickOpts(8)
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Fatal("no completions")
	}
	wantSlices := int((o.Horizon - o.Warmup) / (10 * time.Minute))
	if len(r.Series) != wantSlices {
		t.Fatalf("series has %d slices, want %d", len(r.Series), wantSlices)
	}
	var sum int64
	for _, p := range r.Series {
		sum += p.V
	}
	if sum != r.Completed {
		t.Fatalf("series sum %d != completed %d", sum, r.Completed)
	}
	if r.Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
	if r.CompileMemMean <= 0 || r.BufferPoolHitRate <= 0 {
		t.Fatalf("missing profile: mem=%d hit=%v", r.CompileMemMean, r.BufferPoolHitRate)
	}
}

func TestRunDeterministicAcrossInvocations(t *testing.T) {
	o := quickOpts(6)
	a, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.Errors != b.Errors {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", a.Completed, a.Errors, b.Completed, b.Errors)
	}
	for i := range a.Series {
		if a.Series[i] != b.Series[i] {
			t.Fatalf("series diverge at slice %d", i)
		}
	}
}

func TestSeedChangesRun(t *testing.T) {
	o := quickOpts(6)
	a, _ := Run(o)
	o.Seed = 99
	b, _ := Run(o)
	same := a.Completed == b.Completed
	for i := range a.Series {
		if i < len(b.Series) && a.Series[i] != b.Series[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestWorkloadSelection(t *testing.T) {
	for _, wl := range []workload.Spec{workload.SpecTPCH, workload.SpecOLTP, workload.SpecMix} {
		o := quickOpts(4)
		o.Workload = wl
		o.Horizon = 20 * time.Minute
		o.Warmup = 2 * time.Minute
		r, err := Run(o)
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if r.Completed == 0 {
			t.Fatalf("%s completed nothing", wl)
		}
	}
}

func TestCompareAndSeriesString(t *testing.T) {
	th := &Result{Options: DefaultOptions(30), Completed: 135}
	ba := &Result{Options: DefaultOptions(30), Completed: 100}
	ratio, summary := Compare(th, ba)
	if ratio != 1.35 {
		t.Fatalf("ratio = %v", ratio)
	}
	if !strings.Contains(summary, "35.0%") {
		t.Fatalf("summary = %q", summary)
	}
	s := SeriesString([]metrics.Point{{T: 600 * time.Second, V: 31}})
	if !strings.Contains(s, "600") || !strings.Contains(s, "31") {
		t.Fatalf("series string = %q", s)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	cases := []struct {
		name                string
		throttled, baseline int64
		wantInf, wantNaN    bool
		wantRatio           float64
		wantSummary, banned string
	}{
		{
			name: "finite", throttled: 135, baseline: 100,
			wantRatio: 1.35, wantSummary: "35.0%",
		},
		{
			// The old code left ratio=0 here and printed the improvement
			// as -100.0%, reading a starved baseline as a regression.
			name: "zero baseline", throttled: 10, baseline: 0,
			wantInf: true, wantSummary: "baseline completed 0", banned: "-100.0%",
		},
		{
			name: "both zero", throttled: 0, baseline: 0,
			wantNaN: true, wantSummary: "undefined", banned: "-100.0%",
		},
		{
			name: "throttled zero", throttled: 0, baseline: 50,
			wantRatio: 0, wantSummary: "-100.0%",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			th := &Result{Options: DefaultOptions(30), Completed: tc.throttled}
			ba := &Result{Options: DefaultOptions(30), Completed: tc.baseline}
			ratio, summary := Compare(th, ba)
			switch {
			case tc.wantInf:
				if !math.IsInf(ratio, 1) {
					t.Fatalf("ratio = %v, want +Inf", ratio)
				}
			case tc.wantNaN:
				if !math.IsNaN(ratio) {
					t.Fatalf("ratio = %v, want NaN", ratio)
				}
			default:
				if ratio != tc.wantRatio {
					t.Fatalf("ratio = %v, want %v", ratio, tc.wantRatio)
				}
			}
			if !strings.Contains(summary, tc.wantSummary) {
				t.Fatalf("summary %q missing %q", summary, tc.wantSummary)
			}
			if tc.banned != "" && strings.Contains(summary, tc.banned) {
				t.Fatalf("summary %q still renders %q", summary, tc.banned)
			}
		})
	}
}
