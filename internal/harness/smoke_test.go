package harness

import (
	"testing"
	"time"
)

// TestSmokeShortRun exercises the full stack end to end on a short
// horizon and prints the dynamics for calibration.
func TestSmokeShortRun(t *testing.T) {
	o := DefaultOptions(30)
	o.Horizon = 40 * time.Minute
	o.Warmup = 10 * time.Minute
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	dump := func(name string, r *Result) {
		t.Logf("%s: completed=%d errors=%v hit-rate=%.2f compile-mem mean=%dMB max=%dMB p50 compile=%v exec=%v",
			name, r.Completed, r.ErrorsByKind, r.BufferPoolHitRate,
			r.CompileMemMean>>20, r.CompileMemMax>>20, r.CompileP50, r.ExecP50)
		t.Logf("%s mid-run: pool=%dMB compile=%dMB exec=%dMB active-compiles=%.1f gw-timeouts=%d best-effort=%d",
			name, r.AvgPoolBytes>>20, r.AvgCompileBytes>>20, r.AvgExecBytes>>20,
			r.AvgActiveCompiles, r.GatewayTimeouts, r.BestEffortPlans)
	}
	dump("throttled", res)
	t.Logf("report:\n%s", res.Report)

	o.Throttled = false
	base, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	dump("baseline", base)
	_, summary := Compare(res, base)
	t.Log(summary)
	if res.Completed == 0 {
		t.Fatal("no queries completed")
	}
}
