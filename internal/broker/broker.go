// Package broker implements the paper's Memory Broker (§3): a central
// mechanism that accounts for the memory allocated by each DBMS
// subcomponent, recognizes trends in allocation patterns, predicts
// near-future usage, and — only when the predicted machine-wide total would
// exceed physical memory — computes per-component targets and notifies each
// component whether it may keep growing, should hold its allocation rate,
// or must release memory.
//
// When the system is not under memory pressure the broker takes no action
// and the system behaves as if the broker were not there, exactly as the
// paper specifies.
package broker

import (
	"fmt"
	"sort"
	"time"

	"compilegate/internal/mem"
)

// Decision tells a component how it may use memory until the next
// notification.
type Decision int

const (
	// Grow: the component may continue to allocate.
	Grow Decision = iota
	// Stable: the component should hold near its current allocation.
	Stable
	// Shrink: the component must release memory toward its target.
	Shrink
)

// String renders the decision for logs and reports.
func (d Decision) String() string {
	switch d {
	case Grow:
		return "grow"
	case Stable:
		return "stable"
	case Shrink:
		return "shrink"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Notification carries the broker's verdict for one component at one tick.
type Notification struct {
	Decision  Decision
	Target    int64 // bytes the component should converge to
	Predicted int64 // broker's prediction of the component's near-future usage
	// Pressure reports whether the machine-wide predicted total exceeded
	// available memory this tick (targets are only binding under
	// pressure; without it components may ignore them).
	Pressure bool
	// Exhaustion is set when the broker predicts the machine will run out
	// of memory imminently; the compilation component uses it to return
	// best-effort plans instead of failing with out-of-memory (§4.1).
	Exhaustion bool
}

// NotifyFunc receives broker notifications for a component.
type NotifyFunc func(Notification)

// Config tunes the broker.
type Config struct {
	// SampleWindow is how many usage samples feed trend detection.
	SampleWindow int
	// Horizon is how far ahead usage is extrapolated.
	Horizon time.Duration
	// StableBand is the fraction of target (e.g. 0.9) above which a
	// component is told Stable rather than Grow.
	StableBand float64
	// HeadroomFrac is the fraction of total memory the broker keeps as
	// slack: components are brokered against total*(1-HeadroomFrac), so
	// contention is resolved before the machine is literally full.
	HeadroomFrac float64
	// ExhaustionFreeFrac: when under pressure and free memory falls below
	// this fraction of total, notifications carry Exhaustion=true.
	ExhaustionFreeFrac float64
}

// DefaultConfig returns the tuning used in the reproduction.
func DefaultConfig() Config {
	return Config{
		SampleWindow:       8,
		Horizon:            10 * time.Second,
		StableBand:         0.9,
		HeadroomFrac:       0.08,
		ExhaustionFreeFrac: 0.03,
	}
}

// Domain is the memory region a broker arbitrates: the whole machine
// budget or a bounded sub-region (mem.Group), such as the 32-bit address
// space the paper's compile/grant/cache components contended inside.
type Domain interface {
	Total() int64
	Used() int64
	Free() int64
}

// Broker monitors component usage against a shared memory domain.
type Broker struct {
	cfg        Config
	budget     Domain
	components []*Component
	ticks      uint64
	pressured  uint64 // ticks that detected pressure

	// Per-tick scratch, reused so the fixed-cadence housekeeping tick
	// allocates nothing in steady state.
	predScratch     []int64
	targetScratch   []int64
	entitledScratch []int64
	overScratch     []bool
}

// Component is one registered memory consumer.
type Component struct {
	name   string
	weight float64 // share of the machine under contention
	min    int64   // floor never taken away
	usage  func() int64
	notify NotifyFunc

	// Usage-sample ring: samples holds up to the configured window, shead
	// is the next write slot, sn the live count. A true ring (not a
	// forward re-slice) so the backing array is allocated once and never
	// churns — the broker ticks every interval for every component, and
	// the old slide-forward window re-allocated on every wrap.
	samples []sample
	shead   int
	sn      int
	last    Notification
}

type sample struct {
	t time.Duration
	v int64
}

// New creates a broker over the given memory domain.
func New(cfg Config, budget Domain) *Broker {
	if cfg.SampleWindow < 2 {
		cfg.SampleWindow = 2
	}
	if cfg.StableBand <= 0 || cfg.StableBand > 1 {
		cfg.StableBand = 0.9
	}
	if cfg.HeadroomFrac < 0 || cfg.HeadroomFrac >= 1 {
		cfg.HeadroomFrac = 0
	}
	return &Broker{cfg: cfg, budget: budget}
}

// Register adds a component. usage is sampled at every tick; notify (may be
// nil) receives the verdict. weight sets the component's share of memory
// under contention relative to other components' weights; min is a floor in
// bytes that targets never drop below.
func (b *Broker) Register(name string, weight float64, min int64, usage func() int64, notify NotifyFunc) *Component {
	if weight <= 0 {
		panic("broker: non-positive weight for " + name)
	}
	c := &Component{name: name, weight: weight, min: min, usage: usage, notify: notify}
	b.components = append(b.components, c)
	return c
}

// ResetHistory discards every component's usage-sample ring and last
// notification — the broker's view of the world after a crash/restart:
// trend prediction starts over from an empty window, so the first
// post-restart ticks take no action until enough samples accumulate.
// Tick and pressure counters survive (they are run measurements, not
// broker state).
func (b *Broker) ResetHistory() {
	for _, c := range b.components {
		c.shead, c.sn = 0, 0
		c.last = Notification{}
	}
}

// Last returns the most recent notification delivered to the component.
func (c *Component) Last() Notification { return c.last }

// Name returns the component's name.
func (c *Component) Name() string { return c.name }

// Ticks returns how many times Tick has run.
func (b *Broker) Ticks() uint64 { return b.ticks }

// PressureTicks returns how many ticks detected memory pressure.
func (b *Broker) PressureTicks() uint64 { return b.pressured }

// UnderPressure reports whether the last tick detected pressure.
func (b *Broker) UnderPressure() bool {
	if b.ticks == 0 {
		return false
	}
	for _, c := range b.components {
		if c.last.Decision != Grow || c.last.Exhaustion {
			return true
		}
	}
	return false
}

// Tick samples all components at virtual time now, predicts usage, and
// delivers notifications. The engine calls this on a fixed cadence.
func (b *Broker) Tick(now time.Duration) {
	b.ticks++

	// 1. Sample and predict.
	if cap(b.predScratch) < len(b.components) {
		b.predScratch = make([]int64, len(b.components))
	}
	predicted := b.predScratch[:len(b.components)]
	var usedByComponents, predictedTotal int64
	for i, c := range b.components {
		u := c.usage()
		c.addSample(now, u, b.cfg.SampleWindow)
		p := c.predict(b.cfg.Horizon)
		predicted[i] = p
		usedByComponents += u
		predictedTotal += p
	}

	// Memory held outside registered components (fixed overhead etc.)
	// reduces what the components can share.
	other := b.budget.Used() - usedByComponents
	if other < 0 {
		other = 0
	}
	available := b.budget.Total() - int64(b.cfg.HeadroomFrac*float64(b.budget.Total())) - other
	if available < 0 {
		available = 0
	}

	// 2. No pressure: stay out of the way.
	if predictedTotal <= available {
		for i, c := range b.components {
			n := Notification{Decision: Grow, Target: predicted[i], Predicted: predicted[i]}
			c.deliver(n)
		}
		return
	}
	b.pressured++

	// 3. Pressure: split available memory into per-component targets.
	targets := b.computeTargets(available, predicted)
	// Exhaustion means free memory plus everything shrinkable (usage
	// above target across components) is nearly gone — a full buffer
	// pool alone is NOT exhaustion, because it can be shrunk.
	reclaimable := b.budget.Free()
	for i, c := range b.components {
		if over := c.usage() - targets[i]; over > 0 {
			reclaimable += over
		}
	}
	exhaustion := reclaimable < int64(b.cfg.ExhaustionFreeFrac*float64(b.budget.Total()))
	for i, c := range b.components {
		u := c.usage()
		n := Notification{Target: targets[i], Predicted: predicted[i], Pressure: true, Exhaustion: exhaustion}
		switch {
		case u > targets[i]:
			n.Decision = Shrink
		case float64(u) > b.cfg.StableBand*float64(targets[i]):
			n.Decision = Stable
		default:
			n.Decision = Grow
		}
		c.deliver(n)
	}
}

// computeTargets distributes available bytes across components: each
// component is entitled to a weight-proportional share (never below its
// floor); components predicted to use less than their entitlement keep only
// their prediction, and the surplus is granted to over-demanders in
// proportion to their weights.
func (b *Broker) computeTargets(available int64, predicted []int64) []int64 {
	n := len(b.components)
	if cap(b.targetScratch) < n {
		b.targetScratch = make([]int64, n)
		b.entitledScratch = make([]int64, n)
		b.overScratch = make([]bool, n)
	}
	targets, entitled, over := b.targetScratch[:n], b.entitledScratch[:n], b.overScratch[:n]
	var weightSum float64
	for _, c := range b.components {
		weightSum += c.weight
	}
	for i, c := range b.components {
		e := int64(float64(available) * c.weight / weightSum)
		if e < c.min {
			e = c.min
		}
		entitled[i] = e
	}

	// First pass: under-demanders take only what they are predicted to
	// need (respecting floors); record surplus and over-demanders.
	var surplus int64
	var overWeight float64
	for i, c := range b.components {
		over[i] = false
		want := predicted[i]
		if want < c.min {
			want = c.min
		}
		if want <= entitled[i] {
			targets[i] = want
			surplus += entitled[i] - want
		} else {
			targets[i] = entitled[i]
			over[i] = true
			overWeight += c.weight
		}
	}
	// Second pass: hand the surplus to over-demanders by weight, capped at
	// their prediction.
	if surplus > 0 && overWeight > 0 {
		for i, c := range b.components {
			if !over[i] {
				continue
			}
			grant := int64(float64(surplus) * c.weight / overWeight)
			if targets[i]+grant > predicted[i] {
				grant = predicted[i] - targets[i]
			}
			if grant > 0 {
				targets[i] += grant
			}
		}
	}
	return targets
}

func (c *Component) addSample(t time.Duration, v int64, window int) {
	if len(c.samples) != window {
		// First sample, or a reconfigured window: rebuild the ring.
		c.samples = make([]sample, window)
		c.shead, c.sn = 0, 0
	}
	c.samples[c.shead] = sample{t: t, v: v}
	c.shead = (c.shead + 1) % window
	if c.sn < window {
		c.sn++
	}
}

// predict extrapolates the component's usage horizon into the future using
// a least-squares trend over the sample window. Predictions never go
// negative, and a shrinking trend is honored (the paper's broker mitigates
// wild swings by reacting to trends in both directions).
func (c *Component) predict(horizon time.Duration) int64 {
	n := c.sn
	if n == 0 {
		return 0
	}
	last := c.samples[(c.shead-1+len(c.samples))%len(c.samples)]
	if n == 1 {
		return last.v
	}
	// Least-squares slope in bytes per second. The regression is
	// order-independent, so the ring is summed in slot order.
	var sumT, sumV, sumTT, sumTV float64
	for i := 0; i < n; i++ {
		s := c.samples[(c.shead-n+i+len(c.samples))%len(c.samples)]
		t := s.t.Seconds()
		v := float64(s.v)
		sumT += t
		sumV += v
		sumTT += t * t
		sumTV += t * v
	}
	fn := float64(n)
	den := fn*sumTT - sumT*sumT
	if den == 0 {
		return last.v
	}
	slope := (fn*sumTV - sumT*sumV) / den
	p := float64(last.v) + slope*horizon.Seconds()
	if p < 0 {
		p = 0
	}
	return int64(p)
}

func (c *Component) deliver(n Notification) {
	c.last = n
	if c.notify != nil {
		c.notify(n)
	}
}

// Report summarizes the broker state for diagnostics.
func (b *Broker) Report() string {
	names := make([]string, 0, len(b.components))
	byName := make(map[string]*Component, len(b.components))
	for _, c := range b.components {
		names = append(names, c.name)
		byName[c.name] = c
	}
	sort.Strings(names)
	s := fmt.Sprintf("broker: ticks=%d pressured=%d\n", b.ticks, b.pressured)
	for _, name := range names {
		c := byName[name]
		s += fmt.Sprintf("  %-12s usage=%-12s target=%-12s decision=%s\n",
			c.name, mem.FormatBytes(c.usage()), mem.FormatBytes(c.last.Target), c.last.Decision)
	}
	return s
}
