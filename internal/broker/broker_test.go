package broker

import (
	"testing"
	"testing/quick"
	"time"

	"compilegate/internal/mem"
)

func tick(b *Broker, n int, step time.Duration) {
	for i := 1; i <= n; i++ {
		b.Tick(time.Duration(i) * step)
	}
}

func TestNoPressureNoAction(t *testing.T) {
	budget := mem.NewBudget(1000)
	b := New(DefaultConfig(), budget)
	tr := budget.NewTracker("a")
	tr.MustReserve(100)
	var notices []Notification
	b.Register("a", 1, 0, tr.Used, func(n Notification) { notices = append(notices, n) })
	tick(b, 5, time.Second)
	for _, n := range notices {
		if n.Decision != Grow {
			t.Fatalf("decision under no pressure = %v", n.Decision)
		}
		if n.Exhaustion {
			t.Fatal("exhaustion flagged with 90% free")
		}
	}
	if b.UnderPressure() {
		t.Fatal("UnderPressure with 90% free")
	}
}

func TestTrendPrediction(t *testing.T) {
	budget := mem.NewBudget(1 << 30)
	b := New(DefaultConfig(), budget)
	usage := int64(0)
	c := b.Register("a", 1, 0, func() int64 { return usage }, nil)
	// Grow 10 bytes/second for 8 samples.
	for i := 1; i <= 8; i++ {
		usage = int64(i * 10)
		b.Tick(time.Duration(i) * time.Second)
	}
	// Horizon is 10s at 10 B/s => predicted ~ usage + 100.
	got := c.Last().Predicted
	want := usage + 100
	if got < want-5 || got > want+5 {
		t.Fatalf("predicted = %d, want ~%d", got, want)
	}
}

func TestShrinkUnderPressure(t *testing.T) {
	budget := mem.NewBudget(1000)
	b := New(DefaultConfig(), budget)
	big := budget.NewTracker("big")
	small := budget.NewTracker("small")
	big.MustReserve(850)
	small.MustReserve(100)
	var bigNotice, smallNotice Notification
	b.Register("big", 1, 0, big.Used, func(n Notification) { bigNotice = n })
	b.Register("small", 1, 0, small.Used, func(n Notification) { smallNotice = n })
	tick(b, 5, time.Second)
	// Equal weights over 1000 total: big is way over its ~500 entitlement.
	if bigNotice.Decision != Shrink {
		t.Fatalf("big decision = %v, want Shrink (target %d)", bigNotice.Decision, bigNotice.Target)
	}
	if smallNotice.Decision == Shrink {
		t.Fatalf("small told to shrink below its usage (target %d)", smallNotice.Target)
	}
	if !b.UnderPressure() {
		t.Fatal("pressure not reported")
	}
	if b.PressureTicks() == 0 {
		t.Fatal("pressure ticks not counted")
	}
}

func TestTargetsRespectFloors(t *testing.T) {
	budget := mem.NewBudget(1000)
	b := New(DefaultConfig(), budget)
	a := budget.NewTracker("a")
	c := budget.NewTracker("c")
	a.MustReserve(900)
	c.MustReserve(90)
	var cn Notification
	b.Register("a", 10, 0, a.Used, nil)
	b.Register("c", 1, 200, c.Used, func(n Notification) { cn = n })
	tick(b, 5, time.Second)
	if cn.Target < 200 {
		t.Fatalf("floor violated: target = %d, want >= 200", cn.Target)
	}
}

func TestSurplusRedistribution(t *testing.T) {
	budget := mem.NewBudget(1000)
	b := New(DefaultConfig(), budget)
	// hungry predicted to want everything, modest wants only 100.
	hungry := budget.NewTracker("hungry")
	modest := budget.NewTracker("modest")
	hungry.MustReserve(600)
	modest.MustReserve(100)
	// Force growth trend on hungry so pressure appears.
	var hn Notification
	b.Register("hungry", 1, 0, hungry.Used, func(n Notification) { hn = n })
	b.Register("modest", 1, 0, modest.Used, nil)
	for i := 1; i <= 8; i++ {
		_ = hungry.Reserve(30) // keep climbing ~30 B/tick
		b.Tick(time.Duration(i) * time.Second)
	}
	// Modest's entitlement is ~500 but it only needs ~100; hungry should
	// receive (some of) the surplus, i.e. target well above 500.
	if hn.Target <= 500 {
		t.Fatalf("hungry target = %d, want > 500 (surplus redistribution)", hn.Target)
	}
}

func TestExhaustionFlag(t *testing.T) {
	budget := mem.NewBudget(1000)
	cfg := DefaultConfig()
	cfg.ExhaustionFreeFrac = 0.10
	b := New(cfg, budget)
	tr := budget.NewTracker("a")
	tr.MustReserve(950) // 5% free < 10% threshold
	var last Notification
	b.Register("a", 1, 0, tr.Used, func(n Notification) { last = n })
	// Climb so prediction exceeds the budget.
	for i := 1; i <= 6; i++ {
		_ = tr.Reserve(5)
		b.Tick(time.Duration(i) * time.Second)
	}
	if !last.Exhaustion {
		t.Fatal("exhaustion not flagged at <10% free under pressure")
	}
}

func TestOtherMemoryReducesAvailable(t *testing.T) {
	budget := mem.NewBudget(1000)
	// 600 bytes held by an unregistered tracker (fixed overhead).
	overhead := budget.NewTracker("overhead")
	overhead.MustReserve(600)
	b := New(DefaultConfig(), budget)
	tr := budget.NewTracker("a")
	tr.MustReserve(300)
	var last Notification
	b.Register("a", 1, 0, tr.Used, func(n Notification) { last = n })
	for i := 1; i <= 8; i++ {
		_ = tr.Reserve(15)
		b.Tick(time.Duration(i) * time.Second)
	}
	// Available to the component is only 400; its usage is 420 by now.
	if last.Decision == Grow {
		t.Fatalf("component allowed to grow past non-component memory (target %d)", last.Target)
	}
	if last.Target > 400 {
		t.Fatalf("target = %d exceeds available 400", last.Target)
	}
}

func TestDecisionString(t *testing.T) {
	if Grow.String() != "grow" || Stable.String() != "stable" || Shrink.String() != "shrink" {
		t.Fatal("Decision.String broken")
	}
	if Decision(42).String() == "" {
		t.Fatal("unknown decision renders empty")
	}
}

func TestReport(t *testing.T) {
	budget := mem.NewBudget(1000)
	b := New(DefaultConfig(), budget)
	tr := budget.NewTracker("a")
	b.Register("a", 1, 0, tr.Used, nil)
	tick(b, 1, time.Second)
	if s := b.Report(); s == "" {
		t.Fatal("empty report")
	}
}

// Property: targets under pressure never sum to more than available
// memory plus the sum of floors (floors may force an overcommitment, which
// is the documented escape hatch), and every target >= its floor.
func TestQuickTargetsBounded(t *testing.T) {
	f := func(usages []uint16, weightsRaw []uint8) bool {
		if len(usages) == 0 {
			return true
		}
		if len(usages) > 6 {
			usages = usages[:6]
		}
		total := int64(1 << 15)
		budget := mem.NewBudget(total)
		b := New(DefaultConfig(), budget)
		comps := make([]*Component, 0, len(usages))
		var floorSum int64
		for i, u := range usages {
			u := int64(u)
			if u > total/2 {
				u = total / 2
			}
			tr := budget.NewTracker("c")
			if err := tr.Reserve(u); err != nil {
				return true // budget too full to set up; skip
			}
			w := float64(1)
			if i < len(weightsRaw) {
				w = float64(weightsRaw[i]%8) + 1
			}
			floor := u / 4
			floorSum += floor
			comps = append(comps, b.Register("c", w, floor, tr.Used, nil))
		}
		for i := 1; i <= 4; i++ {
			b.Tick(time.Duration(i) * time.Second)
		}
		var sum int64
		for _, c := range comps {
			if c.Last().Target < c.min {
				return false
			}
			sum += c.Last().Target
		}
		// Under no pressure targets equal predictions, which are bounded
		// by usage (flat trend), so the bound below holds either way.
		return sum <= total+floorSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
