package cluster

import (
	"fmt"
	"time"

	"compilegate/internal/errclass"
)

// BreakerConfig tunes the per-node circuit breakers the router keeps
// when Config.Breaker.Enabled is set. The breaker watches every routed
// submission's outcome through the errclass taxonomy: a classified
// failure (Shed / Timeout / OOM / Crashed) counts against the node, an
// unclassified error (a parse error is the client's fault, not the
// node's) and a success do not.
type BreakerConfig struct {
	// Enabled turns the breakers on.
	Enabled bool
	// Threshold is how many consecutive classified failures trip a
	// closed breaker open (0 defaults to 5). Any success resets the
	// streak, so a node that still completes work between failures —
	// the correlated-compile-storm case — never trips.
	Threshold int
	// Cooldown is the virtual time an open breaker waits before
	// admitting its first half-open probe (0 defaults to 45s, nine
	// broker ticks).
	Cooldown time.Duration
	// Probes is how many consecutive successful probes close a
	// half-open breaker (0 defaults to 3) — gradual re-admission
	// instead of instant re-flooding.
	Probes int
}

func (c BreakerConfig) threshold() int {
	if c.Threshold <= 0 {
		return 5
	}
	return c.Threshold
}

func (c BreakerConfig) cooldown() time.Duration {
	if c.Cooldown <= 0 {
		return 45 * time.Second
	}
	return c.Cooldown
}

func (c BreakerConfig) probes() int {
	if c.Probes <= 0 {
		return 3
	}
	return c.Probes
}

// BreakerState is one circuit breaker's position: closed (traffic
// flows), open (the node is excluded until the cooldown elapses), or
// half-open (one probe submission at a time tests the node).
type BreakerState uint8

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String returns the conventional breaker-state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerTransition records one breaker state change at a virtual
// timestamp — the per-node audit trail cmd/figures renders.
type BreakerTransition struct {
	At       time.Duration
	From, To BreakerState
}

// String renders the transition for diagnostics.
func (tr BreakerTransition) String() string {
	return fmt.Sprintf("%v %s->%s", tr.At, tr.From, tr.To)
}

// transitionCap bounds the per-breaker transition log; a run whose
// breaker flaps more than this keeps the counters but drops the tail of
// the trail (DroppedTransitions says how much).
const transitionCap = 128

// breaker is one node's circuit breaker. All state is mutated from task
// context on the run's single event loop, so the machine is exactly as
// deterministic as the router around it. Half-open admits a single
// probe at a time: with at most one probe in flight, a probe outcome
// always belongs to the current half-open round and no stale
// observation can close or re-trip the breaker.
type breaker struct {
	cfg BreakerConfig

	state    BreakerState
	fails    int  // consecutive classified failures while closed
	okProbes int  // successful probes this half-open round
	probing  bool // a probe submission is in flight
	openedAt time.Duration

	trips       uint64
	transitions []BreakerTransition
	dropped     uint64
}

func newBreaker(cfg BreakerConfig) *breaker { return &breaker{cfg: cfg} }

// canAdmit reports whether the node may take a routed submission at
// virtual time now, without mutating any state — the router's
// eligibility check.
func (b *breaker) canAdmit(now time.Duration) bool {
	switch b.state {
	case BreakerOpen:
		return now >= b.openedAt+b.cfg.cooldown()
	case BreakerHalfOpen:
		return !b.probing
	default:
		return true
	}
}

// admit commits the node's selection for one submission at virtual time
// now and reports whether that submission is a half-open probe. An open
// breaker whose cooldown has elapsed moves to half-open here, on the
// first admitted submission.
func (b *breaker) admit(now time.Duration) (probe bool) {
	if b.state == BreakerOpen && now >= b.openedAt+b.cfg.cooldown() {
		b.shift(now, BreakerHalfOpen)
		b.okProbes = 0
	}
	if b.state == BreakerHalfOpen && !b.probing {
		b.probing = true
		return true
	}
	return false
}

// observe records one routed submission's outcome at virtual time now.
// probe must be the value admit returned for that submission. Non-probe
// outcomes that arrive while the breaker is open or half-open belong to
// work admitted before the trip and are ignored — they already counted
// toward tripping, and a recovering node must be judged only on its
// probes.
func (b *breaker) observe(now time.Duration, err error, probe bool) {
	failed := errclass.Of(err) != nil
	if probe {
		b.probing = false
		if b.state != BreakerHalfOpen {
			return // the breaker re-tripped under this probe's feet
		}
		if failed {
			b.trip(now)
			return
		}
		b.okProbes++
		if b.okProbes >= b.cfg.probes() {
			b.shift(now, BreakerClosed)
			b.fails = 0
			b.okProbes = 0
		}
		return
	}
	if b.state != BreakerClosed {
		return
	}
	if !failed {
		b.fails = 0
		return
	}
	b.fails++
	if b.fails >= b.cfg.threshold() {
		b.trip(now)
	}
}

// trip opens the breaker at virtual time now.
func (b *breaker) trip(now time.Duration) {
	b.shift(now, BreakerOpen)
	b.openedAt = now
	b.fails = 0
	b.okProbes = 0
	b.probing = false
	b.trips++
}

// shift records a state transition.
func (b *breaker) shift(now time.Duration, to BreakerState) {
	if b.state == to {
		return
	}
	if len(b.transitions) < transitionCap {
		b.transitions = append(b.transitions, BreakerTransition{At: now, From: b.state, To: to})
	} else {
		b.dropped++
	}
	b.state = to
}
