package cluster

import (
	"errors"
	"strings"
	"testing"

	"compilegate/internal/errclass"
	"compilegate/internal/sqlparser"
	"compilegate/internal/vtime"
)

// fakeNode records submissions and plays back scripted health/load.
type fakeNode struct {
	down       bool
	active     int
	overcommit float64
	thrash     float64
	brownedOut bool
	submitted  []string
	err        error
}

func (f *fakeNode) Submit(t *vtime.Task, sql string) error {
	f.submitted = append(f.submitted, sql)
	return f.err
}

func (f *fakeNode) Down() bool               { return f.down }
func (f *fakeNode) ActiveCompiles() int      { return f.active }
func (f *fakeNode) OvercommitRatio() float64 { return f.overcommit }
func (f *fakeNode) BrownedOut() bool         { return f.brownedOut }
func (f *fakeNode) ThrashScore() float64     { return f.thrash }

func fleet(n int) ([]*fakeNode, []Node) {
	fakes := make([]*fakeNode, n)
	nodes := make([]Node, n)
	for i := range fakes {
		fakes[i] = &fakeNode{}
		nodes[i] = fakes[i]
	}
	return fakes, nodes
}

func TestPolicyValidation(t *testing.T) {
	for _, p := range []Policy{"", RoundRobin, LeastLoaded, Affinity} {
		if !p.Valid() {
			t.Errorf("policy %q should be valid", p)
		}
	}
	if Policy("random").Valid() {
		t.Error("unknown policy validated")
	}
	if Policy("").String() != "round-robin" {
		t.Errorf("empty policy renders %q, want round-robin", Policy("").String())
	}
	if _, err := New("bogus", []Node{&fakeNode{}}); err == nil {
		t.Error("router accepted an unknown policy")
	}
	if _, err := New(RoundRobin, nil); err == nil {
		t.Error("router accepted an empty fleet")
	}
}

func TestRoundRobinCyclesAndSkipsDownNodes(t *testing.T) {
	fakes, nodes := fleet(3)
	r, err := New(RoundRobin, nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := r.Submit(nil, "q"); err != nil {
			t.Fatal(err)
		}
	}
	for i, f := range fakes {
		if len(f.submitted) != 2 {
			t.Errorf("node %d got %d submissions, want 2", i, len(f.submitted))
		}
	}

	// Node 1 crashes: its turn falls through to node 2 and the cursor
	// continues from there.
	fakes[1].down = true
	for i := 0; i < 4; i++ {
		r.Submit(nil, "q")
	}
	if len(fakes[1].submitted) != 2 {
		t.Errorf("down node received %d submissions, want still 2", len(fakes[1].submitted))
	}
	if got := len(fakes[0].submitted) + len(fakes[2].submitted); got != 8 {
		t.Errorf("live nodes received %d total, want 8", got)
	}
	if r.Rerouted() == 0 {
		t.Error("rerouted counter did not move while a node was down")
	}
}

func TestRoundRobinAllDownFallsBack(t *testing.T) {
	fakes, nodes := fleet(2)
	for _, f := range fakes {
		f.down = true
		f.err = errors.New("crashed")
	}
	r, _ := New(RoundRobin, nodes)
	if err := r.Submit(nil, "q"); err == nil {
		t.Fatal("submission to an all-down fleet should surface the node error")
	}
	if len(fakes[0].submitted)+len(fakes[1].submitted) != 1 {
		t.Fatal("all-down fleet should still receive the doomed submission")
	}
}

func TestLeastLoadedPicksArgminWithStableTies(t *testing.T) {
	fakes, nodes := fleet(3)
	fakes[0].active, fakes[1].active, fakes[2].active = 4, 1, 1
	r, _ := New(LeastLoaded, nodes)
	r.Submit(nil, "q")
	if len(fakes[1].submitted) != 1 {
		t.Fatal("least-loaded must break ties to the lowest index")
	}
	fakes[1].active = 9
	r.Submit(nil, "q")
	if len(fakes[2].submitted) != 1 {
		t.Fatal("least-loaded did not track the load signal")
	}
	// The lightest node crashing removes it from consideration.
	fakes[2].down = true
	r.Submit(nil, "q")
	if len(fakes[0].submitted) != 1 {
		t.Fatal("least-loaded routed to a down node")
	}
}

func TestAffinityPinsStatementsToHomes(t *testing.T) {
	fakes, nodes := fleet(4)
	r, _ := New(Affinity, nodes)
	stmts := []string{
		"SELECT * FROM dim_customer WHERE dim_customer.customer_id = 1",
		"SELECT * FROM dim_product WHERE dim_product.product_id = 37",
		"SELECT * FROM dim_customer WHERE dim_customer.customer_id = 202",
	}
	homes := make([]int, len(stmts))
	for si, sql := range stmts {
		want := int(sqlparser.Hash64(sqlparser.Fingerprint(sql)) % uint64(len(nodes)))
		homes[si] = want
		before := len(fakes[want].submitted)
		for i := 0; i < 3; i++ {
			r.Submit(nil, sql)
		}
		if got := len(fakes[want].submitted) - before; got != 3 {
			t.Errorf("statement %d: home node %d got %d of 3 submissions", si, want, got)
		}
	}

	// A down home falls through to the next live node, and comes back
	// after restart.
	home := homes[0]
	fakes[home].down = true
	r.Submit(nil, stmts[0])
	fallback := (home + 1) % len(nodes)
	if len(fakes[fallback].submitted) == 0 {
		t.Fatal("affinity did not fall through past the down home")
	}
	fakes[home].down = false
	before := len(fakes[home].submitted)
	r.Submit(nil, stmts[0])
	if len(fakes[home].submitted) != before+1 {
		t.Fatal("affinity did not return to the restarted home")
	}
}

// TestAllExcludedFallbackIsPolicyFirstChoice pins the all-excluded
// contract across every policy: the doomed submission goes to the
// policy's first choice computed without the eligibility filter.
// (pickLeastLoaded used to return node 0 here, silently diverging from
// the round-robin and affinity paths.)
func TestAllExcludedFallbackIsPolicyFirstChoice(t *testing.T) {
	affSQL := "SELECT * FROM dim_customer WHERE dim_customer.customer_id = 1"
	affHome := func(n int) int {
		return int(sqlparser.Hash64(sqlparser.Fingerprint(affSQL)) % uint64(n))
	}
	cases := []struct {
		name   string
		policy Policy
		sql    string
		active [3]int
		want   func() int
	}{
		{"round-robin-cursor", RoundRobin, "q", [3]int{0, 0, 0},
			func() int { return 0 }},
		{"affinity-home", Affinity, affSQL, [3]int{0, 0, 0},
			func() int { return affHome(3) }},
		{"least-loaded-argmin", LeastLoaded, "q", [3]int{4, 1, 2},
			func() int { return 1 }},
		{"least-loaded-tie-lowest-index", LeastLoaded, "q", [3]int{3, 3, 3},
			func() int { return 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fakes, nodes := fleet(3)
			for i, f := range fakes {
				f.down = true
				f.err = errors.New("crashed")
				f.active = tc.active[i]
			}
			r, err := New(tc.policy, nodes)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Submit(nil, tc.sql); err == nil {
				t.Fatal("all-down fleet should surface the node error")
			}
			want := tc.want()
			if got := len(fakes[want].submitted); got != 1 {
				t.Fatalf("first choice node %d got %d submissions (routed: %v)",
					want, got, []uint64{r.Routed(0), r.Routed(1), r.Routed(2)})
			}
			if r.AllExcluded() != 1 {
				t.Fatalf("all-excluded counter = %d, want 1", r.AllExcluded())
			}
		})
	}
}

// TestHealthExclusion pins the health envelope: every policy skips
// nodes past the overcommit/thrash thresholds (and browned-out ones
// when ShedBrownout is set) exactly like crashed nodes.
func TestHealthExclusion(t *testing.T) {
	newHealthy := func(policy Policy, h HealthConfig) ([]*fakeNode, *Router) {
		fakes, nodes := fleet(3)
		r, err := NewRouter(Config{Policy: policy, Health: h}, nodes)
		if err != nil {
			t.Fatal(err)
		}
		return fakes, r
	}

	// Overcommit past the default 1.25 threshold excludes the node.
	fakes, r := newHealthy(RoundRobin, HealthConfig{Enabled: true})
	fakes[0].overcommit = 1.4
	for i := 0; i < 6; i++ {
		r.Submit(nil, "q")
	}
	if len(fakes[0].submitted) != 0 {
		t.Fatalf("overcommitted node took %d submissions", len(fakes[0].submitted))
	}
	if len(fakes[1].submitted)+len(fakes[2].submitted) != 6 {
		t.Fatal("healthy nodes did not absorb the load")
	}
	if r.Rerouted() == 0 {
		t.Error("rerouted counter did not move for a health exclusion")
	}

	// Thrash score past the default 0.9 threshold excludes too; at the
	// threshold it does not (inclusive envelope).
	fakes, r = newHealthy(RoundRobin, HealthConfig{Enabled: true})
	fakes[1].thrash = 0.95
	fakes[2].thrash = 0.9
	for i := 0; i < 6; i++ {
		r.Submit(nil, "q")
	}
	if len(fakes[1].submitted) != 0 {
		t.Fatalf("thrashing node took %d submissions", len(fakes[1].submitted))
	}
	if len(fakes[2].submitted) == 0 {
		t.Fatal("node at the thrash threshold was excluded")
	}

	// Brown-out only matters under ShedBrownout.
	fakes, r = newHealthy(LeastLoaded, HealthConfig{Enabled: true})
	fakes[0].brownedOut = true
	r.Submit(nil, "q")
	if len(fakes[0].submitted) != 1 {
		t.Fatal("browned-out node excluded without ShedBrownout")
	}
	fakes, r = newHealthy(LeastLoaded, HealthConfig{Enabled: true, ShedBrownout: true})
	fakes[0].brownedOut = true
	r.Submit(nil, "q")
	if len(fakes[0].submitted) != 0 {
		t.Fatal("ShedBrownout did not exclude the browned-out node")
	}
	if len(fakes[1].submitted) != 1 {
		t.Fatal("least-loaded did not move to the next healthy node")
	}
}

// TestFailoverResubmission pins the failover plane: crashed responses
// hop to the next eligible node within the hop budget, other error
// classes surface immediately, and an exhausted fleet stops masking.
func TestFailoverResubmission(t *testing.T) {
	fakes, nodes := fleet(3)
	r, err := NewRouter(Config{Policy: RoundRobin, FailoverHops: 2}, nodes)
	if err != nil {
		t.Fatal(err)
	}

	// Node 0 returns a crashed response (an in-flight loss: Down() is
	// still false); the router resubmits to node 1, which succeeds.
	fakes[0].err = errclass.Crashed
	if err := r.Submit(nil, "q"); err != nil {
		t.Fatalf("failover did not mask the crash: %v", err)
	}
	if len(fakes[0].submitted) != 1 || len(fakes[1].submitted) != 1 {
		t.Fatalf("submissions = %d/%d/%d, want 1/1/0",
			len(fakes[0].submitted), len(fakes[1].submitted), len(fakes[2].submitted))
	}
	if r.Resubmitted() != 1 {
		t.Fatalf("resubmitted = %d, want 1", r.Resubmitted())
	}

	// Shed responses are the admission policy speaking, not a dead
	// node: no failover, whichever node the cursor lands on.
	for _, f := range fakes {
		f.err = errclass.Shed
	}
	if err := r.Submit(nil, "q"); !errors.Is(err, errclass.Shed) {
		t.Fatalf("shed response was masked: %v", err)
	}
	if r.Resubmitted() != 1 {
		t.Fatal("shed response triggered failover")
	}

	// Every node crashing exhausts the hop budget: two hops after the
	// first attempt, then the error surfaces.
	fakes, nodes = fleet(3)
	for _, f := range fakes {
		f.err = errclass.Crashed
	}
	r, _ = NewRouter(Config{Policy: RoundRobin, FailoverHops: 2}, nodes)
	if err := r.Submit(nil, "q"); !errors.Is(err, errclass.Crashed) {
		t.Fatalf("exhausted failover returned %v", err)
	}
	total := len(fakes[0].submitted) + len(fakes[1].submitted) + len(fakes[2].submitted)
	if total != 3 || r.Resubmitted() != 2 {
		t.Fatalf("attempts = %d, resubmitted = %d, want 3 and 2", total, r.Resubmitted())
	}
}

// TestRouterBreakerTripsAndExcludes drives classified failures through
// the router until the node's breaker opens, then checks routing
// avoids it and the accessors report the trip.
func TestRouterBreakerTripsAndExcludes(t *testing.T) {
	fakes, nodes := fleet(2)
	cfg := Config{Policy: RoundRobin, Breaker: BreakerConfig{Enabled: true, Threshold: 3}}
	r, err := NewRouter(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := r.BreakerState(0); !ok || st != BreakerClosed {
		t.Fatalf("initial breaker state = %s/%v", st, ok)
	}
	// Node 0 sheds everything it sees; round-robin alternates, so node
	// 0 accumulates consecutive failures while node 1 stays healthy.
	fakes[0].err = errclass.Shed
	for i := 0; i < 8; i++ {
		r.Submit(nil, "q")
	}
	if st, _ := r.BreakerState(0); st != BreakerOpen {
		t.Fatalf("node 0 breaker = %s, want open", st)
	}
	if r.BreakerTrips(0) != 1 || r.BreakerTrips(1) != 0 {
		t.Fatalf("trips = %d/%d, want 1/0", r.BreakerTrips(0), r.BreakerTrips(1))
	}
	if len(r.BreakerTransitions(0)) != 1 {
		t.Fatalf("transition trail = %v", r.BreakerTransitions(0))
	}
	// With the breaker open (and a nil-task clock pinned at 0, inside
	// the cooldown) every further submission lands on node 1.
	before := len(fakes[0].submitted)
	for i := 0; i < 4; i++ {
		if err := r.Submit(nil, "q"); err != nil {
			t.Fatal(err)
		}
	}
	if len(fakes[0].submitted) != before {
		t.Fatal("open breaker did not exclude the node")
	}
	rep := r.Report()
	if !strings.Contains(rep, "breaker=open trips=1") || !strings.Contains(rep, "resubmitted=0") {
		t.Fatalf("report missing breaker fields:\n%s", rep)
	}
}

func TestRouterConfigValidation(t *testing.T) {
	_, nodes := fleet(2)
	if _, err := NewRouter(Config{Policy: RoundRobin, FailoverHops: -1}, nodes); err == nil {
		t.Fatal("negative failover hops accepted")
	}
	if _, err := NewRouter(Config{Policy: "bogus"}, nodes); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRoutedCountersAndReport(t *testing.T) {
	_, nodes := fleet(2)
	r, _ := New(RoundRobin, nodes)
	for i := 0; i < 5; i++ {
		r.Submit(nil, "q")
	}
	if r.Len() != 2 || r.Policy() != RoundRobin {
		t.Fatal("accessors broken")
	}
	if r.Routed(0)+r.Routed(1) != 5 {
		t.Fatalf("routed counters sum to %d, want 5", r.Routed(0)+r.Routed(1))
	}
	rep := r.Report()
	if !strings.Contains(rep, "policy=round-robin") || !strings.Contains(rep, "node 1") {
		t.Fatalf("report missing fields:\n%s", rep)
	}
}
