package cluster

import (
	"errors"
	"strings"
	"testing"

	"compilegate/internal/sqlparser"
	"compilegate/internal/vtime"
)

// fakeNode records submissions and plays back scripted health/load.
type fakeNode struct {
	down      bool
	active    int
	submitted []string
	err       error
}

func (f *fakeNode) Submit(t *vtime.Task, sql string) error {
	f.submitted = append(f.submitted, sql)
	return f.err
}

func (f *fakeNode) Down() bool          { return f.down }
func (f *fakeNode) ActiveCompiles() int { return f.active }

func fleet(n int) ([]*fakeNode, []Node) {
	fakes := make([]*fakeNode, n)
	nodes := make([]Node, n)
	for i := range fakes {
		fakes[i] = &fakeNode{}
		nodes[i] = fakes[i]
	}
	return fakes, nodes
}

func TestPolicyValidation(t *testing.T) {
	for _, p := range []Policy{"", RoundRobin, LeastLoaded, Affinity} {
		if !p.Valid() {
			t.Errorf("policy %q should be valid", p)
		}
	}
	if Policy("random").Valid() {
		t.Error("unknown policy validated")
	}
	if Policy("").String() != "round-robin" {
		t.Errorf("empty policy renders %q, want round-robin", Policy("").String())
	}
	if _, err := New("bogus", []Node{&fakeNode{}}); err == nil {
		t.Error("router accepted an unknown policy")
	}
	if _, err := New(RoundRobin, nil); err == nil {
		t.Error("router accepted an empty fleet")
	}
}

func TestRoundRobinCyclesAndSkipsDownNodes(t *testing.T) {
	fakes, nodes := fleet(3)
	r, err := New(RoundRobin, nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := r.Submit(nil, "q"); err != nil {
			t.Fatal(err)
		}
	}
	for i, f := range fakes {
		if len(f.submitted) != 2 {
			t.Errorf("node %d got %d submissions, want 2", i, len(f.submitted))
		}
	}

	// Node 1 crashes: its turn falls through to node 2 and the cursor
	// continues from there.
	fakes[1].down = true
	for i := 0; i < 4; i++ {
		r.Submit(nil, "q")
	}
	if len(fakes[1].submitted) != 2 {
		t.Errorf("down node received %d submissions, want still 2", len(fakes[1].submitted))
	}
	if got := len(fakes[0].submitted) + len(fakes[2].submitted); got != 8 {
		t.Errorf("live nodes received %d total, want 8", got)
	}
	if r.Rerouted() == 0 {
		t.Error("rerouted counter did not move while a node was down")
	}
}

func TestRoundRobinAllDownFallsBack(t *testing.T) {
	fakes, nodes := fleet(2)
	for _, f := range fakes {
		f.down = true
		f.err = errors.New("crashed")
	}
	r, _ := New(RoundRobin, nodes)
	if err := r.Submit(nil, "q"); err == nil {
		t.Fatal("submission to an all-down fleet should surface the node error")
	}
	if len(fakes[0].submitted)+len(fakes[1].submitted) != 1 {
		t.Fatal("all-down fleet should still receive the doomed submission")
	}
}

func TestLeastLoadedPicksArgminWithStableTies(t *testing.T) {
	fakes, nodes := fleet(3)
	fakes[0].active, fakes[1].active, fakes[2].active = 4, 1, 1
	r, _ := New(LeastLoaded, nodes)
	r.Submit(nil, "q")
	if len(fakes[1].submitted) != 1 {
		t.Fatal("least-loaded must break ties to the lowest index")
	}
	fakes[1].active = 9
	r.Submit(nil, "q")
	if len(fakes[2].submitted) != 1 {
		t.Fatal("least-loaded did not track the load signal")
	}
	// The lightest node crashing removes it from consideration.
	fakes[2].down = true
	r.Submit(nil, "q")
	if len(fakes[0].submitted) != 1 {
		t.Fatal("least-loaded routed to a down node")
	}
}

func TestAffinityPinsStatementsToHomes(t *testing.T) {
	fakes, nodes := fleet(4)
	r, _ := New(Affinity, nodes)
	stmts := []string{
		"SELECT * FROM dim_customer WHERE dim_customer.customer_id = 1",
		"SELECT * FROM dim_product WHERE dim_product.product_id = 37",
		"SELECT * FROM dim_customer WHERE dim_customer.customer_id = 202",
	}
	homes := make([]int, len(stmts))
	for si, sql := range stmts {
		want := int(sqlparser.Hash64(sqlparser.Fingerprint(sql)) % uint64(len(nodes)))
		homes[si] = want
		before := len(fakes[want].submitted)
		for i := 0; i < 3; i++ {
			r.Submit(nil, sql)
		}
		if got := len(fakes[want].submitted) - before; got != 3 {
			t.Errorf("statement %d: home node %d got %d of 3 submissions", si, want, got)
		}
	}

	// A down home falls through to the next live node, and comes back
	// after restart.
	home := homes[0]
	fakes[home].down = true
	r.Submit(nil, stmts[0])
	fallback := (home + 1) % len(nodes)
	if len(fakes[fallback].submitted) == 0 {
		t.Fatal("affinity did not fall through past the down home")
	}
	fakes[home].down = false
	before := len(fakes[home].submitted)
	r.Submit(nil, stmts[0])
	if len(fakes[home].submitted) != before+1 {
		t.Fatal("affinity did not return to the restarted home")
	}
}

func TestRoutedCountersAndReport(t *testing.T) {
	_, nodes := fleet(2)
	r, _ := New(RoundRobin, nodes)
	for i := 0; i < 5; i++ {
		r.Submit(nil, "q")
	}
	if r.Len() != 2 || r.Policy() != RoundRobin {
		t.Fatal("accessors broken")
	}
	if r.Routed(0)+r.Routed(1) != 5 {
		t.Fatalf("routed counters sum to %d, want 5", r.Routed(0)+r.Routed(1))
	}
	rep := r.Report()
	if !strings.Contains(rep, "policy=round-robin") || !strings.Contains(rep, "node 1") {
		t.Fatalf("report missing fields:\n%s", rep)
	}
}
