package cluster

import (
	"errors"
	"testing"
	"time"

	"compilegate/internal/errclass"
)

// step is one scripted breaker interaction: an admit (checking the
// probe flag) or an observe, followed by the expected state.
type step struct {
	at      time.Duration
	admit   bool // call admit instead of observe
	err     error
	probe   bool // admit: expected probe flag; observe: the flag passed in
	state   BreakerState
	canAt   time.Duration // when set (>=0), also check canAdmit at this time
	canWant bool
}

// TestBreakerStateMachine walks the trip / cooldown / probe / re-trip
// sequences through scripted observation streams.
func TestBreakerStateMachine(t *testing.T) {
	cfg := BreakerConfig{Enabled: true, Threshold: 3, Cooldown: 30 * time.Second, Probes: 2}
	sec := func(n int) time.Duration { return time.Duration(n) * time.Second }
	cases := []struct {
		name  string
		steps []step
	}{
		{"trips-at-threshold", []step{
			{at: sec(1), err: errclass.Shed, state: BreakerClosed},
			{at: sec(2), err: errclass.Timeout, state: BreakerClosed},
			{at: sec(3), err: errclass.OOM, state: BreakerOpen},
		}},
		{"success-resets-streak", []step{
			{at: sec(1), err: errclass.Shed, state: BreakerClosed},
			{at: sec(2), err: errclass.Shed, state: BreakerClosed},
			{at: sec(3), err: nil, state: BreakerClosed},
			{at: sec(4), err: errclass.Shed, state: BreakerClosed},
			{at: sec(5), err: errclass.Shed, state: BreakerClosed},
			{at: sec(6), err: errclass.Crashed, state: BreakerOpen},
		}},
		{"unclassified-errors-do-not-count", []step{
			{at: sec(1), err: errors.New("parse error"), state: BreakerClosed},
			{at: sec(2), err: errors.New("parse error"), state: BreakerClosed},
			{at: sec(3), err: errors.New("parse error"), state: BreakerClosed},
			{at: sec(4), err: errors.New("parse error"), state: BreakerClosed},
		}},
		{"cooldown-gates-reentry", []step{
			{at: sec(1), err: errclass.Shed, state: BreakerClosed},
			{at: sec(2), err: errclass.Shed, state: BreakerClosed},
			{at: sec(3), err: errclass.Shed, state: BreakerOpen,
				canAt: sec(32), canWant: false},
			// Cooldown elapsed: admit moves open -> half-open and
			// reserves the single probe slot.
			{at: sec(33), admit: true, probe: true, state: BreakerHalfOpen,
				canAt: sec(34), canWant: false},
		}},
		{"probes-close-gradually", []step{
			{at: sec(1), err: errclass.Shed, state: BreakerClosed},
			{at: sec(2), err: errclass.Shed, state: BreakerClosed},
			{at: sec(3), err: errclass.Shed, state: BreakerOpen},
			{at: sec(40), admit: true, probe: true, state: BreakerHalfOpen},
			{at: sec(45), err: nil, probe: true, state: BreakerHalfOpen},
			{at: sec(46), admit: true, probe: true, state: BreakerHalfOpen},
			{at: sec(50), err: nil, probe: true, state: BreakerClosed},
		}},
		{"probe-failure-retrips", []step{
			{at: sec(1), err: errclass.Shed, state: BreakerClosed},
			{at: sec(2), err: errclass.Shed, state: BreakerClosed},
			{at: sec(3), err: errclass.Shed, state: BreakerOpen},
			{at: sec(40), admit: true, probe: true, state: BreakerHalfOpen},
			{at: sec(44), err: errclass.Crashed, probe: true, state: BreakerOpen,
				// The re-trip restarts the cooldown from t=44.
				canAt: sec(50), canWant: false},
			{at: sec(80), admit: true, probe: true, state: BreakerHalfOpen},
			{at: sec(81), err: nil, probe: true, state: BreakerHalfOpen},
			{at: sec(82), admit: true, probe: true, state: BreakerHalfOpen},
			{at: sec(83), err: nil, probe: true, state: BreakerClosed},
		}},
		{"stale-non-probe-outcomes-ignored", []step{
			{at: sec(1), err: errclass.Shed, state: BreakerClosed},
			{at: sec(2), err: errclass.Shed, state: BreakerClosed},
			{at: sec(3), err: errclass.Shed, state: BreakerOpen},
			// Outcomes of work admitted before the trip arrive late;
			// neither failures nor successes may move the machine.
			{at: sec(10), err: errclass.Crashed, state: BreakerOpen},
			{at: sec(11), err: nil, state: BreakerOpen},
			{at: sec(40), admit: true, probe: true, state: BreakerHalfOpen},
			{at: sec(41), err: errclass.Shed, state: BreakerHalfOpen},
			{at: sec(42), err: nil, probe: true, state: BreakerHalfOpen},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := newBreaker(cfg)
			for si, st := range tc.steps {
				if st.admit {
					if got := b.admit(st.at); got != st.probe {
						t.Fatalf("step %d: admit probe=%v, want %v", si, got, st.probe)
					}
				} else {
					b.observe(st.at, st.err, st.probe)
				}
				if b.state != st.state {
					t.Fatalf("step %d: state=%s, want %s", si, b.state, st.state)
				}
				if st.canAt > 0 {
					if got := b.canAdmit(st.canAt); got != st.canWant {
						t.Fatalf("step %d: canAdmit(%v)=%v, want %v", si, st.canAt, got, st.canWant)
					}
				}
			}
		})
	}
}

func TestBreakerDefaultsAndTransitions(t *testing.T) {
	cfg := BreakerConfig{Enabled: true}
	if cfg.threshold() != 5 || cfg.cooldown() != 45*time.Second || cfg.probes() != 3 {
		t.Fatalf("defaults = %d/%v/%d", cfg.threshold(), cfg.cooldown(), cfg.probes())
	}
	b := newBreaker(cfg)
	for i := 0; i < 5; i++ {
		b.observe(time.Duration(i)*time.Second, errclass.Shed, false)
	}
	if b.state != BreakerOpen || b.trips != 1 {
		t.Fatalf("state=%s trips=%d after 5 failures", b.state, b.trips)
	}
	want := []BreakerTransition{{At: 4 * time.Second, From: BreakerClosed, To: BreakerOpen}}
	if len(b.transitions) != 1 || b.transitions[0] != want[0] {
		t.Fatalf("transitions = %v, want %v", b.transitions, want)
	}
	if s := b.transitions[0].String(); s != "4s closed->open" {
		t.Fatalf("transition renders %q", s)
	}
	if BreakerClosed.String() != "closed" || BreakerOpen.String() != "open" || BreakerHalfOpen.String() != "half-open" {
		t.Fatal("state names changed")
	}
}

// TestBreakerTransitionLogBounded pins the transition-log cap: a
// breaker that flaps forever keeps its counters exact and drops only
// the trail's tail.
func TestBreakerTransitionLogBounded(t *testing.T) {
	cfg := BreakerConfig{Enabled: true, Threshold: 1, Cooldown: time.Second, Probes: 1}
	b := newBreaker(cfg)
	now := time.Duration(0)
	for i := 0; i < 200; i++ {
		// Trip (closed/half-open -> open), cool down, fail the probe.
		b.observe(now, errclass.Shed, false)
		now += 2 * time.Second
		if !b.canAdmit(now) {
			t.Fatalf("iteration %d: cooldown did not elapse", i)
		}
		if probe := b.admit(now); !probe {
			t.Fatalf("iteration %d: half-open did not probe", i)
		}
		b.observe(now, errclass.Shed, true)
		now += 2 * time.Second
	}
	if len(b.transitions) != transitionCap {
		t.Fatalf("transition log holds %d, want cap %d", len(b.transitions), transitionCap)
	}
	if b.dropped == 0 {
		t.Fatal("dropped counter did not move past the cap")
	}
	if b.trips < 200 {
		t.Fatalf("trips = %d, want >= 200", b.trips)
	}
}
