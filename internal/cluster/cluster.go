// Package cluster models a fleet of independent engine instances behind
// a deterministic router — the deployment architecture real systems put
// in front of the paper's single server: N nodes, each with its own
// memory budget, governor, plan cache, and buffer pool, sharing nothing
// but the event loop and the immutable run snapshot.
//
// Determinism is by construction: the node list is fixed at router
// construction, every routing decision is a pure function of the
// statement text and per-node counters mutated only from task context
// on the run's single event loop, and no policy draws randomness. A
// cluster run is therefore exactly as reproducible as a single-server
// run, and sweep shard/worker invariance carries over untouched.
package cluster

import (
	"fmt"
	"strings"

	"compilegate/internal/sqlparser"
	"compilegate/internal/vtime"
	"compilegate/internal/workload"
)

// Policy names a routing discipline.
type Policy string

const (
	// RoundRobin cycles through the nodes in construction order,
	// skipping crashed nodes — external load balancing with health
	// checks and no statement inspection.
	RoundRobin Policy = "round-robin"
	// LeastLoaded picks the live node with the fewest active
	// compilations (ties break to the lowest index) — the router sheds
	// around a node whose compile queue is backing up.
	LeastLoaded Policy = "least-loaded"
	// Affinity hashes the statement fingerprint to a home node, so a
	// recurring statement always lands where its plan is already
	// cached; crashed homes fall through to the next live node.
	Affinity Policy = "affinity"
)

// Valid reports whether the policy names a known discipline. The empty
// policy is valid and means RoundRobin, so zero-valued options keep the
// classic behaviour.
func (p Policy) Valid() bool {
	switch p {
	case "", RoundRobin, LeastLoaded, Affinity:
		return true
	}
	return false
}

func (p Policy) orDefault() Policy {
	if p == "" {
		return RoundRobin
	}
	return p
}

// String returns the canonical policy name.
func (p Policy) String() string { return string(p.orDefault()) }

// Node is the router's view of one engine instance: it accepts
// submissions, reports whether it is crashed, and exposes the load
// signal the least-loaded policy balances on. engine.Server implements
// it.
type Node interface {
	workload.Submitter
	// Down reports whether the node is crashed (submissions fail until
	// it restarts).
	Down() bool
	// ActiveCompiles is the node's in-flight compilation count.
	ActiveCompiles() int
}

// Router fronts a fixed fleet of nodes and implements
// workload.Submitter: clients submit to the router, the router picks a
// node under its policy and forwards the query. When every node is
// down the submission still goes to the policy's first choice, whose
// crash error flows back to the client's retry loop — the router
// models a load balancer, not a queue.
type Router struct {
	policy Policy
	nodes  []Node

	next     int      // round-robin cursor
	routed   []uint64 // per-node forwarded submissions
	rerouted uint64   // submissions steered away from a down node
}

// New builds a router over the nodes in the given (fixed) order.
func New(policy Policy, nodes []Node) (*Router, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	if !policy.Valid() {
		return nil, fmt.Errorf("cluster: unknown policy %q", string(policy))
	}
	return &Router{
		policy: policy.orDefault(),
		nodes:  nodes,
		routed: make([]uint64, len(nodes)),
	}, nil
}

// Policy returns the routing discipline.
func (r *Router) Policy() Policy { return r.policy }

// Len returns the node count.
func (r *Router) Len() int { return len(r.nodes) }

// Routed returns how many submissions were forwarded to node i.
func (r *Router) Routed(i int) uint64 { return r.routed[i] }

// Rerouted returns how many submissions were steered away from a down
// node (their policy's first choice was crashed).
func (r *Router) Rerouted() uint64 { return r.rerouted }

// Submit implements workload.Submitter: route one query to a node.
// Must be called from task context; the counters it mutates are what
// make later routing decisions, so calls are strictly ordered by the
// event loop.
func (r *Router) Submit(t *vtime.Task, sql string) error {
	i := r.pick(sql)
	r.routed[i]++
	return r.nodes[i].Submit(t, sql)
}

// pick selects the target node index under the policy.
func (r *Router) pick(sql string) int {
	switch r.policy {
	case LeastLoaded:
		return r.pickLeastLoaded()
	case Affinity:
		home := int(sqlparser.Hash64(sqlparser.Fingerprint(sql)) % uint64(len(r.nodes)))
		return r.liveFrom(home)
	default: // RoundRobin
		i := r.liveFrom(r.next)
		r.next = (i + 1) % len(r.nodes)
		return i
	}
}

// liveFrom returns the first live node at or after start (wrapping), or
// start itself when the whole fleet is down.
func (r *Router) liveFrom(start int) int {
	n := len(r.nodes)
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if !r.nodes[i].Down() {
			if k > 0 {
				r.rerouted++
			}
			return i
		}
	}
	return start
}

// pickLeastLoaded returns the live node with the fewest active
// compilations, lowest index on ties; node 0 when the fleet is down.
func (r *Router) pickLeastLoaded() int {
	best, bestLoad := -1, 0
	for i, node := range r.nodes {
		if node.Down() {
			continue
		}
		if load := node.ActiveCompiles(); best < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// Report renders the routing distribution for diagnostics.
func (r *Router) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "router policy=%s nodes=%d rerouted=%d\n", r.policy, len(r.nodes), r.rerouted)
	for i, n := range r.routed {
		fmt.Fprintf(&sb, "  node %d: routed=%d\n", i, n)
	}
	return sb.String()
}
