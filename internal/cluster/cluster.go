// Package cluster models a fleet of independent engine instances behind
// a deterministic router — the deployment architecture real systems put
// in front of the paper's single server: N nodes, each with its own
// memory budget, governor, plan cache, and buffer pool, sharing nothing
// but the event loop and the immutable run snapshot.
//
// Beyond crash-skipping, the router can run as a self-healing control
// loop: every node exposes a health signal (memory overcommit, governor
// brown-out, a thrash score), a per-node circuit breaker trips on
// observed errclass failures and re-admits a recovering node through
// half-open probes, and failover resubmission retries a crashed
// response on the next healthy node within a bounded hop budget. All
// three mechanisms are off by default; New preserves the classic
// dispatcher exactly.
//
// Determinism is by construction: the node list is fixed at router
// construction, every routing decision is a pure function of the
// statement text, the virtual clock, and per-node state mutated only
// from task context on the run's single event loop, and no policy or
// breaker draws randomness. A cluster run is therefore exactly as
// reproducible as a single-server run, and sweep shard/worker
// invariance carries over untouched.
package cluster

import (
	"fmt"
	"strings"
	"time"

	"compilegate/internal/errclass"
	"compilegate/internal/sqlparser"
	"compilegate/internal/vtime"
	"compilegate/internal/workload"
)

// Policy names a routing discipline.
type Policy string

const (
	// RoundRobin cycles through the nodes in construction order,
	// skipping crashed nodes — external load balancing with health
	// checks and no statement inspection.
	RoundRobin Policy = "round-robin"
	// LeastLoaded picks the live node with the fewest active
	// compilations (ties break to the lowest index) — the router sheds
	// around a node whose compile queue is backing up.
	LeastLoaded Policy = "least-loaded"
	// Affinity hashes the statement fingerprint to a home node, so a
	// recurring statement always lands where its plan is already
	// cached; crashed homes fall through to the next live node.
	Affinity Policy = "affinity"
)

// Valid reports whether the policy names a known discipline. The empty
// policy is valid and means RoundRobin, so zero-valued options keep the
// classic behaviour.
func (p Policy) Valid() bool {
	switch p {
	case "", RoundRobin, LeastLoaded, Affinity:
		return true
	}
	return false
}

func (p Policy) orDefault() Policy {
	if p == "" {
		return RoundRobin
	}
	return p
}

// String returns the canonical policy name.
func (p Policy) String() string { return string(p.orDefault()) }

// Node is the router's view of one engine instance: it accepts
// submissions, reports whether it is crashed, and exposes the load and
// health signals routing decisions read. engine.Server implements it.
type Node interface {
	workload.Submitter
	// Down reports whether the node is crashed (submissions fail until
	// it restarts).
	Down() bool
	// ActiveCompiles is the node's in-flight compilation count.
	ActiveCompiles() int
	// OvercommitRatio is the node's wired-memory overcommit ratio
	// (above 1 the node is paging; see mem.Budget.OvercommitRatio).
	OvercommitRatio() float64
	// BrownedOut reports whether the node's governor is in its
	// sustained-pressure brown-out mode.
	BrownedOut() bool
	// ThrashScore is the node's paging-slowdown severity normalized to
	// [0, 1]: 0 is healthy, 1 is at the pressure model's slowdown cap
	// (or predicted memory exhaustion).
	ThrashScore() float64
}

// HealthConfig turns on health-aware node exclusion: every routing
// policy skips nodes whose health signal crosses these thresholds, the
// same way all policies already skip crashed nodes. Exclusion (rather
// than weighting) keeps routing decisions pure threshold functions of
// node state — deterministic and cheap.
type HealthConfig struct {
	// Enabled turns health exclusion on.
	Enabled bool
	// MaxOvercommit excludes a node whose wired-memory overcommit
	// ratio exceeds it (0 defaults to 1.25 — comfortably past the
	// paging threshold, so brief excursions don't flap routing).
	MaxOvercommit float64
	// MaxThrash excludes a node whose thrash score exceeds it
	// (0 defaults to 0.9).
	MaxThrash float64
	// ShedBrownout additionally excludes nodes whose governor is in
	// brown-out (off by default: a browned-out node still completes
	// work, just with degraded plans).
	ShedBrownout bool
}

func (h HealthConfig) maxOvercommit() float64 {
	if h.MaxOvercommit <= 0 {
		return 1.25
	}
	return h.MaxOvercommit
}

func (h HealthConfig) maxThrash() float64 {
	if h.MaxThrash <= 0 {
		return 0.9
	}
	return h.MaxThrash
}

// Config assembles a Router. The zero value (plus a policy) is the
// classic blind dispatcher; Health, Breaker, and FailoverHops each
// opt into one self-healing mechanism independently.
type Config struct {
	// Policy is the routing discipline (zero value: round-robin).
	Policy Policy
	// Health configures health-aware node exclusion.
	Health HealthConfig
	// Breaker configures the per-node circuit breakers.
	Breaker BreakerConfig
	// FailoverHops bounds router-level failover resubmission: when a
	// routed submission comes back with a crashed-class error, the
	// router resubmits it to the next eligible node up to this many
	// times before surfacing the error to the client. 0 disables
	// failover (the classic behaviour).
	FailoverHops int
}

// Router fronts a fixed fleet of nodes and implements
// workload.Submitter: clients submit to the router, the router picks a
// node under its policy and forwards the query. When every node is
// excluded (down, tripped, or unhealthy) the submission still goes to
// the policy's first choice, whose error flows back to the client's
// retry loop — the router models a load balancer, not a queue.
type Router struct {
	cfg   Config
	nodes []Node

	next        int      // round-robin cursor
	routed      []uint64 // per-node forwarded submissions
	rerouted    uint64   // submissions steered away from the policy's first choice
	resubmitted uint64   // failover resubmissions after a crashed response
	allExcluded uint64   // submissions forced onto an excluded fleet
	breakers    []*breaker
}

// New builds a classic router (no health exclusion, breakers, or
// failover) over the nodes in the given (fixed) order.
func New(policy Policy, nodes []Node) (*Router, error) {
	return NewRouter(Config{Policy: policy}, nodes)
}

// NewRouter builds a router from a full config over the nodes in the
// given (fixed) order.
func NewRouter(cfg Config, nodes []Node) (*Router, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	if !cfg.Policy.Valid() {
		return nil, fmt.Errorf("cluster: unknown policy %q", string(cfg.Policy))
	}
	if cfg.FailoverHops < 0 {
		return nil, fmt.Errorf("cluster: negative failover hops %d", cfg.FailoverHops)
	}
	cfg.Policy = cfg.Policy.orDefault()
	r := &Router{
		cfg:    cfg,
		nodes:  nodes,
		routed: make([]uint64, len(nodes)),
	}
	if cfg.Breaker.Enabled {
		r.breakers = make([]*breaker, len(nodes))
		for i := range r.breakers {
			r.breakers[i] = newBreaker(cfg.Breaker)
		}
	}
	return r, nil
}

// Policy returns the routing discipline.
func (r *Router) Policy() Policy { return r.cfg.Policy }

// Len returns the node count.
func (r *Router) Len() int { return len(r.nodes) }

// Routed returns how many submissions were forwarded to node i.
func (r *Router) Routed(i int) uint64 { return r.routed[i] }

// Rerouted returns how many submissions were steered away from their
// policy's first choice because it was down, tripped, or unhealthy.
func (r *Router) Rerouted() uint64 { return r.rerouted }

// Resubmitted returns how many failover resubmissions the router made
// after crashed responses.
func (r *Router) Resubmitted() uint64 { return r.resubmitted }

// AllExcluded returns how many submissions found every node excluded
// and went to the policy's first choice anyway.
func (r *Router) AllExcluded() uint64 { return r.allExcluded }

// BreakerState returns node i's breaker state; ok is false when
// breakers are disabled.
func (r *Router) BreakerState(i int) (state BreakerState, ok bool) {
	if r.breakers == nil {
		return BreakerClosed, false
	}
	return r.breakers[i].state, true
}

// BreakerTrips returns how many times node i's breaker tripped open
// (0 when breakers are disabled).
func (r *Router) BreakerTrips(i int) uint64 {
	if r.breakers == nil {
		return 0
	}
	return r.breakers[i].trips
}

// BreakerTransitions returns node i's breaker transition trail in
// virtual-time order (nil when breakers are disabled). The returned
// slice is the router's own; callers must not mutate it.
func (r *Router) BreakerTransitions(i int) []BreakerTransition {
	if r.breakers == nil {
		return nil
	}
	return r.breakers[i].transitions
}

// taskNow reads the virtual clock; a nil task (unit tests driving the
// router directly) reads as t=0.
func taskNow(t *vtime.Task) time.Duration {
	if t == nil {
		return 0
	}
	return t.Now()
}

// Submit implements workload.Submitter: route one query to a node.
// Must be called from task context; the state it mutates is what makes
// later routing decisions, so calls are strictly ordered by the event
// loop. With FailoverHops > 0, a crashed-class response is resubmitted
// to the next eligible node instead of surfacing immediately — the
// load balancer masking a node loss from the client, one layer below
// the client's own retry/backoff plane.
func (r *Router) Submit(t *vtime.Task, sql string) error {
	i, probe := r.pick(taskNow(t), sql, -1)
	err := r.forward(t, i, probe, sql)
	for hop := 0; hop < r.cfg.FailoverHops; hop++ {
		if err == nil || errclass.Of(err) != errclass.Crashed {
			return err
		}
		// Re-pick at the post-attempt clock, avoiding the node that just
		// failed; when the fleet has nowhere else to offer, stop masking
		// and let the client's retry loop take over.
		j, probe := r.pick(taskNow(t), sql, i)
		if j == i {
			return err
		}
		r.resubmitted++
		i = j
		err = r.forward(t, i, probe, sql)
	}
	return err
}

// forward sends one submission to node i and feeds the outcome to the
// node's breaker.
func (r *Router) forward(t *vtime.Task, i int, probe bool, sql string) error {
	r.routed[i]++
	err := r.nodes[i].Submit(t, sql)
	if r.breakers != nil {
		r.breakers[i].observe(taskNow(t), err, probe)
	}
	return err
}

// eligible reports whether node i may take a submission at virtual
// time now: not crashed (or breaker admitting), and inside the health
// envelope.
func (r *Router) eligible(now time.Duration, i int) bool {
	n := r.nodes[i]
	if r.breakers != nil {
		// With breakers armed the router gives up its liveness oracle: a
		// down node is discovered by its fail-fast crashed responses
		// tripping the breaker, and re-admitted through half-open probes
		// after restart — the router only knows what its own traffic has
		// taught it.
		if !r.breakers[i].canAdmit(now) {
			return false
		}
	} else if n.Down() {
		return false
	}
	if h := r.cfg.Health; h.Enabled {
		if n.OvercommitRatio() > h.maxOvercommit() {
			return false
		}
		if n.ThrashScore() > h.maxThrash() {
			return false
		}
		if h.ShedBrownout && n.BrownedOut() {
			return false
		}
	}
	return true
}

// pick selects the target node index under the policy at virtual time
// now, skipping avoid (the node a failover hop just watched crash;
// -1 for the first attempt), and commits the choice against the
// node's breaker. probe reports whether the submission is a half-open
// breaker probe.
func (r *Router) pick(now time.Duration, sql string, avoid int) (i int, probe bool) {
	switch r.cfg.Policy {
	case LeastLoaded:
		i = r.pickLeastLoaded(now, avoid)
	case Affinity:
		home := int(sqlparser.Hash64(sqlparser.Fingerprint(sql)) % uint64(len(r.nodes)))
		i = r.eligibleFrom(now, home, avoid)
	default: // RoundRobin
		i = r.eligibleFrom(now, r.next, avoid)
		r.next = (i + 1) % len(r.nodes)
	}
	if r.breakers != nil {
		probe = r.breakers[i].admit(now)
	}
	return i, probe
}

// eligibleFrom returns the first eligible node at or after start
// (wrapping), or start itself when the whole fleet is excluded — the
// policy's first choice takes the doomed submission and its error
// flows back to the client.
func (r *Router) eligibleFrom(now time.Duration, start, avoid int) int {
	n := len(r.nodes)
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if i == avoid || !r.eligible(now, i) {
			continue
		}
		if k > 0 {
			r.rerouted++
		}
		return i
	}
	r.allExcluded++
	return start
}

// pickLeastLoaded returns the eligible node with the fewest active
// compilations, lowest index on ties. With the whole fleet excluded it
// falls back to the policy's first choice — the same argmin ignoring
// eligibility — matching the fallback contract of the other policies
// (it used to default to node 0, silently diverging from them).
func (r *Router) pickLeastLoaded(now time.Duration, avoid int) int {
	best, bestLoad := -1, 0
	for i, node := range r.nodes {
		if i == avoid || !r.eligible(now, i) {
			continue
		}
		if load := node.ActiveCompiles(); best < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best >= 0 {
		return best
	}
	r.allExcluded++
	for i, node := range r.nodes {
		if load := node.ActiveCompiles(); best < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// Report renders the routing distribution for diagnostics.
func (r *Router) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "router policy=%s nodes=%d rerouted=%d", r.cfg.Policy, len(r.nodes), r.rerouted)
	if r.breakers != nil || r.cfg.FailoverHops > 0 || r.cfg.Health.Enabled {
		fmt.Fprintf(&sb, " resubmitted=%d all-excluded=%d", r.resubmitted, r.allExcluded)
	}
	sb.WriteString("\n")
	for i, n := range r.routed {
		fmt.Fprintf(&sb, "  node %d: routed=%d", i, n)
		if r.breakers != nil {
			b := r.breakers[i]
			fmt.Fprintf(&sb, " breaker=%s trips=%d", b.state, b.trips)
			if b.dropped > 0 {
				fmt.Fprintf(&sb, " transitions-dropped=%d", b.dropped)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
