package plan

import (
	"strings"
	"testing"
	"testing/quick"

	"compilegate/internal/stats"
)

func validStarQuery() *Query {
	return &Query{
		Tables: []TableTerm{{Name: "f"}, {Name: "a"}, {Name: "b"}},
		Joins:  []JoinEdge{{A: "f", B: "a"}, {A: "f", B: "b"}},
	}
}

func TestValidateAcceptsConnected(t *testing.T) {
	if err := validStarQuery().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadQueries(t *testing.T) {
	cases := []struct {
		name string
		q    *Query
	}{
		{"empty", &Query{}},
		{"duplicate table", &Query{Tables: []TableTerm{{Name: "a"}, {Name: "a"}}}},
		{"unlisted join", &Query{
			Tables: []TableTerm{{Name: "a"}, {Name: "b"}},
			Joins:  []JoinEdge{{A: "a", B: "zz"}},
		}},
		{"disconnected", &Query{
			Tables: []TableTerm{{Name: "a"}, {Name: "b"}, {Name: "c"}},
			Joins:  []JoinEdge{{A: "a", B: "b"}},
		}},
	}
	for _, c := range cases {
		if err := c.q.Validate(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestQueryLookups(t *testing.T) {
	q := validStarQuery()
	if q.NumJoins() != 2 {
		t.Fatalf("NumJoins = %d", q.NumJoins())
	}
	if q.Table("a") == nil || q.Table("zz") != nil {
		t.Fatal("Table lookup broken")
	}
	q.Tables[1].Preds = append(q.Tables[1].Preds, stats.Pred{Table: "a", Column: "x", Op: "=", Lo: 1})
	if len(q.Table("a").Preds) != 1 {
		t.Fatal("Table returned a copy, not a pointer")
	}
}

func TestColRefString(t *testing.T) {
	if (ColRef{Table: "t", Column: "c"}).String() != "t.c" {
		t.Fatal("ColRef.String broken")
	}
}

func TestOpString(t *testing.T) {
	for _, o := range []Op{OpSeqScan, OpIndexScan, OpHashJoin, OpHashAgg} {
		if strings.Contains(o.String(), "Op(") {
			t.Fatalf("unnamed op %d", o)
		}
	}
	if !strings.Contains(Op(99).String(), "Op(99)") {
		t.Fatal("unknown op should render numerically")
	}
}

// buildPlan constructs scan ⨝ scan with an agg on top.
func buildPlan() *Plan {
	l := &Node{Op: OpSeqScan, Table: "a", ScanFraction: 1, OutCard: 100, NodeCost: 5, SubtreeCost: 5}
	r := &Node{Op: OpIndexScan, Table: "b", ScanFraction: 0.1, OutCard: 10, NodeCost: 2, SubtreeCost: 2}
	j := &Node{Op: OpHashJoin, Left: l, Right: r, OutCard: 100, NodeCost: 1, SubtreeCost: 8, BuildBytes: 640}
	agg := &Node{Op: OpHashAgg, Left: j, OutCard: 5, NodeCost: 1, SubtreeCost: 9, BuildBytes: 320}
	return &Plan{Root: agg}
}

func TestPlanAccounting(t *testing.T) {
	p := buildPlan()
	if p.Nodes() != 4 {
		t.Fatalf("nodes = %d", p.Nodes())
	}
	if p.Cost() != 9 {
		t.Fatalf("cost = %v", p.Cost())
	}
	if p.MemoryGrant() != 640+320 {
		t.Fatalf("grant = %d, want largest join build + largest agg", p.MemoryGrant())
	}
	if p.PlanBytes() != 4*24<<10 {
		t.Fatalf("plan bytes = %d", p.PlanBytes())
	}
	if !strings.Contains(p.String(), "HashAgg") || !strings.Contains(p.String(), "IndexScan") {
		t.Fatalf("rendering:\n%s", p.String())
	}
}

func TestEmptyPlan(t *testing.T) {
	p := &Plan{}
	if p.Cost() != 0 || p.Nodes() != 0 || p.MemoryGrant() != 0 {
		t.Fatal("empty plan not all-zero")
	}
}

func TestBestEffortRendering(t *testing.T) {
	p := buildPlan()
	p.BestEffort = true
	if !strings.Contains(p.String(), "best-effort") {
		t.Fatal("best-effort marker missing")
	}
}

func TestDefaultCostModelSane(t *testing.T) {
	cm := DefaultCostModel()
	if cm.RandExtent <= cm.SeqExtent {
		t.Fatal("random I/O must cost more than sequential")
	}
	if cm.CPURow <= 0 || cm.BuildRow <= 0 || cm.AggRow <= 0 || cm.HashRowBytes <= 0 {
		t.Fatal("non-positive cost constants")
	}
	if cm.BuildRow <= cm.CPURow {
		t.Fatal("hash build should cost more per row than a probe")
	}
}

// Property: MemoryGrant is monotone — adding a bigger hash join build
// never decreases the grant.
func TestQuickGrantMonotone(t *testing.T) {
	f := func(builds []uint32) bool {
		root := &Node{Op: OpSeqScan, OutCard: 1}
		var maxBuild int64
		for _, b := range builds {
			bb := int64(b % (1 << 24))
			if bb > maxBuild {
				maxBuild = bb
			}
			root = &Node{Op: OpHashJoin, Left: root,
				Right: &Node{Op: OpSeqScan}, BuildBytes: bb}
		}
		p := &Plan{Root: root}
		return p.MemoryGrant() == maxBuild
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a connected random star query always validates; removing any
// edge from a tree-shaped join graph always fails validation.
func TestQuickValidateTreeEdges(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%6) + 2 // 2..7 tables
		q := &Query{}
		for i := 0; i < n; i++ {
			q.Tables = append(q.Tables, TableTerm{Name: string(rune('a' + i))})
		}
		for i := 1; i < n; i++ {
			q.Joins = append(q.Joins, JoinEdge{A: "a", B: string(rune('a' + i))})
		}
		if q.Validate() != nil {
			return false
		}
		if n > 2 {
			// Drop the last edge: table becomes disconnected.
			q.Joins = q.Joins[:len(q.Joins)-1]
			if q.Validate() == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
