// Package plan defines the optimizer's input (a logical query description:
// tables, predicates, join graph, grouping) and output (a costed physical
// operator tree), plus the cost model shared by the optimizer and the
// execution engine.
package plan

import (
	"fmt"
	"strings"

	"compilegate/internal/stats"
)

// ColRef names a column of a table.
type ColRef struct {
	Table, Column string
}

// String renders the reference.
func (c ColRef) String() string { return c.Table + "." + c.Column }

// TableTerm is one table referenced by a query with its local filter
// predicates.
type TableTerm struct {
	Name  string
	Preds []stats.Pred
}

// JoinEdge is one equi-join between two referenced tables.
type JoinEdge struct {
	A, B string
}

// Query is the logical query the optimizer receives: a conjunctive
// join/filter/aggregate block, which covers the paper's workloads (star
// joins with aggregates on top).
type Query struct {
	// Text is the original SQL (used for fingerprinting/diagnostics).
	Text string
	// Tables lists referenced tables with their filters.
	Tables []TableTerm
	// Joins is the join graph over Tables.
	Joins []JoinEdge
	// GroupBy lists grouping columns; empty means no aggregation.
	GroupBy []ColRef
	// Aggregates counts aggregate expressions computed per group.
	Aggregates int
}

// NumJoins returns the number of join edges (the paper characterizes
// queries by join count).
func (q *Query) NumJoins() int { return len(q.Joins) }

// Reset empties q for reuse, retaining the backing storage of every
// slice. Pooled queries flow through this so a steady-state parse
// allocates nothing; use AppendTable (not plain append) to keep each
// recycled table term's predicate capacity too.
func (q *Query) Reset() {
	q.Text = ""
	q.Tables = q.Tables[:0]
	q.Joins = q.Joins[:0]
	q.GroupBy = q.GroupBy[:0]
	q.Aggregates = 0
}

// AppendTable appends a term for name and returns it. When the tables
// slice still has capacity from a previous parse, the recycled term's
// predicate list keeps its storage (truncated to empty), so re-parsing
// a same-shaped statement reserves nothing.
func (q *Query) AppendTable(name string) *TableTerm {
	if len(q.Tables) < cap(q.Tables) {
		q.Tables = q.Tables[:len(q.Tables)+1]
		t := &q.Tables[len(q.Tables)-1]
		t.Name = name
		t.Preds = t.Preds[:0]
		return t
	}
	q.Tables = append(q.Tables, TableTerm{Name: name})
	return &q.Tables[len(q.Tables)-1]
}

// Table returns the term for the named table, or nil.
func (q *Query) Table(name string) *TableTerm {
	for i := range q.Tables {
		if q.Tables[i].Name == name {
			return &q.Tables[i]
		}
	}
	return nil
}

// Validate checks internal consistency: joins reference listed tables and
// the join graph is connected (the engine rejects cross products).
func (q *Query) Validate() error {
	if len(q.Tables) == 0 {
		return fmt.Errorf("plan: query references no tables")
	}
	// Duplicate detection and union-find run on the stack for the query
	// sizes the engine supports (join bitsets cap tables at 64); this is
	// validated on every compilation, so it must not allocate.
	index := func(name string) int {
		for i := range q.Tables {
			if q.Tables[i].Name == name {
				return i
			}
		}
		return -1
	}
	for i := range q.Tables {
		for j := 0; j < i; j++ {
			if q.Tables[j].Name == q.Tables[i].Name {
				return fmt.Errorf("plan: table %s referenced twice (self-joins unsupported)", q.Tables[i].Name)
			}
		}
	}
	var parentBuf [64]int
	var parent []int
	if len(q.Tables) <= len(parentBuf) {
		parent = parentBuf[:len(q.Tables)]
	} else {
		parent = make([]int, len(q.Tables))
	}
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, j := range q.Joins {
		a, b := index(j.A), index(j.B)
		if a < 0 || b < 0 {
			return fmt.Errorf("plan: join %s-%s references unlisted table", j.A, j.B)
		}
		parent[find(a)] = find(b)
	}
	root := find(0)
	for i := range q.Tables {
		if find(i) != root {
			return fmt.Errorf("plan: join graph is disconnected at %s (cross products unsupported)", q.Tables[i].Name)
		}
	}
	return nil
}

// Op identifies a physical operator.
type Op int

// Physical operator kinds.
const (
	OpSeqScan Op = iota
	OpIndexScan
	OpHashJoin
	OpHashAgg
)

// String names the operator.
func (o Op) String() string {
	switch o {
	case OpSeqScan:
		return "SeqScan"
	case OpIndexScan:
		return "IndexScan"
	case OpHashJoin:
		return "HashJoin"
	case OpHashAgg:
		return "HashAgg"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// CostModel holds the constants the optimizer and executor share. Units
// are abstract "cost units"; the executor converts them to virtual time.
type CostModel struct {
	// SeqExtent is the cost of scanning one extent sequentially.
	SeqExtent float64
	// RandExtent is the cost of one random extent fetch (index path).
	RandExtent float64
	// CPURow is the per-row CPU cost of scans/probes.
	CPURow float64
	// BuildRow is the per-row cost of inserting into a hash table.
	BuildRow float64
	// AggRow is the per-row cost of aggregate evaluation per aggregate.
	AggRow float64
	// HashRowBytes is the in-memory footprint per hash-table row, used to
	// size execution memory grants.
	HashRowBytes int64
}

// DefaultCostModel returns the tuning used throughout the reproduction.
func DefaultCostModel() CostModel {
	return CostModel{
		SeqExtent:    1.0,
		RandExtent:   4.0,
		CPURow:       0.0000015,
		BuildRow:     0.000002,
		AggRow:       0.000001,
		HashRowBytes: 384,
	}
}

// Node is one node of a physical plan tree.
type Node struct {
	Op    Op
	Table string // scans only
	// ScanFraction is the fraction of the table's extents this scan
	// touches (selectivity pushed into the access path).
	ScanFraction float64
	Left, Right  *Node

	// OutCard is the estimated output cardinality.
	OutCard float64
	// NodeCost is this node's own cost; SubtreeCost includes children.
	NodeCost, SubtreeCost float64
	// BuildBytes is the hash-table grant this node needs at runtime
	// (hash joins and aggregates).
	BuildBytes int64
}

// Plan is a complete physical plan.
type Plan struct {
	Root *Node
	// BestEffort marks plans returned early under predicted memory
	// exhaustion (§4.1).
	BestEffort bool
	// ExprsExplored counts memo expressions considered while optimizing.
	ExprsExplored int
	// CompileBytes is the peak simulated compilation memory used.
	CompileBytes int64
}

// Cost returns the plan's total estimated cost.
func (p *Plan) Cost() float64 {
	if p.Root == nil {
		return 0
	}
	return p.Root.SubtreeCost
}

// MemoryGrant returns the execution memory the plan needs: the peak of
// concurrently-held hash builds. The executor pipelines one join at a
// time with its build side resident, so the grant is the largest single
// build plus the largest aggregate, a close match to how SQL Server
// reserves query-execution memory up front.
func (p *Plan) MemoryGrant() int64 {
	var maxBuild, agg int64
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.Op == OpHashJoin && n.BuildBytes > maxBuild {
			maxBuild = n.BuildBytes
		}
		if n.Op == OpHashAgg && n.BuildBytes > agg {
			agg = n.BuildBytes
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(p.Root)
	return maxBuild + agg
}

// Nodes returns the plan's node count.
func (p *Plan) Nodes() int {
	var count func(n *Node) int
	count = func(n *Node) int {
		if n == nil {
			return 0
		}
		return 1 + count(n.Left) + count(n.Right)
	}
	return count(p.Root)
}

// PlanBytes estimates the cached-plan footprint: proportional to node
// count, matching how plan cache memory scales with plan complexity.
func (p *Plan) PlanBytes() int64 {
	return int64(p.Nodes()) * 24 << 10 // 24 KiB per operator
}

// String renders the plan tree indented, with cardinalities and costs.
func (p *Plan) String() string {
	var sb strings.Builder
	if p.BestEffort {
		sb.WriteString("(best-effort plan)\n")
	}
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		if n == nil {
			return
		}
		sb.WriteString(strings.Repeat("  ", depth))
		switch n.Op {
		case OpSeqScan, OpIndexScan:
			fmt.Fprintf(&sb, "%s %s (%.2f%% extents) card=%.3g cost=%.3g\n",
				n.Op, n.Table, n.ScanFraction*100, n.OutCard, n.SubtreeCost)
		default:
			fmt.Fprintf(&sb, "%s card=%.3g cost=%.3g build=%dB\n",
				n.Op, n.OutCard, n.SubtreeCost, n.BuildBytes)
		}
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	walk(p.Root, 0)
	return sb.String()
}
