package catalog

import (
	"strings"
	"testing"
)

func TestSalesShape(t *testing.T) {
	c := NewSales(DefaultSalesConfig())
	fact := c.Table("sales_fact")
	if fact == nil {
		t.Fatal("no fact table")
	}
	if fact.Rows < 400_000_000 {
		t.Fatalf("fact rows = %d, paper says >400M", fact.Rows)
	}
	totalGB := float64(c.TotalBytes()) / 1e9
	if totalGB < 495 || totalGB > 555 {
		t.Fatalf("database size = %.0f GB, paper says 524 GB", totalGB)
	}
	if len(c.Tables()) < 15 {
		t.Fatalf("only %d tables; need a rich snowflake for 15-20 join queries", len(c.Tables()))
	}
	// The join graph must connect enough tables for 15-20 join queries.
	if len(c.FKs()) < 15 {
		t.Fatalf("only %d FK edges", len(c.FKs()))
	}
}

func TestSalesScaling(t *testing.T) {
	small := NewSales(SalesConfig{Scale: 0.001, ExtentBytes: 8 << 20})
	big := NewSales(SalesConfig{Scale: 1.0, ExtentBytes: 8 << 20})
	if small.Table("sales_fact").Rows >= big.Table("sales_fact").Rows {
		t.Fatal("scaling did not reduce fact rows")
	}
	// Tiny dimensions never scale below 1 row.
	for _, tb := range small.Tables() {
		if tb.Rows < 1 {
			t.Fatalf("table %s has %d rows", tb.Name, tb.Rows)
		}
	}
}

func TestFKLookup(t *testing.T) {
	c := NewSales(DefaultSalesConfig())
	if _, ok := c.FK("sales_fact", "dim_product"); !ok {
		t.Fatal("fact->product FK missing")
	}
	if _, ok := c.FK("dim_product", "sales_fact"); !ok {
		t.Fatal("FK lookup not symmetric")
	}
	if _, ok := c.FK("dim_product", "dim_customer"); ok {
		t.Fatal("phantom FK between unrelated dimensions")
	}
}

func TestExtents(t *testing.T) {
	c := New(8 << 20)
	tb := c.AddTable(&Table{Name: "t", Rows: 1, RowBytes: 10})
	if c.Extents(tb) != 1 {
		t.Fatalf("tiny table extents = %d, want 1", c.Extents(tb))
	}
	tb2 := c.AddTable(&Table{Name: "t2", Rows: 1 << 20, RowBytes: 16}) // 16 MiB
	if c.Extents(tb2) != 2 {
		t.Fatalf("16MiB/8MiB extents = %d, want 2", c.Extents(tb2))
	}
}

func TestDuplicateTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddTable did not panic")
		}
	}()
	c := New(8 << 20)
	c.AddTable(&Table{Name: "x", Rows: 1, RowBytes: 1})
	c.AddTable(&Table{Name: "x", Rows: 1, RowBytes: 1})
}

func TestColumnAndIndexLookup(t *testing.T) {
	c := NewSales(DefaultSalesConfig())
	fact := c.Table("sales_fact")
	if fact.Column("date_id") == nil {
		t.Fatal("date_id column missing")
	}
	if fact.Column("nope") != nil {
		t.Fatal("phantom column")
	}
	if !fact.HasIndexOn("date_id") {
		t.Fatal("ix_sales_date not found by HasIndexOn")
	}
	if fact.HasIndexOn("amount_cents") {
		t.Fatal("phantom index")
	}
}

func TestTPCHAndOLTP(t *testing.T) {
	h := NewTPCHLike(1.0, 8<<20)
	if len(h.Tables()) != 8 {
		t.Fatalf("tpch tables = %d, want 8", len(h.Tables()))
	}
	if h.Table("lineitem") == nil || h.Table("region") == nil {
		t.Fatal("tpch tables missing")
	}
	o := NewOLTPLike(8 << 20)
	if len(o.Tables()) != 4 {
		t.Fatalf("oltp tables = %d, want 4", len(o.Tables()))
	}
}

func TestString(t *testing.T) {
	c := NewOLTPLike(8 << 20)
	if s := c.String(); !strings.Contains(s, "warehouse") {
		t.Fatalf("String() = %q", s)
	}
}

func TestTableIDsDense(t *testing.T) {
	c := NewSales(DefaultSalesConfig())
	for i, tb := range c.Tables() {
		if tb.ID != i {
			t.Fatalf("table %s has ID %d at position %d", tb.Name, tb.ID, i)
		}
	}
}
