// Package catalog models the database schema the simulated engine runs
// against: tables, columns, indexes, and the foreign-key join graph used
// by the optimizer for cardinality estimation.
//
// The SALES catalog reproduces the shape of the paper's customer data mart:
// a star schema whose largest fact table holds over 400 million rows in a
// 524 GB database, surrounded by smaller dimension tables.
package catalog

import (
	"fmt"
	"sort"
)

// Column describes one table column.
type Column struct {
	Name     string
	Distinct int64 // number of distinct values
	Min, Max int64 // value domain (inclusive)
}

// Index describes a secondary index.
type Index struct {
	Name    string
	Columns []string
}

// Table describes one table.
type Table struct {
	ID       int // dense identifier; also the bit used in join sets
	Name     string
	Rows     int64
	RowBytes int64
	Columns  []*Column
	Indexes  []*Index
}

// Bytes returns the table's total data size.
func (t *Table) Bytes() int64 { return t.Rows * t.RowBytes }

// Column returns the named column or nil.
func (t *Table) Column(name string) *Column {
	for _, c := range t.Columns {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// HasIndexOn reports whether some index's leading column is name.
func (t *Table) HasIndexOn(name string) bool {
	for _, ix := range t.Indexes {
		if len(ix.Columns) > 0 && ix.Columns[0] == name {
			return true
		}
	}
	return false
}

// FKEdge is one foreign-key relationship in the join graph: every row of
// Child joins to exactly one row of Parent through the named columns.
type FKEdge struct {
	Child, Parent           string
	ChildColumn, ParentName string
}

// Catalog is the full schema.
type Catalog struct {
	ExtentBytes int64 // unit of storage & buffer-pool management
	tables      map[string]*Table
	order       []*Table
	fks         []FKEdge
}

// New creates an empty catalog using the given extent size.
func New(extentBytes int64) *Catalog {
	if extentBytes <= 0 {
		panic("catalog: non-positive extent size")
	}
	return &Catalog{ExtentBytes: extentBytes, tables: make(map[string]*Table)}
}

// AddTable registers a table and assigns its ID. It panics on duplicates
// (schema construction bugs should fail loudly).
func (c *Catalog) AddTable(t *Table) *Table {
	if _, dup := c.tables[t.Name]; dup {
		panic("catalog: duplicate table " + t.Name)
	}
	t.ID = len(c.order)
	if t.ID >= 64 {
		panic("catalog: more than 64 tables not supported (join bitsets)")
	}
	c.tables[t.Name] = t
	c.order = append(c.order, t)
	return t
}

// AddFK registers a foreign-key edge; both tables must exist.
func (c *Catalog) AddFK(child, childCol, parent string) {
	if c.Table(child) == nil || c.Table(parent) == nil {
		panic(fmt.Sprintf("catalog: FK %s.%s -> %s references unknown table", child, childCol, parent))
	}
	c.fks = append(c.fks, FKEdge{Child: child, ChildColumn: childCol, Parent: parent})
}

// Table returns the named table or nil.
func (c *Catalog) Table(name string) *Table { return c.tables[name] }

// Tables returns all tables in creation order.
func (c *Catalog) Tables() []*Table { return c.order }

// FKs returns the foreign-key edges.
func (c *Catalog) FKs() []FKEdge { return c.fks }

// FK returns the edge joining the two tables (in either direction), or
// false when none exists.
func (c *Catalog) FK(a, b string) (FKEdge, bool) {
	for _, e := range c.fks {
		if (e.Child == a && e.Parent == b) || (e.Child == b && e.Parent == a) {
			return e, true
		}
	}
	return FKEdge{}, false
}

// Extents returns the number of extents the table occupies (at least 1).
func (c *Catalog) Extents(t *Table) int64 {
	n := (t.Bytes() + c.ExtentBytes - 1) / c.ExtentBytes
	if n < 1 {
		n = 1
	}
	return n
}

// TotalExtents returns the whole database's extent count.
func (c *Catalog) TotalExtents() int64 {
	var n int64
	for _, t := range c.order {
		n += c.Extents(t)
	}
	return n
}

// TotalBytes returns the whole database's data size.
func (c *Catalog) TotalBytes() int64 {
	var n int64
	for _, t := range c.order {
		n += t.Bytes()
	}
	return n
}

// String summarizes the catalog.
func (c *Catalog) String() string {
	names := make([]string, 0, len(c.order))
	for _, t := range c.order {
		names = append(names, fmt.Sprintf("%s(%d rows, %d extents)", t.Name, t.Rows, c.Extents(t)))
	}
	sort.Strings(names)
	return fmt.Sprintf("catalog: %d tables, %d extents total: %v", len(c.order), c.TotalExtents(), names)
}

// intCol builds a synthetic integer column.
func intCol(name string, distinct int64) *Column {
	return &Column{Name: name, Distinct: distinct, Min: 0, Max: distinct - 1}
}

// SalesConfig scales the SALES star schema. Scale 1.0 reproduces the
// paper's 524 GB data mart with a >400M-row fact table.
type SalesConfig struct {
	Scale       float64
	ExtentBytes int64
}

// DefaultSalesConfig returns the paper-faithful scale with 8 MiB extents.
func DefaultSalesConfig() SalesConfig {
	return SalesConfig{Scale: 1.0, ExtentBytes: 8 << 20}
}

// NewSales builds the SALES data-mart catalog: one wide fact table and a
// ring of dimension tables (product, store, customer, time, geography,
// promotion hierarchies) so that 15-20-join queries are natural.
func NewSales(cfg SalesConfig) *Catalog {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	if cfg.ExtentBytes == 0 {
		cfg.ExtentBytes = 8 << 20
	}
	s := func(n int64) int64 {
		v := int64(float64(n) * cfg.Scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	c := New(cfg.ExtentBytes)

	// Fact table: 420M rows x ~1.2KB ≈ 504 GB at scale 1; the dimensions
	// bring the database to roughly the paper's 524 GB.
	fact := c.AddTable(&Table{
		Name: "sales_fact", Rows: s(420_000_000), RowBytes: 1200,
		Columns: []*Column{
			intCol("sale_id", s(420_000_000)),
			intCol("product_id", s(1_000_000)),
			intCol("store_id", s(50_000)),
			intCol("customer_id", s(20_000_000)),
			intCol("date_id", 3653),
			intCol("promo_id", s(40_000)),
			intCol("employee_id", s(400_000)),
			intCol("channel_id", 12),
			intCol("quantity", 1000),
			intCol("amount_cents", 10_000_000),
		},
		Indexes: []*Index{
			{Name: "pk_sales", Columns: []string{"sale_id"}},
			{Name: "ix_sales_date", Columns: []string{"date_id"}},
			{Name: "ix_sales_product", Columns: []string{"product_id"}},
		},
	})

	dims := []struct {
		name     string
		rows     int64
		rowBytes int64
		fkCol    string
		cols     []*Column
	}{
		{"dim_product", s(1_000_000), 600, "product_id",
			[]*Column{intCol("product_id", s(1_000_000)), intCol("subcategory_id", s(10_000)), intCol("brand_id", s(5_000))}},
		{"dim_subcategory", s(10_000), 200, "",
			[]*Column{intCol("subcategory_id", s(10_000)), intCol("category_id", s(500))}},
		{"dim_category", s(500), 200, "",
			[]*Column{intCol("category_id", s(500)), intCol("department_id", 40)}},
		{"dim_department", 40, 150, "",
			[]*Column{intCol("department_id", 40)}},
		{"dim_brand", s(5_000), 200, "",
			[]*Column{intCol("brand_id", s(5_000)), intCol("manufacturer_id", s(800))}},
		{"dim_manufacturer", s(800), 200, "",
			[]*Column{intCol("manufacturer_id", s(800))}},
		{"dim_store", s(50_000), 500, "store_id",
			[]*Column{intCol("store_id", s(50_000)), intCol("city_id", s(8_000)), intCol("format_id", 20)}},
		{"dim_city", s(8_000), 200, "",
			[]*Column{intCol("city_id", s(8_000)), intCol("region_id", s(400))}},
		{"dim_region", s(400), 150, "",
			[]*Column{intCol("region_id", s(400)), intCol("country_id", 80)}},
		{"dim_country", 80, 150, "",
			[]*Column{intCol("country_id", 80)}},
		{"dim_store_format", 20, 100, "",
			[]*Column{intCol("format_id", 20)}},
		{"dim_customer", s(8_000_000), 800, "customer_id",
			[]*Column{intCol("customer_id", s(8_000_000)), intCol("segment_id", 50), intCol("city_id", s(8_000))}},
		{"dim_segment", 50, 100, "",
			[]*Column{intCol("segment_id", 50)}},
		{"dim_date", 3653, 120, "date_id",
			[]*Column{intCol("date_id", 3653), intCol("month_id", 120), intCol("year", 10)}},
		{"dim_month", 120, 100, "",
			[]*Column{intCol("month_id", 120), intCol("quarter_id", 40)}},
		{"dim_quarter", 40, 100, "",
			[]*Column{intCol("quarter_id", 40)}},
		{"dim_promotion", s(40_000), 300, "promo_id",
			[]*Column{intCol("promo_id", s(40_000)), intCol("promo_type_id", 60)}},
		{"dim_promo_type", 60, 100, "",
			[]*Column{intCol("promo_type_id", 60)}},
		{"dim_employee", s(400_000), 400, "employee_id",
			[]*Column{intCol("employee_id", s(400_000)), intCol("store_id", s(50_000))}},
		{"dim_channel", 12, 100, "channel_id",
			[]*Column{intCol("channel_id", 12)}},
	}
	for _, d := range dims {
		t := &Table{Name: d.name, Rows: d.rows, RowBytes: d.rowBytes, Columns: d.cols}
		key := d.cols[0].Name
		t.Indexes = []*Index{{Name: "pk_" + d.name, Columns: []string{key}}}
		c.AddTable(t)
		if d.fkCol != "" {
			c.AddFK(fact.Name, d.fkCol, d.name)
		}
	}

	// Snowflake edges between dimensions.
	snow := [][3]string{
		{"dim_product", "subcategory_id", "dim_subcategory"},
		{"dim_product", "brand_id", "dim_brand"},
		{"dim_subcategory", "category_id", "dim_category"},
		{"dim_category", "department_id", "dim_department"},
		{"dim_brand", "manufacturer_id", "dim_manufacturer"},
		{"dim_store", "city_id", "dim_city"},
		{"dim_store", "format_id", "dim_store_format"},
		{"dim_city", "region_id", "dim_region"},
		{"dim_region", "country_id", "dim_country"},
		{"dim_customer", "segment_id", "dim_segment"},
		{"dim_customer", "city_id", "dim_city"},
		{"dim_date", "month_id", "dim_month"},
		{"dim_month", "quarter_id", "dim_quarter"},
		{"dim_promotion", "promo_type_id", "dim_promo_type"},
		{"dim_employee", "store_id", "dim_store"},
	}
	for _, e := range snow {
		c.AddFK(e[0], e[1], e[2])
	}
	return c
}

// NewTPCHLike builds a small catalog shaped like TPC-H (8 tables, joins
// of 0-8 tables) for the compile-memory comparison experiments.
func NewTPCHLike(scale float64, extentBytes int64) *Catalog {
	if scale <= 0 {
		scale = 1.0
	}
	if extentBytes == 0 {
		extentBytes = 8 << 20
	}
	s := func(n int64) int64 {
		v := int64(float64(n) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	c := New(extentBytes)
	c.AddTable(&Table{Name: "lineitem", Rows: s(6_000_000_000), RowBytes: 120,
		Columns: []*Column{intCol("l_orderkey", s(1_500_000_000)), intCol("l_partkey", s(200_000_000)), intCol("l_suppkey", s(10_000_000))},
		Indexes: []*Index{{Name: "pk_lineitem", Columns: []string{"l_orderkey"}}}})
	c.AddTable(&Table{Name: "orders", Rows: s(1_500_000_000), RowBytes: 140,
		Columns: []*Column{intCol("o_orderkey", s(1_500_000_000)), intCol("o_custkey", s(150_000_000))},
		Indexes: []*Index{{Name: "pk_orders", Columns: []string{"o_orderkey"}}}})
	c.AddTable(&Table{Name: "customer", Rows: s(150_000_000), RowBytes: 200,
		Columns: []*Column{intCol("c_custkey", s(150_000_000)), intCol("c_nationkey", 25)}})
	c.AddTable(&Table{Name: "part", Rows: s(200_000_000), RowBytes: 160,
		Columns: []*Column{intCol("p_partkey", s(200_000_000))}})
	c.AddTable(&Table{Name: "supplier", Rows: s(10_000_000), RowBytes: 180,
		Columns: []*Column{intCol("s_suppkey", s(10_000_000)), intCol("s_nationkey", 25)}})
	c.AddTable(&Table{Name: "partsupp", Rows: s(800_000_000), RowBytes: 150,
		Columns: []*Column{intCol("ps_partkey", s(200_000_000)), intCol("ps_suppkey", s(10_000_000))}})
	c.AddTable(&Table{Name: "nation", Rows: 25, RowBytes: 120,
		Columns: []*Column{intCol("n_nationkey", 25), intCol("n_regionkey", 5)}})
	c.AddTable(&Table{Name: "region", Rows: 5, RowBytes: 120,
		Columns: []*Column{intCol("r_regionkey", 5)}})
	c.AddFK("lineitem", "l_orderkey", "orders")
	c.AddFK("lineitem", "l_partkey", "part")
	c.AddFK("lineitem", "l_suppkey", "supplier")
	c.AddFK("orders", "o_custkey", "customer")
	c.AddFK("customer", "c_nationkey", "nation")
	c.AddFK("supplier", "s_nationkey", "nation")
	c.AddFK("nation", "n_regionkey", "region")
	c.AddFK("partsupp", "ps_partkey", "part")
	return c
}

// NewOLTPLike builds a small OLTP-shaped catalog (TPC-C-ish) whose queries
// touch 1-3 tables and compile below the first monitor threshold.
func NewOLTPLike(extentBytes int64) *Catalog {
	if extentBytes == 0 {
		extentBytes = 8 << 20
	}
	c := New(extentBytes)
	c.AddTable(&Table{Name: "warehouse", Rows: 100, RowBytes: 100,
		Columns: []*Column{intCol("w_id", 100)}})
	c.AddTable(&Table{Name: "district", Rows: 1000, RowBytes: 120,
		Columns: []*Column{intCol("d_id", 1000), intCol("d_w_id", 100)}})
	c.AddTable(&Table{Name: "customer_oltp", Rows: 3_000_000, RowBytes: 600,
		Columns: []*Column{intCol("c_id", 3_000_000), intCol("c_d_id", 1000)},
		Indexes: []*Index{{Name: "pk_customer", Columns: []string{"c_id"}}}})
	c.AddTable(&Table{Name: "order_oltp", Rows: 30_000_000, RowBytes: 80,
		Columns: []*Column{intCol("o_id", 30_000_000), intCol("o_c_id", 3_000_000)},
		Indexes: []*Index{{Name: "pk_order", Columns: []string{"o_id"}}}})
	c.AddFK("district", "d_w_id", "warehouse")
	c.AddFK("customer_oltp", "c_d_id", "district")
	c.AddFK("order_oltp", "o_c_id", "customer_oltp")
	return c
}
