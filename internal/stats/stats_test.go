package stats

import (
	"math"
	"testing"
	"testing/quick"

	"compilegate/internal/catalog"
)

func testCol() *catalog.Column {
	return &catalog.Column{Name: "c", Distinct: 1000, Min: 0, Max: 999}
}

func TestEquiDepthCoversDomain(t *testing.T) {
	h := NewEquiDepth(testCol(), 100000, 32)
	if h.Buckets() != 32 {
		t.Fatalf("buckets = %d", h.Buckets())
	}
	if h.Bounds[len(h.Bounds)-1] != 999 {
		t.Fatalf("last bound = %d, want 999", h.Bounds[len(h.Bounds)-1])
	}
	if got := h.SelectivityRange(0, 999); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("full-range selectivity = %v, want 1", got)
	}
}

func TestSelectivityEq(t *testing.T) {
	h := NewEquiDepth(testCol(), 100000, 32)
	if got := h.SelectivityEq(5); math.Abs(got-0.001) > 1e-9 {
		t.Fatalf("eq selectivity = %v, want 1/1000", got)
	}
	if h.SelectivityEq(-1) != 0 || h.SelectivityEq(5000) != 0 {
		t.Fatal("out-of-domain eq selectivity not 0")
	}
}

func TestSelectivityRange(t *testing.T) {
	h := NewEquiDepth(testCol(), 100000, 10)
	half := h.SelectivityRange(0, 499)
	if math.Abs(half-0.5) > 0.02 {
		t.Fatalf("half-range selectivity = %v, want ~0.5", half)
	}
	if h.SelectivityRange(600, 400) != 0 {
		t.Fatal("inverted range selectivity not 0")
	}
	// Clamping outside the domain.
	if got := h.SelectivityRange(-100, 2000); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("clamped full range = %v", got)
	}
}

func TestBucketsNeverExceedDomain(t *testing.T) {
	col := &catalog.Column{Name: "c", Distinct: 3, Min: 0, Max: 2}
	h := NewEquiDepth(col, 1000, 32)
	if h.Buckets() > 3 {
		t.Fatalf("buckets = %d for domain of 3", h.Buckets())
	}
}

func TestEstimatorFKJoin(t *testing.T) {
	c := catalog.NewSales(catalog.SalesConfig{Scale: 0.01, ExtentBytes: 8 << 20})
	e := NewEstimator(c)
	prod := c.Table("dim_product")
	sel := e.JoinSelectivity("sales_fact", "dim_product")
	want := 1 / float64(prod.Rows)
	if math.Abs(sel-want)/want > 1e-9 {
		t.Fatalf("FK join selectivity = %v, want %v", sel, want)
	}
	// FK join of fact with dimension preserves fact cardinality.
	fact := c.Table("sales_fact")
	card := e.JoinCardinality(float64(fact.Rows), float64(prod.Rows), "sales_fact", "dim_product")
	if math.Abs(card-float64(fact.Rows))/float64(fact.Rows) > 1e-6 {
		t.Fatalf("FK join cardinality = %v, want %v", card, float64(fact.Rows))
	}
}

func TestEstimatorNonFKJoin(t *testing.T) {
	c := catalog.NewSales(catalog.SalesConfig{Scale: 0.01, ExtentBytes: 8 << 20})
	e := NewEstimator(c)
	sel := e.JoinSelectivity("dim_product", "dim_customer")
	if sel <= 0 || sel >= 1 {
		t.Fatalf("non-FK selectivity = %v", sel)
	}
}

func TestPredSelectivity(t *testing.T) {
	c := catalog.NewSales(catalog.SalesConfig{Scale: 0.01, ExtentBytes: 8 << 20})
	e := NewEstimator(c)
	p := Pred{Table: "dim_date", Column: "year", Op: "=", Lo: 5}
	got := e.Selectivity(p)
	if math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("year=5 selectivity = %v, want 1/10", got)
	}
	unknown := Pred{Table: "nope", Column: "nope", Op: "=", Lo: 1}
	if e.Selectivity(unknown) != 0.1 {
		t.Fatal("unknown-column fallback not 0.1")
	}
	combined := e.CombinedSelectivity([]Pred{p, p})
	if math.Abs(combined-0.01) > 1e-9 {
		t.Fatalf("combined = %v, want 0.01", combined)
	}
}

func TestPredString(t *testing.T) {
	for _, p := range []Pred{
		{Table: "t", Column: "c", Op: "=", Lo: 1},
		{Table: "t", Column: "c", Op: "<=", Hi: 9},
		{Table: "t", Column: "c", Op: ">=", Lo: 2},
		{Table: "t", Column: "c", Op: "between", Lo: 1, Hi: 9},
	} {
		if p.String() == "" {
			t.Fatal("empty Pred.String")
		}
	}
}

func TestGroupByCap(t *testing.T) {
	c := catalog.NewSales(catalog.SalesConfig{Scale: 0.01, ExtentBytes: 8 << 20})
	e := NewEstimator(c)
	cols := []struct{ Table, Column string }{{"dim_date", "year"}}
	if got := e.DistinctAfterGroupBy(5, cols); got != 5 {
		t.Fatalf("groupby estimate = %v exceeds input 5", got)
	}
	if got := e.DistinctAfterGroupBy(1e9, cols); got != 10 {
		t.Fatalf("groupby estimate = %v, want 10 (year distinct)", got)
	}
}

// Property: range selectivity is monotone in range width and always in
// [0, 1].
func TestQuickRangeSelectivityMonotone(t *testing.T) {
	h := NewEquiDepth(testCol(), 1_000_000, 16)
	f := func(aRaw, bRaw, cRaw uint16) bool {
		a := int64(aRaw) % 1000
		b := a + int64(bRaw)%(1000-a)
		cHi := b + int64(cRaw)%(1000-b)
		s1 := h.SelectivityRange(a, b)
		s2 := h.SelectivityRange(a, cHi)
		if s1 < 0 || s1 > 1 || s2 < 0 || s2 > 1 {
			return false
		}
		return s2 >= s1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: splitting a range at any midpoint conserves total selectivity.
func TestQuickRangeSelectivityAdditive(t *testing.T) {
	h := NewEquiDepth(testCol(), 1_000_000, 16)
	f := func(mRaw uint16) bool {
		m := int64(mRaw) % 999
		left := h.SelectivityRange(0, m)
		right := h.SelectivityRange(m+1, 999)
		return math.Abs(left+right-1.0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
