// Package stats provides the statistics and cardinality-estimation layer
// the optimizer costs plans with: equi-depth histograms over synthetic
// column distributions, selectivity estimation for point/range predicates,
// and classic System-R style join cardinality estimates over the
// catalog's foreign-key graph.
package stats

import (
	"fmt"
	"math"

	"compilegate/internal/catalog"
)

// Histogram is an equi-depth histogram over an integer domain.
type Histogram struct {
	// Bounds[i] is the inclusive upper bound of bucket i; bucket i covers
	// (Bounds[i-1], Bounds[i]] with Bounds[-1] = Min-1.
	Bounds []int64
	// Rows per bucket (equi-depth: all roughly equal).
	RowsPerBucket float64
	Min           int64
	TotalRows     float64
	Distinct      float64
}

// NewEquiDepth synthesizes an equi-depth histogram for a column of a table
// with rows total rows, assuming values uniformly spread over
// [col.Min, col.Max] — the distribution the synthetic storage layer
// generates.
func NewEquiDepth(col *catalog.Column, rows int64, buckets int) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	domain := col.Max - col.Min + 1
	if domain < 1 {
		domain = 1
	}
	if int64(buckets) > domain {
		buckets = int(domain)
	}
	h := &Histogram{
		Min:           col.Min,
		TotalRows:     float64(rows),
		RowsPerBucket: float64(rows) / float64(buckets),
		Distinct:      float64(col.Distinct),
	}
	for i := 1; i <= buckets; i++ {
		h.Bounds = append(h.Bounds, col.Min+domain*int64(i)/int64(buckets)-1)
	}
	// The final bound must cover the max exactly.
	h.Bounds[len(h.Bounds)-1] = col.Max
	return h
}

// SelectivityEq estimates the fraction of rows with column = v.
func (h *Histogram) SelectivityEq(v int64) float64 {
	if v < h.Min || v > h.Bounds[len(h.Bounds)-1] {
		return 0
	}
	if h.Distinct <= 0 {
		return 1
	}
	return 1 / h.Distinct
}

// SelectivityRange estimates the fraction of rows with lo <= column <= hi
// by interpolating within buckets.
func (h *Histogram) SelectivityRange(lo, hi int64) float64 {
	max := h.Bounds[len(h.Bounds)-1]
	if hi < h.Min || lo > max || hi < lo {
		return 0
	}
	if lo < h.Min {
		lo = h.Min
	}
	if hi > max {
		hi = max
	}
	var rows float64
	prev := h.Min - 1
	for _, b := range h.Bounds {
		bucketLo, bucketHi := prev+1, b
		prev = b
		if hi < bucketLo || lo > bucketHi {
			continue
		}
		span := float64(bucketHi - bucketLo + 1)
		oLo, oHi := lo, hi
		if oLo < bucketLo {
			oLo = bucketLo
		}
		if oHi > bucketHi {
			oHi = bucketHi
		}
		rows += h.RowsPerBucket * float64(oHi-oLo+1) / span
	}
	if h.TotalRows == 0 {
		return 0
	}
	sel := rows / h.TotalRows
	if sel > 1 {
		sel = 1
	}
	return sel
}

// Buckets returns the bucket count.
func (h *Histogram) Buckets() int { return len(h.Bounds) }

// TableStats bundles per-column histograms for one table.
type TableStats struct {
	Table *catalog.Table
	Cols  map[string]*Histogram
}

// Estimator owns statistics for a catalog and answers cardinality
// questions.
type Estimator struct {
	cat    *catalog.Catalog
	tables map[string]*TableStats
}

// NewEstimator builds synthetic statistics (32-bucket equi-depth
// histograms on every column) for the whole catalog.
func NewEstimator(cat *catalog.Catalog) *Estimator {
	e := &Estimator{cat: cat, tables: make(map[string]*TableStats)}
	for _, t := range cat.Tables() {
		ts := &TableStats{Table: t, Cols: make(map[string]*Histogram)}
		for _, col := range t.Columns {
			ts.Cols[col.Name] = NewEquiDepth(col, t.Rows, 32)
		}
		e.tables[t.Name] = ts
	}
	return e
}

// Catalog returns the estimator's catalog.
func (e *Estimator) Catalog() *catalog.Catalog { return e.cat }

// Histogram returns the histogram for table.column, or nil.
func (e *Estimator) Histogram(table, column string) *Histogram {
	ts := e.tables[table]
	if ts == nil {
		return nil
	}
	return ts.Cols[column]
}

// Pred is a filter predicate on a single column.
type Pred struct {
	Table, Column string
	// Op is one of "=", "<=", ">=", "between".
	Op     string
	Lo, Hi int64
}

// String renders the predicate.
func (p Pred) String() string {
	switch p.Op {
	case "=":
		return fmt.Sprintf("%s.%s = %d", p.Table, p.Column, p.Lo)
	case "<=":
		return fmt.Sprintf("%s.%s <= %d", p.Table, p.Column, p.Hi)
	case ">=":
		return fmt.Sprintf("%s.%s >= %d", p.Table, p.Column, p.Lo)
	default:
		return fmt.Sprintf("%s.%s between %d and %d", p.Table, p.Column, p.Lo, p.Hi)
	}
}

// Selectivity estimates the fraction of the table's rows satisfying p.
// Unknown columns estimate a conservative 1/10.
func (e *Estimator) Selectivity(p Pred) float64 {
	h := e.Histogram(p.Table, p.Column)
	if h == nil {
		return 0.1
	}
	switch p.Op {
	case "=":
		return h.SelectivityEq(p.Lo)
	case "<=":
		return h.SelectivityRange(h.Min, p.Hi)
	case ">=":
		return h.SelectivityRange(p.Lo, h.Bounds[len(h.Bounds)-1])
	case "between":
		return h.SelectivityRange(p.Lo, p.Hi)
	default:
		return 0.1
	}
}

// CombinedSelectivity multiplies independent predicate selectivities for
// one table (attribute-value independence, the textbook assumption).
func (e *Estimator) CombinedSelectivity(preds []Pred) float64 {
	s := 1.0
	for _, p := range preds {
		s *= e.Selectivity(p)
	}
	return s
}

// JoinSelectivity estimates the selectivity of an equi-join between two
// tables. Foreign-key joins get the exact 1/parent-rows selectivity;
// other joins use 1/max(distinct(a), distinct(b)).
func (e *Estimator) JoinSelectivity(a, b string) float64 {
	if edge, ok := e.cat.FK(a, b); ok {
		parent := e.cat.Table(edge.Parent)
		if parent != nil && parent.Rows > 0 {
			return 1 / float64(parent.Rows)
		}
	}
	ta, tb := e.cat.Table(a), e.cat.Table(b)
	if ta == nil || tb == nil {
		return 0.01
	}
	da, db := float64(ta.Rows), float64(tb.Rows)
	m := math.Max(da, db)
	if m <= 0 {
		return 1
	}
	return 1 / m
}

// JoinCardinality estimates |A ⋈ B| given the input cardinalities.
func (e *Estimator) JoinCardinality(cardA, cardB float64, a, b string) float64 {
	return cardA * cardB * e.JoinSelectivity(a, b)
}

// DistinctAfterGroupBy estimates the output cardinality of a GROUP BY on
// the given columns, capped at the input cardinality.
func (e *Estimator) DistinctAfterGroupBy(input float64, cols []struct{ Table, Column string }) float64 {
	d := 1.0
	for _, c := range cols {
		h := e.Histogram(c.Table, c.Column)
		if h == nil {
			d *= 100
			continue
		}
		d *= h.Distinct
	}
	return math.Min(d, input)
}
