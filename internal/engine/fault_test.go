package engine

import (
	"strings"
	"testing"
	"time"

	"compilegate/internal/errclass"
	"compilegate/internal/mem"
	"compilegate/internal/vtime"
)

const joinSQL = "SELECT COUNT(*) FROM sales_fact JOIN dim_date ON sales_fact.date_id = dim_date.date_id WHERE sales_fact.date_id BETWEEN 100 AND 200 GROUP BY dim_date.year"

func TestCrashRestartCycle(t *testing.T) {
	srv, sched := testServer(t, nil)
	sched.Go("client", func(tk *vtime.Task) {
		if err := srv.Submit(tk, joinSQL); err != nil {
			t.Errorf("pre-crash Submit: %v", err)
		}
		srv.Crash()
		if !srv.Down() {
			t.Error("Down() = false after Crash")
		}
		if got := srv.Crashes(); got != 1 {
			t.Errorf("Crashes() = %d, want 1", got)
		}
		err := srv.Submit(tk, joinSQL)
		if err != ErrCrashed {
			t.Errorf("Submit while down = %v, want ErrCrashed", err)
		}
		if !errclass.IsCrashed(err) {
			t.Error("ErrCrashed not classified as errclass.Crashed")
		}
		if got := classify(err); got != ErrKindCrashed {
			t.Errorf("classify(ErrCrashed) = %q", got)
		}
		if msg := err.Error(); !strings.Contains(msg, "crashed") {
			t.Errorf("ErrCrashed message = %q", msg)
		}
		srv.Restart()
		if srv.Down() {
			t.Error("Down() = true after Restart")
		}
		// The restarted engine accepts work again, against a cold plan
		// cache (Crash cleared it).
		if err := srv.Submit(tk, joinSQL); err != nil {
			t.Errorf("post-restart Submit: %v", err)
		}
		srv.Close()
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Recorder().Errors()[ErrKindCrashed]; got != 1 {
		t.Fatalf("crashed errors recorded = %d, want 1", got)
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
}

// TestCrashAbortsInFlightCompile crashes the engine while a compilation
// is running: the query must error with ErrCrashed at its next engine
// interaction and every byte it reserved must be released.
func TestCrashAbortsInFlightCompile(t *testing.T) {
	srv, sched := testServer(t, nil)
	var submitErr error
	sched.Go("victim", func(tk *vtime.Task) {
		submitErr = srv.Submit(tk, joinSQL)
		srv.Close()
	})
	sched.Go("chaos", func(tk *vtime.Task) {
		tk.Sleep(time.Millisecond)
		srv.Crash()
		srv.Restart()
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if submitErr != ErrCrashed {
		t.Fatalf("in-flight Submit = %v, want ErrCrashed", submitErr)
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants after mid-compile crash: %v", err)
	}
}

func TestDiskFaultDilation(t *testing.T) {
	plain, _ := testServer(t, func(c *Config) { c.Pressure.Enabled = false })
	if got := plain.diskDilation(); got != 1 {
		t.Fatalf("idle dilation = %v, want 1", got)
	}
	plain.SetDiskFault(6)
	if got := plain.diskDilation(); got != 6 {
		t.Fatalf("stalled dilation = %v, want 6", got)
	}
	plain.SetDiskFault(0) // below 1 clamps: there is no disk speed-up fault
	if got := plain.diskDilation(); got != 1 {
		t.Fatalf("cleared dilation = %v, want 1", got)
	}

	// With the pressure model on, the stall factor composes with the
	// paging slowdown.
	pressured, _ := testServer(t, nil)
	if got, want := pressured.diskDilation(), pressured.Budget().Slowdown(); got != want {
		t.Fatalf("pressured idle dilation = %v, want %v", got, want)
	}
	pressured.SetDiskFault(2)
	if got, want := pressured.diskDilation(), 2*pressured.Budget().Slowdown(); got != want {
		t.Fatalf("pressured stalled dilation = %v, want %v", got, want)
	}
}

func TestLeakBallastAccounting(t *testing.T) {
	srv, _ := testServer(t, nil)
	if got := srv.BallastBytes(); got != 0 {
		t.Fatalf("initial ballast = %d", got)
	}
	if err := srv.LeakBallast(64 * mem.MiB); err != nil {
		t.Fatalf("LeakBallast: %v", err)
	}
	if got := srv.BallastBytes(); got != 64*mem.MiB {
		t.Fatalf("ballast = %d, want %d", got, 64*mem.MiB)
	}
	if used := srv.Budget().Used(); used < 64*mem.MiB {
		t.Fatalf("budget used = %d; ballast not charged", used)
	}
	// Ballast may overcommit into swap, but not past the commit limit.
	if err := srv.LeakBallast(3 * srv.Budget().Total()); err == nil {
		t.Fatal("ballast past the commit limit must fail")
	} else if !errclass.IsOOM(err) {
		t.Fatalf("over-limit ballast error %v not classified OOM", err)
	}
	srv.DropBallast()
	if got := srv.BallastBytes(); got != 0 {
		t.Fatalf("ballast after drop = %d", got)
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
}

// TestAccessorSurface smoke-tests the diagnostic accessors experiments
// rely on: all wired, none nil, and a fresh server's compile-memory
// profile is the zero pair.
func TestAccessorSurface(t *testing.T) {
	srv, _ := testServer(t, nil)
	if srv.Budget() == nil || srv.BufferPool() == nil || srv.Optimizer() == nil ||
		srv.CPU() == nil || srv.CompileTimes() == nil || srv.ExecTimes() == nil ||
		srv.OvercommitTrace() == nil {
		t.Fatal("nil diagnostic accessor")
	}
	if mean, max := srv.CompileMemProfile(); mean != 0 || max != 0 {
		t.Fatalf("fresh CompileMemProfile = (%d, %d)", mean, max)
	}
}

func TestPrepareStatementsSkipsMalformed(t *testing.T) {
	good := "SELECT COUNT(*) FROM sales_fact WHERE sales_fact.date_id BETWEEN 1 AND 2"
	st := PrepareStatements([]string{good, "SELEC nonsense FROM"})
	if len(st) != 1 {
		t.Fatalf("prepared %d statements, want 1", len(st))
	}
	id, ok := st[good]
	if !ok || id.Fingerprint == "" || id.Seed == 0 {
		t.Fatalf("statement identity = %+v, ok=%v", id, ok)
	}
}
