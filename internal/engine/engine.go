// Package engine assembles the full simulated DBMS: parser, plan cache,
// governed optimizer, execution engine, buffer pool, memory broker, and
// metrics — the system under test for every experiment in the paper.
//
// A Server runs inside one vtime.Scheduler. Client tasks call Submit,
// which executes the complete query lifecycle:
//
//	parse → plan-cache probe → (compile under the governor) → cache →
//	acquire execution grant → execute → record completion/error
//
// A housekeeping task ticks the Memory Broker, which redistributes memory
// among the buffer pool, plan cache, compilations, and execution grants
// when the machine comes under pressure.
package engine

import (
	"fmt"
	"math/rand"
	"time"

	"compilegate/internal/broker"
	"compilegate/internal/bufferpool"
	"compilegate/internal/catalog"
	"compilegate/internal/core"
	"compilegate/internal/errclass"
	"compilegate/internal/executor"
	"compilegate/internal/freelist"
	"compilegate/internal/gateway"
	"compilegate/internal/mem"
	"compilegate/internal/metrics"
	"compilegate/internal/optimizer"
	"compilegate/internal/plan"
	"compilegate/internal/plancache"
	"compilegate/internal/sqlparser"
	"compilegate/internal/stats"
	"compilegate/internal/storage"
	"compilegate/internal/vtime"
)

// Config assembles a Server. Zero values fall back to DefaultConfig.
type Config struct {
	// CPUs is the virtual processor count (paper: 8).
	CPUs int
	// MemoryBytes is physical memory (paper: 4 GiB).
	MemoryBytes int64
	// FixedOverheadBytes models the engine's non-negotiable footprint.
	FixedOverheadBytes int64

	// Throttle enables compilation throttling (the paper's feature; false
	// reproduces the "non-throttled" baseline).
	Throttle bool
	// DynamicThresholds / BestEffort toggle the §4.1 extensions.
	DynamicThresholds bool
	BestEffort        bool
	// Brownout enables the governor's sustained-pressure degradation
	// mode (best-effort-only admission with hysteresis); it requires
	// BestEffort and is off by default.
	Brownout core.BrownoutConfig
	// GatewayOverride, when non-nil, replaces the default monitor ladder
	// (used by the monitor-count ablation).
	GatewayOverride *gateway.Config

	// BrokerEnabled runs the Memory Broker (ablation A-5 turns throttling
	// off but keeps the broker).
	BrokerEnabled  bool
	Broker         broker.Config
	BrokerInterval time.Duration

	BufferPool bufferpool.Config
	Executor   executor.Config
	Optimizer  optimizer.Config

	// CompileTaskCPU converts one optimizer task into virtual CPU time.
	CompileTaskCPU time.Duration
	// CompileTaskWait is the non-CPU time per optimizer task (metadata
	// fetches, latching); it stretches compilations without saturating
	// the processors, matching the paper's 10-90 s compile profile.
	CompileTaskWait time.Duration
	// CompileStages is the staged compile-memory model: the memory a
	// compilation wires beyond the exploration memo, reserved as a ramp
	// the monitor ladder can interpose on mid-compilation. The zero
	// value adopts DefaultCompileStages; set Disabled to reproduce the
	// flat pre-stage model.
	CompileStages CompileStages
	// ExecGrantLimitFrac caps total concurrent execution-grant memory as
	// a fraction of physical memory.
	ExecGrantLimitFrac float64
	// VASBytes bounds the address space that compilation, execution
	// grants, and the plan cache contend for (the paper's testbed was a
	// 32-bit server: its AWE-mapped buffer pool lived outside the ~2 GB
	// user address space, everything else inside). 0 disables the bound.
	VASBytes int64
	// Pressure is the memory-pressure (thrash) model: with it enabled,
	// compilations and execution grants may overcommit physical memory
	// into swap, and once wired memory crowds out the page cache every
	// CPU quantum and disk transfer stretches by the paging slowdown
	// while the pager steals buffer-pool frames. The zero value disables
	// overcommit entirely (reservations past physical memory fail).
	Pressure mem.PressureModel
	// CPUQuantum is the processor-sharing quantum.
	CPUQuantum time.Duration

	// SliceDur is the metrics slice width (paper figures: 600 s).
	SliceDur time.Duration

	// Component weights/floors for broker target computation.
	WeightBufferPool, WeightCompile, WeightExec, WeightPlanCache float64
	MinBufferPool, MinCompile                                    int64
}

// CompileStages models the lifetime memory profile of one compilation
// beyond the exploration memo — the staged compile-memory stock that
// makes concurrent compilations, not slow ones, the resource problem:
//
//   - bind: a fixed footprint wired when the compilation opens
//     (metadata caches, binding scratch);
//   - join enumeration + costing: every memo charge carries
//     CostingScale times its size in costing scratch (statistics,
//     property derivation, costing contexts grow with the alternatives
//     considered), so the footprint ramps across the compilation's
//     whole 10-90 s lifetime rather than arriving at the end;
//   - codegen: once exploration stops, the physical plan is built as a
//     ramp of StepBytes reservations (StepTasks of optimizer work
//     each), after which the costing scratch is released — a
//     mid-compilation fall the broker's trend detector sees.
//
// All stage memory flows through Compilation.Alloc, so the gateway
// ladder observes genuinely growing consumers and can block (or time
// out) a compilation mid-flight at any threshold crossing — the
// paper's gateway-chain mechanism.
//
// Single-table (point/diagnostic) queries skip the stages entirely:
// their plans are trivial, which is what keeps them under the small
// gateway's threshold — the paper's diagnostics-under-overload bypass.
type CompileStages struct {
	// Disabled reproduces the flat pre-stage model: compile memory is
	// the exploration memo alone.
	Disabled bool
	// BindBytes is the parse/bind footprint wired when the compilation
	// opens.
	BindBytes int64
	// CostingScale sizes costing scratch as a multiple of every memo
	// charge; it is held until codegen completes.
	CostingScale float64
	// CodegenScale sizes the codegen phase (physical operator trees,
	// runtime structures) as a multiple of the final memo bytes; it is
	// held until the compilation closes.
	CodegenScale float64
	// StepBytes is the reservation granularity of the codegen ramp;
	// each step passes through the gateway ladder.
	StepBytes int64
	// StepTasks is the optimizer work charged per codegen ramp step —
	// the time cost of growing, which makes the ramp gate-friendly
	// rather than an instantaneous reservation.
	StepTasks int
}

// DefaultCompileStages returns the calibrated staged compile-memory
// model (see EXPERIMENTS.md, "Calibration methodology — the unified
// regime"): peak compile memory an order of magnitude above the
// exploration memo, ramped over the compilation's lifetime in
// gate-visible increments.
func DefaultCompileStages() CompileStages {
	return CompileStages{
		BindBytes:    128 * mem.KiB,
		CostingScale: 4,
		CodegenScale: 5,
		StepBytes:    16 * mem.MiB,
		StepTasks:    6,
	}
}

// DefaultConfig reproduces the paper's testbed with throttling fully
// enabled.
func DefaultConfig() Config {
	return Config{
		CPUs:               8,
		MemoryBytes:        4 * mem.GiB,
		FixedOverheadBytes: 200 * mem.MiB,
		Throttle:           true,
		DynamicThresholds:  true,
		BestEffort:         true,
		BrokerEnabled:      true,
		Broker:             broker.DefaultConfig(),
		BrokerInterval:     5 * time.Second,
		BufferPool:         bufferpool.DefaultConfig(),
		Executor:           executor.DefaultConfig(),
		Optimizer:          optimizer.DefaultConfig(),
		CompileTaskCPU:     1500 * time.Microsecond,
		CompileTaskWait:    45 * time.Millisecond,
		CompileStages:      DefaultCompileStages(),
		ExecGrantLimitFrac: 0.45,
		VASBytes:           0,
		Pressure:           mem.DefaultPressureModel(),
		CPUQuantum:         100 * time.Millisecond,
		SliceDur:           10 * time.Minute,
		WeightBufferPool:   1.0,
		WeightCompile:      0.9,
		WeightExec:         1.0,
		WeightPlanCache:    0.15,
		MinBufferPool:      128 * mem.MiB,
		MinCompile:         64 * mem.MiB,
	}
}

// StmtID is the derived identity of one statement text: its plan-cache
// fingerprint and the execution-locality seed. Both are pure functions
// of the text.
type StmtID struct {
	Fingerprint string
	Seed        int64
}

// StaticStatements maps statement text to its precomputed identity. A
// run snapshot builds one per workload shape (the OLTP point-query pool)
// and shares it read-only across every run of that shape, so recurring
// statements are never parsed or hashed again.
type StaticStatements map[string]StmtID

// PrepareStatements derives identities for a closed statement set.
// Texts that do not parse are skipped — they keep the parse-first error
// behaviour when submitted.
func PrepareStatements(sqls []string) StaticStatements {
	out := make(StaticStatements, len(sqls))
	for _, sql := range sqls {
		if _, err := sqlparser.Parse(sql); err != nil {
			continue
		}
		fp := sqlparser.Fingerprint(sql)
		out[sql] = StmtID{Fingerprint: fp, Seed: int64(sqlparser.Hash64(fp))}
	}
	return out
}

// Prebuilt carries immutable, shareable components a run snapshot built
// once for a scenario shape. Every field is optional; NewShared builds
// whatever is missing. All fields are read-only after construction, so
// one Prebuilt may back any number of concurrent servers.
type Prebuilt struct {
	// Estimator is the statistics/cardinality layer over the catalog.
	Estimator *stats.Estimator
	// Layout maps the catalog onto the extent address space.
	Layout *storage.Layout
	// Statements is the workload's pre-fingerprinted recurring set.
	Statements StaticStatements
}

// Server is the simulated DBMS instance.
type Server struct {
	cfg    Config
	sched  *vtime.Scheduler
	budget *mem.Budget
	cpu    *vtime.CPUSet

	brk    *broker.Broker
	vasBrk *broker.Broker
	gov    *core.Governor
	pool   *bufferpool.Pool
	cache  *plancache.Cache
	exec   *executor.Executor
	opt    *optimizer.Optimizer
	layout *storage.Layout

	rec         *metrics.Recorder
	compileHist *metrics.Histogram
	execHist    *metrics.Histogram

	// Component memory traces sampled every broker interval.
	poolTrace, compileTrace, execTrace *metrics.Trace
	activeCompileTrace                 *metrics.Trace
	// overcommitTrace samples the budget's overcommit ratio in permille
	// (the thrash severity the pressure model responds to).
	overcommitTrace *metrics.Trace

	// compile-memory per-query profile (for the compile-memory
	// experiments): sum/count/max in bytes.
	compileMemSum, compileMemMax int64
	compileMemN                  int64

	// Hot-path caches and free lists (one scheduler per server, no
	// locking): statement-text identity memo, pooled execution-locality
	// sources, recycled compile-work continuation ops. static is the
	// snapshot's shared read-only identity map, consulted before the
	// per-run memo.
	static    StaticStatements
	queryMemo map[string]queryInfo
	rngs      freelist.List[rand.Rand]
	workOps   freelist.List[compileWorkOp]
	queries   freelist.List[plan.Query]
	compCtxs  freelist.List[compileCtx]

	// Fault-plane state (see internal/fault): ballast is the wired
	// "leak" tracker injections ratchet; faultDiskMul dilates every disk
	// transfer while a disk-stall fault is active (1 = healthy); down
	// marks the engine crashed (submits fail fast until Restart);
	// crashEpoch increments per crash so work in flight across a crash
	// errors out at its next engine interaction.
	ballast      *mem.Tracker
	faultDiskMul float64
	down         bool
	crashEpoch   uint64
	crashes      uint64

	closed bool
}

// New builds a Server over the catalog inside sched. It reserves the
// fixed overhead, wires broker components and reclaimers, and starts the
// housekeeping task (stop it with Close when the workload drains).
func New(cfg Config, cat *catalog.Catalog, sched *vtime.Scheduler) (*Server, error) {
	return NewShared(cfg, cat, Prebuilt{}, sched)
}

// NewShared is New over snapshot-shared immutable components: the
// estimator, storage layout, and static statement identities in pre are
// used as-is instead of being rebuilt per run (missing ones are built
// here). Only mutable engine state — budget, pools, caches, metrics —
// is constructed per server.
func NewShared(cfg Config, cat *catalog.Catalog, pre Prebuilt, sched *vtime.Scheduler) (*Server, error) {
	def := DefaultConfig()
	if cfg.CPUs <= 0 {
		cfg.CPUs = def.CPUs
	}
	if cfg.MemoryBytes <= 0 {
		cfg.MemoryBytes = def.MemoryBytes
	}
	if cfg.BrokerInterval <= 0 {
		cfg.BrokerInterval = def.BrokerInterval
	}
	if cfg.SliceDur <= 0 {
		cfg.SliceDur = def.SliceDur
	}
	if cfg.CompileTaskCPU <= 0 {
		cfg.CompileTaskCPU = def.CompileTaskCPU
	}
	if cfg.CPUQuantum <= 0 {
		cfg.CPUQuantum = def.CPUQuantum
	}
	if cfg.CompileStages == (CompileStages{}) {
		cfg.CompileStages = def.CompileStages
	}
	if cfg.ExecGrantLimitFrac <= 0 {
		cfg.ExecGrantLimitFrac = def.ExecGrantLimitFrac
	}
	if cfg.WeightBufferPool <= 0 {
		cfg.WeightBufferPool = def.WeightBufferPool
	}
	if cfg.WeightCompile <= 0 {
		cfg.WeightCompile = def.WeightCompile
	}
	if cfg.WeightExec <= 0 {
		cfg.WeightExec = def.WeightExec
	}
	if cfg.WeightPlanCache <= 0 {
		cfg.WeightPlanCache = def.WeightPlanCache
	}
	if cfg.BufferPool.ExtentBytes == 0 {
		cfg.BufferPool = def.BufferPool
	}
	if cfg.Executor.CostUnitCPU == 0 {
		cfg.Executor = def.Executor
	}
	if cfg.Optimizer.WorkBatch == 0 {
		cfg.Optimizer = def.Optimizer
	}
	if cfg.BufferPool.ExtentBytes != cat.ExtentBytes {
		return nil, fmt.Errorf("engine: buffer pool extent %d != catalog extent %d",
			cfg.BufferPool.ExtentBytes, cat.ExtentBytes)
	}
	if pre.Estimator != nil && pre.Estimator.Catalog() != cat {
		return nil, fmt.Errorf("engine: prebuilt estimator belongs to a different catalog")
	}
	if pre.Layout != nil && pre.Layout.Catalog() != cat {
		return nil, fmt.Errorf("engine: prebuilt layout belongs to a different catalog")
	}

	s := &Server{
		cfg:         cfg,
		sched:       sched,
		budget:      mem.NewBudget(cfg.MemoryBytes),
		cpu:         vtime.NewCPUSet(cfg.CPUs, cfg.CPUQuantum),
		rec:         metrics.NewRecorder(cfg.SliceDur),
		compileHist: metrics.NewHistogram(time.Second, 10*time.Second, 30*time.Second, time.Minute, 75*time.Second, 90*time.Second, 2*time.Minute, 3*time.Minute, 5*time.Minute),
		execHist:    metrics.NewHistogram(10*time.Second, 30*time.Second, time.Minute, 5*time.Minute, 10*time.Minute, 30*time.Minute),

		poolTrace:          metrics.NewTrace("bufferpool"),
		compileTrace:       metrics.NewTrace("compile"),
		execTrace:          metrics.NewTrace("exec"),
		activeCompileTrace: metrics.NewTrace("active-compiles"),
		overcommitTrace:    metrics.NewTrace("overcommit-permille"),

		static:    pre.Statements,
		queryMemo: make(map[string]queryInfo),
	}
	if cfg.Pressure.Enabled {
		s.budget.SetPressure(cfg.Pressure)
	}

	overhead := s.budget.NewTracker("overhead")
	if cfg.FixedOverheadBytes > 0 {
		overhead.MustReserve(cfg.FixedOverheadBytes)
	}

	// The VAS group: compile, grants, and plan cache contend inside it;
	// the buffer pool lives outside (AWE analogue).
	var vas *mem.Group
	if cfg.VASBytes > 0 {
		vas = s.budget.NewGroup("vas", cfg.VASBytes)
	}
	inVAS := func(t *mem.Tracker) *mem.Tracker {
		if vas != nil {
			t.SetGroup(vas)
		}
		return t
	}

	// Subcomponents. The caches are reclaimable (the pager steals their
	// pages for free); everything else counts as wired memory under the
	// pressure model.
	poolTracker := s.budget.NewTracker("bufferpool")
	poolTracker.MarkReclaimable()
	s.pool = bufferpool.New(cfg.BufferPool, poolTracker)
	cacheTracker := inVAS(s.budget.NewTracker("plancache"))
	cacheTracker.MarkReclaimable()
	s.cache = plancache.New(cacheTracker)
	s.layout = pre.Layout
	if s.layout == nil {
		s.layout = storage.NewLayout(cat)
	}

	govOpts := core.Options{
		Enabled:           cfg.Throttle,
		DynamicThresholds: cfg.DynamicThresholds,
		BestEffort:        cfg.BestEffort,
		Brownout:          cfg.Brownout,
	}
	// Gate thresholds are expressed against the contested region: the VAS
	// when bounded, the whole machine otherwise.
	contested := cfg.MemoryBytes
	if cfg.VASBytes > 0 {
		contested = cfg.VASBytes
	}
	if cfg.GatewayOverride != nil {
		govOpts.Gateways = *cfg.GatewayOverride
	} else {
		govOpts.Gateways = gateway.DefaultConfig(cfg.CPUs, contested)
	}
	compileTracker := inVAS(s.budget.NewTracker("compile"))
	compileTracker.AllowOvercommit()
	gov, err := core.NewGovernor(govOpts, compileTracker)
	if err != nil {
		return nil, err
	}
	s.gov = gov

	execTracker := inVAS(s.budget.NewTracker("exec"))
	execTracker.SetLimit(int64(cfg.ExecGrantLimitFrac * float64(contested)))
	execTracker.AllowOvercommit()
	grants := executor.NewGrantManager(execTracker, cfg.Executor.GrantTimeout)
	s.exec = executor.New(cfg.Executor, s.pool, s.layout, s.cpu, grants, cfg.Optimizer.Cost)
	if cfg.Pressure.Enabled {
		// Thrash penalties: every CPU quantum and disk transfer stretches
		// with the paging slowdown, and executions refault their granted
		// workspace. The hooks read budget state at call time, so the
		// penalty tracks pressure as it develops — deterministically.
		s.cpu.SetDilation(s.budget.Slowdown)
		s.exec.SetPressure(s.budget.Slowdown)
	}
	// Disk dilation composes the paging slowdown (when modeled) with the
	// fault plane's disk-stall factor; with neither active the hook
	// returns exactly 1 and the pool skips dilation entirely.
	s.faultDiskMul = 1
	s.pool.SetDilation(s.diskDilation)
	// The leak-ballast tracker: wired (non-reclaimable) and allowed to
	// overcommit into swap, so a ratcheting leak drives the machine into
	// the pressure model's thrash regime instead of failing outright.
	s.ballast = s.budget.NewTracker("ballast")
	s.ballast.AllowOvercommit()

	est := pre.Estimator
	if est == nil {
		est = stats.NewEstimator(cat)
	}
	s.opt = optimizer.New(est, cfg.Optimizer)

	// Reclaimers: only the plan cache yields memory synchronously (it is
	// the cheapest cache to drop). The buffer pool gives memory back only
	// through broker targets at broker cadence — instantaneous pool
	// eviction on someone else's allocation is not how a lazywriter-based
	// engine behaves, and modeling it graceful hides the paper's failure
	// mode: allocations that outrun the broker fail with out-of-memory.
	s.budget.RegisterReclaimer("plancache", 1, s.cache.Shrink)
	s.budget.RegisterReclaimer("bufferpool", 2, s.pool.Shrink)
	if vas != nil {
		// Inside the VAS only the plan cache is reclaimable.
		vas.RegisterReclaimer("plancache", 1, s.cache.Shrink)
	}

	if cfg.BrokerEnabled {
		// The machine-level broker arbitrates the buffer pool against
		// everything else; when a VAS is configured, a second broker
		// arbitrates the contested region among compile / grants / plan
		// cache — that broker's compile target drives the gate ladder.
		s.brk = broker.New(cfg.Broker, s.budget)
		s.brk.Register("bufferpool", cfg.WeightBufferPool, cfg.MinBufferPool,
			s.pool.Bytes, func(n broker.Notification) {
				if n.Pressure {
					s.pool.SetTarget(n.Target)
				} else {
					s.pool.SetTarget(0)
				}
			})
		if vas != nil {
			s.vasBrk = broker.New(cfg.Broker, vas)
		} else {
			s.vasBrk = s.brk
		}
		s.vasBrk.Register("plancache", cfg.WeightPlanCache, 0,
			s.cache.Bytes, func(n broker.Notification) {
				if n.Pressure {
					s.cache.SetTarget(n.Target)
				} else {
					s.cache.SetTarget(0)
				}
			})
		s.gov.AttachBroker(s.vasBrk, cfg.WeightCompile, cfg.MinCompile)
		s.vasBrk.Register("exec", cfg.WeightExec, 0, execTracker.Used, nil)
	}

	sched.GoStep("housekeeping", &housekeeper{s: s})
	return s, nil
}

// housekeeper is the continuation-task state machine that ticks the
// broker and prods the grant queue until Close: sleep one broker
// interval, run the tick body, re-check closed, repeat. It runs entirely
// on the event loop — no goroutine, no stack.
type housekeeper struct {
	s        *Server
	sleeping bool
}

func (h *housekeeper) Run(t *vtime.Task) {
	if h.sleeping {
		h.sleeping = false
		h.s.housekeepingTick(t)
	}
	if h.s.closed {
		return // no resume point armed: the task exits
	}
	h.sleeping = true
	t.SleepThen(h.s.cfg.BrokerInterval, h)
}

// housekeepingTick is one broker-interval tick.
func (s *Server) housekeepingTick(t *vtime.Task) {
	if s.brk != nil {
		s.brk.Tick(t.Now())
	}
	if s.vasBrk != nil && s.vasBrk != s.brk {
		s.vasBrk.Tick(t.Now())
	}
	// Memory freed by finished compilations doesn't signal the grant
	// queue on its own; give waiting grants a chance to retry.
	s.exec.Grants().Kick()
	// Page steal: with wired memory past the paging threshold the
	// pager takes buffer-pool frames each tick, trading cache hit
	// rate for swap room — the visible half of thrashing.
	if s.cfg.Pressure.Enabled && s.cfg.Pressure.StealFrac > 0 {
		if over := s.budget.WiredOverBytes(); over > 0 {
			s.pool.StealPages(int64(s.cfg.Pressure.StealFrac * float64(over)))
		}
	}
	s.poolTrace.Add(t.Now(), s.pool.Bytes())
	s.compileTrace.Add(t.Now(), s.gov.Tracker().Used())
	s.execTrace.Add(t.Now(), s.exec.Grants().Tracker().Used())
	s.activeCompileTrace.Add(t.Now(), int64(s.gov.Active()))
	s.overcommitTrace.Add(t.Now(), int64(s.budget.OvercommitRatio()*1000))
}

// Close stops the housekeeping task after in-flight work finishes. The
// load generator's onAllDone callback is the intended caller.
func (s *Server) Close() { s.closed = true }

// diskDilation is the buffer pool's disk time-dilation hook: the paging
// slowdown (when the pressure model runs) composed with the fault
// plane's disk-stall factor.
func (s *Server) diskDilation() float64 {
	f := s.faultDiskMul
	if s.cfg.Pressure.Enabled {
		if f == 1 {
			return s.budget.Slowdown()
		}
		return f * s.budget.Slowdown()
	}
	return f
}

// crashError is the recycled connection-lost error: one static value
// serves every disconnect, so a crash that errors hundreds of in-flight
// queries allocates nothing.
type crashError struct{}

func (*crashError) Error() string        { return "engine: server crashed; connection lost" }
func (*crashError) Is(target error) bool { return target == errclass.Crashed }

// ErrCrashed is returned for queries in flight when the engine crashes
// and for submits while it is down.
var ErrCrashed error = &crashError{}

// Crash models an engine process failure: every query in flight errors
// with ErrCrashed at its next engine interaction, the plan cache and the
// brokers' sample history are lost (in-memory state does not survive the
// process), and submits fail fast until Restart — clients observe a dead
// connection and reconnect by retrying.
func (s *Server) Crash() {
	s.down = true
	s.crashEpoch++
	s.crashes++
	s.cache.Clear()
	clear(s.queryMemo)
	if s.brk != nil {
		s.brk.ResetHistory()
	}
	if s.vasBrk != nil && s.vasBrk != s.brk {
		s.vasBrk.ResetHistory()
	}
}

// Restart brings a crashed engine back up: submits are accepted again,
// against a cold plan cache and an empty broker history.
func (s *Server) Restart() { s.down = false }

// Down reports whether the engine is crashed.
func (s *Server) Down() bool { return s.down }

// Crashes returns how many times the engine has crashed.
func (s *Server) Crashes() uint64 { return s.crashes }

// SetDiskFault installs the fault plane's disk-stall factor: every disk
// transfer takes mul times as long while it is above 1. 1 clears the
// stall.
func (s *Server) SetDiskFault(mul float64) {
	if mul < 1 {
		mul = 1
	}
	s.faultDiskMul = mul
}

// LeakBallast wires n more bytes of leak ballast — memory some faulty
// component holds and never uses, crowding real consumers into the
// pressure model's thrash regime. Fails with an OOM once even the commit
// limit (physical + swap) is exhausted.
func (s *Server) LeakBallast(n int64) error { return s.ballast.Reserve(n) }

// BallastBytes returns the ballast currently held.
func (s *Server) BallastBytes() int64 { return s.ballast.Used() }

// DropBallast releases all leak ballast (the faulty component was
// restarted or the leak cleared).
func (s *Server) DropBallast() { s.ballast.ReleaseAll() }

// CheckInvariants audits end-of-run memory conservation: with no work in
// flight, compilation and execution-grant memory must be fully released
// and the budget's double-entry bookkeeping must balance. The harness
// runs this after every simulation; the fault fuzzer relies on it to
// prove arbitrary injection schedules never leak or double-free.
func (s *Server) CheckInvariants() error {
	if err := s.budget.CheckConservation(); err != nil {
		return err
	}
	if n := s.gov.Tracker().Used(); n != 0 {
		return fmt.Errorf("engine: %d compile bytes still reserved after drain", n)
	}
	if n := s.exec.Grants().Tracker().Used(); n != 0 {
		return fmt.Errorf("engine: %d grant bytes still reserved after drain", n)
	}
	if a := s.gov.Active(); a != 0 {
		return fmt.Errorf("engine: %d compilations still open after drain", a)
	}
	return nil
}

// Error kinds recorded per failed query.
const (
	ErrKindOOM            = "oom"
	ErrKindGatewayTimeout = "gateway-timeout"
	ErrKindGrantTimeout   = "grant-timeout"
	ErrKindCrashed        = "crashed"
	ErrKindOther          = "other"
)

// classify maps an error to its metric kind through the errclass
// taxonomy (every engine error type advertises its class via errors.Is);
// the legacy kind strings are kept so recorded metrics stay comparable.
func classify(err error) string {
	switch errclass.Of(err) {
	case errclass.Crashed:
		return ErrKindCrashed
	case errclass.Shed:
		return ErrKindGatewayTimeout
	case errclass.Timeout:
		return ErrKindGrantTimeout
	case errclass.OOM:
		return ErrKindOOM
	default:
		return ErrKindOther
	}
}

// queryInfo caches the derived identity of one statement text: its
// plan-cache fingerprint and the execution-locality seed. Both are pure
// functions of the text, so repeated workload SQL skips re-parsing and
// re-hashing entirely when the plan cache holds its plan.
type queryInfo struct {
	fp   string
	seed int64
}

// queryMemoCap bounds the statement-text memo; the SALES workload
// uniquifies every query, so without a cap an 8-hour run would retain
// every statement ever submitted. Eviction is wholesale: the memo is a
// pure cache, so clearing it only costs re-derivation.
const queryMemoCap = 8192

// getRNG returns a pooled execution-locality source reseeded in place —
// reseeding reproduces exactly the stream rand.New(rand.NewSource(seed))
// would, without the per-query allocation.
func (s *Server) getRNG(seed int64) *rand.Rand {
	if r := s.rngs.Get(); r != nil {
		r.Seed(seed)
		return r
	}
	return rand.New(rand.NewSource(seed))
}

func (s *Server) putRNG(r *rand.Rand) {
	s.rngs.Put(r)
}

// getQuery returns a recycled query shell for ParseInto; the parse
// Resets it, so stale contents (even from a failed parse) are harmless.
func (s *Server) getQuery() *plan.Query {
	if q := s.queries.Get(); q != nil {
		return q
	}
	return new(plan.Query)
}

func (s *Server) putQuery(q *plan.Query) {
	s.queries.Put(q)
}

// Submit runs one query end to end on behalf of the calling task. The
// returned error (if any) has already been recorded in the metrics.
func (s *Server) Submit(t *vtime.Task, sql string) error {
	if s.down {
		// Crashed: the connection is refused outright. Recorded like any
		// other failure so the error series shows the outage.
		s.rec.RecordError(t.Now(), ErrKindCrashed)
		return ErrCrashed
	}
	epoch := s.crashEpoch
	var info queryInfo
	var seen bool
	if id, ok := s.static[sql]; ok {
		// Snapshot-shared identity: the statement's fingerprint and seed
		// were derived once for the workload shape; nothing to memoize.
		info, seen = queryInfo{fp: id.Fingerprint, seed: id.Seed}, true
	} else {
		info, seen = s.queryMemo[sql]
	}
	var q *plan.Query
	if !seen {
		q = s.getQuery()
		if err := sqlparser.ParseInto(q, sql); err != nil {
			s.putQuery(q)
			s.rec.RecordError(t.Now(), ErrKindOther)
			return err
		}
		// Execution locality is seeded from the full fingerprint so
		// repeated statements overlap on hot regions while distinct
		// queries get independent locality (length + first byte collide
		// far too often). Only successfully parsed text enters the memo,
		// so malformed SQL keeps its parse-first error behaviour.
		info.fp = sqlparser.Fingerprint(sql)
		info.seed = int64(sqlparser.Hash64(info.fp))
		if len(s.queryMemo) >= queryMemoCap {
			clear(s.queryMemo)
		}
		s.queryMemo[sql] = info
	}

	p, cached := s.cache.Get(info.fp)
	if !cached {
		if q == nil {
			q = s.getQuery()
			if err := sqlparser.ParseInto(q, sql); err != nil {
				s.putQuery(q)
				s.rec.RecordError(t.Now(), ErrKindOther)
				return err
			}
		}
		var err error
		p, err = s.compile(t, q)
		s.putQuery(q)
		q = nil
		if err == nil && s.crashEpoch != epoch {
			// The engine crashed while this compilation ran; the process
			// that produced the plan is gone and so is the client's
			// connection. Nothing may reach the (new) plan cache.
			err = ErrCrashed
		}
		if err != nil {
			s.rec.RecordError(t.Now(), classify(err))
			return err
		}
		s.cache.Put(info.fp, p, t.Now())
	}
	if q != nil {
		s.putQuery(q)
	}

	rng := s.getRNG(info.seed)
	execStart := t.Now()
	_, err := s.exec.Execute(t, p, rng)
	s.putRNG(rng)
	if s.crashEpoch != epoch {
		// Crashed mid-execution: whatever the executor concluded, the
		// client's connection died with the old process.
		err = ErrCrashed
	}
	if err != nil {
		s.rec.RecordError(t.Now(), classify(err))
		return err
	}
	s.execHist.Observe(t.Now() - execStart)
	s.rec.RecordCompletion(t.Now())
	return nil
}

// compileWorkOp is the continuation op behind one optimizer Work batch:
// burn the batch's CPU on the processor pool, then pay the non-CPU wait
// (metadata fetches, latching). Both phases run as event-loop steps, so
// a compilation's many work batches each cost a single coroutine round
// trip instead of one per CPU quantum.
type compileWorkOp struct {
	s     *Server
	cpu   time.Duration
	tasks int
	k     vtime.Step
	state int8
}

func (op *compileWorkOp) Run(t *vtime.Task) {
	s := op.s
	switch op.state {
	case 0:
		op.state = 1
		s.cpu.UseThen(t, op.cpu, op)
	case 1:
		if s.cfg.CompileTaskWait > 0 {
			// Metadata fetches and latching stretch with the paging
			// slowdown too: a thrashing machine faults on catalog
			// pages like everything else. The slowdown is read after
			// the CPU phase, when the wait actually starts.
			wait := time.Duration(op.tasks) * s.cfg.CompileTaskWait
			if f := s.budget.Slowdown(); f > 1 {
				wait = time.Duration(float64(wait) * f)
			}
			op.state = 2
			t.SleepThen(wait, op)
			return
		}
		op.finish(t)
	case 2:
		op.finish(t)
	}
}

func (op *compileWorkOp) finish(t *vtime.Task) {
	k := op.k
	op.k = nil
	op.s.workOps.Put(op)
	k.Run(t)
}

// compileWork charges one optimizer work batch on behalf of t.
func (s *Server) compileWork(t *vtime.Task, tasks int) {
	t.Await(func(k vtime.Step) {
		op := s.workOps.Get()
		if op == nil {
			op = &compileWorkOp{s: s}
		}
		op.cpu = time.Duration(tasks) * s.cfg.CompileTaskCPU
		op.tasks, op.k, op.state = tasks, k, 0
		op.Run(t)
	})
}

// stageRamp wires total additional bytes onto the compilation in
// StepBytes increments, charging StepTasks of optimizer work per step.
// Every increment passes through Compilation.Alloc, so the gateway
// ladder can block (or time out) the compiling task mid-ramp and the
// broker's trend detector sees the footprint actually climb between
// ticks. A failed step has already rolled the whole compilation back.
func (s *Server) stageRamp(t *vtime.Task, comp *core.Compilation, epoch uint64, total int64) error {
	st := s.cfg.CompileStages
	step := st.StepBytes
	if step <= 0 {
		step = total
	}
	for reserved := int64(0); reserved < total; {
		if s.crashEpoch != epoch {
			comp.Abort()
			return ErrCrashed
		}
		n := step
		if rest := total - reserved; n > rest {
			n = rest
		}
		if err := comp.Alloc(n); err != nil {
			return err
		}
		reserved += n
		if st.StepTasks > 0 {
			s.compileWork(t, st.StepTasks)
		}
	}
	return nil
}

// compile optimizes q under the governor, walking the staged memory
// phases: bind (fixed footprint) → join enumeration with costing
// scratch accreting alongside every memo charge → codegen (a ramp
// sized from the memo). Costing scratch is freed once codegen has
// consumed it; everything else is released when the compilation
// closes.
// compileCtx carries one compilation's optimizer hook state. It is
// pooled, and the three hook func values are bound to the ctx once when
// it is first created — starting a compilation rewrites the per-call
// fields in place instead of allocating fresh closures (the former
// single largest allocation source in a sweep).
type compileCtx struct {
	s    *Server
	t    *vtime.Task
	comp *core.Compilation
	// epoch is the crash epoch the compilation started under; a charge
	// after the engine crashed aborts the compilation with ErrCrashed.
	epoch uint64
	// scale is CompileStages.CostingScale when the compilation is
	// staged, else 0 (plain memo charges).
	scale       float64
	costingHeld int64
	hooks       optimizer.Hooks
}

// charge forwards memo growth to the compilation. When staged, the
// footprint the gateways see grows scale+1 times as fast as the memo —
// exploration's memory is memo plus costing scratch.
func (c *compileCtx) charge(n int64) error {
	if c.s.crashEpoch != c.epoch {
		// The engine crashed under this compilation; stop growing
		// immediately (the caller aborts, releasing memory and gates).
		return ErrCrashed
	}
	if c.scale > 0 {
		extra := int64(c.scale * float64(n))
		if err := c.comp.Alloc(n + extra); err != nil {
			return err
		}
		c.costingHeld += extra
		return nil
	}
	return c.comp.Alloc(n)
}

func (c *compileCtx) work(tasks int) { c.s.compileWork(c.t, tasks) }

func (c *compileCtx) bestEffort() bool { return c.comp.ShouldYieldBestEffort() }

func (s *Server) getCompileCtx(t *vtime.Task, comp *core.Compilation, scale float64) *compileCtx {
	c := s.compCtxs.Get()
	if c == nil {
		c = &compileCtx{s: s}
		c.hooks = optimizer.Hooks{Charge: c.charge, Work: c.work, BestEffort: c.bestEffort}
	}
	c.t, c.comp, c.scale, c.costingHeld, c.epoch = t, comp, scale, 0, s.crashEpoch
	return c
}

func (s *Server) compile(t *vtime.Task, q *plan.Query) (*plan.Plan, error) {
	comp := s.gov.Begin(t, "compile")
	start := t.Now()
	st := s.cfg.CompileStages
	staged := !st.Disabled && len(q.Tables) > 1
	if staged && st.BindBytes > 0 {
		if err := comp.Alloc(st.BindBytes); err != nil {
			return nil, err
		}
	}
	scale := 0.0
	if staged && st.CostingScale > 0 {
		scale = st.CostingScale
	}
	ctx := s.getCompileCtx(t, comp, scale)
	ctxEpoch := ctx.epoch
	p, err := s.opt.Optimize(q, ctx.hooks)
	costingHeld := ctx.costingHeld
	// Optimize no longer holds the hooks once it returns (the pooled run
	// drops them), so the ctx can be recycled before error handling.
	s.compCtxs.Put(ctx)
	if err != nil {
		// Alloc failures already rolled the compilation back; other
		// errors (validation) abort explicitly. Both are idempotent.
		comp.Abort()
		return nil, err
	}
	if staged && !p.BestEffort {
		if err := s.stageRamp(t, comp, ctxEpoch, int64(st.CodegenScale*float64(p.CompileBytes))); err != nil {
			return nil, err
		}
		// Costing scratch is dead once the physical plan exists; the
		// release mid-flight is what gives the broker a falling trend
		// to track.
		comp.Free(costingHeld)
	}
	// A best-effort plan skips the codegen ramp entirely: the §4.1
	// valve yielded the held plan precisely because the broker predicts
	// exhaustion, so the compilation must not grow further — otherwise
	// the ramp could fail with the very out-of-memory error the valve
	// exists to avoid.
	peak := comp.Peak()
	comp.Finish()
	s.compileHist.Observe(t.Now() - start)
	p.CompileBytes = peak
	s.compileMemSum += peak
	s.compileMemN++
	if peak > s.compileMemMax {
		s.compileMemMax = peak
	}
	return p, nil
}

// Accessors for experiments and diagnostics.

// Recorder returns the completion/error recorder.
func (s *Server) Recorder() *metrics.Recorder { return s.rec }

// Budget returns the machine memory budget.
func (s *Server) Budget() *mem.Budget { return s.budget }

// Broker returns the memory broker (nil when disabled).
func (s *Server) Broker() *broker.Broker { return s.brk }

// Governor returns the compilation governor.
func (s *Server) Governor() *core.Governor { return s.gov }

// ActiveCompiles returns the in-flight compilation count — the load
// signal a cluster router balances on.
func (s *Server) ActiveCompiles() int { return s.gov.Active() }

// OvercommitRatio returns the machine's current wired-memory overcommit
// ratio (above 1 the node is paging) — a cluster router's
// memory-pressure health signal.
func (s *Server) OvercommitRatio() float64 { return s.budget.OvercommitRatio() }

// BrownedOut reports whether the governor is in its sustained-pressure
// brown-out mode.
func (s *Server) BrownedOut() bool { return s.gov.BrownoutActive() }

// ThrashScore condenses the node's paging state into [0, 1] for
// health-aware routing: the current paging slowdown normalized to the
// pressure model's cap, floored at 0.5 while the broker's trend
// detector reports sustained pressure, and pinned to 1 when the broker
// predicts memory exhaustion. A pure function of simulation state — no
// sampling, no randomness — so routing on it stays deterministic.
func (s *Server) ThrashScore() float64 {
	score := 0.0
	if slowCap := s.cfg.Pressure.MaxSlowdown; slowCap > 1 {
		score = (s.budget.Slowdown() - 1) / (slowCap - 1)
	}
	if s.brk != nil && s.brk.UnderPressure() && score < 0.5 {
		score = 0.5
	}
	if s.gov.Exhaustion() {
		score = 1
	}
	if score < 0 {
		return 0
	}
	if score > 1 {
		return 1
	}
	return score
}

// BufferPool returns the buffer pool.
func (s *Server) BufferPool() *bufferpool.Pool { return s.pool }

// PlanCache returns the plan cache.
func (s *Server) PlanCache() *plancache.Cache { return s.cache }

// Executor returns the execution engine.
func (s *Server) Executor() *executor.Executor { return s.exec }

// Optimizer returns the optimizer.
func (s *Server) Optimizer() *optimizer.Optimizer { return s.opt }

// CPU returns the processor pool.
func (s *Server) CPU() *vtime.CPUSet { return s.cpu }

// CompileTimes returns the compile-latency histogram.
func (s *Server) CompileTimes() *metrics.Histogram { return s.compileHist }

// ExecTimes returns the execution-latency histogram.
func (s *Server) ExecTimes() *metrics.Histogram { return s.execHist }

// Traces returns the component memory traces sampled every broker
// interval: buffer pool bytes, compile bytes, execution-grant bytes, and
// the number of concurrently open compilations.
func (s *Server) Traces() (pool, compile, exec, activeCompiles *metrics.Trace) {
	return s.poolTrace, s.compileTrace, s.execTrace, s.activeCompileTrace
}

// OvercommitTrace returns the overcommit-ratio samples (permille, every
// broker interval) — the thrash-severity curve of the run.
func (s *Server) OvercommitTrace() *metrics.Trace { return s.overcommitTrace }

// PageStealBytes returns how much buffer-pool memory the pager stole
// while the machine was overcommitted.
func (s *Server) PageStealBytes() int64 { return s.pool.StolenBytes() }

// CompileMemProfile returns (mean, max) per-query compile memory in bytes.
func (s *Server) CompileMemProfile() (mean, max int64) {
	if s.compileMemN == 0 {
		return 0, 0
	}
	return s.compileMemSum / s.compileMemN, s.compileMemMax
}

// Report renders a diagnostic summary.
func (s *Server) Report() string {
	mean, maxB := s.CompileMemProfile()
	r := fmt.Sprintf("engine: completed=%d errors=%v\n%s%s\n%s\ncompile-mem mean=%s max=%s\ncompile times: %s\n",
		s.rec.Completed(), s.rec.Errors(), s.gov.Report(), s.pool.String(), s.cache.String(),
		mem.FormatBytes(mean), mem.FormatBytes(maxB), s.compileHist.String())
	if s.cfg.Pressure.Enabled {
		r += fmt.Sprintf("paging: wired-peak=%s page-steal=%s cpu-stall=%v exec-refault=%v\n",
			mem.FormatBytes(s.budget.WiredPeak()), mem.FormatBytes(s.PageStealBytes()),
			s.cpu.StallTime(), s.exec.PageStallTotal())
	}
	if s.brk != nil {
		r += s.brk.Report()
	}
	return r
}
