package engine

import (
	"errors"
	"testing"
	"time"

	"compilegate/internal/catalog"
	"compilegate/internal/mem"
	"compilegate/internal/vtime"
	"compilegate/internal/workload"
)

func testServer(t *testing.T, mutate func(*Config)) (*Server, *vtime.Scheduler) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SliceDur = time.Minute
	if mutate != nil {
		mutate(&cfg)
	}
	sched := vtime.NewScheduler()
	cat := catalog.NewSales(catalog.SalesConfig{Scale: 0.01, ExtentBytes: cfg.BufferPool.ExtentBytes})
	srv, err := New(cfg, cat, sched)
	if err != nil {
		t.Fatal(err)
	}
	return srv, sched
}

func TestSubmitLifecycle(t *testing.T) {
	srv, sched := testServer(t, nil)
	sql := "SELECT COUNT(*) FROM sales_fact JOIN dim_date ON sales_fact.date_id = dim_date.date_id WHERE sales_fact.date_id BETWEEN 100 AND 200 GROUP BY dim_date.year"
	sched.Go("client", func(tk *vtime.Task) {
		if err := srv.Submit(tk, sql); err != nil {
			t.Errorf("Submit: %v", err)
		}
		srv.Close()
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.Recorder().Completed() != 1 {
		t.Fatalf("completed = %d", srv.Recorder().Completed())
	}
	if srv.Governor().Finished() != 1 {
		t.Fatalf("compilations finished = %d", srv.Governor().Finished())
	}
	if srv.Governor().Tracker().Used() != 0 {
		t.Fatal("compile memory leaked")
	}
	if srv.Executor().Grants().Tracker().Used() != 0 {
		t.Fatal("grant leaked")
	}
	if mean, max := srv.CompileMemProfile(); mean <= 0 || max < mean {
		t.Fatalf("compile mem profile mean=%d max=%d", mean, max)
	}
}

func TestParseErrorRecorded(t *testing.T) {
	srv, sched := testServer(t, nil)
	sched.Go("client", func(tk *vtime.Task) {
		if err := srv.Submit(tk, "DELETE FROM x"); err == nil {
			t.Error("bad SQL accepted")
		}
		srv.Close()
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.Recorder().Errors()[ErrKindOther] != 1 {
		t.Fatalf("errors = %v", srv.Recorder().Errors())
	}
}

func TestPlanCacheHitSkipsCompile(t *testing.T) {
	srv, sched := testServer(t, nil)
	sql := "SELECT * FROM dim_channel WHERE dim_channel.channel_id = 3"
	sched.Go("client", func(tk *vtime.Task) {
		if err := srv.Submit(tk, sql); err != nil {
			t.Error(err)
		}
		if err := srv.Submit(tk, sql); err != nil {
			t.Error(err)
		}
		srv.Close()
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.Governor().Started() != 1 {
		t.Fatalf("compilations = %d, want 1 (second was a cache hit)", srv.Governor().Started())
	}
	if srv.PlanCache().Hits() != 1 {
		t.Fatalf("cache hits = %d", srv.PlanCache().Hits())
	}
}

func TestUniquifiedQueriesDefeatCache(t *testing.T) {
	srv, sched := testServer(t, nil)
	sched.Go("client", func(tk *vtime.Task) {
		_ = srv.Submit(tk, "SELECT * FROM dim_channel WHERE dim_channel.channel_id = 3 /* u1 */")
		_ = srv.Submit(tk, "SELECT * FROM dim_channel WHERE dim_channel.channel_id = 3 /* u2 */")
		srv.Close()
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.Governor().Started() != 2 {
		t.Fatalf("compilations = %d, want 2 (uniquifier must defeat the cache)", srv.Governor().Started())
	}
}

func TestCompileOOMClassified(t *testing.T) {
	srv, sched := testServer(t, func(c *Config) {
		// Tiny machine with almost everything pinned: the first sizable
		// compilation must fail with out-of-memory.
		c.MemoryBytes = 40 * mem.MiB
		c.FixedOverheadBytes = 30 * mem.MiB
	})
	// A heavy snowflake query -> compile memory far beyond 300 MiB.
	w := workload.NewSales()
	sched.Go("client", func(tk *vtime.Task) {
		var sawOOM bool
		for i := 0; i < 12 && !sawOOM; i++ {
			err := srv.Submit(tk, w.Next(newRand(int64(i))))
			if err != nil && errors.Is(err, mem.ErrOutOfMemory) {
				sawOOM = true
			}
		}
		if !sawOOM {
			t.Error("no OOM on a 300 MiB machine")
		}
		srv.Close()
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.Recorder().Errors()[ErrKindOOM] == 0 {
		t.Fatalf("oom not recorded: %v", srv.Recorder().Errors())
	}
	if srv.Governor().Tracker().Used() != 0 {
		t.Fatal("aborted compilations leaked memory")
	}
}

// compileOnce submits one statement on a fresh server and returns the
// per-compilation peak memory the engine recorded.
func compileOnce(t *testing.T, sql string, mutate func(*Config)) int64 {
	t.Helper()
	srv, sched := testServer(t, mutate)
	sched.Go("client", func(tk *vtime.Task) {
		if err := srv.Submit(tk, sql); err != nil {
			t.Errorf("Submit: %v", err)
		}
		srv.Close()
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	_, peak := srv.CompileMemProfile()
	return peak
}

// TestStagedCompilePeakArithmetic pins the staged stock model's shape:
// with integral scales the peak is exactly bind + (1+costing+codegen) x
// the exploration memo, and disabling the stages reproduces the flat
// memo-only footprint.
func TestStagedCompilePeakArithmetic(t *testing.T) {
	sql := "SELECT COUNT(*) FROM sales_fact JOIN dim_date ON sales_fact.date_id = dim_date.date_id JOIN dim_store ON sales_fact.store_id = dim_store.store_id WHERE sales_fact.date_id BETWEEN 100 AND 200 GROUP BY dim_date.year"
	flat := compileOnce(t, sql, func(c *Config) {
		c.CompileStages.Disabled = true
	})
	staged := compileOnce(t, sql, nil)

	st := DefaultCompileStages()
	want := st.BindBytes + int64((1+st.CostingScale+st.CodegenScale)*float64(flat))
	if staged != want {
		t.Fatalf("staged peak = %d, want bind %d + %.0fx memo %d = %d",
			staged, st.BindBytes, 1+st.CostingScale+st.CodegenScale, flat, want)
	}
	if staged < 9*flat {
		t.Fatalf("staged stock %d not an order of magnitude above the memo %d", staged, flat)
	}
}

// TestSingleTableQuerySkipsStages pins the diagnostics bypass: a point
// query's compilation must stay below the small gate's 380 KiB
// threshold, so the staged ramps may not apply to it.
func TestSingleTableQuerySkipsStages(t *testing.T) {
	peak := compileOnce(t, "SELECT * FROM dim_channel WHERE dim_channel.channel_id = 3", nil)
	if peak >= 380<<10 {
		t.Fatalf("point-query compile peak = %d bytes, must stay under the 380 KiB small gate", peak)
	}
}

func TestThrottleDisabledHasNoChain(t *testing.T) {
	srv, sched := testServer(t, func(c *Config) { c.Throttle = false })
	if srv.Governor().Chain() != nil {
		t.Fatal("baseline built a gateway chain")
	}
	sched.Go("client", func(tk *vtime.Task) { srv.Close() })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHousekeepingTicksBroker(t *testing.T) {
	srv, sched := testServer(t, nil)
	sched.Go("client", func(tk *vtime.Task) {
		tk.Sleep(time.Minute)
		srv.Close()
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.Broker().Ticks() == 0 {
		t.Fatal("broker never ticked")
	}
	pool, _, _, _ := srv.Traces()
	if len(pool.Points) == 0 {
		t.Fatal("no pool trace samples")
	}
}

func TestExtentMismatchRejected(t *testing.T) {
	cfg := DefaultConfig()
	sched := vtime.NewScheduler()
	cat := catalog.NewSales(catalog.SalesConfig{Scale: 0.01, ExtentBytes: 1 << 20}) // 1 MiB != pool's 8 MiB
	if _, err := New(cfg, cat, sched); err == nil {
		t.Fatal("extent mismatch accepted")
	}
}

func TestReportNonEmpty(t *testing.T) {
	srv, sched := testServer(t, nil)
	sched.Go("client", func(tk *vtime.Task) {
		_ = srv.Submit(tk, "SELECT * FROM dim_channel WHERE dim_channel.channel_id = 1")
		srv.Close()
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(srv.Report()) < 100 {
		t.Fatalf("report too small: %q", srv.Report())
	}
}
