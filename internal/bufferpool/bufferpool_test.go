package bufferpool

import (
	"testing"
	"testing/quick"
	"time"

	"compilegate/internal/mem"
	"compilegate/internal/storage"
	"compilegate/internal/vtime"
)

func testCfg() Config {
	return Config{
		ExtentBytes:  100,
		DiskLatency:  10 * time.Millisecond,
		DiskChannels: 2,
		HitLatency:   100 * time.Microsecond,
		MinBytes:     0,
	}
}

func key(i int64) storage.ExtentKey { return storage.NewExtentKey(1, i) }

func TestMissThenHit(t *testing.T) {
	b := mem.NewBudget(10_000)
	p := New(testCfg(), b.NewTracker("bp"))
	s := vtime.NewScheduler()
	s.Go("r", func(tk *vtime.Task) {
		if p.Read(tk, key(1)) {
			t.Error("first read was a hit")
		}
		if !p.Read(tk, key(1)) {
			t.Error("second read was a miss")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Hits() != 1 || p.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", p.Hits(), p.Misses())
	}
	if p.Bytes() != 100 || p.Frames() != 1 {
		t.Fatalf("bytes=%d frames=%d", p.Bytes(), p.Frames())
	}
	// Latency: one miss (10ms) + one hit (0.1ms).
	if s.Now() != 10*time.Millisecond+100*time.Microsecond {
		t.Fatalf("elapsed = %v", s.Now())
	}
}

func TestDiskChannelContention(t *testing.T) {
	b := mem.NewBudget(1 << 20)
	p := New(testCfg(), b.NewTracker("bp")) // 2 channels, 10ms each
	s := vtime.NewScheduler()
	for i := 0; i < 4; i++ {
		i := i
		s.Go("r", func(tk *vtime.Task) {
			p.Read(tk, key(int64(i)))
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 misses over 2 channels = 2 waves of 10ms.
	if s.Now() != 20*time.Millisecond {
		t.Fatalf("elapsed = %v, want 20ms", s.Now())
	}
}

func TestBudgetPressurePassthrough(t *testing.T) {
	b := mem.NewBudget(250) // room for 2 frames only
	p := New(testCfg(), b.NewTracker("bp"))
	s := vtime.NewScheduler()
	s.Go("r", func(tk *vtime.Task) {
		p.Read(tk, key(1))
		p.Read(tk, key(2))
		// Third unique extent: budget exhausted; pool must evict its own
		// coldest frame and keep working.
		p.Read(tk, key(3))
		if p.Frames() != 2 {
			t.Errorf("frames = %d, want 2", p.Frames())
		}
		if p.Bytes() != 200 {
			t.Errorf("bytes = %d, want 200", p.Bytes())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Evictions() == 0 {
		t.Fatal("no evictions under budget pressure")
	}
}

func TestClockEvictsColdKeepsHot(t *testing.T) {
	b := mem.NewBudget(300) // 3 frames
	p := New(testCfg(), b.NewTracker("bp"))
	s := vtime.NewScheduler()
	s.Go("r", func(tk *vtime.Task) {
		p.Read(tk, key(1))
		p.Read(tk, key(2))
		p.Read(tk, key(3))
		// Re-touch 1 and 2 so 3 is the cold one.
		p.Read(tk, key(1))
		p.Read(tk, key(2))
		// Clock sweep clears refs; touch 1 and 2 again mid-sweep pattern.
		p.Read(tk, key(4)) // must evict someone
		if !p.Contains(key(4)) {
			t.Error("new extent not cached")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Frames() != 3 {
		t.Fatalf("frames = %d, want 3", p.Frames())
	}
}

func TestPinnedNeverEvicted(t *testing.T) {
	b := mem.NewBudget(200) // 2 frames
	p := New(testCfg(), b.NewTracker("bp"))
	s := vtime.NewScheduler()
	s.Go("r", func(tk *vtime.Task) {
		p.Read(tk, key(1))
		p.Pin(key(1))
		p.Read(tk, key(2))
		for i := int64(3); i < 10; i++ {
			p.Read(tk, key(i))
		}
		if !p.Contains(key(1)) {
			t.Error("pinned extent evicted")
		}
		p.Unpin(key(1))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkReleasesMemory(t *testing.T) {
	b := mem.NewBudget(10_000)
	p := New(testCfg(), b.NewTracker("bp"))
	s := vtime.NewScheduler()
	s.Go("r", func(tk *vtime.Task) {
		for i := int64(0); i < 10; i++ {
			p.Read(tk, key(i))
		}
		if p.Bytes() != 1000 {
			t.Fatalf("bytes = %d", p.Bytes())
		}
		freed := p.Shrink(350)
		if freed != 400 { // whole frames only
			t.Errorf("freed = %d, want 400", freed)
		}
		if p.Bytes() != 600 || p.Frames() != 6 {
			t.Errorf("after shrink: bytes=%d frames=%d", p.Bytes(), p.Frames())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkRespectsFloor(t *testing.T) {
	cfg := testCfg()
	cfg.MinBytes = 500
	b := mem.NewBudget(10_000)
	p := New(cfg, b.NewTracker("bp"))
	s := vtime.NewScheduler()
	s.Go("r", func(tk *vtime.Task) {
		for i := int64(0); i < 10; i++ {
			p.Read(tk, key(i))
		}
		p.Shrink(1_000_000)
		if p.Bytes() < 500 {
			t.Errorf("shrank below floor: %d", p.Bytes())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTargetCapsGrowth(t *testing.T) {
	b := mem.NewBudget(10_000)
	p := New(testCfg(), b.NewTracker("bp"))
	s := vtime.NewScheduler()
	s.Go("r", func(tk *vtime.Task) {
		for i := int64(0); i < 5; i++ {
			p.Read(tk, key(i))
		}
		p.SetTarget(300) // force down to 3 frames
		if p.Bytes() > 300 {
			t.Errorf("bytes = %d after SetTarget(300)", p.Bytes())
		}
		// Growth beyond target replaces rather than grows.
		for i := int64(10); i < 15; i++ {
			p.Read(tk, key(i))
		}
		if p.Bytes() > 300 {
			t.Errorf("pool grew past target: %d", p.Bytes())
		}
		p.SetTarget(0)
		p.Read(tk, key(99))
		if p.Bytes() != 400 {
			t.Errorf("pool did not resume growth after clearing target: %d", p.Bytes())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadMany(t *testing.T) {
	b := mem.NewBudget(10_000)
	p := New(testCfg(), b.NewTracker("bp"))
	s := vtime.NewScheduler()
	s.Go("r", func(tk *vtime.Task) {
		keys := []storage.ExtentKey{key(1), key(2), key(3)}
		if hits := p.ReadMany(tk, keys); hits != 0 {
			t.Errorf("cold ReadMany hits = %d", hits)
		}
		if hits := p.ReadMany(tk, keys); hits != 3 {
			t.Errorf("warm ReadMany hits = %d", hits)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if p.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", p.HitRate())
	}
}

func TestHitRateZeroTraffic(t *testing.T) {
	b := mem.NewBudget(1000)
	p := New(testCfg(), b.NewTracker("bp"))
	if p.HitRate() != 0 {
		t.Fatal("hit rate nonzero with no traffic")
	}
	if p.String() == "" {
		t.Fatal("empty String")
	}
}

// Property: pool bytes always equal frames*ExtentBytes, never exceed the
// budget, and hits+misses equals total reads.
func TestQuickPoolInvariants(t *testing.T) {
	f := func(reads []uint8, shrinks []uint8) bool {
		b := mem.NewBudget(550) // 5 frames
		p := New(testCfg(), b.NewTracker("bp"))
		s := vtime.NewScheduler()
		ok := true
		s.Go("r", func(tk *vtime.Task) {
			for i, r := range reads {
				p.Read(tk, key(int64(r%12)))
				if len(shrinks) > 0 && i%3 == 2 {
					p.Shrink(int64(shrinks[i%len(shrinks)]))
				}
				if p.Bytes() != int64(p.Frames())*100 {
					ok = false
				}
				if p.Bytes() > 550 {
					ok = false
				}
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		return ok && p.Hits()+p.Misses() == uint64(len(reads))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestClockSeamInsertVisitedFirst pins the CLOCK ring's seam semantics
// to the original slice implementation: when the hand has advanced past
// the tail (hand == len in slice terms), a frame admitted before the
// next sweep sits exactly at the hand's position and must be the next
// sweep candidate — not the ring head. Minimal divergence sequence:
// admit a, b; pin a; evict (skips pinned a, takes b, hand ends at the
// seam); admit c; unpin a; the next victim must be c.
func TestClockSeamInsertVisitedFirst(t *testing.T) {
	b := mem.NewBudget(10_000)
	p := New(testCfg(), b.NewTracker("bp"))
	mk := func(i int64) *frame {
		f := &frame{key: key(i)}
		p.frames[f.key] = f
		p.clockInsert(f)
		return f
	}
	a := mk(1)
	mk(2)
	a.pinned = 1
	v := p.victim()
	if v == nil || v.key != key(2) {
		t.Fatalf("first victim = %v, want frame 2 (frame 1 is pinned)", v)
	}
	p.drop(v)
	c := mk(3)
	a.pinned = 0
	if v := p.victim(); v != c {
		t.Fatalf("victim after seam insert = %v, want the just-admitted frame 3", v.key)
	}
}
