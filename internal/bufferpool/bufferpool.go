// Package bufferpool implements the database page buffer pool: a CLOCK
// cache of extents charged against the machine memory budget, with the
// shrink support the Memory Broker relies on and a simulated disk behind
// misses.
//
// The pool grows on demand (caching every extent it reads) until the
// budget or its broker target stops it; under pressure it both refuses to
// grow and releases frames. Disk reads contend on a channel semaphore so
// aggregate physical-I/O bandwidth is bounded like the paper's RAID
// array.
package bufferpool

import (
	"fmt"
	"time"

	"compilegate/internal/freelist"
	"compilegate/internal/mem"
	"compilegate/internal/storage"
	"compilegate/internal/vtime"
)

// Config tunes the pool.
type Config struct {
	// ExtentBytes is the frame size (matches the catalog's extent size).
	ExtentBytes int64
	// DiskLatency is the time to read one extent from disk.
	DiskLatency time.Duration
	// DiskChannels bounds concurrent extent reads (I/O bandwidth =
	// DiskChannels * ExtentBytes / DiskLatency).
	DiskChannels int
	// HitLatency is the cost of serving an extent from memory.
	HitLatency time.Duration
	// MinBytes is the floor the pool never shrinks below.
	MinBytes int64
}

// DefaultConfig models the paper's testbed: a 2-channel Ultra3 SCSI
// array reading 8 MiB extents at ~160 MB/s per channel.
func DefaultConfig() Config {
	return Config{
		ExtentBytes:  8 << 20,
		DiskLatency:  200 * time.Millisecond,
		DiskChannels: 2,
		HitLatency:   200 * time.Microsecond,
		MinBytes:     64 << 20,
	}
}

type frame struct {
	key    storage.ExtentKey
	ref    bool
	pinned int
	// Intrusive circular CLOCK ring links (insertion order), so evicting
	// a frame is an O(1) unlink instead of a slice scan-and-shift.
	cprev, cnext *frame
}

// Pool is the buffer pool.
type Pool struct {
	cfg     Config
	tracker *mem.Tracker
	disk    *vtime.Semaphore

	frames map[storage.ExtentKey]*frame
	// CLOCK ring state: clockFirst marks the ring's seam (new frames are
	// inserted just before it, matching the old slice's append-at-end);
	// clockHand is the next sweep candidate, nil meaning "at the seam" —
	// the state the old slice encoded as hand == len, where a frame
	// admitted before the next sweep is visited first.
	clockFirst *frame
	clockHand  *frame

	target int64 // broker target; 0 = unlimited (budget still binds)

	// dilation stretches every disk transfer (paging competes for the
	// same spindles); stolen counts page-steal evictions by the pager.
	dilation    func() float64
	stolenBytes int64

	hits, misses, evictions uint64
	passthrough             uint64 // reads served without caching

	// Recycled continuation ops and frames (one scheduler per pool, no
	// locking).
	reads     freelist.List[readManyOp]
	delays    freelist.List[diskDelayOp]
	frameFree freelist.List[frame]
	// frameArena is the current carve-from chunk backing newFrame: growth
	// costs one allocation per frameChunk frames instead of one each, and
	// evicted frames recycle through frameFree, so a pool that has reached
	// its working set allocates nothing per admission.
	frameArena []frame
}

// frameChunk sizes the frame arena's chunks (64 frames ≈ one pool-growth
// burst under the broker's default targets).
const frameChunk = 64

// New creates a pool charging frames to tracker.
func New(cfg Config, tracker *mem.Tracker) *Pool {
	if cfg.ExtentBytes <= 0 {
		panic("bufferpool: non-positive extent size")
	}
	if cfg.DiskChannels <= 0 {
		cfg.DiskChannels = 1
	}
	return &Pool{
		cfg:     cfg,
		tracker: tracker,
		disk:    vtime.NewSemaphore("disk", cfg.DiskChannels),
		frames:  make(map[storage.ExtentKey]*frame),
	}
}

// Bytes returns the pool's current size.
func (p *Pool) Bytes() int64 { return p.tracker.Used() }

// Frames returns the number of cached extents.
func (p *Pool) Frames() int { return len(p.frames) }

// Hits and Misses return the access counters.
func (p *Pool) Hits() uint64   { return p.hits }
func (p *Pool) Misses() uint64 { return p.misses }

// Evictions returns how many frames were evicted.
func (p *Pool) Evictions() uint64 { return p.evictions }

// HitRate returns hits / (hits + misses), or 0 with no traffic.
func (p *Pool) HitRate() float64 {
	t := p.hits + p.misses
	if t == 0 {
		return 0
	}
	return float64(p.hits) / float64(t)
}

// SetDilation installs a disk time-dilation hook: every physical extent
// transfer takes DiskLatency*fn(). The engine wires this to the paging
// slowdown — on a thrashing machine swap traffic contends with the
// database's own I/O on the same channels. nil restores undilated reads.
func (p *Pool) SetDilation(fn func() float64) { p.dilation = fn }

// diskLatency returns the current per-extent transfer time, dilated.
func (p *Pool) diskLatency() time.Duration {
	d := p.cfg.DiskLatency
	if p.dilation != nil {
		if f := p.dilation(); f > 1 {
			d = time.Duration(float64(d) * f)
		}
	}
	return d
}

// StealPages evicts up to want bytes of frames on behalf of the pager —
// the page-steal path a thrashing OS applies to file-cache pages. It is
// Shrink with separate accounting so reports can distinguish broker
// shrinks from pager steals.
func (p *Pool) StealPages(want int64) int64 {
	stolen := p.Shrink(want)
	p.stolenBytes += stolen
	return stolen
}

// StolenBytes returns the total bytes taken by StealPages.
func (p *Pool) StolenBytes() int64 { return p.stolenBytes }

// SetTarget installs the broker's target; the pool evicts down to it and
// will not grow beyond it. Zero clears the target.
func (p *Pool) SetTarget(target int64) {
	p.target = target
	if target > 0 && p.Bytes() > target {
		p.Shrink(p.Bytes() - target)
	}
}

// Target returns the current broker target.
func (p *Pool) Target() int64 { return p.target }

// Shrink releases up to want bytes of unpinned frames (oldest-clock
// first) and returns the bytes actually freed. It is the pool's
// mem.Reclaimer and broker shrink handler.
func (p *Pool) Shrink(want int64) int64 {
	var freed int64
	floor := p.cfg.MinBytes
	for freed < want && p.Bytes()-freed > floor {
		f := p.victim()
		if f == nil {
			break
		}
		p.drop(f)
		freed += p.cfg.ExtentBytes
	}
	if freed > 0 {
		p.tracker.Release(freed)
	}
	return freed
}

// Read fetches one extent on behalf of task t, simulating memory or disk
// latency, and reports whether it was a hit. Misses are cached when the
// budget and target allow; otherwise the read passes through uncached.
func (p *Pool) Read(t *vtime.Task, key storage.ExtentKey) bool {
	if f, ok := p.frames[key]; ok {
		p.hits++
		f.ref = true
		t.Sleep(p.cfg.HitLatency)
		return true
	}
	p.misses++
	// Physical read: contend for a disk channel.
	p.disk.Acquire(t)
	t.Sleep(p.diskLatency())
	p.disk.Release()

	p.admit(t, key)
	return false
}

// readManyOp is the continuation state machine behind ReadMany: one
// sleep covers all hits, then each miss claims a disk channel, pays the
// (dilation-adjusted) transfer time, and is admitted to the cache.
type readManyOp struct {
	p     *Pool
	miss  []storage.ExtentKey // scratch, retained across uses
	mi    int
	k     vtime.Step
	state int8
}

const (
	rmNextMiss int8 = iota // claim a disk channel for the next miss
	rmTransfer             // channel held: pay the transfer time
	rmAdmit                // transfer done: release and admit
)

func (op *readManyOp) Run(t *vtime.Task) {
	p := op.p
	for {
		switch op.state {
		case rmNextMiss:
			if op.mi >= len(op.miss) {
				k := op.k
				op.k = nil
				p.reads.Put(op)
				k.Run(t)
				return
			}
			op.state = rmTransfer
			p.disk.AcquireThen(t, op)
			return
		case rmTransfer:
			op.state = rmAdmit
			t.SleepThen(p.diskLatency(), op)
			return
		case rmAdmit:
			p.disk.Release()
			p.admit(t, op.miss[op.mi])
			op.mi++
			op.state = rmNextMiss
		}
	}
}

// ReadManyThen fetches a batch of extents as continuation steps on the
// event loop, then runs k. The hit count is stored through hits before
// any virtual time passes; all hits are charged as one sleep and misses
// go through the disk individually, exactly like ReadMany.
func (p *Pool) ReadManyThen(t *vtime.Task, keys []storage.ExtentKey, hits *int, k vtime.Step) {
	op := p.reads.Get()
	if op == nil {
		op = &readManyOp{p: p}
	}
	op.miss, op.mi, op.k, op.state = op.miss[:0], 0, k, rmNextMiss
	h := 0
	for _, key := range keys {
		if f, ok := p.frames[key]; ok {
			p.hits++
			f.ref = true
			h++
		} else {
			p.misses++
			op.miss = append(op.miss, key)
		}
	}
	*hits = h
	if h > 0 {
		t.SleepThen(time.Duration(h)*p.cfg.HitLatency, op)
		return
	}
	op.Run(t)
}

// ReadMany fetches a batch of extents, amortizing scheduler events: all
// hits are charged as one sleep, misses go through the disk individually.
// It returns the number of hits.
func (p *Pool) ReadMany(t *vtime.Task, keys []storage.ExtentKey) int {
	var hits int
	t.Await(func(k vtime.Step) { p.ReadManyThen(t, keys, &hits, k) })
	return hits
}

// admit tries to cache a just-read extent.
func (p *Pool) admit(t *vtime.Task, key storage.ExtentKey) {
	if _, ok := p.frames[key]; ok {
		return // racing reader cached it while we slept on disk
	}
	// Respect the broker target by evicting an old frame to make room.
	if p.target > 0 && p.Bytes()+p.cfg.ExtentBytes > p.target {
		if v := p.victim(); v != nil {
			p.drop(v)
			p.tracker.Release(p.cfg.ExtentBytes)
		} else {
			p.passthrough++
			return
		}
	}
	if err := p.tracker.Reserve(p.cfg.ExtentBytes); err != nil {
		// Budget exhausted even after global reclaim: try evicting our
		// own coldest frame; else serve uncached.
		if v := p.victim(); v != nil {
			p.drop(v)
			// Reuse the freed reservation for the new frame.
			f := p.newFrame(key)
			p.frames[key] = f
			p.clockInsert(f)
			return
		}
		p.passthrough++
		return
	}
	f := p.newFrame(key)
	p.frames[key] = f
	p.clockInsert(f)
}

// victim runs the CLOCK sweep and returns an evictable frame (or nil).
func (p *Pool) victim() *frame {
	n := len(p.frames)
	if n == 0 {
		return nil
	}
	for sweep := 0; sweep < 2*n; sweep++ {
		if p.clockHand == nil {
			p.clockHand = p.clockFirst // wrap at the seam
		}
		f := p.clockHand
		if f.cnext == p.clockFirst {
			p.clockHand = nil // advanced past the tail: back at the seam
		} else {
			p.clockHand = f.cnext
		}
		if f.pinned > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		return f
	}
	return nil
}

// clockInsert links f into the ring just before the seam — the position
// the old slice implementation's append-at-end gave a new frame. A hand
// resting at the seam moves onto f: the slice encoded that state as
// hand == len, where an append landed exactly at the hand's index and
// was therefore the next sweep candidate.
func (p *Pool) clockInsert(f *frame) {
	if p.clockFirst == nil {
		f.cprev, f.cnext = f, f
		p.clockFirst = f
		p.clockHand = f
		return
	}
	last := p.clockFirst.cprev
	f.cprev, f.cnext = last, p.clockFirst
	last.cnext = f
	p.clockFirst.cprev = f
	if p.clockHand == nil {
		p.clockHand = f
	}
}

// clockRemove unlinks f in O(1), keeping the hand on the element that
// followed f (or at the seam when f was the tail) — exactly where the
// slice implementation's index adjustment left it.
func (p *Pool) clockRemove(f *frame) {
	if p.clockHand == f {
		if f.cnext == p.clockFirst {
			p.clockHand = nil
		} else {
			p.clockHand = f.cnext
		}
	}
	if f.cnext == f {
		p.clockFirst, p.clockHand = nil, nil
	} else {
		f.cprev.cnext = f.cnext
		f.cnext.cprev = f.cprev
		if p.clockFirst == f {
			p.clockFirst = f.cnext
		}
	}
	f.cprev, f.cnext = nil, nil
}

// drop removes a frame from the pool structures (not the tracker) and
// recycles it.
func (p *Pool) drop(f *frame) {
	delete(p.frames, f.key)
	p.clockRemove(f)
	p.evictions++
	p.frameFree.Put(f)
}

// newFrame returns a recycled or fresh frame for key, referenced. Fresh
// frames are carved from the chunk arena.
func (p *Pool) newFrame(key storage.ExtentKey) *frame {
	if f := p.frameFree.Get(); f != nil {
		f.key, f.ref, f.pinned = key, true, 0
		return f
	}
	if len(p.frameArena) == 0 {
		p.frameArena = make([]frame, frameChunk)
	}
	f := &p.frameArena[0]
	p.frameArena = p.frameArena[1:]
	f.key, f.ref = key, true
	return f
}

// ExtentBytes returns the frame size.
func (p *Pool) ExtentBytes() int64 { return p.cfg.ExtentBytes }

// diskDelayOp is the continuation state machine behind DiskDelay: claim
// a disk channel for one extent-sized chunk at a time.
type diskDelayOp struct {
	p      *Pool
	remain time.Duration
	chunk  time.Duration
	occupy time.Duration
	k      vtime.Step
	state  int8
}

const (
	ddClaim int8 = iota // size the next chunk and claim a channel
	ddHold              // channel held: occupy it
	ddDone              // chunk done: release
)

func (op *diskDelayOp) Run(t *vtime.Task) {
	p := op.p
	for {
		switch op.state {
		case ddClaim:
			chunk := p.cfg.DiskLatency
			if chunk <= 0 || chunk > op.remain {
				chunk = op.remain
			}
			occupy := chunk
			if p.dilation != nil {
				if f := p.dilation(); f > 1 {
					occupy = time.Duration(float64(chunk) * f)
				}
			}
			op.chunk, op.occupy = chunk, occupy
			op.state = ddHold
			p.disk.AcquireThen(t, op)
			return
		case ddHold:
			op.state = ddDone
			t.SleepThen(op.occupy, op)
			return
		case ddDone:
			p.disk.Release()
			op.remain -= op.chunk
			if op.remain <= 0 {
				k := op.k
				op.k = nil
				p.delays.Put(op)
				k.Run(t)
				return
			}
			op.state = ddClaim
		}
	}
}

// DiskDelayThen occupies a disk channel for d of virtual time as
// continuation steps on the event loop, then runs k.
func (p *Pool) DiskDelayThen(t *vtime.Task, d time.Duration, k vtime.Step) {
	if d <= 0 {
		k.Run(t)
		return
	}
	op := p.delays.Get()
	if op == nil {
		op = &diskDelayOp{p: p}
	}
	op.remain, op.k, op.state = d, k, ddClaim
	op.Run(t)
}

// DiskDelay occupies a disk channel for d of virtual time on behalf of t
// (spill writes/reads and other raw I/O that bypasses the cache).
func (p *Pool) DiskDelay(t *vtime.Task, d time.Duration) {
	if d <= 0 {
		return
	}
	t.Await(func(k vtime.Step) { p.DiskDelayThen(t, d, k) })
}

// Contains reports whether the extent is cached (for tests).
func (p *Pool) Contains(key storage.ExtentKey) bool {
	_, ok := p.frames[key]
	return ok
}

// Pin prevents eviction of a cached extent; no-op when absent.
func (p *Pool) Pin(key storage.ExtentKey) {
	if f, ok := p.frames[key]; ok {
		f.pinned++
	}
}

// Unpin releases a pin.
func (p *Pool) Unpin(key storage.ExtentKey) {
	if f, ok := p.frames[key]; ok && f.pinned > 0 {
		f.pinned--
	}
}

// String summarizes the pool.
func (p *Pool) String() string {
	return fmt.Sprintf("bufferpool: %s (%d frames), hit-rate %.1f%%, evictions %d, passthrough %d",
		mem.FormatBytes(p.Bytes()), p.Frames(), p.HitRate()*100, p.evictions, p.passthrough)
}
