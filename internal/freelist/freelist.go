// Package freelist provides the tiny LIFO free list the simulator's
// pooled continuation ops, frames, and cache entries share. Each owner
// is confined to one scheduler, so there is no locking; Get returns nil
// when empty and the caller constructs a fresh value (and always
// re-initializes every field, recycled or not).
package freelist

// List is a LIFO free list of *T.
type List[T any] struct {
	free []*T
}

// Get pops a recycled value, or returns nil when the list is empty.
// The caller must treat a non-nil result as holding stale fields.
func (l *List[T]) Get() *T {
	n := len(l.free)
	if n == 0 {
		return nil
	}
	x := l.free[n-1]
	l.free[n-1] = nil
	l.free = l.free[:n-1]
	return x
}

// Put recycles x.
func (l *List[T]) Put(x *T) {
	l.free = append(l.free, x)
}
