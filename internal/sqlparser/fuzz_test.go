package sqlparser

import (
	"reflect"
	"testing"

	"compilegate/internal/plan"
)

// fuzzSeeds is the seed corpus: every statement shape the simulated
// workloads emit (star joins, aggregates, predicates, comments as
// cache-defeating uniquifiers, OLTP point lookups) plus malformed and
// adversarial inputs. The same seeds are mirrored under
// testdata/fuzz/FuzzLexerPooling.
var fuzzSeeds = []string{
	"SELECT * FROM dim_channel WHERE dim_channel.channel_id = 3",
	"SELECT COUNT(*) FROM sales_fact JOIN dim_date ON sales_fact.date_id = dim_date.date_id WHERE sales_fact.date_id BETWEEN 100 AND 200 GROUP BY dim_date.year",
	"SELECT SUM(sales_fact.amount), AVG(sales_fact.qty) FROM sales_fact INNER JOIN dim_store ON sales_fact.store_id = dim_store.store_id GROUP BY dim_store.region",
	"/* u172 */ SELECT * FROM dim_product WHERE dim_product.sku >= 17",
	"-- probe\nSELECT MAX(t.v) FROM t WHERE t.v <= 9",
	"select a.x from a join b on a.id = b.id join c on b.id = c.id",
	"SELECT * FROM",
	"DELETE FROM x",
	"SELECT 'unterminated FROM t",
	"SELECT * FROM t WHERE t.a = ",
	"",
	"SELECT \u2603 FROM t WHERE t.a = -42",
	// Shapes the replication-run workloads emit: OLTP point lookups,
	// the mix workload's store/city join probe, the TPC-H-like rollup,
	// and a SALES filter head with BETWEEN range literals.
	"SELECT * FROM dim_customer WHERE dim_customer.customer_id = 4141",
	"SELECT COUNT(*) FROM dim_store JOIN dim_city ON dim_store.city_id = dim_city.city_id WHERE dim_store.store_id = 91",
	"SELECT COUNT(*), SUM(lineitem.l_partkey) FROM lineitem JOIN orders ON lineitem.l_orderkey = orders.o_orderkey",
	"/* u9 */ SELECT SUM(sales_fact.amount) FROM sales_fact JOIN dim_date ON sales_fact.date_id = dim_date.date_id WHERE dim_date.date_id BETWEEN 7300 AND 7665 AND sales_fact.store_id >= 12 GROUP BY dim_date.month",
	"SELECT FROM WHERE BETWEEN AND GROUP BY",
	"SELECT * FROM t WHERE t.a = 1 AND",
}

// lexTokens lexes sql on l and copies out the token stream (the pooled
// lexer's buffer is reused, so the copy keeps the comparison honest).
func lexTokens(l *lexer, sql string) []token {
	l.lex(sql)
	return append([]token(nil), l.src...)
}

// FuzzLexerPooling proves the pooled, keyword-interning lexer is
// observationally identical to a fresh one: the same token stream for
// any input regardless of what the pooled lexer processed before, the
// same Parse outcome, and a Fingerprint that is stable across pooling
// churn. Run with `go test -fuzz=FuzzLexerPooling ./internal/sqlparser`
// to explore beyond the seed corpus.
func FuzzLexerPooling(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		fpBefore := Fingerprint(sql)

		fresh := lexTokens(&lexer{}, sql)

		// Dirty the pool: cycle a lexer through an unrelated statement so
		// the pooled path runs on reused, previously-filled buffers.
		_, _ = Parse("SELECT COUNT(*) FROM sales_fact JOIN dim_date ON sales_fact.date_id = dim_date.date_id GROUP BY dim_date.year")
		l := lexerPool.Get().(*lexer)
		pooled := lexTokens(l, sql)
		l.src = l.src[:0]
		l.pos = 0
		lexerPool.Put(l)

		if !reflect.DeepEqual(fresh, pooled) {
			t.Fatalf("pooled lexer diverges from fresh lexer on %q:\nfresh:  %#v\npooled: %#v",
				sql, fresh, pooled)
		}

		// Parse must be deterministic through the pool too.
		q1, err1 := Parse(sql)
		q2, err2 := Parse(sql)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Parse flapped on %q: %v vs %v", sql, err1, err2)
		}
		if err1 == nil && !reflect.DeepEqual(q1, q2) {
			t.Fatalf("Parse results differ on %q:\n%#v\nvs\n%#v", sql, q1, q2)
		}

		if fp := Fingerprint(sql); fp != fpBefore {
			t.Fatalf("Fingerprint unstable across pooling on %q: %s vs %s", sql, fpBefore, fp)
		}
	})
}

// FuzzParseInto proves the zero-alloc pooled parse path is
// observationally identical to a fresh Parse: a query recycled through
// unrelated statements — including a failed parse, which leaves
// partial state ParseInto must Reset away — yields the same parsed
// query (or the same error outcome) as a brand-new one, for any input.
// Run with `go test -fuzz=FuzzParseInto ./internal/sqlparser`.
func FuzzParseInto(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		fresh, freshErr := Parse(sql)

		// Dirty the reused query: a successful parse fills every slice,
		// a failed one leaves partial state behind.
		reused := new(plan.Query)
		_ = ParseInto(reused, "SELECT SUM(sales_fact.amount), AVG(sales_fact.qty) FROM sales_fact INNER JOIN dim_store ON sales_fact.store_id = dim_store.store_id WHERE sales_fact.store_id BETWEEN 3 AND 17 GROUP BY dim_store.region")
		_ = ParseInto(reused, "SELECT 'unterminated FROM t")

		reusedErr := ParseInto(reused, sql)
		if (freshErr == nil) != (reusedErr == nil) {
			t.Fatalf("ParseInto outcome diverges on %q: fresh err %v, reused err %v", sql, freshErr, reusedErr)
		}
		if freshErr != nil {
			return
		}
		if !queriesEqual(fresh, reused) {
			t.Fatalf("reused ParseInto diverges from fresh Parse on %q:\nfresh:  %#v\nreused: %#v",
				sql, fresh, reused)
		}
	})
}

// queriesEqual compares parse results by value, normalizing the
// capacity-retaining empty slices a recycled query carries (a fresh
// parse has nil slices where a reused one has empty ones).
func queriesEqual(a, b *plan.Query) bool {
	norm := func(q *plan.Query) plan.Query {
		n := *q
		// Copy Tables before normalizing nested slices: the shallow copy
		// shares the backing array, and norm must not mutate its input.
		n.Tables = append([]plan.TableTerm(nil), n.Tables...)
		if len(n.Tables) == 0 {
			n.Tables = nil
		}
		if len(n.Joins) == 0 {
			n.Joins = nil
		}
		if len(n.GroupBy) == 0 {
			n.GroupBy = nil
		}
		for i := range n.Tables {
			if len(n.Tables[i].Preds) == 0 {
				n.Tables[i].Preds = nil
			}
		}
		return n
	}
	an, bn := norm(a), norm(b)
	// The nested predicate slices still differ in capacity; DeepEqual
	// ignores capacity, so a value comparison is exact.
	return reflect.DeepEqual(an, bn)
}
