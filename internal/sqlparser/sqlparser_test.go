package sqlparser

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleSelect(t *testing.T) {
	q, err := Parse("SELECT * FROM dim_product")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 1 || q.Tables[0].Name != "dim_product" {
		t.Fatalf("tables = %+v", q.Tables)
	}
	if q.Aggregates != 0 || len(q.Joins) != 0 {
		t.Fatal("phantom aggregates or joins")
	}
}

func TestParseJoins(t *testing.T) {
	sql := `SELECT SUM(sales_fact.amount_cents), COUNT(*)
	        FROM sales_fact
	        JOIN dim_product ON sales_fact.product_id = dim_product.product_id
	        INNER JOIN dim_store ON sales_fact.store_id = dim_store.store_id`
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 3 {
		t.Fatalf("tables = %d", len(q.Tables))
	}
	if len(q.Joins) != 2 {
		t.Fatalf("joins = %d", len(q.Joins))
	}
	if q.Joins[0].A != "sales_fact" || q.Joins[0].B != "dim_product" {
		t.Fatalf("join 0 = %+v", q.Joins[0])
	}
	if q.Aggregates != 2 {
		t.Fatalf("aggregates = %d", q.Aggregates)
	}
}

func TestParseWhere(t *testing.T) {
	sql := `SELECT * FROM sales_fact
	        WHERE sales_fact.date_id BETWEEN 100 AND 200
	          AND sales_fact.channel_id = 3
	          AND sales_fact.quantity >= 5
	          AND sales_fact.amount_cents <= 1000`
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	preds := q.Tables[0].Preds
	if len(preds) != 4 {
		t.Fatalf("preds = %d", len(preds))
	}
	if preds[0].Op != "between" || preds[0].Lo != 100 || preds[0].Hi != 200 {
		t.Fatalf("pred 0 = %+v", preds[0])
	}
	if preds[1].Op != "=" || preds[1].Lo != 3 {
		t.Fatalf("pred 1 = %+v", preds[1])
	}
	if preds[2].Op != ">=" || preds[2].Lo != 5 {
		t.Fatalf("pred 2 = %+v", preds[2])
	}
	if preds[3].Op != "<=" || preds[3].Hi != 1000 {
		t.Fatalf("pred 3 = %+v", preds[3])
	}
}

func TestParseGroupBy(t *testing.T) {
	sql := `SELECT dim_store.city_id, SUM(sales_fact.amount_cents)
	        FROM sales_fact JOIN dim_store ON sales_fact.store_id = dim_store.store_id
	        GROUP BY dim_store.city_id, dim_store.format_id`
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 2 {
		t.Fatalf("group by = %+v", q.GroupBy)
	}
	if q.GroupBy[0].Table != "dim_store" || q.GroupBy[0].Column != "city_id" {
		t.Fatalf("group by 0 = %+v", q.GroupBy[0])
	}
}

func TestCommentsIgnoredButFingerprinted(t *testing.T) {
	a := "SELECT * FROM t /* u1 */"
	b := "SELECT * FROM t /* u2 */"
	qa, err := Parse(a)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if qa.Tables[0].Name != qb.Tables[0].Name {
		t.Fatal("comment changed parse")
	}
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("uniquifier comment did not change fingerprint")
	}
	if Fingerprint(a) != Fingerprint(a) {
		t.Fatal("fingerprint unstable")
	}
}

func TestLineComment(t *testing.T) {
	q, err := Parse("SELECT * FROM t -- trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if q.Tables[0].Name != "t" {
		t.Fatal("line comment broke parse")
	}
}

func TestCaseInsensitivity(t *testing.T) {
	q, err := Parse("select Sum(F.x) from Sales_Fact join Dim_Date on Sales_Fact.date_id = Dim_Date.date_id")
	if err != nil {
		t.Fatal(err)
	}
	if q.Tables[0].Name != "sales_fact" || q.Tables[1].Name != "dim_date" {
		t.Fatalf("tables = %+v", q.Tables)
	}
}

func TestNegativeNumbers(t *testing.T) {
	q, err := Parse("SELECT * FROM t WHERE t.x >= -5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Tables[0].Preds[0].Lo != -5 {
		t.Fatalf("pred = %+v", q.Tables[0].Preds[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE t SET x = 1",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t JOIN",
		"SELECT * FROM t JOIN u ON a = b", // unqualified join columns
		"SELECT * FROM t WHERE t.x = ",
		"SELECT * FROM t WHERE u.x = 1", // WHERE on unlisted table
		"SELECT * FROM t WHERE t.x BETWEEN 1",
		"SELECT * FROM t GROUP BY",
		"SELECT * FROM t extra garbage",
		"SELECT sum(x FROM t",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
}

func TestStringLiteralsTokenized(t *testing.T) {
	// Strings are lexed (not supported in predicates, but must not crash
	// the lexer).
	if _, err := Parse("SELECT * FROM t WHERE t.x = 'abc'"); err == nil {
		t.Error("string predicate unexpectedly accepted")
	}
}

// Property: Fingerprint is deterministic and distinct texts rarely
// collide (trivially checked for distinct inputs here).
func TestQuickFingerprint(t *testing.T) {
	f := func(a, b string) bool {
		if Fingerprint(a) != Fingerprint(a) {
			return false
		}
		if a != b && Fingerprint(a) == Fingerprint(b) {
			// FNV collisions are possible but vanishingly unlikely on
			// short random strings; treat as failure to surface them.
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the parser never panics on arbitrary input.
func TestQuickParserRobust(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if recover() != nil {
				t.Errorf("panic on %q", s)
			}
		}()
		_, _ = Parse(s)
		_, _ = Parse("SELECT " + s)
		_, _ = Parse("SELECT * FROM t WHERE " + s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestWildInputDoesNotHang(t *testing.T) {
	weird := []string{
		strings.Repeat("(", 1000),
		"SELECT " + strings.Repeat("sum(", 50) + "x" + strings.Repeat(")", 50) + " FROM t",
		"/* unterminated",
		"'unterminated",
	}
	for _, s := range weird {
		_, _ = Parse(s) // must terminate
	}
}
