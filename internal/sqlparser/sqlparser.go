// Package sqlparser parses the SQL subset the simulated engine accepts —
// SELECT blocks with aggregates, INNER JOIN ... ON equality chains,
// conjunctive WHERE predicates, and GROUP BY — into the optimizer's
// plan.Query, and fingerprints query text for the plan cache.
//
// The subset is exactly the shape of the paper's workloads: star/snowflake
// join-aggregate queries (SALES, TPC-H-like) and small point queries
// (OLTP, diagnostics).
package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"compilegate/internal/plan"
	"compilegate/internal/stats"
)

// Hash64 is the FNV-1a hash of s. It backs Fingerprint and the engine's
// per-query execution seeds, inlined so the per-statement hot path
// allocates nothing.
func Hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

const hexDigits = "0123456789abcdef"

// Fingerprint hashes query text for plan-cache lookup. Any textual
// difference (including comments) yields a new fingerprint, which is how
// the paper's load generator defeats plan caching [7].
func Fingerprint(sql string) string {
	h := Hash64(sql)
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = hexDigits[h&0xf]
		h >>= 4
	}
	return string(buf[:])
}

// lexerPool recycles token buffers across Parse calls; Parse runs from
// concurrently-sweeping schedulers, so the pool must be synchronized.
var lexerPool = sync.Pool{New: func() any { return &lexer{} }}

// Parse converts SQL text to a plan.Query. The returned query carries the
// original text.
func Parse(sql string) (*plan.Query, error) {
	q := new(plan.Query)
	if err := ParseInto(q, sql); err != nil {
		return nil, err
	}
	return q, nil
}

// ParseInto parses sql into q, which is Reset first: its slices keep
// their backing storage, so a pooled query re-parses without
// allocating. On error q holds partial state and must be Reset (or
// re-ParseInto) before use.
func ParseInto(q *plan.Query, sql string) error {
	q.Reset()
	l := lexerPool.Get().(*lexer)
	l.lex(sql)
	p := parser{lex: l, q: q}
	err := p.parse()
	l.src = l.src[:0]
	l.pos = 0
	lexerPool.Put(l)
	if err != nil {
		return fmt.Errorf("sqlparser: %w", err)
	}
	q.Text = sql
	return nil
}

// keywords interns the lower-case form of the dialect's (upper-case)
// keywords and common aggregate names, so lexing a statement does not
// allocate one lowered string per keyword token.
var keywords = map[string]string{
	"select": "select", "from": "from", "where": "where", "and": "and",
	"or": "or", "inner": "inner", "join": "join", "on": "on",
	"group": "group", "by": "by", "as": "as", "sum": "sum",
	"count": "count", "avg": "avg", "min": "min", "max": "max",
	"distinct": "distinct", "order": "order", "having": "having",
}

// lowerIdent lower-cases an identifier token, interning keywords and
// returning already-lower-case text (the common case for table and
// column names) without allocating.
func lowerIdent(s string) string {
	hasUpper := false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			hasUpper = true
			break
		}
	}
	if !hasUpper {
		return s
	}
	var buf [24]byte
	if len(s) <= len(buf) {
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			buf[i] = c
		}
		if kw, ok := keywords[string(buf[:len(s)])]; ok {
			return kw
		}
	}
	return strings.ToLower(s)
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokSymbol // ( ) , . = < > <= >=
	tokString
)

type token struct {
	kind tokKind
	text string // identifiers lower-cased; symbols literal
	num  int64
}

// symbolText interns every single-byte symbol's text so emitting a
// symbol token never allocates (string(c) would heap-allocate per call).
var symbolText = func() (t [256]string) {
	for _, c := range []byte("(),.=<>*") {
		t[c] = string([]byte{c})
	}
	return
}()

type lexer struct {
	src []token
	pos int
}

// lex tokenizes s into l.src (reusing its capacity).
func (l *lexer) lex(s string) {
	l.src = l.src[:0]
	l.pos = 0
	i, n := 0, len(s)
	for i < n {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < n && s[i+1] == '*':
			end := strings.Index(s[i+2:], "*/")
			if end < 0 {
				i = n
			} else {
				i += 2 + end + 2
			}
		case c == '-' && i+1 < n && s[i+1] == '-':
			for i < n && s[i] != '\n' {
				i++
			}
		case isAlpha(c):
			j := i
			for j < n && (isAlpha(s[j]) || isDigit(s[j])) {
				j++
			}
			l.src = append(l.src, token{kind: tokIdent, text: lowerIdent(s[i:j])})
			i = j
		case isDigit(c) || (c == '-' && i+1 < n && isDigit(s[i+1])):
			j := i + 1
			for j < n && isDigit(s[j]) {
				j++
			}
			v, _ := strconv.ParseInt(s[i:j], 10, 64)
			l.src = append(l.src, token{kind: tokNumber, num: v, text: s[i:j]})
			i = j
		case c == '<' && i+1 < n && s[i+1] == '=':
			l.src = append(l.src, token{kind: tokSymbol, text: "<="})
			i += 2
		case c == '>' && i+1 < n && s[i+1] == '=':
			l.src = append(l.src, token{kind: tokSymbol, text: ">="})
			i += 2
		case strings.ContainsRune("(),.=<>*", rune(c)):
			l.src = append(l.src, token{kind: tokSymbol, text: symbolText[c]})
			i++
		case c == '\'':
			j := i + 1
			for j < n && s[j] != '\'' {
				j++
			}
			if j < n {
				j++
			}
			l.src = append(l.src, token{kind: tokString, text: s[i:j]})
			i = j
		default:
			// Unknown byte: skip (robustness over strictness for a
			// simulator's dialect).
			i++
		}
	}
}

func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) peek() token {
	if l.pos >= len(l.src) {
		return token{kind: tokEOF}
	}
	return l.src[l.pos]
}

func (l *lexer) next() token {
	t := l.peek()
	l.pos++
	return t
}

type parser struct {
	lex *lexer
	q   *plan.Query
}

func (p *parser) expectIdent(word string) error {
	t := p.lex.next()
	if t.kind != tokIdent || t.text != word {
		return fmt.Errorf("expected %s, got %q", strings.ToUpper(word), t.text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.lex.next()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("expected %q, got %q", sym, t.text)
	}
	return nil
}

func (p *parser) parse() error {
	if err := p.expectIdent("select"); err != nil {
		return err
	}
	if err := p.selectList(); err != nil {
		return err
	}
	if err := p.expectIdent("from"); err != nil {
		return err
	}
	if err := p.fromClause(); err != nil {
		return err
	}
	for {
		t := p.lex.peek()
		if t.kind != tokIdent {
			break
		}
		switch t.text {
		case "where":
			p.lex.next()
			if err := p.whereClause(); err != nil {
				return err
			}
		case "group":
			p.lex.next()
			if err := p.expectIdent("by"); err != nil {
				return err
			}
			if err := p.groupByClause(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unexpected %q", t.text)
		}
	}
	if t := p.lex.peek(); t.kind != tokEOF {
		return fmt.Errorf("trailing input at %q", t.text)
	}
	return nil
}

var aggFuncs = map[string]bool{
	"sum": true, "count": true, "avg": true, "min": true, "max": true,
}

// selectList parses output expressions: columns, * and aggregate calls.
func (p *parser) selectList() error {
	for {
		t := p.lex.next()
		switch {
		case t.kind == tokSymbol && t.text == "*":
			// plain star: no aggregate
		case t.kind == tokIdent && aggFuncs[t.text]:
			p.q.Aggregates++
			if err := p.expectSymbol("("); err != nil {
				return err
			}
			depth := 1
			for depth > 0 {
				in := p.lex.next()
				switch {
				case in.kind == tokEOF:
					return fmt.Errorf("unterminated aggregate call")
				case in.kind == tokSymbol && in.text == "(":
					depth++
				case in.kind == tokSymbol && in.text == ")":
					depth--
				}
			}
		case t.kind == tokIdent:
			// qualified or bare column: consume optional .col
			if p.lex.peek().kind == tokSymbol && p.lex.peek().text == "." {
				p.lex.next()
				if c := p.lex.next(); c.kind != tokIdent {
					return fmt.Errorf("expected column after %s.", t.text)
				}
			}
		default:
			return fmt.Errorf("bad select expression %q", t.text)
		}
		if p.lex.peek().kind == tokSymbol && p.lex.peek().text == "," {
			p.lex.next()
			continue
		}
		return nil
	}
}

// fromClause parses: table (JOIN table ON t.c = t.c)*.
func (p *parser) fromClause() error {
	t := p.lex.next()
	if t.kind != tokIdent {
		return fmt.Errorf("expected table name, got %q", t.text)
	}
	p.q.AppendTable(t.text)
	for {
		nx := p.lex.peek()
		if nx.kind != tokIdent || (nx.text != "join" && nx.text != "inner") {
			return nil
		}
		p.lex.next()
		if nx.text == "inner" {
			if err := p.expectIdent("join"); err != nil {
				return err
			}
		}
		tt := p.lex.next()
		if tt.kind != tokIdent {
			return fmt.Errorf("expected table after JOIN, got %q", tt.text)
		}
		p.q.AppendTable(tt.text)
		if err := p.expectIdent("on"); err != nil {
			return err
		}
		aT, _, err := p.colRef()
		if err != nil {
			return err
		}
		if err := p.expectSymbol("="); err != nil {
			return err
		}
		bT, _, err := p.colRef()
		if err != nil {
			return err
		}
		p.q.Joins = append(p.q.Joins, plan.JoinEdge{A: aT, B: bT})
	}
}

// colRef parses table.column.
func (p *parser) colRef() (table, column string, err error) {
	t := p.lex.next()
	if t.kind != tokIdent {
		return "", "", fmt.Errorf("expected table.column, got %q", t.text)
	}
	if err := p.expectSymbol("."); err != nil {
		return "", "", err
	}
	c := p.lex.next()
	if c.kind != tokIdent {
		return "", "", fmt.Errorf("expected column after %s., got %q", t.text, c.text)
	}
	return t.text, c.text, nil
}

// whereClause parses pred (AND pred)*.
func (p *parser) whereClause() error {
	for {
		table, col, err := p.colRef()
		if err != nil {
			return err
		}
		op := p.lex.next()
		pred := stats.Pred{Table: table, Column: col}
		switch {
		case op.kind == tokSymbol && op.text == "=":
			v := p.lex.next()
			if v.kind != tokNumber {
				return fmt.Errorf("expected number after =, got %q", v.text)
			}
			pred.Op, pred.Lo, pred.Hi = "=", v.num, v.num
		case op.kind == tokSymbol && (op.text == "<=" || op.text == "<"):
			v := p.lex.next()
			if v.kind != tokNumber {
				return fmt.Errorf("expected number after %s", op.text)
			}
			pred.Op, pred.Hi = "<=", v.num
		case op.kind == tokSymbol && (op.text == ">=" || op.text == ">"):
			v := p.lex.next()
			if v.kind != tokNumber {
				return fmt.Errorf("expected number after %s", op.text)
			}
			pred.Op, pred.Lo = ">=", v.num
		case op.kind == tokIdent && op.text == "between":
			lo := p.lex.next()
			if lo.kind != tokNumber {
				return fmt.Errorf("expected number after BETWEEN")
			}
			if err := p.expectIdent("and"); err != nil {
				return err
			}
			hi := p.lex.next()
			if hi.kind != tokNumber {
				return fmt.Errorf("expected number after BETWEEN ... AND")
			}
			pred.Op, pred.Lo, pred.Hi = "between", lo.num, hi.num
		default:
			return fmt.Errorf("unsupported predicate operator %q", op.text)
		}
		// Attach to the table term (predicates on unlisted tables are a
		// validation error downstream).
		term := p.q.Table(table)
		if term == nil {
			return fmt.Errorf("WHERE references table %s not in FROM", table)
		}
		term.Preds = append(term.Preds, pred)

		if t := p.lex.peek(); t.kind == tokIdent && t.text == "and" {
			p.lex.next()
			continue
		}
		return nil
	}
}

// groupByClause parses table.column (, table.column)*.
func (p *parser) groupByClause() error {
	for {
		table, col, err := p.colRef()
		if err != nil {
			return err
		}
		p.q.GroupBy = append(p.q.GroupBy, plan.ColRef{Table: table, Column: col})
		if t := p.lex.peek(); t.kind == tokSymbol && t.text == "," {
			p.lex.next()
			continue
		}
		return nil
	}
}
