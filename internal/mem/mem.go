// Package mem implements the simulated physical-memory budget shared by
// every DBMS subcomponent.
//
// A Budget models the machine's RAM. Each subcomponent (buffer pool, plan
// cache, query compilation, execution grants, ...) owns a Tracker and
// reserves/releases simulated bytes against the shared budget. Components
// that cache reclaimable data register a Reclaimer so that a reservation
// which would otherwise fail can first shrink caches — the same last-resort
// path SQL Server uses before returning error 701.
//
// An optional PressureModel (pressure.go) extends the budget with swap:
// trackers marked AllowOvercommit may reserve past physical memory up to a
// commit limit, and the budget reports the resulting paging severity
// (OvercommitRatio, Slowdown) so the engine can charge thrash costs.
//
// All methods are intended for single-threaded use from vtime task context;
// the package performs no locking by design (determinism).
package mem

import (
	"errors"
	"fmt"
	"sort"

	"compilegate/internal/errclass"
)

// ErrOutOfMemory is returned when a reservation cannot be satisfied even
// after running all registered reclaimers.
var ErrOutOfMemory = errors.New("mem: out of memory")

// oomError is the concrete error Reserve returns. Failed reservations
// are a hot path under the collapse regime (every grant retry and OOM
// spiral produces one), so the message is rendered lazily: constructing
// the error costs one small allocation and no formatting.
type oomError struct {
	tracker string
	kind    int8 // oomLimit, oomGroup, oomBudget
	group   string
	a, b, c int64 // kind-specific quantities, captured at failure time
}

const (
	oomLimit int8 = iota
	oomGroup
	oomBudget
)

func (e *oomError) Error() string {
	switch e.kind {
	case oomLimit:
		return fmt.Sprintf("%s: component limit %s exceeded: %v",
			e.tracker, FormatBytes(e.a), ErrOutOfMemory)
	case oomGroup:
		return fmt.Sprintf("%s: %s exhausted (%s used of %s): %v",
			e.tracker, e.group, FormatBytes(e.a), FormatBytes(e.b), ErrOutOfMemory)
	default:
		return fmt.Sprintf("%s: budget exhausted (%s used of %s, commit limit %s): %v",
			e.tracker, FormatBytes(e.a), FormatBytes(e.b), FormatBytes(e.c), ErrOutOfMemory)
	}
}

func (e *oomError) Unwrap() error { return ErrOutOfMemory }

// Is places failed reservations in the engine's error taxonomy.
func (e *oomError) Is(target error) bool { return target == errclass.OOM }

// Byte-size constants for readability in configuration.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// FormatBytes renders n as a human-readable quantity ("1.5 GiB").
func FormatBytes(n int64) string {
	switch {
	case n >= GiB:
		return fmt.Sprintf("%.2f GiB", float64(n)/float64(GiB))
	case n >= MiB:
		return fmt.Sprintf("%.2f MiB", float64(n)/float64(MiB))
	case n >= KiB:
		return fmt.Sprintf("%.2f KiB", float64(n)/float64(KiB))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Reclaimer frees up to want bytes of low-value memory and returns the
// number of bytes actually freed.
type Reclaimer func(want int64) int64

// Budget is the machine-wide simulated memory budget.
type Budget struct {
	total int64
	used  int64

	// Pressure-model state (see pressure.go): commitLimit extends the
	// budget with swap for overcommittable trackers; wired tracks the
	// non-reclaimable share of used.
	pressure    PressureModel
	commitLimit int64
	wired       int64
	wiredPeak   int64

	// Slowdown is recomputed only when wired memory moves: the engine
	// reads it on every CPU quantum and disk transfer, but it is a pure
	// function of wired. slowWired is the wired value the cache was
	// computed at (-1 = invalid).
	slowWired int64
	slowVal   float64

	trackers   []*Tracker
	reclaimers []reclaimerEntry

	oomCount uint64
}

type reclaimerEntry struct {
	name     string
	priority int // lower priority reclaims first
	fn       Reclaimer
}

// NewBudget creates a budget of total simulated bytes.
func NewBudget(total int64) *Budget {
	if total <= 0 {
		panic("mem: non-positive budget")
	}
	return &Budget{total: total, slowWired: -1}
}

// Total returns the budget's size in bytes.
func (b *Budget) Total() int64 { return b.total }

// Used returns the bytes currently reserved across all trackers.
func (b *Budget) Used() int64 { return b.used }

// Free returns the unreserved bytes.
func (b *Budget) Free() int64 { return b.total - b.used }

// OOMCount returns how many reservations have failed with ErrOutOfMemory.
func (b *Budget) OOMCount() uint64 { return b.oomCount }

// NewTracker registers and returns a named per-component tracker.
func (b *Budget) NewTracker(name string) *Tracker {
	t := &Tracker{name: name, budget: b}
	b.trackers = append(b.trackers, t)
	return t
}

// RegisterReclaimer registers fn to be invoked (in ascending priority
// order) when a reservation would exceed the budget.
func (b *Budget) RegisterReclaimer(name string, priority int, fn Reclaimer) {
	b.reclaimers = append(b.reclaimers, reclaimerEntry{name: name, priority: priority, fn: fn})
	sort.SliceStable(b.reclaimers, func(i, j int) bool {
		return b.reclaimers[i].priority < b.reclaimers[j].priority
	})
}

// reclaim asks registered reclaimers to free at least want bytes and
// returns the total freed.
func (b *Budget) reclaim(want int64) int64 {
	var freed int64
	for _, r := range b.reclaimers {
		if freed >= want {
			break
		}
		freed += r.fn(want - freed)
	}
	return freed
}

// Usage is a point-in-time snapshot of one component's reservation.
type Usage struct {
	Name  string
	Used  int64
	Peak  int64
	Limit int64 // 0 when the tracker has no cap
}

// CheckConservation audits the budget's double-entry bookkeeping: every
// byte of Used is attributed to exactly one tracker, the wired total is
// the sum over non-reclaimable trackers, and each group's usage is the
// sum over its member trackers. The fault plane's fuzz harness runs this
// after every simulated schedule — any reserve/spill/release path that
// loses or double-counts bytes surfaces here.
func (b *Budget) CheckConservation() error {
	var used, wired int64
	groups := make(map[*Group]int64)
	for _, t := range b.trackers {
		if t.used < 0 {
			return fmt.Errorf("mem: tracker %s used %d < 0", t.name, t.used)
		}
		used += t.used
		if !t.reclaimable {
			wired += t.used
		}
		if t.group != nil {
			groups[t.group] += t.used
		}
	}
	if used != b.used {
		return fmt.Errorf("mem: budget used %d != tracker sum %d", b.used, used)
	}
	if wired != b.wired {
		return fmt.Errorf("mem: budget wired %d != non-reclaimable sum %d", b.wired, wired)
	}
	for g, sum := range groups {
		if g.used != sum {
			return fmt.Errorf("mem: group %s used %d != member sum %d", g.name, g.used, sum)
		}
	}
	return nil
}

// Snapshot returns per-component usage sorted by name.
func (b *Budget) Snapshot() []Usage {
	out := make([]Usage, 0, len(b.trackers))
	for _, t := range b.trackers {
		out = append(out, Usage{Name: t.name, Used: t.used, Peak: t.peak, Limit: t.limit})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Group is a sub-budget shared by several trackers: reservations by member
// trackers must fit under the group cap as well as the machine budget. It
// models a bounded region like the 32-bit virtual address space that
// compilation, execution grants, and caches contended for on the paper's
// testbed (while the AWE-mapped buffer pool lived outside it).
type Group struct {
	name string
	cap  int64
	used int64
	peak int64

	reclaimers []reclaimerEntry
}

// NewGroup creates a sub-budget of cap bytes.
func (b *Budget) NewGroup(name string, cap int64) *Group {
	if cap <= 0 {
		panic("mem: non-positive group cap")
	}
	return &Group{name: name, cap: cap}
}

// Name returns the group name.
func (g *Group) Name() string { return g.name }

// Cap returns the group's capacity.
func (g *Group) Cap() int64 { return g.cap }

// Total returns the group's capacity; with Used and Free it lets a Group
// stand wherever a whole Budget can (e.g. as a broker domain).
func (g *Group) Total() int64 { return g.cap }

// Used returns the bytes currently reserved by member trackers.
func (g *Group) Used() int64 { return g.used }

// Peak returns the group's high-water mark.
func (g *Group) Peak() int64 { return g.peak }

// Free returns the group's remaining capacity.
func (g *Group) Free() int64 { return g.cap - g.used }

// RegisterReclaimer registers fn to free group memory when a member
// reservation would exceed the group cap.
func (g *Group) RegisterReclaimer(name string, priority int, fn Reclaimer) {
	g.reclaimers = append(g.reclaimers, reclaimerEntry{name: name, priority: priority, fn: fn})
	sort.SliceStable(g.reclaimers, func(i, j int) bool {
		return g.reclaimers[i].priority < g.reclaimers[j].priority
	})
}

func (g *Group) reclaim(want int64) int64 {
	var freed int64
	for _, r := range g.reclaimers {
		if freed >= want {
			break
		}
		freed += r.fn(want - freed)
	}
	return freed
}

// Tracker accounts for one component's share of the budget.
type Tracker struct {
	name        string
	budget      *Budget
	group       *Group // optional sub-budget
	used        int64
	peak        int64
	limit       int64 // optional per-component cap; 0 = none
	reclaimable bool  // cache memory, excluded from wired accounting
	overcommit  bool  // may reserve past physical up to the commit limit
	allocs      uint64
	fails       uint64

	// oomErr is the tracker's reusable failure value. Under the collapse
	// regime every grant retry produces an OOM error, so Reserve rewrites
	// this one value in place instead of allocating per failure. The
	// returned error is valid until the tracker's next failed
	// reservation; callers inspect or render it immediately (errors.Is /
	// classify), never retain it.
	oomErr oomError
}

// SetGroup places the tracker in a sub-budget group. Must be called
// before any reservation.
func (t *Tracker) SetGroup(g *Group) {
	if t.used != 0 {
		panic("mem: SetGroup on active tracker " + t.name)
	}
	t.group = g
}

// Group returns the tracker's sub-budget (nil when none).
func (t *Tracker) Group() *Group { return t.group }

// Name returns the component name.
func (t *Tracker) Name() string { return t.name }

// Used returns the bytes this component currently holds.
func (t *Tracker) Used() int64 { return t.used }

// Peak returns the high-water mark of Used.
func (t *Tracker) Peak() int64 { return t.peak }

// Allocs returns the number of successful reservations.
func (t *Tracker) Allocs() uint64 { return t.allocs }

// Fails returns the number of failed reservations.
func (t *Tracker) Fails() uint64 { return t.fails }

// Limit returns the component cap (0 when unset).
func (t *Tracker) Limit() int64 { return t.limit }

// SetLimit sets an optional per-component cap. Reservations that would
// push Used beyond the cap fail without consulting reclaimers. A limit of
// 0 removes the cap. Shrinking below current usage is allowed; the
// component simply cannot grow until it drops below the new cap.
func (t *Tracker) SetLimit(n int64) { t.limit = n }

// failOOM records a failed reservation and returns the tracker's
// in-place failure value (see Tracker.oomErr).
func (t *Tracker) failOOM(kind int8, group string, a, b, c int64) error {
	t.fails++
	t.budget.oomCount++
	t.oomErr = oomError{tracker: t.name, kind: kind, group: group, a: a, b: b, c: c}
	return &t.oomErr
}

// Reserve charges n bytes to the component, running budget reclaimers if
// the machine is out of memory. It returns ErrOutOfMemory (wrapped with
// component context) when the reservation cannot be satisfied. The
// returned error value is reused by the tracker's next failure, so it
// must be inspected before the next Reserve call, not retained.
func (t *Tracker) Reserve(n int64) error {
	if n < 0 {
		panic("mem: negative reservation")
	}
	if n == 0 {
		return nil
	}
	if t.limit > 0 && t.used+n > t.limit {
		return t.failOOM(oomLimit, "", t.limit, 0, 0)
	}
	if g := t.group; g != nil && g.used+n > g.cap {
		g.reclaim(g.used + n - g.cap)
		if g.used+n > g.cap {
			return t.failOOM(oomGroup, g.name, g.used, g.cap, 0)
		}
	}
	if t.budget.used+n > t.budget.total {
		// Beyond physical memory: steal from caches first (the pager
		// drops clean file pages before it swaps anything).
		need := t.budget.used + n - t.budget.total
		t.budget.reclaim(need)
		// Overcommittable trackers may then spill into swap up to the
		// commit limit; everyone else fails at physical memory.
		ceiling := t.budget.total
		if t.overcommit && t.budget.commitLimit > ceiling {
			ceiling = t.budget.commitLimit
		}
		if t.budget.used+n > ceiling {
			return t.failOOM(oomBudget, "", t.budget.used, t.budget.total, t.budget.CommitLimit())
		}
	}
	t.budget.used += n
	t.used += n
	if t.used > t.peak {
		t.peak = t.used
	}
	if !t.reclaimable {
		t.budget.wired += n
		if t.budget.wired > t.budget.wiredPeak {
			t.budget.wiredPeak = t.budget.wired
		}
	}
	if g := t.group; g != nil {
		g.used += n
		if g.used > g.peak {
			g.peak = g.used
		}
	}
	t.allocs++
	return nil
}

// MustReserve is Reserve for infallible bookkeeping (e.g. fixed overhead
// reserved at startup); it panics on failure.
func (t *Tracker) MustReserve(n int64) {
	if err := t.Reserve(n); err != nil {
		panic(err)
	}
}

// Release returns n bytes to the budget. Releasing more than Used panics:
// that is always an accounting bug in the caller.
func (t *Tracker) Release(n int64) {
	if n < 0 {
		panic("mem: negative release")
	}
	if n > t.used {
		panic(fmt.Sprintf("mem: %s releasing %d with only %d held", t.name, n, t.used))
	}
	t.used -= n
	t.budget.used -= n
	if !t.reclaimable {
		t.budget.wired -= n
	}
	if t.group != nil {
		t.group.used -= n
	}
}

// ReleaseAll returns everything the component holds and reports how much
// was released.
func (t *Tracker) ReleaseAll() int64 {
	n := t.used
	t.Release(n)
	return n
}
