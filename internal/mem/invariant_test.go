package mem

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// invariantWorld is the randomized-accounting fixture: a pressured
// budget with every tracker flavor the engine uses — plain wired,
// overcommitting (spills into swap), reclaimable caches with
// registered reclaimers, and a grouped pair bounded by a sub-budget —
// so the property test exercises the same paths the simulation does.
type invariantWorld struct {
	b        *Budget
	group    *Group
	trackers []*Tracker
}

func newInvariantWorld() *invariantWorld {
	b := NewBudget(1 * GiB)
	b.SetPressure(PressureModel{
		Enabled:          true,
		CommitFrac:       1.5,
		CacheReserveFrac: 0.45,
		SlowdownSlope:    14,
		MaxSlowdown:      24,
		StealFrac:        0.5,
	})
	w := &invariantWorld{b: b}

	wired := b.NewTracker("wired")
	spill := b.NewTracker("spill")
	spill.AllowOvercommit()
	cache := b.NewTracker("cache")
	cache.MarkReclaimable()
	b.RegisterReclaimer("cache", 1, func(want int64) int64 {
		freed := want
		if freed > cache.Used() {
			freed = cache.Used()
		}
		cache.Release(freed)
		return freed
	})

	w.group = b.NewGroup("vas", 512*MiB)
	gwired := b.NewTracker("group-wired")
	gwired.SetGroup(w.group)
	gwired.AllowOvercommit()
	gcache := b.NewTracker("group-cache")
	gcache.SetGroup(w.group)
	gcache.MarkReclaimable()
	w.group.RegisterReclaimer("group-cache", 1, func(want int64) int64 {
		freed := want
		if freed > gcache.Used() {
			freed = gcache.Used()
		}
		gcache.Release(freed)
		return freed
	})

	limited := b.NewTracker("limited")
	limited.SetLimit(64 * MiB)

	w.trackers = []*Tracker{wired, spill, cache, gwired, gcache, limited}
	return w
}

// check asserts every accounting invariant. Called after each op, it
// turns one randomized walk into thousands of oracle checks.
func (w *invariantWorld) check(t *testing.T, step int) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Fatalf("step %d: %s", step, fmt.Sprintf(format, args...))
	}

	var sum, wired, reclaimable, groupSum int64
	for _, tr := range w.trackers {
		u := tr.Used()
		if u < 0 {
			fail("%s used = %d, negative", tr.Name(), u)
		}
		if tr.Peak() < u {
			fail("%s peak %d below used %d", tr.Name(), tr.Peak(), u)
		}
		sum += u
		if tr.Reclaimable() {
			reclaimable += u
		} else {
			wired += u
		}
		if tr.Group() == w.group {
			groupSum += u
		}
	}

	if got := w.b.Used(); got != sum {
		fail("budget used %d != tracker sum %d", got, sum)
	}
	if got := w.b.WiredBytes(); got != wired {
		fail("wired %d != non-reclaimable sum %d", got, wired)
	}
	if wired < 0 || reclaimable < 0 {
		fail("negative aggregate: wired=%d reclaimable=%d", wired, reclaimable)
	}
	// Conservation: everything reserved is wired or reclaimable, and the
	// total never escapes the commit ceiling (physical + swap).
	if wired+reclaimable != w.b.Used() {
		fail("wired %d + reclaimable %d != used %d", wired, reclaimable, w.b.Used())
	}
	if w.b.Used() > w.b.CommitLimit() {
		fail("used %d beyond commit limit %d", w.b.Used(), w.b.CommitLimit())
	}
	if w.b.Free() != w.b.Total()-w.b.Used() {
		fail("free %d != total-used %d", w.b.Free(), w.b.Total()-w.b.Used())
	}
	if w.b.WiredPeak() < w.b.WiredBytes() {
		fail("wired peak %d below wired %d", w.b.WiredPeak(), w.b.WiredBytes())
	}

	if got := w.group.Used(); got != groupSum {
		fail("group used %d != member sum %d", got, groupSum)
	}
	if w.group.Used() > w.group.Cap() {
		fail("group used %d beyond cap %d", w.group.Used(), w.group.Cap())
	}
	if w.group.Peak() < w.group.Used() {
		fail("group peak %d below used %d", w.group.Peak(), w.group.Used())
	}

	if s := w.b.Slowdown(); s < 1 {
		fail("slowdown %f below 1", s)
	} else if want := w.b.Pressure().Slowdown(w.b.OvercommitRatio()); s != want {
		fail("slowdown %f != model(%f) = %f", s, w.b.OvercommitRatio(), want)
	}
	if over := w.b.WiredOverBytes(); over < 0 {
		fail("wired overshoot %d negative", over)
	}
}

// TestInvariantRandomizedAccounting drives the budget through
// randomized reserve / spill / release sequences and asserts after
// every operation that no counter goes negative, totals conserve, the
// group sub-budget agrees with its members, and the commit ceiling
// holds. Failed reservations must leave the accounting untouched.
func TestInvariantRandomizedAccounting(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			w := newInvariantWorld()
			w.check(t, -1)
			for step := 0; step < 3000; step++ {
				tr := w.trackers[rng.Intn(len(w.trackers))]
				switch op := rng.Intn(10); {
				case op < 6: // reserve, occasionally huge to force reclaim/OOM
					var n int64
					if rng.Intn(8) == 0 {
						n = rng.Int63n(600 * MiB)
					} else {
						n = rng.Int63n(32 * MiB)
					}
					before := tr.Used()
					if err := tr.Reserve(n); err != nil {
						if !errors.Is(err, ErrOutOfMemory) {
							t.Fatalf("step %d: unexpected error kind %v", step, err)
						}
						// A failed reserve may have run reclaimers (which
						// shrink caches), but must not move the reserving
						// tracker itself — unless it is a cache its own
						// reclaimer stole from.
						if !tr.Reclaimable() && tr.Used() != before {
							t.Fatalf("step %d: failed reserve moved %s from %d to %d",
								step, tr.Name(), before, tr.Used())
						}
					}
				case op < 9: // release a random fraction of the holding
					if u := tr.Used(); u > 0 {
						tr.Release(rng.Int63n(u) + 1)
					}
				default: // release everything
					if freed := tr.ReleaseAll(); freed < 0 || tr.Used() != 0 {
						t.Fatalf("step %d: ReleaseAll freed %d, left %d", step, freed, tr.Used())
					}
				}
				w.check(t, step)
			}
			// Drain: a full unwind must return the budget to zero.
			for _, tr := range w.trackers {
				tr.ReleaseAll()
			}
			w.check(t, 3001)
			if w.b.Used() != 0 || w.b.WiredBytes() != 0 {
				t.Fatalf("drained budget leaks: used=%d wired=%d", w.b.Used(), w.b.WiredBytes())
			}
		})
	}
}
