package mem

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestReserveRelease(t *testing.T) {
	b := NewBudget(100)
	tr := b.NewTracker("c")
	if err := tr.Reserve(60); err != nil {
		t.Fatal(err)
	}
	if b.Used() != 60 || b.Free() != 40 || tr.Used() != 60 {
		t.Fatalf("used=%d free=%d tracker=%d", b.Used(), b.Free(), tr.Used())
	}
	tr.Release(10)
	if b.Used() != 50 || tr.Used() != 50 {
		t.Fatalf("after release: used=%d tracker=%d", b.Used(), tr.Used())
	}
	if tr.Peak() != 60 {
		t.Fatalf("peak=%d, want 60", tr.Peak())
	}
}

func TestReserveZeroIsNoop(t *testing.T) {
	b := NewBudget(10)
	tr := b.NewTracker("c")
	if err := tr.Reserve(0); err != nil {
		t.Fatal(err)
	}
	if tr.Allocs() != 0 || b.Used() != 0 {
		t.Fatal("zero reservation had an effect")
	}
}

func TestOOM(t *testing.T) {
	b := NewBudget(100)
	tr := b.NewTracker("c")
	if err := tr.Reserve(101); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if b.OOMCount() != 1 || tr.Fails() != 1 {
		t.Fatalf("oom=%d fails=%d", b.OOMCount(), tr.Fails())
	}
	if b.Used() != 0 {
		t.Fatalf("failed reservation leaked %d bytes", b.Used())
	}
}

func TestReclaimSavesReservation(t *testing.T) {
	b := NewBudget(100)
	cache := b.NewTracker("cache")
	cache.MustReserve(90)
	b.RegisterReclaimer("cache", 0, func(want int64) int64 {
		n := want
		if n > cache.Used() {
			n = cache.Used()
		}
		cache.Release(n)
		return n
	})
	work := b.NewTracker("work")
	if err := work.Reserve(50); err != nil {
		t.Fatalf("reserve with reclaimable cache failed: %v", err)
	}
	if cache.Used() != 50 {
		t.Fatalf("cache shrunk to %d, want 50", cache.Used())
	}
	if b.Used() != 100 {
		t.Fatalf("budget used=%d, want 100", b.Used())
	}
}

func TestReclaimerPriorityOrder(t *testing.T) {
	b := NewBudget(100)
	a := b.NewTracker("a")
	c := b.NewTracker("c")
	a.MustReserve(50)
	c.MustReserve(50)
	var order []string
	b.RegisterReclaimer("second", 5, func(want int64) int64 {
		order = append(order, "second")
		c.Release(want)
		return want
	})
	b.RegisterReclaimer("first", 1, func(want int64) int64 {
		order = append(order, "first")
		n := int64(10)
		if n > want {
			n = want
		}
		a.Release(n)
		return n
	})
	w := b.NewTracker("w")
	if err := w.Reserve(30); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("reclaim order = %v", order)
	}
}

func TestComponentLimit(t *testing.T) {
	b := NewBudget(1000)
	tr := b.NewTracker("c")
	tr.SetLimit(100)
	if err := tr.Reserve(100); err != nil {
		t.Fatal(err)
	}
	if err := tr.Reserve(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("limit not enforced: %v", err)
	}
	tr.SetLimit(0)
	if err := tr.Reserve(1); err != nil {
		t.Fatalf("cap removal not honored: %v", err)
	}
}

func TestReleaseTooMuchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	b := NewBudget(10)
	tr := b.NewTracker("c")
	tr.MustReserve(5)
	tr.Release(6)
}

func TestReleaseAll(t *testing.T) {
	b := NewBudget(100)
	tr := b.NewTracker("c")
	tr.MustReserve(30)
	tr.MustReserve(20)
	if n := tr.ReleaseAll(); n != 50 {
		t.Fatalf("ReleaseAll = %d, want 50", n)
	}
	if tr.Used() != 0 || b.Used() != 0 {
		t.Fatal("ReleaseAll left residue")
	}
}

func TestSnapshotSorted(t *testing.T) {
	b := NewBudget(100)
	b.NewTracker("zeta").MustReserve(1)
	b.NewTracker("alpha").MustReserve(2)
	snap := b.Snapshot()
	if len(snap) != 2 || snap[0].Name != "alpha" || snap[1].Name != "zeta" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Used != 2 {
		t.Fatalf("alpha used = %d", snap[0].Used)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{2 * KiB, "2.00 KiB"},
		{3 * MiB, "3.00 MiB"},
		{GiB + GiB/2, "1.50 GiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
	if !strings.Contains(FormatBytes(4*GiB), "GiB") {
		t.Error("4GiB not formatted as GiB")
	}
}

// Property: for any sequence of reserve/release operations, the budget's
// used counter equals the sum over trackers, never exceeds total, and is
// never negative.
func TestQuickAccountingInvariant(t *testing.T) {
	type op struct {
		Tracker uint8
		Amount  uint16
		Release bool
	}
	f := func(ops []op) bool {
		b := NewBudget(1 << 20)
		trs := []*Tracker{b.NewTracker("a"), b.NewTracker("b"), b.NewTracker("c")}
		for _, o := range ops {
			tr := trs[int(o.Tracker)%len(trs)]
			n := int64(o.Amount)
			if o.Release {
				if n > tr.Used() {
					n = tr.Used()
				}
				tr.Release(n)
			} else {
				_ = tr.Reserve(n) // OOM is fine; must not corrupt accounting
			}
			var sum int64
			for _, x := range trs {
				if x.Used() < 0 {
					return false
				}
				sum += x.Used()
			}
			if sum != b.Used() || b.Used() > b.Total() || b.Used() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckConservationHealthy(t *testing.T) {
	b := NewBudget(1 << 30)
	g := b.NewGroup("exec", 256*MiB)
	if g.Name() != "exec" || g.Total() != g.Cap() || g.Free() != g.Cap() {
		t.Fatalf("group surface: name=%q total=%d cap=%d free=%d", g.Name(), g.Total(), g.Cap(), g.Free())
	}
	grants := b.NewTracker("grants")
	grants.SetGroup(g)
	if grants.Name() != "grants" || grants.Limit() != 0 {
		t.Fatalf("tracker surface: name=%q limit=%d", grants.Name(), grants.Limit())
	}
	cache := b.NewTracker("cache")
	cache.MarkReclaimable()
	grants.MustReserve(64 * MiB)
	cache.MustReserve(32 * MiB)
	if err := b.CheckConservation(); err != nil {
		t.Fatalf("healthy budget: %v", err)
	}
	grants.Release(64 * MiB)
	cache.ReleaseAll()
	if err := b.CheckConservation(); err != nil {
		t.Fatalf("drained budget: %v", err)
	}
}

// TestCheckConservationViolations corrupts one side of the double-entry
// bookkeeping at a time and expects the audit to name exactly that
// violation.
func TestCheckConservationViolations(t *testing.T) {
	wantErr := func(t *testing.T, err error, frag string) {
		t.Helper()
		if err == nil {
			t.Fatalf("CheckConservation passed; want error containing %q", frag)
		}
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("CheckConservation = %q, want %q", err, frag)
		}
	}
	t.Run("negative-tracker", func(t *testing.T) {
		b := NewBudget(1 << 20)
		b.NewTracker("x").used = -3
		wantErr(t, b.CheckConservation(), "used -3 < 0")
	})
	t.Run("budget-sum", func(t *testing.T) {
		b := NewBudget(1 << 20)
		b.NewTracker("x").MustReserve(100)
		b.used++
		wantErr(t, b.CheckConservation(), "budget used")
	})
	t.Run("wired-sum", func(t *testing.T) {
		b := NewBudget(1 << 20)
		tr := b.NewTracker("x")
		tr.MustReserve(100)
		tr.reclaimable = true // lie post-hoc: wired total now overcounts
		wantErr(t, b.CheckConservation(), "non-reclaimable sum")
	})
	t.Run("group-sum", func(t *testing.T) {
		b := NewBudget(1 << 20)
		g := b.NewGroup("g", 1<<19)
		tr := b.NewTracker("x")
		tr.SetGroup(g)
		tr.MustReserve(100)
		g.used++
		wantErr(t, b.CheckConservation(), "member sum")
	})
}

func TestMustReservePanicsOnOOM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustReserve past the budget did not panic")
		}
	}()
	b := NewBudget(100)
	b.NewTracker("x").MustReserve(200)
}

func TestOOMErrorMessage(t *testing.T) {
	b := NewBudget(100)
	err := b.NewTracker("x").Reserve(200)
	if err == nil {
		t.Fatal("over-budget Reserve succeeded")
	}
	if msg := err.Error(); !strings.Contains(msg, "budget exhausted") {
		t.Fatalf("oom message = %q", msg)
	}
}

func TestPressureModelLimits(t *testing.T) {
	m := DefaultPressureModel()
	if !m.Enabled {
		t.Fatal("default pressure model disabled")
	}
	if got := m.commitLimit(1000); got != 1500 {
		t.Fatalf("commitLimit(1000) = %d, want 1500", got)
	}
	if got, want := m.pagingThreshold(1000), int64((1-m.CacheReserveFrac)*1000); got != want {
		t.Fatalf("pagingThreshold(1000) = %d, want %d", got, want)
	}
	m.CacheReserveFrac = 2 // nonsense fraction clamps to the whole machine
	if got := m.pagingThreshold(1000); got != 1000 {
		t.Fatalf("clamped pagingThreshold = %d, want 1000", got)
	}
	m.Enabled = false
	if got := m.commitLimit(1000); got != 1000 {
		t.Fatalf("disabled commitLimit(1000) = %d, want 1000", got)
	}

	b := NewBudget(1 << 20)
	tr := b.NewTracker("x")
	if tr.Overcommittable() {
		t.Fatal("tracker overcommittable by default")
	}
	tr.AllowOvercommit()
	if !tr.Overcommittable() {
		t.Fatal("AllowOvercommit did not stick")
	}
}
