package mem

import (
	"errors"
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestOvercommitAccounting pins the wired/overcommit bookkeeping the
// thrash model is built on: reclaimable trackers never count as wired,
// overcommittable trackers may reserve into swap up to the commit limit,
// and the ratio/slowdown follow the reservations exactly.
func TestOvercommitAccounting(t *testing.T) {
	b := NewBudget(1000)
	b.SetPressure(PressureModel{
		Enabled:          true,
		CommitFrac:       1.5, // commit limit 1500
		CacheReserveFrac: 0.2, // paging threshold 800
		SlowdownSlope:    4,
		MaxSlowdown:      10,
	})
	if got := b.CommitLimit(); got != 1500 {
		t.Fatalf("commit limit = %d, want 1500", got)
	}

	cache := b.NewTracker("cache")
	cache.MarkReclaimable()
	wiredA := b.NewTracker("wired-a")
	compile := b.NewTracker("compile")
	compile.AllowOvercommit()

	// Cache memory is used but never wired.
	cache.MustReserve(500)
	if b.Used() != 500 || b.WiredBytes() != 0 {
		t.Fatalf("after cache reserve: used=%d wired=%d", b.Used(), b.WiredBytes())
	}
	if r := b.OvercommitRatio(); !almost(r, 0) {
		t.Fatalf("ratio with only cache = %g", r)
	}

	// Wired memory counts toward the ratio against the paging threshold.
	wiredA.MustReserve(400)
	if b.WiredBytes() != 400 {
		t.Fatalf("wired = %d, want 400", b.WiredBytes())
	}
	if r := b.OvercommitRatio(); !almost(r, 400.0/800.0) {
		t.Fatalf("ratio = %g, want 0.5", r)
	}
	if f := b.Slowdown(); !almost(f, 1) {
		t.Fatalf("slowdown below threshold = %g, want 1", f)
	}

	// Crossing the paging threshold engages the slowdown and reports the
	// overshoot the pager wants back.
	compile.MustReserve(600) // wired 1000, ratio 1.25
	if r := b.OvercommitRatio(); !almost(r, 1.25) {
		t.Fatalf("ratio = %g, want 1.25", r)
	}
	if f := b.Slowdown(); !almost(f, 1+4*0.25) {
		t.Fatalf("slowdown = %g, want 2", f)
	}
	if over := b.WiredOverBytes(); over != 200 {
		t.Fatalf("wired overshoot = %d, want 200", over)
	}

	// Release restores the accounting symmetrically.
	compile.Release(600)
	if b.WiredBytes() != 400 || b.WiredPeak() != 1000 {
		t.Fatalf("after release: wired=%d peak=%d", b.WiredBytes(), b.WiredPeak())
	}
}

// TestOvercommitCeilings pins who may cross physical memory: only
// overcommittable trackers, and only up to the commit limit — and that
// reclaimable caches are shrunk before anyone swaps.
func TestOvercommitCeilings(t *testing.T) {
	b := NewBudget(1000)
	b.SetPressure(PressureModel{Enabled: true, CommitFrac: 1.2})

	cache := b.NewTracker("cache")
	cache.MarkReclaimable()
	var cacheBytes int64
	b.RegisterReclaimer("cache", 1, func(want int64) int64 {
		freed := want
		if freed > cacheBytes {
			freed = cacheBytes
		}
		cacheBytes -= freed
		cache.Release(freed)
		return freed
	})
	plain := b.NewTracker("plain")
	swap := b.NewTracker("swap")
	swap.AllowOvercommit()

	cacheBytes = 300
	cache.MustReserve(300)
	plain.MustReserve(700) // budget full at physical

	// A plain tracker beyond physical first drains the cache, then fails.
	if err := plain.Reserve(400); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("plain reserve past physical = %v, want OOM", err)
	}
	if cacheBytes != 0 {
		t.Fatalf("reclaimer left %d cache bytes", cacheBytes)
	}
	if err := plain.Reserve(300); err != nil { // fits after the reclaim
		t.Fatal(err)
	}

	// An overcommittable tracker swaps up to the commit limit (1200)...
	if err := swap.Reserve(150); err != nil {
		t.Fatal(err)
	}
	if b.Used() != 1150 || b.Free() >= 0 {
		t.Fatalf("used=%d free=%d, want overcommitted budget", b.Used(), b.Free())
	}
	// ...and not a byte further.
	if err := swap.Reserve(100); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("reserve past commit limit = %v, want OOM", err)
	}
}

// TestPressureModelDisabled pins that the zero model keeps the strict
// semantics every existing component relies on.
func TestPressureModelDisabled(t *testing.T) {
	b := NewBudget(1000)
	tr := b.NewTracker("t")
	tr.AllowOvercommit() // no pressure model installed: flag is inert
	if err := tr.Reserve(1001); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("overcommit without model = %v, want OOM", err)
	}
	if f := b.Slowdown(); f != 1 {
		t.Fatalf("slowdown without model = %g", f)
	}
	var m PressureModel
	if f := m.Slowdown(5); f != 1 {
		t.Fatalf("disabled model slowdown = %g", f)
	}
}
