package mem

// PressureModel describes what happens to the machine when wired memory
// — reservations that cannot be paged out for free (compilations,
// execution grants, fixed overhead), as opposed to reclaimable caches —
// crowds out the page cache the workload needs. It is the knob set the
// calibration sweep (internal/scenario, cmd/calibrate) explores.
//
// The model is deliberately simple: the machine has physical memory
// Budget.Total and swap extending commit to CommitFrac*Total. Wired
// memory up to (1-CacheReserveFrac)*Total is free; beyond that the pager
// is stealing pages the workload is actively using, and every CPU cycle
// and disk transfer stretches by Slowdown(OvercommitRatio). Reservations
// past the commit limit still fail with ErrOutOfMemory.
type PressureModel struct {
	// Enabled turns the model on. The zero value (disabled) preserves
	// strict no-overcommit semantics: reservations beyond Total fail.
	Enabled bool
	// CommitFrac sizes the commit limit (physical + swap) as a multiple
	// of physical memory. Overcommittable trackers may reserve up to
	// CommitFrac*Total before ErrOutOfMemory. Values <= 1 mean no swap.
	CommitFrac float64
	// CacheReserveFrac is the fraction of physical memory the page cache
	// and OS working set need. Wired memory beyond
	// (1-CacheReserveFrac)*Total starts the paging penalty.
	CacheReserveFrac float64
	// SlowdownSlope converts normalized overcommit into slowdown:
	// factor = 1 + SlowdownSlope*(ratio-1) for ratio > 1.
	SlowdownSlope float64
	// MaxSlowdown caps the factor (the machine is never infinitely slow,
	// just unusable).
	MaxSlowdown float64
	// StealFrac is the fraction of the wired overshoot the pager steals
	// from the buffer pool per housekeeping tick (page-steal evictions).
	StealFrac float64
}

// DefaultPressureModel returns the default machine's thrash model:
// paging starts once wired memory claims more than 65% of RAM, and
// severity ramps steeply (slope 14) so a machine 10% past the threshold
// already runs ~2.4x slow. The default workload profile sits below the
// threshold; the §5 throughput experiments tighten CacheReserveFrac to
// 0.45 through the calibrated scenario knobs (internal/scenario,
// cmd/calibrate) to reproduce the paper's collapse regime.
func DefaultPressureModel() PressureModel {
	return PressureModel{
		Enabled:          true,
		CommitFrac:       1.5,
		CacheReserveFrac: 0.35,
		SlowdownSlope:    14.0,
		MaxSlowdown:      24.0,
		StealFrac:        0.5,
	}
}

// pagingThreshold returns the wired-memory level at which paging starts,
// for a machine with total physical bytes.
func (m PressureModel) pagingThreshold(total int64) int64 {
	f := 1 - m.CacheReserveFrac
	if f <= 0 || f > 1 {
		f = 1
	}
	return int64(f * float64(total))
}

// commitLimit returns the commit ceiling for a machine with total
// physical bytes.
func (m PressureModel) commitLimit(total int64) int64 {
	if !m.Enabled || m.CommitFrac <= 1 {
		return total
	}
	return int64(m.CommitFrac * float64(total))
}

// Slowdown maps an overcommit ratio (wired / paging threshold) to the
// multiplicative paging slowdown. Ratios at or below 1 cost nothing.
func (m PressureModel) Slowdown(ratio float64) float64 {
	if !m.Enabled || ratio <= 1 {
		return 1
	}
	f := 1 + m.SlowdownSlope*(ratio-1)
	if m.MaxSlowdown > 1 && f > m.MaxSlowdown {
		f = m.MaxSlowdown
	}
	return f
}

// SetPressure installs the pressure model on the budget. With the model
// enabled, trackers marked AllowOvercommit may reserve past physical
// memory up to the commit limit, and the budget reports the paging state
// through OvercommitRatio and Slowdown. Must be called before any
// overcommitting reservation.
func (b *Budget) SetPressure(m PressureModel) {
	b.pressure = m
	b.commitLimit = m.commitLimit(b.total)
	b.slowWired = -1
}

// Pressure returns the installed pressure model (zero value when unset).
func (b *Budget) Pressure() PressureModel { return b.pressure }

// CommitLimit returns the commit ceiling: total physical memory unless a
// pressure model with swap is installed.
func (b *Budget) CommitLimit() int64 {
	if b.commitLimit > b.total {
		return b.commitLimit
	}
	return b.total
}

// WiredBytes returns the bytes held by non-reclaimable trackers — memory
// the pager cannot steal for free. Caches (buffer pool, plan cache) mark
// themselves reclaimable and are excluded.
func (b *Budget) WiredBytes() int64 { return b.wired }

// WiredPeak returns the high-water mark of WiredBytes.
func (b *Budget) WiredPeak() int64 { return b.wiredPeak }

// OvercommitRatio returns wired memory divided by the paging threshold
// ((1-CacheReserveFrac)*Total). Values above 1 mean the machine is
// thrashing; without a pressure model the threshold is Total itself, so
// the ratio is simply the wired fraction of physical memory.
func (b *Budget) OvercommitRatio() float64 {
	thr := b.pressure.pagingThreshold(b.total)
	if thr <= 0 {
		return 0
	}
	return float64(b.wired) / float64(thr)
}

// Slowdown returns the current paging slowdown factor (1 when the
// machine is healthy). Deterministic: it depends only on reservation
// state, never on wall-clock — which also makes it cacheable per wired
// level, since the engine reads it on every quantum.
func (b *Budget) Slowdown() float64 {
	if b.wired == b.slowWired {
		return b.slowVal
	}
	v := b.pressure.Slowdown(b.OvercommitRatio())
	b.slowWired, b.slowVal = b.wired, v
	return v
}

// WiredOverBytes returns how far wired memory currently exceeds the
// paging threshold (0 when healthy) — the amount the pager wants to
// steal back from caches.
func (b *Budget) WiredOverBytes() int64 {
	over := b.wired - b.pressure.pagingThreshold(b.total)
	if over < 0 {
		return 0
	}
	return over
}

// MarkReclaimable excludes the tracker's memory from WiredBytes: the
// component is a cache whose pages the pager can drop or steal without
// swap I/O. Must be called before any reservation.
func (t *Tracker) MarkReclaimable() {
	if t.used != 0 {
		panic("mem: MarkReclaimable on active tracker " + t.name)
	}
	t.reclaimable = true
}

// Reclaimable reports whether the tracker is excluded from wired
// accounting.
func (t *Tracker) Reclaimable() bool { return t.reclaimable }

// AllowOvercommit lets the tracker reserve beyond physical memory up to
// the budget's commit limit (the reservation is backed by swap and
// charges the paging penalty machine-wide). Without a pressure model the
// flag has no effect.
func (t *Tracker) AllowOvercommit() { t.overcommit = true }

// Overcommittable reports whether the tracker may reserve past physical
// memory.
func (t *Tracker) Overcommittable() bool { return t.overcommit }
