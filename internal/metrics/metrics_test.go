package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRecorderSlices(t *testing.T) {
	r := NewRecorder(10 * time.Minute)
	r.RecordCompletion(5 * time.Minute)  // slice 0
	r.RecordCompletion(15 * time.Minute) // slice 1
	r.RecordCompletion(16 * time.Minute) // slice 1
	r.RecordError(25*time.Minute, "oom") // slice 2

	series := r.CompletionSeries(0, time.Hour)
	if len(series) != 3 {
		t.Fatalf("series len = %d, want 3", len(series))
	}
	if series[0].V != 1 || series[1].V != 2 || series[2].V != 0 {
		t.Fatalf("series = %v", series)
	}
	if r.Completed() != 3 {
		t.Fatalf("completed = %d", r.Completed())
	}
	if r.Errors()["oom"] != 1 || r.TotalErrors() != 1 {
		t.Fatalf("errors = %v", r.Errors())
	}
}

func TestRecorderWindow(t *testing.T) {
	r := NewRecorder(time.Minute)
	for i := 0; i < 60; i++ {
		r.RecordCompletion(time.Duration(i) * time.Minute)
	}
	if got := r.CompletionsIn(10*time.Minute, 20*time.Minute); got != 10 {
		t.Fatalf("CompletionsIn = %d, want 10", got)
	}
	if got := len(r.CompletionSeries(10*time.Minute, 20*time.Minute)); got != 10 {
		t.Fatalf("series length = %d, want 10", got)
	}
}

func TestErrorSeriesAndWindowSum(t *testing.T) {
	r := NewRecorder(time.Minute)
	r.RecordError(30*time.Second, "timeout")
	r.RecordError(90*time.Second, "timeout")
	r.RecordError(90*time.Second, "oom")
	s := r.ErrorSeries("timeout", 0, 5*time.Minute)
	if s[0].V != 1 || s[1].V != 1 {
		t.Fatalf("timeout series = %v", s)
	}
	if got := r.ErrorsIn(time.Minute, 2*time.Minute); got != 2 {
		t.Fatalf("ErrorsIn = %d, want 2", got)
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace("q1")
	tr.Add(0, 10)
	tr.Add(time.Second, 20)
	tr.Add(2*time.Second, 15)
	if tr.Max() != 20 {
		t.Fatalf("Max = %d", tr.Max())
	}
	if tr.At(1500*time.Millisecond) != 20 {
		t.Fatalf("At(1.5s) = %d, want 20", tr.At(1500*time.Millisecond))
	}
	if tr.At(-time.Second) != 0 {
		t.Fatalf("At before first sample = %d, want 0", tr.At(-time.Second))
	}
	if tr.At(time.Hour) != 15 {
		t.Fatalf("At after last sample = %d, want 15", tr.At(time.Hour))
	}
}

func TestTraceRejectsTimeTravel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order trace sample did not panic")
		}
	}()
	tr := NewTrace("q")
	tr.Add(time.Second, 1)
	tr.Add(0, 2)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(time.Second, 10*time.Second, time.Minute)
	h.Observe(500 * time.Millisecond)
	h.Observe(5 * time.Second)
	h.Observe(5 * time.Second)
	h.Observe(2 * time.Minute)
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 2*time.Minute {
		t.Fatalf("max = %v", h.Max())
	}
	if q := h.Quantile(0.5); q != 10*time.Second {
		t.Fatalf("p50 = %v, want 10s bucket bound", q)
	}
	if q := h.Quantile(1.0); q != 2*time.Minute {
		t.Fatalf("p100 = %v, want observed max", q)
	}
	if h.Mean() <= 0 {
		t.Fatal("mean not positive")
	}
	if s := h.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(time.Second)
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

// Property: total completions always equals the sum over any partition of
// the time axis into windows.
func TestQuickRecorderPartition(t *testing.T) {
	f := func(times []uint16) bool {
		r := NewRecorder(time.Minute)
		var maxT time.Duration
		for _, u := range times {
			at := time.Duration(u) * time.Second
			if at > maxT {
				maxT = at
			}
			r.RecordCompletion(at)
		}
		mid := maxT / 2
		a := r.CompletionsIn(0, mid)
		b := r.CompletionsIn(mid, maxT+time.Minute)
		return a+b == int64(len(times))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram count equals observations and quantiles are
// monotonic in q.
func TestQuickHistogramMonotoneQuantiles(t *testing.T) {
	f := func(obs []uint16) bool {
		if len(obs) == 0 {
			return true
		}
		h := NewHistogram(time.Millisecond, 10*time.Millisecond, 100*time.Millisecond, time.Second)
		for _, o := range obs {
			h.Observe(time.Duration(o) * 100 * time.Microsecond)
		}
		if h.Count() != int64(len(obs)) {
			return false
		}
		prev := time.Duration(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCounterGaugeRoundTrip writes a deterministic mix of counters
// (completions, errors by kind) and gauge samples (a trace) and reads
// every value back through each accessor: what goes in must come out,
// whichever view reads it.
func TestCounterGaugeRoundTrip(t *testing.T) {
	r := NewRecorder(time.Minute)
	if r.SliceDur() != time.Minute {
		t.Fatalf("SliceDur = %v", r.SliceDur())
	}
	writes := []struct {
		at   time.Duration
		kind string // "" = completion
	}{
		{30 * time.Second, ""},
		{30 * time.Second, "oom"},
		{90 * time.Second, ""},
		{90 * time.Second, "gateway-timeout"},
		{91 * time.Second, "oom"},
		{150 * time.Second, ""},
	}
	for _, w := range writes {
		if w.kind == "" {
			r.RecordCompletion(w.at)
		} else {
			r.RecordError(w.at, w.kind)
		}
	}
	if r.Completed() != 3 {
		t.Fatalf("Completed = %d, want 3", r.Completed())
	}
	errs := r.Errors()
	if errs["oom"] != 2 || errs["gateway-timeout"] != 1 || len(errs) != 2 {
		t.Fatalf("Errors = %v", errs)
	}
	if r.TotalErrors() != 3 {
		t.Fatalf("TotalErrors = %d", r.TotalErrors())
	}
	// Window sums must agree with the totals and with per-slice series.
	horizon := 4 * time.Minute
	if got := r.CompletionsIn(0, horizon); got != r.Completed() {
		t.Fatalf("CompletionsIn(all) = %d, want %d", got, r.Completed())
	}
	if got := r.ErrorsIn(0, horizon); got != r.TotalErrors() {
		t.Fatalf("ErrorsIn(all) = %d, want %d", got, r.TotalErrors())
	}
	var fromSeries int64
	for _, kind := range []string{"oom", "gateway-timeout"} {
		for _, p := range r.ErrorSeries(kind, 0, horizon) {
			fromSeries += p.V
		}
	}
	if fromSeries != r.TotalErrors() {
		t.Fatalf("error series sum = %d, want %d", fromSeries, r.TotalErrors())
	}

	tr := NewTrace("compile-bytes")
	if tr.Name() != "compile-bytes" {
		t.Fatalf("Name = %q", tr.Name())
	}
	samples := []TracePoint{{0, 100}, {time.Minute, 250}, {2 * time.Minute, 75}}
	for _, s := range samples {
		tr.Add(s.T, s.V)
	}
	for _, s := range samples {
		if got := tr.At(s.T); got != s.V {
			t.Fatalf("At(%v) = %d, want %d", s.T, got, s.V)
		}
	}
	if tr.Max() != 250 {
		t.Fatalf("Max = %d", tr.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(time.Second, 10*time.Second)
	b := NewHistogram(time.Second, 10*time.Second)
	a.Observe(500 * time.Millisecond)
	a.Observe(5 * time.Second)
	b.Observe(5 * time.Second)
	b.Observe(time.Minute)
	a.Merge(b)
	if a.Count() != 4 {
		t.Fatalf("merged count = %d, want 4", a.Count())
	}
	if a.Max() != time.Minute {
		t.Fatalf("merged max = %v, want 1m", a.Max())
	}
	if q := a.Quantile(0.5); q != 10*time.Second {
		t.Fatalf("merged p50 = %v, want 10s bucket bound", q)
	}
}

func TestMergedHistogramMatchesSingle(t *testing.T) {
	// Observations split across nodes must merge to the same profile as
	// one histogram seeing them all.
	parts := []*Histogram{
		NewHistogram(time.Second, 10*time.Second),
		NewHistogram(time.Second, 10*time.Second),
		NewHistogram(time.Second, 10*time.Second),
	}
	whole := NewHistogram(time.Second, 10*time.Second)
	for i := 0; i < 30; i++ {
		d := time.Duration(i) * 700 * time.Millisecond
		parts[i%3].Observe(d)
		whole.Observe(d)
	}
	m := MergedHistogram(parts...)
	if m.Count() != whole.Count() || m.Max() != whole.Max() || m.Mean() != whole.Mean() {
		t.Fatalf("merged %d/%v/%v, whole %d/%v/%v",
			m.Count(), m.Max(), m.Mean(), whole.Count(), whole.Max(), whole.Mean())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 1.0} {
		if m.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q%g: merged %v, whole %v", q, m.Quantile(q), whole.Quantile(q))
		}
	}
	// Merging must not mutate the inputs' identity: parts[0] keeps its own
	// count.
	if parts[0].Count() != 10 {
		t.Fatalf("input histogram mutated: count = %d", parts[0].Count())
	}
}

func TestHistogramMergeRejectsMismatchedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging differently-bucketed histograms did not panic")
		}
	}()
	a := NewHistogram(time.Second)
	b := NewHistogram(2 * time.Second)
	a.Merge(b)
}

func TestSumSeries(t *testing.T) {
	a := []Point{{T: 0, V: 1}, {T: time.Minute, V: 2}}
	b := []Point{{T: time.Minute, V: 3}, {T: 2 * time.Minute, V: 4}}
	got := SumSeries(a, b)
	want := []Point{{T: 0, V: 1}, {T: time.Minute, V: 5}, {T: 2 * time.Minute, V: 4}}
	if len(got) != len(want) {
		t.Fatalf("SumSeries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SumSeries[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if SumSeries() != nil || SumSeries(nil, nil) != nil {
		t.Fatal("empty inputs should sum to nil")
	}
}
