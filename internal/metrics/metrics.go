// Package metrics collects the measurements the paper reports: successful
// query completions per time slice, error counts by kind, latency
// distributions, and named time-series traces (memory-over-time curves for
// Figure 2).
//
// Everything is keyed by virtual time and safe for single-threaded use from
// vtime task context.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Recorder aggregates completions and errors into fixed-width time slices,
// mirroring the "Successful Queries/Time" axes of Figures 3-5.
type Recorder struct {
	sliceDur time.Duration
	slices   []slice
	totals   map[string]int64
}

type slice struct {
	completed int64
	errors    map[string]int64
}

// NewRecorder creates a recorder with the given slice width (the paper's
// figures use 600-second slices over a five-hour run).
func NewRecorder(sliceDur time.Duration) *Recorder {
	if sliceDur <= 0 {
		panic("metrics: non-positive slice duration")
	}
	return &Recorder{sliceDur: sliceDur, totals: make(map[string]int64)}
}

// SliceDur returns the slice width.
func (r *Recorder) SliceDur() time.Duration { return r.sliceDur }

func (r *Recorder) sliceAt(now time.Duration) *slice {
	i := int(now / r.sliceDur)
	for len(r.slices) <= i {
		r.slices = append(r.slices, slice{errors: make(map[string]int64)})
	}
	return &r.slices[i]
}

// RecordCompletion counts one successful query completion at virtual time
// now.
func (r *Recorder) RecordCompletion(now time.Duration) {
	r.sliceAt(now).completed++
	r.totals["completed"]++
}

// RecordError counts one failed query of the given kind (e.g. "oom",
// "gateway-timeout", "grant-timeout") at virtual time now.
func (r *Recorder) RecordError(now time.Duration, kind string) {
	r.sliceAt(now).errors[kind]++
	r.totals["error:"+kind]++
}

// Completed returns the total number of completions recorded.
func (r *Recorder) Completed() int64 { return r.totals["completed"] }

// Errors returns total error counts by kind.
func (r *Recorder) Errors() map[string]int64 {
	out := make(map[string]int64)
	for k, v := range r.totals {
		if kind, ok := strings.CutPrefix(k, "error:"); ok {
			out[kind] = v
		}
	}
	return out
}

// TotalErrors returns the total number of errors across kinds.
func (r *Recorder) TotalErrors() int64 {
	var n int64
	for _, v := range r.Errors() {
		n += v
	}
	return n
}

// Point is one time slice of a series.
type Point struct {
	T time.Duration // slice start
	V int64
}

// CompletionSeries returns completions per slice for slices whose start
// lies in [from, to).
func (r *Recorder) CompletionSeries(from, to time.Duration) []Point {
	var out []Point
	for i := range r.slices {
		start := time.Duration(i) * r.sliceDur
		if start < from || start >= to {
			continue
		}
		out = append(out, Point{T: start, V: r.slices[i].completed})
	}
	return out
}

// ErrorSeries returns errors of the given kind per slice in [from, to).
func (r *Recorder) ErrorSeries(kind string, from, to time.Duration) []Point {
	var out []Point
	for i := range r.slices {
		start := time.Duration(i) * r.sliceDur
		if start < from || start >= to {
			continue
		}
		out = append(out, Point{T: start, V: r.slices[i].errors[kind]})
	}
	return out
}

// CompletionsIn sums completions over slices starting in [from, to).
func (r *Recorder) CompletionsIn(from, to time.Duration) int64 {
	var n int64
	for _, p := range r.CompletionSeries(from, to) {
		n += p.V
	}
	return n
}

// ErrorsIn sums all errors over slices starting in [from, to).
func (r *Recorder) ErrorsIn(from, to time.Duration) int64 {
	var n int64
	for i := range r.slices {
		start := time.Duration(i) * r.sliceDur
		if start < from || start >= to {
			continue
		}
		for _, v := range r.slices[i].errors {
			n += v
		}
	}
	return n
}

// Trace records a named time-series of values sampled at arbitrary virtual
// times — used for per-query compile-memory curves (Figure 2) and broker
// component traces.
type Trace struct {
	name   string
	Points []TracePoint
}

// TracePoint is one (time, value) sample.
type TracePoint struct {
	T time.Duration
	V int64
}

// NewTrace returns an empty trace with the given name.
func NewTrace(name string) *Trace { return &Trace{name: name} }

// Name returns the trace name.
func (tr *Trace) Name() string { return tr.name }

// Add appends a sample. Samples should be added in nondecreasing time
// order; Add panics otherwise to catch clock misuse early.
func (tr *Trace) Add(t time.Duration, v int64) {
	if n := len(tr.Points); n > 0 && t < tr.Points[n-1].T {
		panic(fmt.Sprintf("metrics: trace %q sample at %v precedes %v", tr.name, t, tr.Points[n-1].T))
	}
	tr.Points = append(tr.Points, TracePoint{T: t, V: v})
}

// Max returns the maximum sampled value (0 for an empty trace).
func (tr *Trace) Max() int64 {
	var m int64
	for _, p := range tr.Points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// At returns the value in effect at time t (the most recent sample at or
// before t), or 0 if t precedes all samples.
func (tr *Trace) At(t time.Duration) int64 {
	i := sort.Search(len(tr.Points), func(i int) bool { return tr.Points[i].T > t })
	if i == 0 {
		return 0
	}
	return tr.Points[i-1].V
}

// Histogram is a simple log-ish bucketed histogram for durations, used for
// compile-time and execution-time profiles.
type Histogram struct {
	bounds []time.Duration // ascending upper bounds; final bucket unbounded
	counts []int64
	total  int64
	sum    time.Duration
	max    time.Duration
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. A final unbounded overflow bucket is added automatically.
func NewHistogram(bounds ...time.Duration) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds not ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i]++
	h.total++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the mean observation (0 with no observations).
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) using
// bucket boundaries; the overflow bucket reports the observed max.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	target := int64(q * float64(h.total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Merge folds other's observations into h. Both histograms must share
// the same bucket bounds; Merge panics otherwise — merging histograms
// of different shapes silently misbuckets counts.
func (h *Histogram) Merge(other *Histogram) {
	if len(h.bounds) != len(other.bounds) {
		panic("metrics: merging histograms with different bucket counts")
	}
	for i, b := range h.bounds {
		if b != other.bounds[i] {
			panic("metrics: merging histograms with different bounds")
		}
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// MergedHistogram returns a fresh histogram combining every input —
// cluster results aggregate per-node latency profiles with it. All
// inputs must share bucket bounds (they do when they come from
// identically configured servers); at least one input is required.
func MergedHistogram(hs ...*Histogram) *Histogram {
	if len(hs) == 0 {
		panic("metrics: merging zero histograms")
	}
	out := NewHistogram(hs[0].bounds...)
	for _, h := range hs {
		out.Merge(h)
	}
	return out
}

// SumSeries merges per-node completion series into one cluster-level
// series: points are summed per slice start and returned in time
// order. Inputs must be individually time-ordered (CompletionSeries
// output is).
func SumSeries(series ...[]Point) []Point {
	sums := make(map[time.Duration]int64)
	for _, s := range series {
		for _, p := range s {
			sums[p.T] += p.V
		}
	}
	out := make([]Point, 0, len(sums))
	for t, v := range sums {
		out = append(out, Point{T: t, V: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	if len(out) == 0 {
		return nil
	}
	return out
}

// String renders the histogram compactly for reports.
func (h *Histogram) String() string {
	var sb strings.Builder
	prev := time.Duration(0)
	for i, c := range h.counts {
		if c == 0 {
			if i < len(h.bounds) {
				prev = h.bounds[i]
			}
			continue
		}
		if i < len(h.bounds) {
			fmt.Fprintf(&sb, "[%v,%v]:%d ", prev, h.bounds[i], c)
			prev = h.bounds[i]
		} else {
			fmt.Fprintf(&sb, ">%v:%d ", prev, c)
		}
	}
	return strings.TrimSpace(sb.String())
}
