// Package storage maps catalog tables onto a flat extent address space and
// generates the access patterns the executor drives through the buffer
// pool.
//
// Access patterns are what make the buffer pool matter: repeated ad-hoc
// DSS queries hit overlapping "hot" regions (recent dates, popular
// dimensions), so a large pool converts most extent reads into memory
// hits, while a squeezed pool degrades every query into physical I/O —
// the mechanism behind the paper's throughput collapse.
package storage

import (
	"fmt"
	"math/rand"

	"compilegate/internal/catalog"
)

// ExtentKey identifies one extent globally: table ID in the high bits,
// extent index within the table in the low bits.
type ExtentKey uint64

// NewExtentKey packs a table ID and extent index.
func NewExtentKey(tableID int, extent int64) ExtentKey {
	return ExtentKey(uint64(tableID)<<40 | uint64(extent))
}

// TableID unpacks the table ID.
func (k ExtentKey) TableID() int { return int(uint64(k) >> 40) }

// Extent unpacks the extent index.
func (k ExtentKey) Extent() int64 { return int64(uint64(k) & (1<<40 - 1)) }

// Layout binds a catalog to the extent address space.
type Layout struct {
	cat     *catalog.Catalog
	extents map[string]int64
}

// NewLayout builds the layout for a catalog.
func NewLayout(cat *catalog.Catalog) *Layout {
	l := &Layout{cat: cat, extents: make(map[string]int64)}
	for _, t := range cat.Tables() {
		l.extents[t.Name] = cat.Extents(t)
	}
	return l
}

// Catalog returns the layout's catalog.
func (l *Layout) Catalog() *catalog.Catalog { return l.cat }

// Extents returns the extent count of a table.
func (l *Layout) Extents(table string) int64 {
	n, ok := l.extents[table]
	if !ok {
		panic("storage: unknown table " + table)
	}
	return n
}

// TotalExtents returns the database's extent count.
func (l *Layout) TotalExtents() int64 {
	var n int64
	for _, v := range l.extents {
		n += v
	}
	return n
}

// Pattern describes how scans pick extents.
type Pattern struct {
	// HotFraction of each table's extents forms the hot region (recent
	// data); HotProbability of accesses land there.
	HotFraction    float64
	HotProbability float64
}

// DefaultPattern matches DESIGN.md's calibration: 10% of each table is
// hot (recent dates, popular dimensions) and draws 85% of the accesses,
// so a healthy buffer pool converts most reads into hits while a squeezed
// one degrades to physical I/O.
func DefaultPattern() Pattern {
	return Pattern{HotFraction: 0.10, HotProbability: 0.85}
}

// ScanExtents returns the extents a scan of the given fraction of the
// table touches, skewed by the pattern. The rng makes different query
// instances touch different (but overlapping, via the hot region) extent
// sets deterministically per seed.
func (l *Layout) ScanExtents(table string, fraction float64, p Pattern, rng *rand.Rand) []ExtentKey {
	return l.ScanExtentsInto(nil, table, fraction, p, rng)
}

// ScanExtentsInto is ScanExtents appending into buf (which should be
// sliced to zero length), letting hot callers reuse one keys buffer
// across scans instead of allocating per query.
func (l *Layout) ScanExtentsInto(buf []ExtentKey, table string, fraction float64, p Pattern, rng *rand.Rand) []ExtentKey {
	t := l.cat.Table(table)
	if t == nil {
		panic("storage: unknown table " + table)
	}
	total := l.extents[table]
	if fraction > 1 {
		fraction = 1
	}
	n := int64(float64(total) * fraction)
	if n < 1 {
		n = 1
	}
	hot := int64(float64(total) * p.HotFraction)
	if hot < 1 {
		hot = 1
	}
	if fraction >= 0.999 {
		// Full scan: every extent once, sequential.
		for i := int64(0); i < total; i++ {
			buf = append(buf, NewExtentKey(t.ID, i))
		}
		return buf
	}
	for i := int64(0); i < n; i++ {
		var ext int64
		if rng.Float64() < p.HotProbability {
			ext = rng.Int63n(hot)
		} else {
			ext = rng.Int63n(total)
		}
		buf = append(buf, NewExtentKey(t.ID, ext))
	}
	return buf
}

// String summarizes the layout.
func (l *Layout) String() string {
	return fmt.Sprintf("layout: %d tables, %d extents", len(l.extents), l.TotalExtents())
}
