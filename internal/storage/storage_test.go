package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"compilegate/internal/catalog"
)

func testLayout() *Layout {
	return NewLayout(catalog.NewSales(catalog.SalesConfig{Scale: 0.01, ExtentBytes: 8 << 20}))
}

func TestExtentKeyRoundTrip(t *testing.T) {
	k := NewExtentKey(13, 987654)
	if k.TableID() != 13 || k.Extent() != 987654 {
		t.Fatalf("round trip: table=%d extent=%d", k.TableID(), k.Extent())
	}
}

func TestLayoutExtents(t *testing.T) {
	l := testLayout()
	cat := l.Catalog()
	fact := cat.Table("sales_fact")
	if l.Extents("sales_fact") != cat.Extents(fact) {
		t.Fatal("layout extent count mismatch")
	}
	if l.TotalExtents() != cat.TotalExtents() {
		t.Fatal("total extents mismatch")
	}
	if l.String() == "" {
		t.Fatal("empty String")
	}
}

func TestUnknownTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown table did not panic")
		}
	}()
	testLayout().Extents("nope")
}

func TestFullScanSequential(t *testing.T) {
	l := testLayout()
	rng := rand.New(rand.NewSource(1))
	keys := l.ScanExtents("dim_product", 1.0, DefaultPattern(), rng)
	if int64(len(keys)) != l.Extents("dim_product") {
		t.Fatalf("full scan keys = %d, want %d", len(keys), l.Extents("dim_product"))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i].Extent() != keys[i-1].Extent()+1 {
			t.Fatal("full scan not sequential")
		}
	}
}

func TestFractionalScanSize(t *testing.T) {
	l := testLayout()
	rng := rand.New(rand.NewSource(2))
	total := l.Extents("sales_fact")
	keys := l.ScanExtents("sales_fact", 0.1, DefaultPattern(), rng)
	want := int64(float64(total) * 0.1)
	if int64(len(keys)) != want {
		t.Fatalf("10%% scan = %d extents, want %d", len(keys), want)
	}
	for _, k := range keys {
		if k.Extent() >= total {
			t.Fatal("extent beyond table")
		}
		if k.TableID() != l.Catalog().Table("sales_fact").ID {
			t.Fatal("wrong table id")
		}
	}
}

func TestHotSkew(t *testing.T) {
	l := testLayout()
	p := Pattern{HotFraction: 0.1, HotProbability: 0.8}
	rng := rand.New(rand.NewSource(3))
	total := l.Extents("sales_fact")
	hot := int64(float64(total) * p.HotFraction)
	keys := l.ScanExtents("sales_fact", 0.3, p, rng)
	inHot := 0
	for _, k := range keys {
		if k.Extent() < hot {
			inHot++
		}
	}
	frac := float64(inHot) / float64(len(keys))
	// 80% directed + 10% of the uniform 20% ≈ 82%.
	if frac < 0.70 || frac > 0.95 {
		t.Fatalf("hot fraction = %v, want ~0.82", frac)
	}
}

func TestTinyFractionStillReads(t *testing.T) {
	l := testLayout()
	rng := rand.New(rand.NewSource(4))
	keys := l.ScanExtents("dim_channel", 0.0001, DefaultPattern(), rng)
	if len(keys) != 1 {
		t.Fatalf("tiny scan = %d extents, want 1", len(keys))
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	l := testLayout()
	a := l.ScanExtents("sales_fact", 0.05, DefaultPattern(), rand.New(rand.NewSource(7)))
	b := l.ScanExtents("sales_fact", 0.05, DefaultPattern(), rand.New(rand.NewSource(7)))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different scans")
		}
	}
}

// Property: scans never exceed table bounds and fraction clamps at 1.
func TestQuickScanBounds(t *testing.T) {
	l := testLayout()
	tables := l.Catalog().Tables()
	f := func(fracRaw uint16, tIdx uint8, seed int64) bool {
		tb := tables[int(tIdx)%len(tables)]
		frac := float64(fracRaw) / 10000.0 // up to 6.5
		keys := l.ScanExtents(tb.Name, frac, DefaultPattern(), rand.New(rand.NewSource(seed)))
		total := l.Extents(tb.Name)
		if int64(len(keys)) > total {
			return false
		}
		for _, k := range keys {
			if k.Extent() < 0 || k.Extent() >= total || k.TableID() != tb.ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
