// Package optimizer implements a Cascades-style query optimizer over the
// memo: join-order exploration via commutativity/associativity rules,
// dynamic optimization effort proportional to estimated plan cost, and
// cost-based plan extraction.
//
// The optimizer is deliberately faithful to the properties the paper
// depends on:
//
//   - memory grows with the number of alternatives considered (every memo
//     structure is charged through the Charge hook, which the engine wires
//     to the governor's Compilation.Alloc — where gateway blocking happens);
//   - optimization time is a function of estimated query cost (dynamic
//     optimization), so expensive 15-20-join queries compile for tens of
//     virtual seconds while OLTP queries finish instantly;
//   - a complete plan (the initial left-deep tree) exists almost
//     immediately, so the best-effort path (§4.1) can always return
//     something once the broker predicts exhaustion.
package optimizer

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"compilegate/internal/catalog"
	"compilegate/internal/memo"
	"compilegate/internal/plan"
	"compilegate/internal/stats"
	"compilegate/internal/u64hash"
)

// Hooks connect one optimization run to the engine.
type Hooks struct {
	// Charge charges simulated compilation memory; may block at gateways
	// and may fail (OOM / gateway timeout).
	Charge memo.ChargeFunc
	// Work reports n units of optimizer work so the engine can consume
	// virtual CPU time. May be nil.
	Work func(tasks int)
	// BestEffort, polled periodically, asks whether to stop exploring and
	// return the best complete plan so far. May be nil.
	BestEffort func() bool
}

// Config tunes the optimizer.
type Config struct {
	Memo memo.Config
	Cost plan.CostModel
	// MinTasks/MaxTasks clamp the exploration budget.
	MinTasks, MaxTasks int
	// EffortPerCost converts the initial plan's estimated cost into the
	// task budget: budget = MinTasks + cost*EffortPerCost. This is the
	// "dynamic optimization" knob: more expensive queries get
	// proportionally more optimization (and therefore memory).
	EffortPerCost float64
	// WorkBatch is how many tasks pass between Work/BestEffort callbacks.
	WorkBatch int
}

// DefaultConfig returns the calibrated tuning.
func DefaultConfig() Config {
	return Config{
		Memo:          memo.DefaultConfig(),
		Cost:          plan.DefaultCostModel(),
		MinTasks:      32,
		MaxTasks:      6_000,
		EffortPerCost: 1.5,
		WorkBatch:     64,
	}
}

// Optimizer holds immutable state shared across optimizations. Per-
// optimization state (runs and memos) comes from process-wide pools:
// each in-flight compilation holds its run and memo until it finishes
// or aborts, and recycled instances keep their grown arenas, so a
// sweep's later runs compile without re-paying the first run's
// arena warm-up.
type Optimizer struct {
	est *stats.Estimator
	cat *catalog.Catalog
	cfg Config
}

// runPool and memoPool recycle per-optimization state across every
// optimizer in the process. Optimizers on different sweep shards drain
// and fill them concurrently, so they must be synchronized pools; a
// pooled instance carries only capacity (arena chunks, map buckets) —
// getRun and memo.Reset restore observable state bit-identically, so
// reuse never affects results.
var (
	runPool  = sync.Pool{New: func() any { return &run{tableOf: make(map[string]*catalog.Table)} }}
	memoPool = sync.Pool{New: func() any { return memo.New(memo.Config{}, nil) }}
)

// New creates an optimizer over the estimator's catalog.
func New(est *stats.Estimator, cfg Config) *Optimizer {
	if cfg.WorkBatch <= 0 {
		cfg.WorkBatch = 64
	}
	return &Optimizer{est: est, cat: est.Catalog(), cfg: cfg}
}

// run is the per-optimization state. It is pooled: every field is either
// reset by getRun or overwritten by resolve. Leaf cardinalities,
// selectivities, and adjacency are dense arrays indexed by table ID (the
// bit position in the join bitsets) instead of maps — the hot lookups in
// cardOfSet and connected cost an array index.
type run struct {
	o     *Optimizer
	q     *plan.Query
	hooks Hooks
	m     *memo.Memo

	terms    []*plan.TableTerm         // query terms by table ID position
	tabs     []*catalog.Table          // resolved tables, parallel to terms
	tableOf  map[string]*catalog.Table // name -> table, for join validation
	leafCard [64]float64               // filtered cardinality by table ID
	leafSel  [64]float64               // combined filter selectivity by table ID
	adjacent [64]uint64                // neighbor bitset by table ID
	edges    []joinEdge                // join edges in insertion order (deterministic)
	edgeSeen u64hash.Set
	cardMemo u64hash.MapF64
	// nbr caches each group's neighborhood — the union of adjacent[] over
	// its tables — indexed by group ID, so the connectivity test in the
	// associate rule is one AND instead of a bit loop. 0 means "not yet
	// computed" (a true-zero neighborhood only occurs for single-table
	// queries, which never test connectivity).
	nbr []uint64

	// Extraction DP and buildInitial scratch, reused across phases.
	dp        []costed
	leaves    []*memo.Group // leaf group per term
	remaining []bool        // buildInitial: term not yet joined
	aggCols   []struct{ Table, Column string }
	// Plan-node arena for the current extraction; ownership transfers to
	// the plan, so it is not pooled.
	arena     []plan.Node
	arenaNext int

	tasks        int
	budget       int
	sinceWork    int
	cutBestFirst bool // best-effort fired
}

// getRun returns a pooled, reset run with a pooled memo attached.
func (o *Optimizer) getRun(q *plan.Query, hooks Hooks) *run {
	r := runPool.Get().(*run)
	m := memoPool.Get().(*memo.Memo)
	m.Reset(o.cfg.Memo, hooks.Charge)
	r.o = o
	r.q, r.hooks, r.m = q, hooks, m
	r.terms = r.terms[:0]
	r.tabs = r.tabs[:0]
	clear(r.tableOf)
	r.leafCard = [64]float64{}
	r.leafSel = [64]float64{}
	r.adjacent = [64]uint64{}
	r.edges = r.edges[:0]
	r.edgeSeen.Reset()
	r.cardMemo.Reset()
	r.nbr = r.nbr[:0]
	r.tasks, r.budget, r.sinceWork = 0, 0, 0
	r.cutBestFirst = false
	return r
}

// putRun recycles a finished run and its memo. The returned plan holds
// no references into either.
func (o *Optimizer) putRun(r *run) {
	memoPool.Put(r.m)
	r.o, r.q, r.m = nil, nil, nil
	r.hooks = Hooks{}
	runPool.Put(r)
}

// Optimize compiles q to a physical plan. Errors are either query errors
// (validation), mem.ErrOutOfMemory, or *gateway.ErrTimeout propagated from
// the Charge hook.
func (o *Optimizer) Optimize(q *plan.Query, hooks Hooks) (*plan.Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	r := o.getRun(q, hooks)
	defer o.putRun(r)
	if err := r.resolve(); err != nil {
		return nil, err
	}
	root, err := r.buildInitial()
	if err != nil {
		return nil, err
	}
	// Dynamic optimization: size the exploration budget from the initial
	// plan's estimated cost. The cost is computed without materializing
	// the throwaway initial plan's nodes (same arithmetic, no allocation).
	r.budget = r.effortBudget(r.initialCost(root))

	if err := r.explore(root); err != nil {
		return nil, err
	}
	p := r.extract(root)
	p.BestEffort = r.cutBestFirst
	p.ExprsExplored = r.m.Exprs()
	p.CompileBytes = r.m.Bytes()
	return p, nil
}

// EstimateInitialCost returns the cost of the unexplored left-deep plan
// for q — what dynamic optimization keys its effort from. Used by tests
// and diagnostics; it charges no memory.
func (o *Optimizer) EstimateInitialCost(q *plan.Query) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	r := o.getRun(q, Hooks{})
	defer o.putRun(r)
	if err := r.resolve(); err != nil {
		return 0, err
	}
	root, err := r.buildInitial()
	if err != nil {
		return 0, err
	}
	return r.initialCost(root), nil
}

func (r *run) effortBudget(cost float64) int {
	b := r.o.cfg.MinTasks + int(cost*r.o.cfg.EffortPerCost)
	if b > r.o.cfg.MaxTasks {
		b = r.o.cfg.MaxTasks
	}
	return b
}

// resolve binds query tables against the catalog and precomputes the join
// graph structures.
func (r *run) resolve() error {
	for i := range r.q.Tables {
		term := &r.q.Tables[i]
		t := r.o.cat.Table(term.Name)
		if t == nil {
			return fmt.Errorf("optimizer: unknown table %s", term.Name)
		}
		r.tableOf[term.Name] = t
		sel := r.o.est.CombinedSelectivity(term.Preds)
		card := float64(t.Rows) * sel
		if card < 1 {
			card = 1
		}
		r.leafCard[t.ID] = card
		r.leafSel[t.ID] = sel
		r.terms = append(r.terms, term)
		r.tabs = append(r.tabs, t)
	}
	for _, j := range r.q.Joins {
		a, b := r.tableOf[j.A], r.tableOf[j.B]
		if a == nil || b == nil {
			return fmt.Errorf("optimizer: join references unknown table %s-%s", j.A, j.B)
		}
		r.adjacent[a.ID] |= 1 << uint(b.ID)
		r.adjacent[b.ID] |= 1 << uint(a.ID)
		if !r.edgeSeen.Add(edgeKey(a.ID, b.ID)) {
			continue
		}
		r.edges = append(r.edges, joinEdge{
			mask: 1<<uint(a.ID) | 1<<uint(b.ID),
			sel:  r.o.est.JoinSelectivity(j.A, j.B),
		})
	}
	return nil
}

type joinEdge struct {
	mask uint64 // both endpoint bits
	sel  float64
}

// edgeKey packs an unordered table-ID pair into one nonzero word for
// the dedup set (IDs are offset by one because u64hash reserves key 0).
func edgeKey(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a+1)<<32 | uint64(b+1)
}

// cardOfSet estimates the cardinality of joining exactly the tables in
// set: the product of filtered leaf cardinalities (ascending table ID,
// so the float rounding matches run to run) and the selectivities of all
// join edges internal to the set.
func (r *run) cardOfSet(set uint64) float64 {
	if c, ok := r.cardMemo.Get(set); ok {
		return c
	}
	card := 1.0
	for s := set; s != 0; s &= s - 1 {
		card *= r.leafCard[bits.TrailingZeros64(s)]
	}
	for _, e := range r.edges {
		if set&e.mask == e.mask {
			card *= e.sel
		}
	}
	if card < 1 {
		card = 1
	}
	r.cardMemo.Put(set, card)
	return card
}

// neighborhood returns the union of adjacent[] over g's tables, cached
// by group ID. groupsConnected(a, b) therefore tests exactly "does any
// join edge link a and b" — the same predicate as looping a's bits and
// ANDing adjacent[] against b.Set — but costs one AND on the hot
// associate path.
func (r *run) neighborhood(g *memo.Group) uint64 {
	id := int(g.ID)
	for id >= len(r.nbr) {
		r.nbr = append(r.nbr, 0)
	}
	n := r.nbr[id]
	if n == 0 {
		for s := g.Set; s != 0; s &= s - 1 {
			n |= r.adjacent[bits.TrailingZeros64(s)]
		}
		r.nbr[id] = n
	}
	return n
}

// groupsConnected reports whether any join edge links the two groups.
func (r *run) groupsConnected(a, b *memo.Group) bool {
	return r.neighborhood(a)&b.Set != 0
}

// buildInitial creates leaf groups and a connectivity-respecting left-deep
// join tree in greedy smallest-cardinality-first order, returning the root
// group. This is the "first complete plan" dynamic optimization starts
// from.
func (r *run) buildInitial() (*memo.Group, error) {
	r.leaves = r.leaves[:0]
	for i := range r.terms {
		t := r.tabs[i]
		g, err := r.m.AddLeaf(t, r.leafCard[t.ID])
		if err != nil {
			return nil, err
		}
		r.leaves = append(r.leaves, g)
	}
	if len(r.terms) == 1 {
		return r.leaves[0], nil
	}

	// Pick the smallest filtered leaf as the seed, then greedily join the
	// connected table that minimizes intermediate cardinality.
	r.remaining = r.remaining[:0]
	for range r.terms {
		r.remaining = append(r.remaining, true)
	}
	var cur *memo.Group
	curIdx := -1
	for i := range r.terms {
		g := r.leaves[i]
		if cur == nil || g.Card < cur.Card {
			cur = g
			curIdx = i
		}
	}
	r.remaining[curIdx] = false
	left := len(r.terms) - 1
	for left > 0 {
		var best *memo.Group
		bestIdx := -1
		bestCard := math.Inf(1)
		for i := range r.terms {
			if !r.remaining[i] {
				continue
			}
			g := r.leaves[i]
			if !r.groupsConnected(cur, g) {
				continue
			}
			c := r.cardOfSet(cur.Set | g.Set)
			if c < bestCard {
				best, bestIdx, bestCard = g, i, c
			}
		}
		if best == nil {
			// Validate() guarantees connectivity, so this is unreachable
			// unless the query lied; fail loudly.
			return nil, fmt.Errorf("optimizer: disconnected join graph at %s", r.terms[curIdx].Name)
		}
		joined, _, err := r.m.AddJoin(cur, best, bestCard)
		if err != nil {
			return nil, err
		}
		cur = joined
		r.remaining[bestIdx] = false
		left--
	}
	return cur, nil
}

// step accounts one unit of optimizer work, firing the Work/BestEffort
// callbacks on batch boundaries. It returns false when exploration must
// stop (budget exhausted or best-effort requested).
func (r *run) step() bool {
	r.tasks++
	r.sinceWork++
	if r.sinceWork >= r.o.cfg.WorkBatch {
		if r.hooks.Work != nil {
			r.hooks.Work(r.sinceWork)
		}
		r.sinceWork = 0
		if r.hooks.BestEffort != nil && r.hooks.BestEffort() {
			r.cutBestFirst = true
			return false
		}
	}
	return r.tasks < r.budget
}

// explore runs rule application round-robin across groups until the
// budget is exhausted, best-effort fires, or the space is fully explored.
func (r *run) explore(root *memo.Group) error {
	flushWork := func() {
		if r.hooks.Work != nil && r.sinceWork > 0 {
			r.hooks.Work(r.sinceWork)
			r.sinceWork = 0
		}
	}
	for {
		progressed := false
		// Iterate by index: AllGroups grows while we iterate.
		for gi := 0; gi < len(r.m.AllGroups()); gi++ {
			g := r.m.Group(memo.GroupID(gi))
			for e := g.PopUnexplored(); e != nil; e = g.PopUnexplored() {
				progressed = true
				if err := r.applyRules(g, e); err != nil {
					flushWork()
					return err
				}
				if !r.step() {
					flushWork()
					return nil
				}
			}
		}
		if !progressed {
			flushWork()
			return nil
		}
	}
}

// applyRules derives new alternatives from one expression: join
// commutativity and left-associativity (with commutativity these generate
// the connected bushy space).
func (r *run) applyRules(g *memo.Group, e *memo.Expr) error {
	if e.Kind != memo.KindJoin {
		return nil
	}
	l, rt := r.m.Group(e.L), r.m.Group(e.R)

	// Commute: L ⋈ R  =>  R ⋈ L. The alternative lands in g itself, so
	// no set lookup is needed.
	if !e.CommuteApplied {
		e.CommuteApplied = true
		if _, err := r.m.AddJoinInto(g, rt, l); err != nil {
			return err
		}
	}

	// Associate: (A ⋈ B) ⋈ R  =>  A ⋈ (B ⋈ R), for every join shape of L.
	if !e.AssocApplied {
		e.AssocApplied = true
		for le := l.FirstExpr(); le != nil; le = le.Next() {
			if le.Kind != memo.KindJoin {
				continue
			}
			a, b := r.m.Group(le.L), r.m.Group(le.R)
			if !r.groupsConnected(b, rt) {
				continue // would introduce a cross product
			}
			// Look the inner group up before estimating its cardinality:
			// once exploration converges the group almost always exists,
			// and AddJoin would discard the estimate — cardOfSet is the
			// collapse regime's hottest function, so only pay it when the
			// group is genuinely new.
			var inner *memo.Group
			var added bool
			var err error
			if g2, ok := r.m.GroupBySet(b.Set | rt.Set); ok {
				inner = g2
				added, err = r.m.AddJoinInto(g2, b, rt)
			} else {
				inner, added, err = r.m.AddJoin(b, rt, r.cardOfSet(b.Set|rt.Set))
			}
			if err != nil {
				return err
			}
			if added && !r.step() {
				return nil
			}
			if _, err := r.m.AddJoinInto(g, a, inner); err != nil {
				return err
			}
		}
	}
	return nil
}

// costed is the DP table entry for plan extraction.
type costed struct {
	cost float64
	expr *memo.Expr
	// Leaf access path choice:
	op   plan.Op
	frac float64 // fraction of extents read
	ok   bool    // entry computed
}

// extract computes the cheapest implementation of every group reachable
// from root and materializes the physical plan (with the query's aggregate
// on top when present). The DP table is a pooled slice indexed by group
// ID rather than a map, and the plan's nodes come from a single
// exactly-sized arena owned by the plan — one allocation per extraction
// instead of one per node.
func (r *run) extract(root *memo.Group) *plan.Plan {
	n := len(r.m.AllGroups())
	if cap(r.dp) < n {
		r.dp = make([]costed, n)
	} else {
		r.dp = r.dp[:n]
		clear(r.dp)
	}
	count := r.countNodes(root, r.dp)
	if len(r.q.GroupBy) > 0 {
		count++
	}
	arena := make([]plan.Node, count)
	r.arena, r.arenaNext = arena, 0
	node := r.buildNode(root, r.dp)
	// Aggregation on top.
	if len(r.q.GroupBy) > 0 {
		groups := r.groupByDistinct(node.OutCard)
		aggs := r.q.Aggregates
		if aggs < 1 {
			aggs = 1
		}
		cm := r.o.cfg.Cost
		aggCost := node.OutCard*cm.AggRow*float64(aggs) + groups*cm.BuildRow
		agg := r.newNode()
		*agg = plan.Node{
			Op:          plan.OpHashAgg,
			Left:        node,
			OutCard:     groups,
			NodeCost:    aggCost,
			SubtreeCost: node.SubtreeCost + aggCost,
			BuildBytes:  int64(groups) * cm.HashRowBytes * 2,
		}
		node = agg
	}
	r.arena = nil // the plan owns the arena now
	return &plan.Plan{Root: node}
}

// countNodes sizes the plan-node arena: the number of nodes buildNode
// will materialize for the chosen expression tree. It runs the same
// memoized DP, so the subsequent build finds every entry computed.
func (r *run) countNodes(g *memo.Group, memoized []costed) int {
	c := r.bestOf(g, memoized)
	if c.expr.Kind == memo.KindLeaf {
		return 1
	}
	return 1 + r.countNodes(r.m.Group(c.expr.L), memoized) + r.countNodes(r.m.Group(c.expr.R), memoized)
}

// newNode hands out the next arena slot.
func (r *run) newNode() *plan.Node {
	n := &r.arena[r.arenaNext]
	r.arenaNext++
	return n
}

// groupByDistinct estimates the aggregate's output groups, reusing the
// run's column scratch.
func (r *run) groupByDistinct(card float64) float64 {
	r.aggCols = r.aggCols[:0]
	for _, c := range r.q.GroupBy {
		r.aggCols = append(r.aggCols, struct{ Table, Column string }{c.Table, c.Column})
	}
	return r.o.est.DistinctAfterGroupBy(card, r.aggCols)
}

// initialCost is extract().Cost() without materializing plan nodes: the
// same DP over the same groups with the same operand order, so the
// effort budget it feeds is bit-identical to the materializing version.
func (r *run) initialCost(root *memo.Group) float64 {
	n := len(r.m.AllGroups())
	if cap(r.dp) < n {
		r.dp = make([]costed, n)
	} else {
		r.dp = r.dp[:n]
		clear(r.dp)
	}
	cost := r.subtreeCost(root, r.dp)
	if len(r.q.GroupBy) > 0 {
		groups := r.groupByDistinct(root.Card)
		aggs := r.q.Aggregates
		if aggs < 1 {
			aggs = 1
		}
		cm := r.o.cfg.Cost
		aggCost := root.Card*cm.AggRow*float64(aggs) + groups*cm.BuildRow
		cost = cost + aggCost
	}
	return cost
}

// subtreeCost mirrors buildNode's SubtreeCost arithmetic (operand order
// included — float addition is not associative) without allocating the
// nodes.
func (r *run) subtreeCost(g *memo.Group, memoized []costed) float64 {
	c := r.bestOf(g, memoized)
	e := c.expr
	if e.Kind == memo.KindLeaf {
		return c.cost
	}
	l, rt := r.m.Group(e.L), r.m.Group(e.R)
	lc := r.subtreeCost(l, memoized)
	rc := r.subtreeCost(rt, memoized)
	cm := r.o.cfg.Cost
	own := rt.Card*cm.BuildRow + l.Card*cm.CPURow + g.Card*cm.CPURow
	return lc + rc + own
}

// bestOf computes the group's cheapest expression, memoized in the DP
// slice; the returned pointer aliases the slice entry (stable for the
// duration of one extraction).
func (r *run) bestOf(g *memo.Group, memoized []costed) *costed {
	if c := &memoized[g.ID]; c.ok {
		return c
	}
	cm := r.o.cfg.Cost
	out := costed{cost: math.Inf(1), ok: true}
	for e := g.FirstExpr(); e != nil; e = e.Next() {
		switch e.Kind {
		case memo.KindLeaf:
			t := e.Table
			extents := float64(r.o.cat.Extents(t))
			sel := r.leafSel[bits.TrailingZeros64(g.Set)]
			// Sequential scan.
			seq := extents*cm.SeqExtent + float64(t.Rows)*cm.CPURow
			if seq < out.cost {
				out = costed{cost: seq, expr: e, op: plan.OpSeqScan, frac: 1}
			}
			// Index scan when a filtered column has a leading index and
			// the filter is selective enough to beat sequential I/O.
			if term := r.q.Table(t.Name); term != nil {
				for _, p := range term.Preds {
					if !t.HasIndexOn(p.Column) {
						continue
					}
					frac := sel
					idx := extents*frac*cm.RandExtent + float64(t.Rows)*sel*cm.CPURow
					if idx < out.cost {
						out = costed{cost: idx, expr: e, op: plan.OpIndexScan, frac: frac}
					}
				}
			}
		case memo.KindJoin:
			l, rt := r.m.Group(e.L), r.m.Group(e.R)
			cl := r.bestOf(l, memoized)
			cr := r.bestOf(rt, memoized)
			// Hash join, right side builds.
			c := cl.cost + cr.cost + rt.Card*cm.BuildRow + l.Card*cm.CPURow + g.Card*cm.CPURow
			if c < out.cost {
				out = costed{cost: c, expr: e}
			}
		}
	}
	out.ok = true
	memoized[g.ID] = out
	return &memoized[g.ID]
}

// buildNode materializes the chosen expression tree for g out of the
// extraction arena.
func (r *run) buildNode(g *memo.Group, memoized []costed) *plan.Node {
	c := r.bestOf(g, memoized)
	cm := r.o.cfg.Cost
	e := c.expr
	if e.Kind == memo.KindLeaf {
		t := e.Table
		n := r.newNode()
		*n = plan.Node{
			Op:           c.op,
			Table:        t.Name,
			ScanFraction: c.frac,
			OutCard:      g.Card,
			NodeCost:     c.cost,
			SubtreeCost:  c.cost,
		}
		return n
	}
	l, rt := r.m.Group(e.L), r.m.Group(e.R)
	ln := r.buildNode(l, memoized)
	rn := r.buildNode(rt, memoized)
	own := rt.Card*cm.BuildRow + l.Card*cm.CPURow + g.Card*cm.CPURow
	n := r.newNode()
	*n = plan.Node{
		Op:          plan.OpHashJoin,
		Left:        ln,
		Right:       rn,
		OutCard:     g.Card,
		NodeCost:    own,
		SubtreeCost: ln.SubtreeCost + rn.SubtreeCost + own,
		BuildBytes:  int64(rt.Card) * cm.HashRowBytes,
	}
	return n
}
