package optimizer

import (
	"errors"
	"testing"
	"time"

	"compilegate/internal/catalog"
	"compilegate/internal/plan"
	"compilegate/internal/stats"
)

func salesEnv() (*catalog.Catalog, *Optimizer) {
	cat := catalog.NewSales(catalog.SalesConfig{Scale: 0.01, ExtentBytes: 8 << 20})
	est := stats.NewEstimator(cat)
	return cat, New(est, DefaultConfig())
}

// starQuery builds a fact ⋈ n-dimension star query.
func starQuery(n int) *plan.Query {
	dims := []string{"dim_product", "dim_store", "dim_customer", "dim_date",
		"dim_promotion", "dim_employee", "dim_channel"}
	q := &plan.Query{Tables: []plan.TableTerm{{Name: "sales_fact"}}}
	for i := 0; i < n && i < len(dims); i++ {
		q.Tables = append(q.Tables, plan.TableTerm{Name: dims[i]})
		q.Joins = append(q.Joins, plan.JoinEdge{A: "sales_fact", B: dims[i]})
	}
	return q
}

// snowQuery extends the star with snowflake chains for deep join counts.
func snowQuery() *plan.Query {
	q := starQuery(7)
	chains := [][2]string{
		{"dim_product", "dim_subcategory"},
		{"dim_subcategory", "dim_category"},
		{"dim_category", "dim_department"},
		{"dim_product", "dim_brand"},
		{"dim_brand", "dim_manufacturer"},
		{"dim_store", "dim_city"},
		{"dim_city", "dim_region"},
		{"dim_region", "dim_country"},
		{"dim_date", "dim_month"},
		{"dim_month", "dim_quarter"},
		{"dim_customer", "dim_segment"},
	}
	for _, ch := range chains {
		q.Tables = append(q.Tables, plan.TableTerm{Name: ch[1]})
		q.Joins = append(q.Joins, plan.JoinEdge{A: ch[0], B: ch[1]})
	}
	return q
}

func TestSingleTablePlan(t *testing.T) {
	_, o := salesEnv()
	q := &plan.Query{Tables: []plan.TableTerm{{Name: "dim_product"}}}
	p, err := o.Optimize(q, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Op != plan.OpSeqScan || p.Root.Table != "dim_product" {
		t.Fatalf("plan = %s", p)
	}
	if p.Cost() <= 0 {
		t.Fatal("zero cost")
	}
}

func TestIndexScanChosenForSelectiveFilter(t *testing.T) {
	_, o := salesEnv()
	q := &plan.Query{Tables: []plan.TableTerm{{
		Name:  "sales_fact",
		Preds: []stats.Pred{{Table: "sales_fact", Column: "date_id", Op: "=", Lo: 100}},
	}}}
	p, err := o.Optimize(q, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Op != plan.OpIndexScan {
		t.Fatalf("op = %v, want IndexScan for 1/3653 filter on indexed column", p.Root.Op)
	}
	if p.Root.ScanFraction >= 1 {
		t.Fatalf("index scan fraction = %v", p.Root.ScanFraction)
	}
}

func TestSeqScanForUnindexedFilter(t *testing.T) {
	_, o := salesEnv()
	q := &plan.Query{Tables: []plan.TableTerm{{
		Name:  "sales_fact",
		Preds: []stats.Pred{{Table: "sales_fact", Column: "quantity", Op: "=", Lo: 5}},
	}}}
	p, err := o.Optimize(q, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Op != plan.OpSeqScan {
		t.Fatalf("op = %v, want SeqScan (no index on quantity)", p.Root.Op)
	}
}

func TestJoinPlanShape(t *testing.T) {
	_, o := salesEnv()
	p, err := o.Optimize(starQuery(3), Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 tables => 3 hash joins + 4 scans = 7 nodes.
	if p.Nodes() != 7 {
		t.Fatalf("nodes = %d, want 7\n%s", p.Nodes(), p)
	}
	var joins int
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		if n == nil {
			return
		}
		if n.Op == plan.OpHashJoin {
			joins++
			if n.BuildBytes <= 0 {
				t.Error("hash join without build memory")
			}
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(p.Root)
	if joins != 3 {
		t.Fatalf("joins = %d, want 3", joins)
	}
}

func TestAggregationOnTop(t *testing.T) {
	_, o := salesEnv()
	q := starQuery(2)
	q.GroupBy = []plan.ColRef{{Table: "dim_store", Column: "city_id"}}
	q.Aggregates = 2
	p, err := o.Optimize(q, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Op != plan.OpHashAgg {
		t.Fatalf("root = %v, want HashAgg", p.Root.Op)
	}
	if p.Root.OutCard > p.Root.Left.OutCard {
		t.Fatal("aggregation increased cardinality")
	}
	if p.MemoryGrant() <= 0 {
		t.Fatal("no memory grant for agg plan")
	}
}

func TestExplorationImprovesOrBound(t *testing.T) {
	_, o := salesEnv()
	q := snowQuery()
	initial, err := o.EstimateInitialCost(q)
	if err != nil {
		t.Fatal(err)
	}
	p, err := o.Optimize(q, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost() > initial*1.0000001 {
		t.Fatalf("explored cost %v worse than initial %v", p.Cost(), initial)
	}
	if p.ExprsExplored == 0 || p.CompileBytes == 0 {
		t.Fatal("no exploration accounted")
	}
}

func TestCompileMemoryGrowsWithJoins(t *testing.T) {
	_, o := salesEnv()
	small, err := o.Optimize(starQuery(2), Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := o.Optimize(snowQuery(), Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if big.CompileBytes < 4*small.CompileBytes {
		t.Fatalf("18-join compile bytes %d not ≫ 2-join %d", big.CompileBytes, small.CompileBytes)
	}
	t.Logf("2-join: %d bytes (%d exprs); 18-join: %d bytes (%d exprs)",
		small.CompileBytes, small.ExprsExplored, big.CompileBytes, big.ExprsExplored)
}

func TestWorkCallbackDrivenByEffort(t *testing.T) {
	_, o := salesEnv()
	var tasks int
	_, err := o.Optimize(snowQuery(), Hooks{Work: func(n int) { tasks += n }})
	if err != nil {
		t.Fatal(err)
	}
	if tasks == 0 {
		t.Fatal("Work never called")
	}
	// Dynamic optimization: small query gets less work.
	var smallTasks int
	if _, err := o.Optimize(starQuery(1), Hooks{Work: func(n int) { smallTasks += n }}); err != nil {
		t.Fatal(err)
	}
	if smallTasks >= tasks {
		t.Fatalf("small query tasks %d >= large %d", smallTasks, tasks)
	}
}

func TestBestEffortCutsExploration(t *testing.T) {
	_, o := salesEnv()
	calls := 0
	p, err := o.Optimize(snowQuery(), Hooks{
		BestEffort: func() bool { calls++; return calls >= 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.BestEffort {
		t.Fatal("plan not flagged best-effort")
	}
	if p.Root == nil {
		t.Fatal("best-effort plan has no root")
	}
	full, err := o.Optimize(snowQuery(), Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if p.ExprsExplored >= full.ExprsExplored {
		t.Fatalf("best-effort explored %d >= full %d", p.ExprsExplored, full.ExprsExplored)
	}
}

func TestChargeFailurePropagates(t *testing.T) {
	_, o := salesEnv()
	boom := errors.New("oom")
	var charged int64
	_, err := o.Optimize(snowQuery(), Hooks{
		Charge: func(n int64) error {
			charged += n
			if charged > 1<<20 {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestValidationErrors(t *testing.T) {
	_, o := salesEnv()
	bad := []*plan.Query{
		{}, // no tables
		{Tables: []plan.TableTerm{{Name: "nope"}}},
		{Tables: []plan.TableTerm{{Name: "sales_fact"}, {Name: "dim_product"}}}, // disconnected
		{Tables: []plan.TableTerm{{Name: "sales_fact"}, {Name: "sales_fact"}}},  // dup
	}
	for i, q := range bad {
		if _, err := o.Optimize(q, Hooks{}); err == nil {
			t.Errorf("query %d accepted", i)
		}
	}
}

func TestDynamicEffortScalesWithCost(t *testing.T) {
	_, o := salesEnv()
	cheap, err := o.EstimateInitialCost(starQuery(1))
	if err != nil {
		t.Fatal(err)
	}
	costly, err := o.EstimateInitialCost(snowQuery())
	if err != nil {
		t.Fatal(err)
	}
	if costly <= cheap {
		t.Fatalf("snowflake cost %v <= 1-join cost %v", costly, cheap)
	}
}

func TestPlanStringAndGrant(t *testing.T) {
	_, o := salesEnv()
	q := snowQuery()
	q.GroupBy = []plan.ColRef{{Table: "dim_region", Column: "country_id"}}
	q.Aggregates = 3
	p, err := o.Optimize(q, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if s := p.String(); len(s) < 100 {
		t.Fatalf("suspicious plan rendering: %q", s)
	}
	if p.MemoryGrant() <= 0 || p.PlanBytes() <= 0 {
		t.Fatal("grant/plan bytes not positive")
	}
}

func TestOptimizeIsDeterministic(t *testing.T) {
	_, o := salesEnv()
	p1, err := o.Optimize(snowQuery(), Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := o.Optimize(snowQuery(), Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Cost() != p2.Cost() || p1.ExprsExplored != p2.ExprsExplored {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d",
			p1.Cost(), p1.ExprsExplored, p2.Cost(), p2.ExprsExplored)
	}
}

func TestOptimizerSpeed(t *testing.T) {
	// Guard: one 18-join optimization must stay fast enough for the
	// thousands of compilations in a benchmark run.
	_, o := salesEnv()
	start := time.Now()
	if _, err := o.Optimize(snowQuery(), Hooks{}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("one optimization took %v", el)
	}
}
