module compilegate

go 1.24
