// calibrate runs the memory-pressure calibration sweep: a grid of
// pressure-model knob sets crossed with client counts, every cell a
// throttled/baseline pair, all simulations executing concurrently
// through the sweep runner. It scores each knob set against the paper's
// Figures 3-5 throughput separations and reports the best one — the
// knob set scenario.CalibratedKnobs ships (carried by every
// SALES-derived scenario) was selected this way, layered over the
// engine defaults at resolve time (see EXPERIMENTS.md, "Calibration
// methodology").
//
// Usage:
//
//	calibrate [-grid|-search] [-quick] [-workers N] [-seed S] [-seeds N]
//	          [-csv out.csv] [-md out.md]
//	          [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// -quick compresses the measurement window (90 min instead of 3 h) so
// the whole grid finishes in well under a minute; use the full window
// before trusting a new calibration. The profile flags capture the grid
// under pprof (see DESIGN.md, "Profiling a run").
//
// -search replaces the exhaustive grid with successive halving over the
// fidelity score: every knob set gets a cheap first look, the top third
// is promoted onto a widening clients x seeds budget, and the winner is
// picked at the full budget — the grid's best score at a quarter or
// less of its simulation count (the differential test pins both
// properties). -grid forces the exhaustive sweep (the default, and what
// the recorded calibration tables came from). -seeds N replicates every
// cell over seeds {1..N} so the score reflects a population, not one
// draw.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"compilegate"
	"compilegate/internal/profiling"
)

func main() {
	quick := flag.Bool("quick", false, "compressed measurement window")
	grid := flag.Bool("grid", false, "exhaustive grid sweep (the default)")
	search := flag.Bool("search", false, "successive-halving search instead of the exhaustive grid")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = all cores)")
	seed := flag.Int64("seed", 1, "random seed for every run")
	nseeds := flag.Int("seeds", 1, "replication seeds per cell (seeds {1..N})")
	csvPath := flag.String("csv", "", "write the full grid as CSV to this path")
	mdPath := flag.String("md", "", "write per-knob-set markdown tables to this path")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this path on exit")
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	defer stop()

	if *grid && *search {
		fmt.Fprintln(os.Stderr, "calibrate: -grid and -search are mutually exclusive")
		os.Exit(1)
	}
	if *nseeds < 1 {
		fmt.Fprintln(os.Stderr, "calibrate: -seeds must be >= 1")
		os.Exit(1)
	}

	cal := compilegate.DefaultCalibration()
	cal.Workers = *workers
	cal.Seed = *seed
	if *quick {
		cal.Horizon, cal.Warmup = 90*time.Minute, 15*time.Minute
	}
	seeds := compilegate.ReplicationSeeds(*nseeds)

	if *search {
		cells := len(cal.Knobs) * len(cal.Clients) * len(seeds)
		fmt.Printf("searching: %d knob sets x %d client counts x %d seeds (grid would cost %d simulations), window [%v, %v)\n",
			len(cal.Knobs), len(cal.Clients), len(seeds), 2*cells, cal.Warmup, cal.Horizon)

		srep := cal.Search(seeds)
		fmt.Print(srep)
		best := srep.Winner
		fmt.Printf("\nselected: %s (score %.3f, %d of %d grid simulations)\n",
			best.Name, srep.Score, srep.Runs, srep.GridRuns)
		printKnobs(best)
		writeReports(*csvPath, *mdPath, &compilegate.CalibrationReport{
			Points:  srep.Points,
			Targets: compilegate.PaperTargets(),
		})
		return
	}

	cal.Seeds = seeds
	cells := len(cal.Knobs) * len(cal.Clients) * len(seeds)
	fmt.Printf("calibrating: %d knob sets x %d client counts x %d seeds = %d cells (%d simulations), window [%v, %v)\n",
		len(cal.Knobs), len(cal.Clients), len(seeds), cells, 2*cells, cal.Warmup, cal.Horizon)

	rep := cal.Run()

	fmt.Print(rep.Markdown())
	fmt.Println("ranking (best first):")
	for i, name := range rep.Ranking() {
		fmt.Printf("  %d. %-12s score %.3f\n", i+1, name, rep.Score(name))
	}
	best, score := rep.Best()
	fmt.Printf("\nselected: %s (score %.3f)\n", best.Name, score)
	printKnobs(best)
	writeReports(*csvPath, *mdPath, rep)
}

// printKnobs renders the selected knob set's operating point.
func printKnobs(best compilegate.PressureKnobs) {
	fmt.Printf("  cache-reserve=%.2f slope=%.1f wait=%v grant-frac=%.2f\n",
		best.CacheReserveFrac, best.SlowdownSlope, best.CompileTaskWait, best.ExecGrantLimitFrac)
	fmt.Printf("  memo-scale=%.2f stages=%.1f/%.1f vas=%dMiB exhaustion=%.2f\n",
		best.MemoBytesScale, best.StageCostingScale, best.StageCodegenScale,
		best.VASBytes>>20, best.BrokerExhaustionFrac)
}

// writeReports writes the evaluated cells as CSV and/or markdown.
func writeReports(csvPath, mdPath string, rep *compilegate.CalibrationReport) {
	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(rep.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", csvPath)
	}
	if mdPath != "" {
		if err := os.WriteFile(mdPath, []byte(rep.Markdown()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", mdPath)
	}
}
