// calibrate runs the memory-pressure calibration sweep: a grid of
// pressure-model knob sets crossed with client counts, every cell a
// throttled/baseline pair, all simulations executing concurrently
// through the sweep runner. It scores each knob set against the paper's
// Figures 3-5 throughput separations and reports the best one — the
// knob set scenario.CalibratedKnobs ships (carried by every
// SALES-derived scenario) was selected this way, layered over the
// engine defaults at resolve time (see EXPERIMENTS.md, "Calibration
// methodology").
//
// Usage:
//
//	calibrate [-quick] [-workers N] [-seed S] [-csv out.csv] [-md out.md]
//	          [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// -quick compresses the measurement window (90 min instead of 3 h) so
// the whole grid finishes in well under a minute; use the full window
// before trusting a new calibration. The profile flags capture the grid
// under pprof (see DESIGN.md, "Profiling a run").
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"compilegate"
	"compilegate/internal/profiling"
)

func main() {
	quick := flag.Bool("quick", false, "compressed measurement window")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = all cores)")
	seed := flag.Int64("seed", 1, "random seed for every run")
	csvPath := flag.String("csv", "", "write the full grid as CSV to this path")
	mdPath := flag.String("md", "", "write per-knob-set markdown tables to this path")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this path on exit")
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	defer stop()

	cal := compilegate.DefaultCalibration()
	cal.Workers = *workers
	cal.Seed = *seed
	if *quick {
		cal.Horizon, cal.Warmup = 90*time.Minute, 15*time.Minute
	}

	cells := len(cal.Knobs) * len(cal.Clients)
	fmt.Printf("calibrating: %d knob sets x %d client counts = %d cells (%d simulations), window [%v, %v)\n",
		len(cal.Knobs), len(cal.Clients), cells, 2*cells, cal.Warmup, cal.Horizon)

	rep := cal.Run()

	fmt.Print(rep.Markdown())
	fmt.Println("ranking (best first):")
	for i, name := range rep.Ranking() {
		fmt.Printf("  %d. %-12s score %.3f\n", i+1, name, rep.Score(name))
	}
	best, score := rep.Best()
	fmt.Printf("\nselected: %s (score %.3f)\n", best.Name, score)
	fmt.Printf("  cache-reserve=%.2f slope=%.1f wait=%v grant-frac=%.2f\n",
		best.CacheReserveFrac, best.SlowdownSlope, best.CompileTaskWait, best.ExecGrantLimitFrac)
	fmt.Printf("  memo-scale=%.2f stages=%.1f/%.1f vas=%dMiB exhaustion=%.2f\n",
		best.MemoBytesScale, best.StageCostingScale, best.StageCodegenScale,
		best.VASBytes>>20, best.BrokerExhaustionFrac)

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(rep.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csvPath)
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(rep.Markdown()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *mdPath)
	}
}
