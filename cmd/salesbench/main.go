// salesbench runs the SALES benchmark (§5) at a chosen client count and
// prints the throughput series, error taxonomy, and engine report.
//
// Usage:
//
//	salesbench [-clients 30] [-throttle=true] [-horizon 8h] [-warmup 3h]
//	           [-scale 0.04] [-seed 1] [-workload sales]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"compilegate"
)

func main() {
	clients := flag.Int("clients", 30, "concurrent database users")
	throttle := flag.Bool("throttle", true, "enable compilation throttling")
	horizon := flag.Duration("horizon", 8*time.Hour, "virtual run length")
	warmup := flag.Duration("warmup", 3*time.Hour, "excluded warm-up prefix")
	scale := flag.Float64("scale", 0.04, "catalog scale factor")
	seed := flag.Int64("seed", 1, "random seed")
	wl := flag.String("workload", "sales", "workload: sales | tpch | oltp | mix")
	flag.Parse()

	o := compilegate.DefaultBenchmarkOptions(*clients)
	o.Throttled = *throttle
	o.Horizon = *horizon
	o.Warmup = *warmup
	o.Scale = *scale
	o.Seed = *seed
	o.Workload = *wl

	res, err := compilegate.RunBenchmark(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "salesbench:", err)
		os.Exit(1)
	}

	fmt.Printf("workload=%s clients=%d throttle=%v window=[%v,%v)\n",
		*wl, *clients, *throttle, o.Warmup, o.Horizon)
	fmt.Println("completions per slice:")
	for _, p := range res.Series {
		fmt.Printf("  t=%6.0fs  %d\n", p.T.Seconds(), p.V)
	}
	fmt.Printf("total completed: %d  (%.1f/hour)\n", res.Completed, res.Throughput())
	fmt.Printf("errors: %v (in-window %d)\n", res.ErrorsByKind, res.Errors)
	fmt.Printf("compile memory: mean %d MiB, max %d MiB; pool hit-rate %.1f%%\n",
		res.CompileMemMean/compilegate.MiB, res.CompileMemMax/compilegate.MiB,
		res.BufferPoolHitRate*100)
	fmt.Printf("gateway timeouts: %d; best-effort plans: %d\n",
		res.GatewayTimeouts, res.BestEffortPlans)
	fmt.Println()
	fmt.Print(res.Report)
}
