// salesbench runs one registered benchmark scenario (§5) and prints the
// throughput series, error taxonomy, and engine report. Flags given
// explicitly override the scenario's declared configuration.
//
// Usage:
//
//	salesbench [-scenario figure3] [-clients 30] [-throttle=true]
//	           [-horizon 8h] [-warmup 3h] [-scale 0.04] [-seed 1]
//	           [-workload sales]
//	salesbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"compilegate"
)

func main() {
	scen := flag.String("scenario", "figure3", "registered scenario to run")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	clients := flag.Int("clients", 30, "concurrent database users")
	throttle := flag.Bool("throttle", true, "enable compilation throttling")
	horizon := flag.Duration("horizon", 8*time.Hour, "virtual run length")
	warmup := flag.Duration("warmup", 3*time.Hour, "excluded warm-up prefix")
	scale := flag.Float64("scale", 0.04, "catalog scale factor")
	seed := flag.Int64("seed", 1, "random seed")
	wl := flag.String("workload", "sales", "workload: sales | tpch | oltp | mix")
	flag.Parse()

	if *list {
		fmt.Print(compilegate.ListScenarios())
		return
	}

	s, ok := compilegate.ScenarioByName(*scen)
	if !ok {
		fmt.Fprintf(os.Stderr, "salesbench: unknown scenario %q; -list shows the registry\n", *scen)
		os.Exit(2)
	}
	// Only flags the user actually set override the scenario.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "clients":
			s.Clients = *clients
		case "throttle":
			s.Throttled = *throttle
		case "horizon":
			s.Horizon = *horizon
		case "warmup":
			s.Warmup = *warmup
		case "scale":
			s.Scale = *scale
		case "seed":
			s.Seed = *seed
		case "workload":
			sp, err := compilegate.ParseWorkload(*wl)
			if err != nil {
				fmt.Fprintln(os.Stderr, "salesbench:", err)
				os.Exit(2)
			}
			s.Workload = sp
		}
	})

	res, err := compilegate.RunScenario(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "salesbench:", err)
		os.Exit(1)
	}

	fmt.Printf("scenario=%s workload=%s clients=%d throttle=%v window=[%v,%v)\n",
		s.Name, s.Workload, s.Clients, s.Throttled, s.Warmup, s.Horizon)
	fmt.Println("completions per slice:")
	for _, p := range res.Series {
		fmt.Printf("  t=%6.0fs  %d\n", p.T.Seconds(), p.V)
	}
	fmt.Printf("total completed: %d  (%.1f/hour)\n", res.Completed, res.Throughput())
	fmt.Printf("errors: %v (in-window %d)\n", res.ErrorsByKind, res.Errors)
	fmt.Printf("compile memory: mean %d MiB, max %d MiB; pool hit-rate %.1f%%\n",
		res.CompileMemMean/compilegate.MiB, res.CompileMemMax/compilegate.MiB,
		res.BufferPoolHitRate*100)
	fmt.Printf("gateway timeouts: %d; best-effort plans: %d\n",
		res.GatewayTimeouts, res.BestEffortPlans)
	fmt.Println()
	fmt.Print(res.Report)
}
