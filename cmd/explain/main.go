// explain compiles one SQL query against the SALES catalog and prints the
// chosen physical plan, the compile-memory footprint, and the number of
// alternatives explored.
//
// Usage:
//
//	explain [-scale 0.04] "SELECT ... FROM sales_fact JOIN ..."
//	explain -sample          # explain a generated SALES query
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"compilegate"

	"compilegate/internal/optimizer"
	"compilegate/internal/sqlparser"
	"compilegate/internal/stats"
	"compilegate/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.04, "catalog scale factor")
	sample := flag.Bool("sample", false, "explain a generated SALES query")
	flag.Parse()

	var sql string
	switch {
	case *sample:
		sql = workload.NewSales().Next(rand.New(rand.NewSource(1)))
	case flag.NArg() == 1:
		sql = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: explain [-scale f] <sql> | explain -sample")
		os.Exit(2)
	}

	q, err := sqlparser.Parse(sql)
	if err != nil {
		fmt.Fprintln(os.Stderr, "explain:", err)
		os.Exit(1)
	}
	cat := compilegate.NewSalesCatalog(*scale)
	opt := optimizer.New(stats.NewEstimator(cat), optimizer.DefaultConfig())
	p, err := opt.Optimize(q, optimizer.Hooks{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "explain:", err)
		os.Exit(1)
	}

	fmt.Println("query:", sql)
	fmt.Printf("joins: %d   fingerprint: %s\n\n", q.NumJoins(), sqlparser.Fingerprint(sql))
	fmt.Print(p.String())
	fmt.Printf("\nestimated cost: %.4g\n", p.Cost())
	fmt.Printf("compile memory: %d MiB across %d alternatives\n",
		p.CompileBytes/compilegate.MiB, p.ExprsExplored)
	fmt.Printf("execution grant: %d MiB; cached-plan size: %d KiB\n",
		p.MemoryGrant()/compilegate.MiB, p.PlanBytes()/compilegate.KiB)
}
