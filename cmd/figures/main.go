// figures regenerates every figure dataset from the paper: the monitor
// ladder (Fig. 1), a compilation-throttling trace (Fig. 2), and the
// throttled-vs-baseline throughput series at 30/35/40 clients
// (Figs. 3-5), plus the headline numbers quoted in the text.
//
// Usage:
//
//	figures [-quick] [-figure all|1|2|3|4|5]
//
// -quick shrinks the simulation window so a full regeneration finishes in
// well under a minute of wall-clock time.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"compilegate"

	"compilegate/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "short simulation window")
	fig := flag.String("figure", "all", "which figure to regenerate")
	flag.Parse()

	horizon, warmup := 8*time.Hour, 3*time.Hour
	if *quick {
		horizon, warmup = 2*time.Hour, 30*time.Minute
	}

	switch *fig {
	case "1":
		figure1()
	case "2":
		figure2()
	case "3":
		throughputFigure(3, 30, horizon, warmup)
	case "4":
		throughputFigure(4, 35, horizon, warmup)
	case "5":
		throughputFigure(5, 40, horizon, warmup)
	case "all":
		figure1()
		figure2()
		throughputFigure(3, 30, horizon, warmup)
		throughputFigure(4, 35, horizon, warmup)
		throughputFigure(5, 40, horizon, warmup)
	default:
		fmt.Fprintln(os.Stderr, "figures: unknown -figure", *fig)
		os.Exit(2)
	}
}

// figure1 prints the monitor ladder (thresholds ascending, concurrency
// descending) — the content of the paper's Figure 1.
func figure1() {
	fmt.Println("== Figure 1: memory monitors ==")
	chain, err := compilegate.NewGatewayChain(compilegate.DefaultGatewayConfig(8, 4*compilegate.GiB))
	if err != nil {
		panic(err)
	}
	fmt.Print(chain.String())
	fmt.Println()
}

// figure2 reproduces the throttling example trace: staggered compilations
// whose memory curves flatten while blocked at monitors.
func figure2() {
	fmt.Println("== Figure 2: compilation throttling example ==")
	sched := compilegate.NewScheduler()
	budget := compilegate.NewBudget(1 * compilegate.GiB)
	opts := compilegate.DefaultGovernorOptions(2, budget.Total())
	gov, err := compilegate.NewGovernor(opts, budget.NewTracker("compile"))
	if err != nil {
		panic(err)
	}
	type samp struct {
		t time.Duration
		v [3]int64
	}
	var series []samp
	cur := [3]int64{}
	peaks := []int64{420 * compilegate.MiB, 300 * compilegate.MiB, 280 * compilegate.MiB}
	rates := []time.Duration{time.Second, 2 * time.Second, 2 * time.Second}
	for i := range peaks {
		i := i
		sched.Go(fmt.Sprintf("Q%d", i+1), func(t *compilegate.Task) {
			t.Sleep(time.Duration(i) * 5 * time.Second)
			c := gov.Begin(t, fmt.Sprintf("Q%d", i+1))
			for c.Used() < peaks[i] {
				if err := c.Alloc(10 * compilegate.MiB); err != nil {
					break
				}
				cur[i] = c.Used()
				t.Sleep(rates[i])
			}
			c.Finish()
			cur[i] = 0
		})
	}
	sched.Go("sampler", func(t *compilegate.Task) {
		for t.Now() < 4*time.Minute {
			series = append(series, samp{t.Now(), cur})
			t.Sleep(5 * time.Second)
		}
	})
	if err := sched.Run(); err != nil {
		panic(err)
	}
	fmt.Println("  time      Q1(MiB)  Q2(MiB)  Q3(MiB)")
	for _, s := range series {
		fmt.Printf("  %7v  %7d  %7d  %7d\n", s.t,
			s.v[0]/compilegate.MiB, s.v[1]/compilegate.MiB, s.v[2]/compilegate.MiB)
	}
	fmt.Println()
}

// throughputFigure runs the throttled and baseline configurations at the
// given client count and prints both series (Figures 3, 4, 5).
func throughputFigure(n, clients int, horizon, warmup time.Duration) {
	fmt.Printf("== Figure %d: throughput, %d clients ==\n", n, clients)
	run := func(throttled bool) *compilegate.BenchmarkResult {
		o := compilegate.DefaultBenchmarkOptions(clients)
		o.Horizon, o.Warmup = horizon, warmup
		o.Throttled = throttled
		r, err := compilegate.RunBenchmark(o)
		if err != nil {
			panic(err)
		}
		return r
	}
	th, ba := run(true), run(false)
	fmt.Println("  time      throttled  non-throttled")
	for i := range th.Series {
		b := int64(0)
		if i < len(ba.Series) {
			b = ba.Series[i].V
		}
		fmt.Printf("  %6.0fs  %9d  %13d\n", th.Series[i].T.Seconds(), th.Series[i].V, b)
	}
	ratio, summary := harness.Compare(th, ba)
	fmt.Printf("  ratio: %.2fx — %s\n\n", ratio, summary)
}
