// figures regenerates every figure dataset from the paper: the monitor
// ladder (Fig. 1), a compilation-throttling trace (Fig. 2), and the
// throttled-vs-baseline throughput series at 30/35/40 clients
// (Figs. 3-5), plus the headline numbers quoted in the text.
//
// Experiments resolve from the scenario registry, and every
// throttled/baseline pair runs concurrently through the sweep runner —
// `-figure all` executes all six throughput runs in parallel on real
// cores.
//
// Usage:
//
//	figures [-quick] [-figure all|1|2|3|4|5] [-workers N]
//	figures -list
//	figures -scenario oltp-mix
//	figures -faultplan [-scenario fault-leak]
//
// -quick shrinks the simulation window so a full regeneration finishes in
// well under a minute of wall-clock time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"compilegate"
	"compilegate/internal/profiling"
)

func main() {
	quick := flag.Bool("quick", false, "short simulation window")
	fig := flag.String("figure", "all", "which figure to regenerate")
	scen := flag.String("scenario", "", "run one registered scenario (with its baseline) instead of a figure")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	faultplan := flag.Bool("faultplan", false, "print the injected fault schedule of -scenario (or of every fault scenario) and exit")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = all cores)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this path on exit")
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	defer stop()

	if *list {
		fmt.Print(compilegate.ListScenarios())
		return
	}
	if *faultplan {
		if *scen != "" {
			s, ok := compilegate.ScenarioByName(*scen)
			if !ok {
				fmt.Fprintf(os.Stderr, "figures: unknown scenario %q; -list shows the registry\n", *scen)
				os.Exit(2)
			}
			if s.Fault.Empty() {
				fmt.Fprintf(os.Stderr, "figures: scenario %q injects no faults\n", *scen)
				os.Exit(2)
			}
			fmt.Printf("== %s ==\n%s", s.Name, s.Fault.String())
			return
		}
		for _, s := range compilegate.Scenarios() {
			if !s.Fault.Empty() {
				fmt.Printf("== %s ==\n%s", s.Name, s.Fault.String())
			}
		}
		return
	}
	if *scen != "" {
		s, ok := compilegate.ScenarioByName(*scen)
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown scenario %q; -list shows the registry\n", *scen)
			os.Exit(2)
		}
		fmt.Printf("== Scenario %s: %s ==\n", s.Name, s.Description)
		if !s.Fault.Empty() {
			fmt.Printf("  fault plan:\n%s", indent(s.Fault.String(), "  "))
		}
		renderPair(runPair(shrink(s, *quick), *workers))
		return
	}

	switch *fig {
	case "1":
		figure1()
	case "2":
		figure2()
	case "3", "4", "5":
		n := int((*fig)[0] - '0')
		s := figureScenario(n, *quick)
		fmt.Printf("== Figure %d: throughput, %d clients ==\n", n, s.Clients)
		renderPair(runPair(s, *workers))
	case "all":
		figure1()
		figure2()
		// All three throughput figures — six independent simulations —
		// sweep concurrently.
		var scenarios []compilegate.Scenario
		for n := 3; n <= 5; n++ {
			s := figureScenario(n, *quick)
			scenarios = append(scenarios, s, s.Baseline())
		}
		results := compilegate.RunSweep(scenarios, *workers)
		for i := 0; i < len(results); i += 2 {
			s := results[i].Scenario
			fmt.Printf("== Figure %d: throughput, %d clients ==\n", 3+i/2, s.Clients)
			renderPair([2]compilegate.SweepResult{results[i], results[i+1]})
		}
	default:
		fmt.Fprintln(os.Stderr, "figures: unknown -figure", *fig)
		os.Exit(2)
	}
}

// figureScenario resolves one throughput figure from the registry.
func figureScenario(n int, quick bool) compilegate.Scenario {
	name := fmt.Sprintf("figure%d", n)
	s, ok := compilegate.ScenarioByName(name)
	if !ok {
		panic("figures: " + name + " not registered")
	}
	return shrink(s, quick)
}

func shrink(s compilegate.Scenario, quick bool) compilegate.Scenario {
	if quick && s.Horizon > 2*time.Hour {
		return s.WithWindow(2*time.Hour, 30*time.Minute)
	}
	return s
}

// runPair executes a scenario and its unthrottled baseline concurrently.
func runPair(s compilegate.Scenario, workers int) [2]compilegate.SweepResult {
	res := compilegate.RunSweep([]compilegate.Scenario{s, s.Baseline()}, workers)
	return [2]compilegate.SweepResult{res[0], res[1]}
}

// renderPair prints the throttled and baseline series side by side.
func renderPair(pair [2]compilegate.SweepResult) {
	for _, sr := range pair {
		if sr.Err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", sr.Scenario.Name, sr.Err)
			os.Exit(1)
		}
	}
	th, ba := pair[0].Result, pair[1].Result
	fmt.Println("  time      throttled  non-throttled")
	for i := range th.Series {
		b := int64(0)
		if i < len(ba.Series) {
			b = ba.Series[i].V
		}
		fmt.Printf("  %6.0fs  %9d  %13d\n", th.Series[i].T.Seconds(), th.Series[i].V, b)
	}
	ratio, summary := compilegate.CompareRuns(th, ba)
	fmt.Printf("  ratio: %.2fx — %s\n\n", ratio, summary)
	renderNodes(th)
}

// renderNodes prints the per-node breakdown of a cluster run (no output
// for single-server results): the routing distribution, the router's
// health actions (rerouted / failover / all-excluded counters), and —
// when breakers are armed — each node's final breaker state, trip
// count, and state-transition trail in virtual-time order.
func renderNodes(r *compilegate.BenchmarkResult) {
	if len(r.NodeResults) == 0 {
		return
	}
	breakers := r.NodeResults[0].BreakerState != ""
	fmt.Printf("  per-node breakdown (%s router, rerouted=%d", r.Options.Router, r.Rerouted)
	if breakers || r.Options.FailoverHops > 0 {
		fmt.Printf(" resubmitted=%d all-excluded=%d", r.Resubmitted, r.RouterAllExcluded)
	}
	fmt.Println("):")
	fmt.Print("  node     routed  completed  errors  plan-hit  crashes")
	if breakers {
		fmt.Print("    breaker  trips")
	}
	fmt.Println()
	for _, nr := range r.NodeResults {
		fmt.Printf("  %4d  %9d  %9d  %6d  %8.4f  %7d",
			nr.Node, nr.Routed, nr.Completed, nr.Errors, nr.PlanCacheHitRate, nr.Crashes)
		if breakers {
			fmt.Printf("  %9s  %5d", nr.BreakerState, nr.BreakerTrips)
		}
		fmt.Println()
	}
	for _, nr := range r.NodeResults {
		if len(nr.BreakerTransitions) == 0 {
			continue
		}
		fmt.Printf("  node %d breaker transitions:\n", nr.Node)
		for _, tr := range nr.BreakerTransitions {
			fmt.Printf("    %s\n", tr)
		}
	}
	fmt.Println()
}

// indent prefixes every non-empty line of s.
func indent(s, prefix string) string {
	var sb strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		sb.WriteString(prefix)
		sb.WriteString(line)
		sb.WriteString("\n")
	}
	return sb.String()
}

// figure1 prints the monitor ladder (thresholds ascending, concurrency
// descending) — the content of the paper's Figure 1.
func figure1() {
	fmt.Println("== Figure 1: memory monitors ==")
	chain, err := compilegate.NewGatewayChain(compilegate.DefaultGatewayConfig(8, 4*compilegate.GiB))
	if err != nil {
		panic(err)
	}
	fmt.Print(chain.String())
	fmt.Println()
}

// figure2 reproduces the throttling example trace with the governance
// primitives directly: staggered compilations whose memory curves
// flatten while blocked at monitors. (The registry's "figure2" scenario
// runs the same conditions through the full engine.)
func figure2() {
	fmt.Println("== Figure 2: compilation throttling example ==")
	sched := compilegate.NewScheduler()
	budget := compilegate.NewBudget(1 * compilegate.GiB)
	opts := compilegate.DefaultGovernorOptions(2, budget.Total())
	gov, err := compilegate.NewGovernor(opts, budget.NewTracker("compile"))
	if err != nil {
		panic(err)
	}
	type samp struct {
		t time.Duration
		v [3]int64
	}
	var series []samp
	cur := [3]int64{}
	peaks := []int64{420 * compilegate.MiB, 300 * compilegate.MiB, 280 * compilegate.MiB}
	rates := []time.Duration{time.Second, 2 * time.Second, 2 * time.Second}
	for i := range peaks {
		i := i
		sched.Go(fmt.Sprintf("Q%d", i+1), func(t *compilegate.Task) {
			t.Sleep(time.Duration(i) * 5 * time.Second)
			c := gov.Begin(t, fmt.Sprintf("Q%d", i+1))
			for c.Used() < peaks[i] {
				if err := c.Alloc(10 * compilegate.MiB); err != nil {
					break
				}
				cur[i] = c.Used()
				t.Sleep(rates[i])
			}
			c.Finish()
			cur[i] = 0
		})
	}
	sched.Go("sampler", func(t *compilegate.Task) {
		for t.Now() < 4*time.Minute {
			series = append(series, samp{t.Now(), cur})
			t.Sleep(5 * time.Second)
		}
	})
	if err := sched.Run(); err != nil {
		panic(err)
	}
	fmt.Println("  time      Q1(MiB)  Q2(MiB)  Q3(MiB)")
	for _, s := range series {
		fmt.Printf("  %7v  %7d  %7d  %7d\n", s.t,
			s.v[0]/compilegate.MiB, s.v[1]/compilegate.MiB, s.v[2]/compilegate.MiB)
	}
	fmt.Println()
}
